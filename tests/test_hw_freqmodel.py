"""Tests for the DVFS model."""

import pytest

from repro.hw.freqmodel import (FreqModel, PMParams, SPEED_SHIFT, SPEED_STEP)
from repro.hw.topology import Topology
from repro.hw.turbo import XEON_5218
from repro.sim.engine import Engine


class StubGovernor:
    """Fixed floor/request governor for unit tests."""

    def __init__(self, floor=1000, request=3900):
        self.floor = floor
        self.request = request

    def floor_mhz(self, cpu):
        return self.floor

    def request_mhz(self, cpu):
        return self.request


def make(pm=SPEED_SHIFT, floor=1000, request=3900,
         topo=Topology(2, 16, 2)):
    eng = Engine()
    gov = StubGovernor(floor, request)
    fm = FreqModel(eng, topo, XEON_5218, pm, gov)
    return eng, fm, gov


class TestActivityTracking:
    def test_starts_at_min(self):
        _, fm, _ = make()
        assert fm.freq_mhz(0) == XEON_5218.min_mhz

    def test_active_count_per_socket(self):
        eng, fm, _ = make()
        fm.set_thread_state(0, busy=True, spinning=False)
        fm.set_thread_state(16, busy=True, spinning=False)
        assert fm.active_physical_cores(0) == 1
        assert fm.active_physical_cores(1) == 1

    def test_siblings_share_one_physical_core(self):
        eng, fm, _ = make()
        fm.set_thread_state(0, busy=True, spinning=False)
        fm.set_thread_state(32, busy=True, spinning=False)   # sibling of 0
        assert fm.active_physical_cores(0) == 1
        fm.set_thread_state(0, busy=False, spinning=False)
        assert fm.active_physical_cores(0) == 1   # sibling still busy
        fm.set_thread_state(32, busy=False, spinning=False)
        assert fm.active_physical_cores(0) == 0

    def test_busy_and_spinning_rejected(self):
        _, fm, _ = make()
        with pytest.raises(ValueError):
            fm.set_thread_state(0, busy=True, spinning=True)

    def test_spinning_counts_as_active(self):
        _, fm, _ = make()
        fm.set_thread_state(0, busy=False, spinning=True)
        assert fm.active_physical_cores(0) == 1
        assert fm.core_is_active(0)

    def test_thread_state_readback(self):
        _, fm, _ = make()
        fm.set_thread_state(3, busy=True, spinning=False)
        assert fm.thread_state(3) == (True, False)
        assert fm.thread_state(4) == (False, False)


class TestInstantPstate:
    def test_activation_jumps_to_target_on_speed_shift(self):
        eng, fm, _ = make(request=2500)
        fm.set_thread_state(0, busy=True, spinning=False)
        # Speed Shift programs the P-state on the wakeup path: the core is
        # at the (pre-sustain-capped) requested frequency immediately.
        assert fm.freq_mhz(0) == 2500

    def test_activation_jump_capped_by_allcore_presustain(self):
        eng, fm, _ = make(request=3900)
        fm.set_thread_state(0, busy=True, spinning=False)
        assert fm.freq_mhz(0) == XEON_5218.limits[-1]   # all-core cap

    def test_speedstep_only_jumps_to_floor(self):
        eng, fm, _ = make(pm=SPEED_STEP, floor=2300, request=3900)
        fm.set_thread_state(0, busy=True, spinning=False)
        assert fm.freq_mhz(0) == 2300


class TestSustainedBoost:
    def test_sustained_activity_unlocks_full_turbo(self):
        eng, fm, _ = make(request=3900)
        fm.set_thread_state(0, busy=True, spinning=False)
        eng.run(until=SPEED_SHIFT.turbo_latency_us + 5_000)
        assert fm.freq_mhz(0) == XEON_5218.ceiling(1)   # 3900

    def test_gap_resets_sustained_activity(self):
        eng, fm, _ = make(request=3900)
        fm.set_thread_state(0, busy=True, spinning=False)
        eng.run(until=SPEED_SHIFT.turbo_latency_us + 5_000)
        fm.set_thread_state(0, busy=False, spinning=False)
        gap = SPEED_SHIFT.gap_forgiveness_us + 200
        eng.run(until=eng.now + gap)
        fm.set_thread_state(0, busy=True, spinning=False)
        eng.run(until=eng.now + 2_000)
        # Back under the pre-sustain cap (after decay toward it).
        assert fm.freq_mhz(0) <= XEON_5218.limits[-1] + SPEED_SHIFT.decay_step_mhz

    def test_short_gap_forgiven(self):
        eng, fm, _ = make(request=3900)
        fm.set_thread_state(0, busy=True, spinning=False)
        eng.run(until=SPEED_SHIFT.turbo_latency_us + 5_000)
        fm.set_thread_state(0, busy=False, spinning=False)
        eng.run(until=eng.now + SPEED_SHIFT.gap_forgiveness_us - 100)
        fm.set_thread_state(0, busy=True, spinning=False)
        assert fm.freq_mhz(0) == XEON_5218.ceiling(1)

    def test_no_autonomous_boost_on_speedstep(self):
        eng, fm, _ = make(pm=SPEED_STEP, floor=1000, request=1800)
        fm.set_thread_state(0, busy=True, spinning=False)
        eng.run(until=SPEED_STEP.turbo_latency_us + 20_000)
        # Follows the request, not the turbo ceiling.
        assert fm.freq_mhz(0) == 1800

    def test_turbo_ceiling_depends_on_active_count(self):
        eng, fm, _ = make(request=3900)
        for cpu in range(10):
            fm.set_thread_state(cpu, busy=True, spinning=False)
        eng.run(until=SPEED_SHIFT.turbo_latency_us + 10_000)
        assert fm.freq_mhz(0) == XEON_5218.ceiling(10)   # 3100


class TestIdleDecay:
    def test_idle_core_decays_to_min(self):
        eng, fm, _ = make(request=3900)
        fm.set_thread_state(0, busy=True, spinning=False)
        eng.run(until=20_000)
        fm.set_thread_state(0, busy=False, spinning=False)
        eng.run(until=eng.now + 60_000)
        assert fm.freq_mhz(0) == XEON_5218.min_mhz

    def test_idle_hold_keeps_freq_briefly(self):
        eng, fm, _ = make(request=3900)
        fm.set_thread_state(0, busy=True, spinning=False)
        eng.run(until=20_000)
        f = fm.freq_mhz(0)
        fm.set_thread_state(0, busy=False, spinning=False)
        eng.run(until=eng.now + SPEED_SHIFT.idle_hold_us - 500)
        assert fm.freq_mhz(0) == f

    def test_spin_holds_frequency(self):
        eng, fm, _ = make(request=3900)
        fm.set_thread_state(0, busy=True, spinning=False)
        eng.run(until=20_000)
        f = fm.freq_mhz(0)
        fm.set_thread_state(0, busy=False, spinning=True)
        eng.run(until=eng.now + 30_000)
        assert fm.freq_mhz(0) >= f

    def test_idle_duration(self):
        eng, fm, _ = make()
        fm.set_thread_state(0, busy=True, spinning=False)
        fm.set_thread_state(0, busy=False, spinning=False)
        eng.run(until=100)
        assert fm.idle_duration(0, eng.now) == 100
        fm.set_thread_state(0, busy=True, spinning=False)
        assert fm.idle_duration(0, eng.now) is None


class TestListeners:
    def test_listener_called_on_change(self):
        eng, fm, _ = make(request=2500)
        changes = []
        fm.add_listener(lambda pc, mhz: changes.append((pc, mhz)))
        fm.set_thread_state(0, busy=True, spinning=False)
        assert changes and changes[0][0] == 0

    def test_force_freq(self):
        eng, fm, _ = make()
        fm.force_freq(3, 2222)
        assert fm.core_freq_mhz(3) == 2222
