"""Nest policy behaviour under faults (§3 state machine + chaos repair).

Covers the satellite checklist: compaction, impatient promotion, and
attachment when the target core is offline or frequency-capped — plus the
nest-repair path (offline eviction, home-core reset, orphan re-placement
through the normal search so the accounting invariant holds).
"""

import pytest

from repro.core.nest import NestPolicy
from repro.core.params import NestParams
from repro.experiments.runner import run_experiment
from repro.faults import FaultConfig
from repro.governors.performance import PerformanceGovernor
from repro.hw.freqmodel import SPEED_SHIFT
from repro.hw.machines import Machine, get_machine
from repro.hw.topology import Topology
from repro.hw.turbo import XEON_5218
from repro.kernel.scheduler_core import Kernel
from repro.kernel.syscalls import Compute
from repro.sim.clock import TICK_US
from repro.sim.engine import Engine
from repro.workloads.base import ms_of_work
from repro.workloads.catalog import make_workload

MACHINE = Machine(name="t", cpu_model="t", microarchitecture="t",
                  topology=Topology(2, 4, 2), turbo=XEON_5218, pm=SPEED_SHIFT)


def make(params=None):
    eng = Engine(0)
    policy = NestPolicy(params or NestParams())
    kern = Kernel(eng, MACHINE, policy, PerformanceGovernor())
    return eng, kern, policy


def noop_task(kern, name="x", prev=None):
    def noop(api):
        yield Compute(1)

    t = kern._new_task(noop, name, None)
    t.prev_cpu = prev
    return t


def occupy(kern, cpu):
    def hog(api):
        yield Compute(ms_of_work(1000))

    t = kern._new_task(hog, f"hog{cpu}", None)
    kern.enqueue(t, cpu)
    return t


class TestOfflineEviction:
    def test_offline_core_leaves_both_nests(self):
        eng, kern, policy = make()
        policy.primary.update({1, 2})
        policy.reserve.add(3)
        kern.set_cpu_offline(2)
        kern.set_cpu_offline(3)
        assert 2 not in policy.primary
        assert 3 not in policy.reserve
        assert 1 in policy.primary
        assert policy.metrics.counter("offline_evictions").value == 2

    def test_home_cpu_reset_when_home_goes_offline(self):
        eng, kern, policy = make()
        t = noop_task(kern)
        policy.select_cpu_fork(t, parent_cpu=5)
        assert policy.home_cpu == 5
        kern.set_cpu_offline(5)
        assert policy.home_cpu is None
        # The next placement re-anchors the home core.
        t2 = noop_task(kern, "y")
        policy.select_cpu_fork(t2, parent_cpu=1)
        assert policy.home_cpu == 1

    def test_unnested_offline_core_counts_nothing(self):
        eng, kern, policy = make()
        kern.set_cpu_offline(6)
        assert "offline_evictions" not in policy.metrics.counters()

    def test_invariant_holds_after_eviction(self):
        """Eviction is repair, not placement: the placement counters stay
        balanced without compensation."""
        eng, kern, policy = make()
        for i in range(4):
            t = noop_task(kern, f"t{i}")
            occupy(kern, policy.select_cpu_fork(t, parent_cpu=0))
        kern.set_cpu_offline(next(iter(policy.primary | policy.reserve
                                       or {1})))
        policy.check_invariants()


class TestOfflineSearchPaths:
    def test_primary_search_skips_offline_before_eviction_hook(self):
        """cpu_is_idle() is false for an offline core, so even a stale
        nest entry (if eviction were skipped) cannot be chosen."""
        eng, kern, policy = make()
        policy.primary.update({1, 2})
        kern.rqs[1].last_busy_us = kern.engine.now
        kern.rqs[2].last_busy_us = kern.engine.now
        kern.set_cpu_offline(1)
        policy.primary.add(1)    # simulate a missed eviction
        t = noop_task(kern)
        assert policy.select_cpu_fork(t, parent_cpu=0) != 1

    def test_attachment_ignored_when_core_offline(self):
        eng, kern, policy = make()
        policy.primary.add(2)
        kern.rqs[2].last_busy_us = kern.engine.now
        t = noop_task(kern, prev=2)
        t.core_history = [2, 2]
        assert t.attached_core == 2
        kern.set_cpu_offline(2)
        # The hotplug scrubbed the attachment; the wakeup lands elsewhere.
        assert t.attached_core is None
        cpu = policy.select_cpu_wakeup(t, waker_cpu=0)
        assert cpu != 2
        policy.check_invariants()

    def test_attachment_still_hit_when_core_freq_capped(self):
        """A thermal cap slows a core but does not remove it: attachment
        (§3.3) deliberately keeps preferring the warm, capped core."""
        eng, kern, policy = make()
        policy.primary.add(2)
        kern.rqs[2].last_busy_us = kern.engine.now
        pc = kern.topology.physical_core_of(2)
        kern.freq.set_thermal_cap(pc, 1200)
        t = noop_task(kern, prev=2)
        t.core_history = [2, 2]
        cpu = policy.select_cpu_wakeup(t, waker_cpu=0)
        assert cpu == 2
        assert policy.stats["attachment_hits"] == 1

    def test_orphan_migration_routed_through_nest_search(self):
        eng, kern, policy = make()
        policy.primary.update({1, 2})
        kern.rqs[1].last_busy_us = kern.engine.now
        kern.rqs[2].last_busy_us = kern.engine.now
        occupy(kern, 2)
        eng.run(until=100)
        before = policy.stats["placements"]
        kern.set_cpu_offline(2)
        # The orphan was re-placed via _select: placements grew and the
        # accounting invariant still balances.
        assert policy.stats["placements"] == before + 1
        policy.check_invariants()


class TestNestLossEdgeCases:
    """Hotplug that takes out the *last* online core of a nest — or every
    core of a socket at once — must repair deterministically: both nests
    evicted, home re-anchored, attachments scrubbed, orphans re-placed on
    surviving cores.  Regression tests for the correlated-failure era,
    where whole-socket loss is a planned event rather than a freak draw."""

    def test_last_nest_core_offline_empties_and_repairs(self):
        eng, kern, policy = make()
        policy.primary.update({1})
        policy.home_cpu = 1
        hog = occupy(kern, 1)
        eng.run(until=100)
        kern.set_cpu_offline(1)
        # The nest is empty and the home anchor gone — not pointing at
        # the corpse of cpu 1.
        assert not policy.primary and policy.home_cpu is None
        # The orphaned hog was re-placed through the nest search onto an
        # online cpu, with no stale attachment back to cpu 1.
        assert all(c is None or kern.cpu_online[c]
                   for c in hog.core_history)
        policy.check_invariants()
        eng.run()
        assert not hog.alive

    def test_whole_socket_offline_repairs_onto_survivor(self):
        eng, kern, policy = make()
        socket0 = [c for c in range(kern.topology.n_cpus)
                   if kern.topology.socket_of(c) == 0]
        policy.primary.update(socket0[:3])
        policy.reserve.update(socket0[3:5])
        policy.home_cpu = socket0[0]
        hogs = [occupy(kern, c) for c in socket0[:6]]
        eng.run(until=100)
        for c in socket0:
            kern.set_cpu_offline(c)
        # No nest member survives on the dead socket and every orphaned
        # task's attachment history references only online cpus.
        assert not (policy.primary | policy.reserve) & set(socket0)
        assert policy.home_cpu is None or kern.cpu_online[policy.home_cpu]
        for hog in hogs:
            assert all(c is None or kern.cpu_online[c]
                       for c in hog.core_history)
        policy.check_invariants()
        eng.run()
        assert all(not hog.alive for hog in hogs)

    def test_whole_socket_offline_burst_is_deterministic(self):
        """A socket-wide correlated burst through the injector yields a
        bit-identical run when repeated with the same seed."""
        fc = FaultConfig(core_failure_rate_per_s=50.0,
                         core_failure_burst=32, horizon_us=60_000,
                         core_failure_downtime_us=10_000)
        runs = [run_experiment(
            make_workload("phoronix-libavif-avifenc-1", scale=0.3),
            get_machine("5218_2s"), "nest", "schedutil", seed=11,
            faults=fc) for _ in range(2)]
        assert runs[0].makespan_us == runs[1].makespan_us
        assert runs[0].metrics == runs[1].metrics


class TestCompactionAndImpatience:
    def test_stale_primary_core_demoted_under_fault_pressure(self):
        eng, kern, policy = make()
        policy.primary.update({1})
        kern.rqs[1].last_busy_us = 0
        eng.at(10 * TICK_US, 9, lambda: None)
        eng.run()
        t = noop_task(kern)
        policy.select_cpu_fork(t, parent_cpu=0)
        assert policy.stats["compactions"] >= 1
        policy.check_invariants()

    def test_impatient_task_expands_primary_nest(self):
        eng, kern, policy = make(NestParams(r_impatient=2))
        # Make every nest core busy so placements keep colliding.
        policy.primary.add(1)
        occupy(kern, 1)
        t = noop_task(kern, prev=1)
        t.impatience = 2
        cpu = policy.select_cpu_wakeup(t, waker_cpu=0)
        assert cpu in policy.primary         # direct promotion (§3.1)
        assert policy.stats["impatient_placements"] == 1
        assert t.impatience == 0
        policy.check_invariants()

    def test_impatient_promotion_with_offline_prev_core(self):
        eng, kern, policy = make(NestParams(r_impatient=2))
        policy.primary.add(1)
        occupy(kern, 1)
        kern.set_cpu_offline(3)
        t = noop_task(kern, prev=3)
        t.impatience = 5
        cpu = policy.select_cpu_wakeup(t, waker_cpu=0)
        assert cpu != 3 and kern.cpu_online[cpu]
        assert cpu in policy.primary
        policy.check_invariants()


class TestEndToEndNestUnderFaults:
    def run_nest(self, fc, seed=5):
        return run_experiment(
            make_workload("phoronix-libavif-avifenc-1", scale=0.3),
            get_machine("5218_2s"), "nest", "schedutil", seed=seed,
            faults=fc)

    def test_invariant_checked_under_every_scenario(self):
        """run_experiment calls check_invariants() after the run; these
        must all come back clean (it raises otherwise)."""
        scenarios = [
            FaultConfig(hotplug_rate_per_s=400.0, hotplug_downtime_us=3000,
                        horizon_us=10_000),
            FaultConfig(thermal_rate_per_s=400.0, thermal_duration_us=4000,
                        horizon_us=10_000),
            FaultConfig(straggler_rate_per_s=600.0, horizon_us=10_000),
            FaultConfig(tick_jitter_us=500, horizon_us=10_000),
            FaultConfig(hotplug_rate_per_s=300.0, thermal_rate_per_s=300.0,
                        straggler_rate_per_s=300.0, tick_jitter_us=300,
                        hotplug_downtime_us=2500, horizon_us=10_000),
        ]
        for fc in scenarios:
            res = self.run_nest(fc)
            assert res.makespan_us > 0

    def test_hotplug_produces_nest_repair_metrics(self):
        fc = FaultConfig(hotplug_rate_per_s=800.0, hotplug_downtime_us=2000,
                         horizon_us=10_000)
        res = self.run_nest(fc)
        assert res.metrics["kernel.fault_cpu_offline"]["value"] > 0
        # Placement accounting survived the chaos (else run_experiment
        # would have raised) and the hits still sum to the placements.
        s = res.policy_stats
        assert (s["attachment_hits"] + s["primary_hits"] + s["reserve_hits"]
                + s["cfs_fallbacks"]) == s["placements"]
