"""Tests for the energy model and the machine catalogue (paper Table 2)."""

import pytest

from repro.hw.energy import EnergyMeter, PowerParams
from repro.hw.machines import (ALL_MACHINES, E7_8870_V4_4S, PAPER_MACHINES,
                               RYZEN_4650G_1S, XEON_5218_2S, XEON_5220_1S,
                               XEON_6130_2S, XEON_6130_4S, get_machine)
from repro.hw.topology import Topology


class TestPowerModel:
    def test_idle_machine_draws_uncore_and_idle_power(self):
        topo = Topology(2, 2, 2)
        m = EnergyMeter(topo, PowerParams(uncore_watts=10, core_idle_watts=1))
        assert m.current_power_watts() == pytest.approx(2 * 10 + 4 * 1)

    def test_active_core_adds_dynamic_power(self):
        topo = Topology(1, 2, 2)
        m = EnergyMeter(topo)
        idle = m.current_power_watts()
        m.set_core_active(0, True, 0)
        m.set_core_freq(0, 3000, 0)
        assert m.current_power_watts() > idle

    def test_higher_freq_more_power(self):
        topo = Topology(1, 2, 2)
        a = EnergyMeter(topo)
        a.set_core_active(0, True, 0)
        a.set_core_freq(0, 2000, 0)
        b = EnergyMeter(topo)
        b.set_core_active(0, True, 0)
        b.set_core_freq(0, 3900, 0)
        assert b.current_power_watts() > a.current_power_watts()

    def test_socket_voltage_follows_fastest_core(self):
        """A slow core on a socket with a fast core draws more than on a
        socket where everything is slow (shared voltage rail)."""
        topo = Topology(1, 2, 2)
        slow_only = EnergyMeter(topo)
        slow_only.set_core_active(0, True, 0)
        slow_only.set_core_freq(0, 1000, 0)
        mixed = EnergyMeter(topo)
        mixed.set_core_active(0, True, 0)
        mixed.set_core_freq(0, 1000, 0)
        mixed.set_core_active(1, True, 0)
        mixed.set_core_freq(1, 3900, 0)
        fast_core_alone = EnergyMeter(topo)
        fast_core_alone.set_core_active(1, True, 0)
        fast_core_alone.set_core_freq(1, 3900, 0)
        # mixed > sum of parts - idle overlap: the slow core pays the fast
        # core's voltage.
        extra_mixed = mixed.current_power_watts() - fast_core_alone.current_power_watts()
        extra_alone = slow_only.current_power_watts() - EnergyMeter(topo).current_power_watts()
        assert extra_mixed > extra_alone

    def test_energy_integrates_power_over_time(self):
        topo = Topology(1, 1, 2)
        m = EnergyMeter(topo)
        p = m.current_power_watts()
        m.advance(2_000_000)   # 2 simulated seconds
        assert m.energy_joules == pytest.approx(2 * p)

    def test_advance_is_monotonic_noop_backwards(self):
        m = EnergyMeter(Topology(1, 1, 2))
        m.advance(1000)
        e = m.energy_joules
        m.advance(500)
        assert m.energy_joules == e

    def test_samples_and_energy_between(self):
        m = EnergyMeter(Topology(1, 1, 2))
        m.sample(0)
        m.sample(1_000_000)
        m.sample(2_000_000)
        total = m.energy_joules
        assert m.energy_between(0, 2_000_000) == pytest.approx(total)
        assert m.energy_between(500_000, 1_500_000) == pytest.approx(total / 2)

    def test_energy_between_rejects_reversed(self):
        m = EnergyMeter(Topology(1, 1, 2))
        with pytest.raises(ValueError):
            m.energy_between(10, 5)


class TestMachines:
    """Paper Table 2."""

    def test_four_paper_machines(self):
        assert set(PAPER_MACHINES) == {"6130_2s", "6130_4s", "5218_2s",
                                       "e78870_4s"}

    @pytest.mark.parametrize("machine,n_cpus", [
        (E7_8870_V4_4S, 160), (XEON_6130_2S, 64), (XEON_6130_4S, 128),
        (XEON_5218_2S, 64), (XEON_5220_1S, 36), (RYZEN_4650G_1S, 12)])
    def test_core_counts(self, machine, n_cpus):
        assert machine.n_cpus == n_cpus

    def test_e7_is_4_socket_broadwell(self):
        assert E7_8870_V4_4S.topology.n_sockets == 4
        assert E7_8870_V4_4S.microarchitecture == "Broadwell"
        assert E7_8870_V4_4S.pm.name == "Enhanced Intel SpeedStep"

    def test_skylake_machines_use_speed_shift(self):
        assert XEON_6130_2S.pm.name == "Intel Speed Shift"
        assert XEON_5218_2S.pm.name == "Intel Speed Shift"

    def test_frequency_ranges(self):
        assert (XEON_6130_2S.min_mhz, XEON_6130_2S.nominal_mhz,
                XEON_6130_2S.max_turbo_mhz) == (1000, 2100, 3700)
        assert (XEON_5218_2S.min_mhz, XEON_5218_2S.nominal_mhz,
                XEON_5218_2S.max_turbo_mhz) == (1000, 2300, 3900)
        assert (E7_8870_V4_4S.min_mhz, E7_8870_V4_4S.nominal_mhz,
                E7_8870_V4_4S.max_turbo_mhz) == (1200, 2100, 3000)

    def test_get_machine(self):
        assert get_machine("5218_2s") is XEON_5218_2S
        with pytest.raises(KeyError):
            get_machine("no-such-box")

    def test_describe_mentions_counts(self):
        assert "2x16x2" in XEON_6130_2S.describe()

    def test_all_machines_superset(self):
        assert set(PAPER_MACHINES) < set(ALL_MACHINES)
