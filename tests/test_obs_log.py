"""Tests for the structured event log and its zero-overhead contract."""

import io
import json

from repro.obs.events import EVENT_KINDS, PLACE_ATTACH, SCHED_WAKEUP, SchedEvent
from repro.obs.export import events_to_jsonl
from repro.obs.log import EventLog


class TestEventLog:
    def test_disabled_by_default(self):
        assert EventLog().enabled is False

    def test_attach_enables(self):
        log = EventLog()
        log.attach(lambda ev: None)
        assert log.enabled is True

    def test_detach_all_disables(self):
        log = EventLog()
        log.attach(lambda ev: None)
        log.detach_all()
        assert log.enabled is False

    def test_memory_sink_collects_events(self):
        log = EventLog()
        events = log.attach_memory()
        log.emit(5, SCHED_WAKEUP, cpu=2, task=7)
        log.emit(9, PLACE_ATTACH, cpu=2, task=7, value=1)
        assert events == [SchedEvent(5, SCHED_WAKEUP, 2, 7, 0),
                          SchedEvent(9, PLACE_ATTACH, 2, 7, 1)]

    def test_multiple_sinks_all_called(self):
        log = EventLog()
        a = log.attach_memory()
        b = log.attach_memory()
        log.emit(1, SCHED_WAKEUP)
        assert a == b and len(a) == 1

    def test_event_defaults(self):
        ev = SchedEvent(3, SCHED_WAKEUP)
        assert (ev.cpu, ev.task, ev.value) == (-1, -1, 0)

    def test_all_kinds_are_dotted_strings(self):
        for kind in EVENT_KINDS:
            assert "." in kind and kind == kind.lower()


class TestEventsToJsonl:
    def test_round_trip(self):
        events = [SchedEvent(1, SCHED_WAKEUP, 0, 5, 0),
                  SchedEvent(2, PLACE_ATTACH, 0, 5, 3)]
        buf = io.StringIO()
        assert events_to_jsonl(events, buf) == 2
        lines = buf.getvalue().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first == {"t": 1, "kind": SCHED_WAKEUP, "cpu": 0,
                         "task": 5, "value": 0}

    def test_empty(self):
        buf = io.StringIO()
        assert events_to_jsonl([], buf) == 0
        assert buf.getvalue() == ""
