"""Every repro under tests/repros/ must replay clean.

A repro file is a shrunk scenario that once provoked an invariant
violation (see DESIGN.md, "Testing strategy").  Once the bug is fixed,
the file stays checked in: replaying it through exactly the checks it
names is a permanent, pinpoint regression test.  A failure here means a
previously-fixed class of bug is back.
"""

from pathlib import Path

import pytest

from repro.verify.repro import load_repro, replay_repro

REPRO_DIR = Path(__file__).resolve().parent / "repros"
REPRO_FILES = sorted(REPRO_DIR.glob("*.json"))


def test_repro_corpus_exists():
    assert REPRO_FILES, f"no repro files under {REPRO_DIR}"


@pytest.mark.parametrize("path", REPRO_FILES, ids=lambda p: p.stem)
def test_repro_replays_clean(path):
    data = load_repro(path)        # structural validation
    assert data["expect"], f"{path.name} names no invariants"
    violations = replay_repro(path)
    assert violations == [], (
        f"{path.name} reproduces again: "
        + "; ".join(str(v) for v in violations[:5]))


@pytest.mark.parametrize("path", REPRO_FILES, ids=lambda p: p.stem)
def test_repro_analysis_digest_well_formed(path):
    """Corpus repros carry a trace-analysis digest of the shrunk run,
    keeping them interpretable after the bug is fixed."""
    data = load_repro(path)
    digest = data.get("analysis")
    assert digest is not None, f"{path.name} has no analysis digest"
    assert digest["analysis_version"] >= 1
    assert len(digest["sha256"]) == 64
    assert isinstance(digest["summary"], dict) and digest["summary"]
