"""Drift tests: the policy registry is the single source of truth.

Before PR 10 the scheduler name lists lived in four places (CLI
choices, runner factory, fast-engine tuple, fuzz pool) and could drift
apart silently.  They are now all *derived* from sched/registry.py;
these tests pin that derivation so a future hand-edited list is an
immediate failure, and pin the SDK metadata contract every entry must
honour.
"""

import pytest

from repro.core.params import NestParams
from repro.sched.base import SelectionPolicy
from repro.sched.registry import (available_policies, fast_scheduler_names,
                                  fuzz_scheduler_pool, invariant_groups_of,
                                  iter_policy_infos, make_registered_policy,
                                  make_registered_fast_policy, policy_info,
                                  register_policy, unregister_policy)

EXPECTED_BUILTINS = {"cfs", "ftrt", "nest", "scxnest", "smove"}


def test_expected_builtins_are_registered():
    assert set(available_policies()) == EXPECTED_BUILTINS


def test_cli_choices_come_from_the_registry():
    from repro.experiments.cli import build_parser
    parser = build_parser()
    run_choices = None
    for action in parser._subparsers._group_actions[0].choices["run"]._actions:
        if "--scheduler" in action.option_strings:
            run_choices = list(action.choices)
    assert run_choices == available_policies()


def test_cli_compare_and_sweep_choices_come_from_the_registry():
    from repro.experiments.cli import build_parser
    sub = build_parser()._subparsers._group_actions[0].choices
    for command in ("compare", "sweep"):
        choices = None
        for action in sub[command]._actions:
            if "--scheduler" in action.option_strings:
                choices = list(action.choices)
        assert choices == available_policies(), command


def test_fast_engine_list_is_derived():
    from repro.sim.fastengine import FAST_SCHEDULERS
    assert FAST_SCHEDULERS == fast_scheduler_names()
    assert set(FAST_SCHEDULERS) == {
        info.name for info in iter_policy_infos() if info.fast}


def test_fuzz_pool_is_derived_and_weighted():
    from repro.verify.generate import SCHEDULER_POOL
    assert SCHEDULER_POOL == fuzz_scheduler_pool()
    for info in iter_policy_infos():
        assert SCHEDULER_POOL.count(info.name) == info.fuzz_weight


def test_every_builtin_has_complete_metadata():
    for info in iter_policy_infos():
        assert info.description, info.name
        assert info.fuzz_weight >= 1, (
            f"{info.name}: built-ins must be fuzzable")
        policy = make_registered_policy(info.name)
        assert isinstance(policy, SelectionPolicy)
        assert invariant_groups_of(info.name) == info.invariant_groups


def test_nest_params_flow_only_where_declared():
    params = NestParams(r_max=7)
    for info in iter_policy_infos():
        if not info.uses_nest_params:
            continue
        policy = make_registered_policy(info.name, params)
        assert policy.params.r_max == 7, info.name


def test_fast_factories_refuse_or_build():
    for info in iter_policy_infos():
        if info.fast:
            assert isinstance(make_registered_fast_policy(info.name),
                              SelectionPolicy)
        else:
            with pytest.raises(ValueError, match="no fast-engine variant"):
                make_registered_fast_policy(info.name)


def test_duplicate_registration_is_rejected():
    with pytest.raises(ValueError, match="already registered"):
        register_policy("cfs", lambda params: None)


def test_replace_and_unregister_round_trip():
    from repro.sched import registry
    original = policy_info("cfs")
    sentinel = lambda params: None
    register_policy("cfs", sentinel, replace=True,
                    description="shadowed for the test")
    try:
        assert policy_info("cfs").factory is sentinel
    finally:
        # Restore the real entry exactly as it was registered.
        registry._REGISTRY["cfs"] = original
    assert policy_info("cfs") is original

    register_policy("ephemeral", sentinel, description="temp")
    assert "ephemeral" in available_policies()
    unregister_policy("ephemeral")
    assert "ephemeral" not in available_policies()


def test_unknown_policy_error_names_the_candidates():
    with pytest.raises(ValueError) as exc:
        policy_info("bogus")
    assert "bogus" in str(exc.value)
    assert "cfs" in str(exc.value)


def test_policy_names_are_case_insensitive():
    assert policy_info("NEST").name == "nest"
    assert isinstance(make_registered_policy("Scxnest"), SelectionPolicy)
