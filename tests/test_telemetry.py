"""Sweep telemetry: records, views, the hub, and zero perturbation.

The load-bearing property is the last one: a sweep with telemetry
enabled must produce **bit-identical** results to one without — across
the pool path, the serial path, both engines and fault injection.
Telemetry observes; it never steers.
"""

from __future__ import annotations

import io
import json

import pytest

from repro.experiments.cache import ResultCache, result_to_jsonable
from repro.experiments.parallel import RunSpec, SweepExecutor
from repro.faults import fault_profile
from repro.obs.telemetry.hub import (TelemetryHub, WorkerTelemetry,
                                     gc_totals, load_stream, rss_peak_kb,
                                     worker_telemetry)
from repro.obs.telemetry.records import (RECORD_KINDS, make_record,
                                         read_stream, validate_record,
                                         write_record)
from repro.obs.telemetry.view import LiveView, PlainView, make_view

SPECS = [
    RunSpec(workload="configure-gcc", machine="ryzen_4650g",
            scheduler=sched, governor="schedutil", seed=1, scale=0.3)
    for sched in ("cfs", "nest")
]


def canonical(result):
    """The deterministic image of a result (host telemetry dropped)."""
    data = result_to_jsonable(result, result.machine)
    data.pop("sim_wall_s", None)
    data.pop("host", None)
    return data


# ---------------------------------------------------------------------------
# Record vocabulary
# ---------------------------------------------------------------------------

class TestRecords:
    def test_make_record_envelope(self):
        rec = make_record("hb", run="r", pid=1, sim_us=5, events=9,
                          wall_s=0.1)
        assert rec["t"] == "hb" and rec["v"] >= 1 and rec["ts"] > 0
        assert validate_record(rec) == []

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            make_record("nope")

    def test_validate_flags_missing_fields(self):
        rec = make_record("run_done", run="r", outcome="cached", done=1,
                          total=2)
        del rec["done"]
        assert any("done" in p for p in validate_record(rec))
        assert validate_record({"x": 1})  # no envelope, unknown kind

    def test_every_kind_has_required_fields(self):
        from repro.obs.telemetry.records import REQUIRED_FIELDS
        assert set(REQUIRED_FIELDS) == RECORD_KINDS

    def test_roundtrip_and_torn_tail(self):
        buf = io.StringIO()
        recs = [make_record("run_start", run="a", pid=1, ts=1.0),
                make_record("run_end", run="a", pid=1, wall_s=0.5,
                            events=10, makespan_us=100, ts=2.0)]
        for rec in recs:
            write_record(buf, rec)
        # A crash mid-append leaves a torn final line: must be skipped.
        buf.write('{"t": "hb", "truncat')
        buf.seek(0)
        back = list(read_stream(buf))
        assert back == recs

    def test_blank_and_garbage_lines_skipped(self):
        stream = io.StringIO('\n[1,2]\nnot json\n'
                             '{"t":"sweep_end","v":1,"ts":1}\n')
        back = list(read_stream(stream))
        assert len(back) == 1 and back[0]["t"] == "sweep_end"

    def test_truncated_line_mid_file_recovers(self):
        # A worker killed mid-write with the sweep carrying on: the torn
        # line sits between valid records and must not eat its neighbors.
        recs = [make_record("run_start", run="a", pid=1, ts=1.0),
                make_record("run_done", run="a", outcome="simulated",
                            done=1, total=2, ts=2.0)]
        buf = io.StringIO()
        write_record(buf, recs[0])
        buf.write('{"t": "hb", "run": "a", "sim_us": 12')   # no close, no \n?
        buf.write("\n")
        write_record(buf, recs[1])
        buf.seek(0)
        assert list(read_stream(buf)) == recs

    def test_garbage_burst_mid_file_recovers(self):
        recs = [make_record("run_start", run="a", pid=1, ts=1.0),
                make_record("run_start", run="b", pid=2, ts=2.0)]
        buf = io.StringIO()
        write_record(buf, recs[0])
        buf.write("\x00\x00binary junk\x00\n42\nnull\n\"str\"\n")
        write_record(buf, recs[1])
        buf.seek(0)
        assert list(read_stream(buf)) == recs

    def test_interleaved_valid_and_torn_lines(self):
        # Every other line torn: all valid records still come back, in
        # order, with nothing invented.
        recs = [make_record("hb", run=f"r{i}", pid=i, sim_us=i * 10,
                            events=i, wall_s=0.1, ts=float(i))
                for i in range(5)]
        buf = io.StringIO()
        for rec in recs:
            write_record(buf, rec)
            buf.write('{"t": "hb", "tor\n')
        buf.seek(0)
        assert list(read_stream(buf)) == recs


# ---------------------------------------------------------------------------
# Progress views
# ---------------------------------------------------------------------------

def _feed_sweep(view, n=2):
    view.handle(make_record("sweep_start", sweep="s", n_specs=n, jobs=2))
    for i in range(n):
        view.handle(make_record("run_start", run=f"run-{i}", pid=100 + i))
        view.handle(make_record("hb", run=f"run-{i}", pid=100 + i,
                                sim_us=500, events=42, wall_s=0.1))
        view.handle(make_record("run_done", run=f"run-{i}",
                                outcome="simulated", done=i + 1, total=n,
                                wall_s=0.2, events=42, makespan_us=900))
    view.handle(make_record("sweep_end", sweep="s", stats={},
                            interrupted=False))


class TestViews:
    def test_make_view_modes(self):
        buf = io.StringIO()
        assert make_view("none", buf) is None
        assert make_view("off", buf) is None
        assert isinstance(make_view("plain", buf), PlainView)
        assert isinstance(make_view("live", buf), LiveView)
        # StringIO is not a tty -> auto degrades to the plain view.
        assert isinstance(make_view("auto", buf), PlainView)
        with pytest.raises(ValueError):
            make_view("sideways", buf)

    def test_plain_view_lines(self):
        buf = io.StringIO()
        view = PlainView(buf)
        _feed_sweep(view)
        view.close()
        out = buf.getvalue()
        assert "[1/2]" in out and "[2/2]" in out
        assert "run-0" in out and "run-1" in out
        assert "done: 2/2 runs" in out and "2 simulated" in out

    def test_plain_view_marks_cached_runs(self):
        buf = io.StringIO()
        view = PlainView(buf)
        view.handle(make_record("sweep_start", sweep="s", n_specs=1, jobs=1))
        view.handle(make_record("run_done", run="c", outcome="cached",
                                done=1, total=1))
        view.close()
        assert "cache" in buf.getvalue()

    def test_live_view_renders_and_closes(self):
        buf = io.StringIO()
        view = LiveView(buf, fps=10_000)   # no throttling in the test
        _feed_sweep(view)
        view.close()
        out = buf.getvalue()
        assert "sweep" in out and "2/2" in out
        assert out.endswith("\n")

    def test_views_tolerate_unknown_kinds(self):
        for view in (PlainView(io.StringIO()), LiveView(io.StringIO())):
            view.handle({"t": "future_kind", "v": 99, "ts": 1.0})
            view.close()


# ---------------------------------------------------------------------------
# Worker-side emitter
# ---------------------------------------------------------------------------

class TestWorkerTelemetry:
    def test_heartbeat_wall_clock_gating(self):
        sent = []
        wt = WorkerTelemetry(sent.append, heartbeat_s=1e9)
        wt.run_start("r")

        class Eng:
            events_processed = 7
        sink = wt.heartbeat_sink(Eng())
        for _ in range(50):
            sink(0, 0, 10, 2500, 1, False)
        assert [r["t"] for r in sent] == ["run_start"]  # gate never opened

        wt2 = WorkerTelemetry(sent.append, heartbeat_s=0.0)
        wt2.run_start("r2")
        sink2 = wt2.heartbeat_sink(Eng())
        sink2(0, 0, 10, 2500, 1, False)
        assert sent[-1]["t"] == "hb" and sent[-1]["events"] == 7

    def test_send_failure_silences_emitter(self):
        def broken(rec):
            raise OSError("pipe gone")
        wt = WorkerTelemetry(broken)
        wt.run_start("r")          # first send fails -> emitter off
        wt.run_end(type("R", (), {"events_processed": 1, "makespan_us": 2,
                                  "rss_peak_kb": 0, "gc_collections": 0,
                                  "gc_collected": 0, "extra": {}})())
        assert wt._send is None    # and it stayed off without raising

    def test_run_error_record(self):
        sent = []
        wt = WorkerTelemetry(sent.append)
        wt.run_error("bad", ValueError("boom"))
        assert sent[0]["t"] == "run_error" and "boom" in sent[0]["error"]

    def test_host_probes(self):
        assert rss_peak_kb() > 0          # this test process has an RSS
        collections, _ = gc_totals()
        assert collections >= 0

    def test_no_emitter_outside_pool(self):
        assert worker_telemetry() is None


# ---------------------------------------------------------------------------
# The hub, end to end
# ---------------------------------------------------------------------------

class TestHub:
    def _sweep(self, tmp_path, specs, jobs=2, cache=None, **hub_kw):
        hub = TelemetryHub(stream_dir=tmp_path / "telemetry",
                           heartbeat_s=0.0, **hub_kw)
        ex = SweepExecutor(jobs=jobs, cache=cache, telemetry=hub)
        results = ex.run(specs)
        return hub, results

    def test_pool_sweep_streams_records(self, tmp_path):
        hub, results = self._sweep(tmp_path, SPECS)
        assert all(r is not None for r in results)
        recs = load_stream(hub.stream_path)
        kinds = {r["t"] for r in recs}
        assert {"sweep_start", "run_start", "run_end", "run_done",
                "sweep_end"} <= kinds
        for rec in recs:
            assert validate_record(rec) == []
        done = [r for r in recs if r["t"] == "run_done"]
        assert {d["run"] for d in done} == {s.label for s in SPECS}
        assert all(d["outcome"] == "simulated" for d in done)
        end = next(r for r in recs if r["t"] == "sweep_end")
        assert end["stats"]["n_specs"] == len(SPECS)

    def test_serial_sweep_streams_records(self, tmp_path):
        hub, results = self._sweep(tmp_path, SPECS[:1], jobs=1)
        kinds = {r["t"] for r in load_stream(hub.stream_path)}
        assert {"sweep_start", "run_start", "run_end", "run_done",
                "sweep_end"} <= kinds

    def test_cached_sweep_emits_cached_outcomes(self, tmp_path):
        cache = ResultCache(root=tmp_path / "cache")
        self._sweep(tmp_path, SPECS, cache=cache)
        hub, _ = self._sweep(tmp_path, SPECS, cache=cache)
        recs = load_stream(hub.stream_path)
        done = [r for r in recs if r["t"] == "run_done"]
        assert all(d["outcome"] == "cached" for d in done)
        assert not any(r["t"] == "run_start" for r in recs)  # nothing ran

    def test_run_end_carries_memory_and_fault_fields(self, tmp_path):
        faulted = [
            RunSpec(workload="configure-gcc", machine="ryzen_4650g",
                    scheduler="nest", governor="schedutil", seed=2,
                    scale=0.3, faults=fault_profile("hotplug"))]
        hub, _ = self._sweep(tmp_path, faulted)
        end = next(r for r in load_stream(hub.stream_path)
                   if r["t"] == "run_end")
        assert end["rss_peak_kb"] > 0
        assert "gc_collections" in end and "faults" in end

    def test_stream_is_valid_jsonl(self, tmp_path):
        hub, _ = self._sweep(tmp_path, SPECS[:1])
        for line in hub.stream_path.read_text().splitlines():
            json.loads(line)

    def test_hub_without_stream_dir_still_works(self, tmp_path):
        hub = TelemetryHub()
        ex = SweepExecutor(jobs=2, cache=None, telemetry=hub)
        results = ex.run(SPECS)
        assert all(r is not None for r in results)
        assert hub.stream_path is None

    def test_view_failures_never_kill_the_sweep(self, tmp_path):
        class ExplodingView:
            def handle(self, rec):
                raise RuntimeError("renderer bug")

            def close(self):
                pass
        hub = TelemetryHub(view=ExplodingView())
        ex = SweepExecutor(jobs=1, cache=None, telemetry=hub)
        results = ex.run(SPECS[:1])
        assert results[0] is not None
        assert hub.view is None          # view benched after first failure

    def test_unwritable_stream_dir_degrades_to_silence(self, tmp_path):
        blocked = tmp_path / "blocked"
        blocked.write_text("a file, not a directory")
        hub = TelemetryHub(stream_dir=blocked / "telemetry")
        ex = SweepExecutor(jobs=1, cache=None, telemetry=hub)
        assert ex.run(SPECS[:1])[0] is not None


# ---------------------------------------------------------------------------
# The tentpole invariant: telemetry changes nothing
# ---------------------------------------------------------------------------

class TestZeroPerturbation:
    def _images(self, specs, telemetry, tmp_path=None, jobs=2):
        hub = None
        if telemetry:
            hub = TelemetryHub(stream_dir=tmp_path / "telemetry",
                               heartbeat_s=0.0)   # heartbeat per segment
        ex = SweepExecutor(jobs=jobs, cache=None, telemetry=hub)
        return [canonical(r) for r in ex.run(specs)]

    @pytest.mark.parametrize("engine", ["ref", "fast"])
    def test_bit_identical_with_and_without_telemetry(self, tmp_path,
                                                      engine):
        import dataclasses
        specs = [dataclasses.replace(s, engine=engine) for s in SPECS]
        with_t = self._images(specs, True, tmp_path)
        without = self._images(specs, False)
        assert with_t == without

    def test_bit_identical_under_fault_injection(self, tmp_path):
        specs = [
            RunSpec(workload="configure-gcc", machine="ryzen_4650g",
                    scheduler="nest", governor="schedutil", seed=s,
                    scale=0.3, faults=fault_profile("chaos"))
            for s in (1, 2)]
        assert self._images(specs, True, tmp_path) == \
            self._images(specs, False)

    def test_bit_identical_on_serial_path(self, tmp_path):
        assert self._images(SPECS, True, tmp_path, jobs=1) == \
            self._images(SPECS, False, jobs=1)
