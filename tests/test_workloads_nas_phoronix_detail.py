"""Deeper behavioural tests for the NAS and Phoronix generators."""

import pytest

from repro.experiments.runner import run_experiment
from repro.hw.machines import get_machine
from repro.workloads.nas import NAS_PROFILES, NasWorkload
from repro.workloads.phoronix import (FIG13_PROFILES, PhoronixProfile,
                                      PhoronixWorkload, suite_population)

SMALL = get_machine("ryzen_4650g")


def run(wl, sched="cfs", seed=1, machine=SMALL):
    return run_experiment(wl, machine, sched, "schedutil", seed=seed)


class TestNasDetail:
    def test_rounds_scale_with_scale(self):
        short = run(NasWorkload("mg", scale=0.2, n_threads=4), seed=2)
        long = run(NasWorkload("mg", scale=0.6, n_threads=4), seed=2)
        # 3x the rounds; the serial init amortises the ratio below 3.
        assert long.makespan_us > short.makespan_us * 1.4

    def test_imbalance_causes_wakeups(self):
        """Imbalanced barrier rounds make early arrivers block and wake."""
        res = run(NasWorkload("lu", scale=0.2, n_threads=6), seed=1)
        assert res.total_wakeups > 10

    def test_ep_mostly_computes(self):
        """The embarrassingly-parallel kernel barely blocks."""
        res = run(NasWorkload("ep", scale=1.0, n_threads=6), seed=1)
        per_thread = res.total_wakeups / res.n_tasks
        assert per_thread <= 2

    def test_profiles_have_positive_parameters(self):
        for p in NAS_PROFILES.values():
            assert p.chunk_ms > 0 and p.rounds >= 1 and p.imbalance >= 0

    def test_cg_is_fine_grained(self):
        assert NAS_PROFILES["cg"].chunk_ms < NAS_PROFILES["bt"].chunk_ms


class TestPhoronixDetail:
    def test_profile_kinds_cover_all_engines(self):
        kinds = {p.kind for p in FIG13_PROFILES.values()}
        assert kinds == {"shortburst", "pulse", "steady", "barriered",
                         "churny", "frame"}

    def test_custom_profile(self):
        prof = PhoronixProfile("custom", "steady", n_threads=3, work_ms=20)
        res = run(PhoronixWorkload(profile=prof, test="custom"))
        assert res.n_tasks == 4       # main + 3 threads
        assert res.workload == "phoronix-custom"

    def test_bad_kind_rejected_at_run(self):
        prof = PhoronixProfile("weird", "quantum", n_threads=2)
        with pytest.raises(Exception):
            run(PhoronixWorkload(profile=prof, test="weird"))

    def test_shortburst_task_count(self):
        prof = PhoronixProfile("sb", "shortburst", waves=10, wave_width=3)
        res = run(PhoronixWorkload(profile=prof, test="sb"))
        assert res.n_tasks == 1 + 10 * 3

    def test_pulse_threads_sleep_between_bursts(self):
        prof = PhoronixProfile("pl", "pulse", n_threads=4, job_ms=0.3,
                               work_ms=6, pulse_gap_us=500)
        res = run(PhoronixWorkload(profile=prof, test="pl"))
        assert res.total_wakeups > 4 * 5   # many pulse wakeups

    def test_zstd_profiles_are_pulse(self):
        assert FIG13_PROFILES["zstd-compression-7"].kind == "pulse"
        assert FIG13_PROFILES["rodinia-5"].n_threads == 36

    def test_population_classes_weighted_toward_saturating(self):
        pop = suite_population(100, seed=11)
        saturating = sum(1 for w in pop
                         if "saturating" in w.profile.name)
        assert saturating > 40

    def test_population_distinct_names(self):
        names = [w.name for w in suite_population(50, seed=2)]
        assert len(set(names)) == 50

    def test_machine_relative_thread_counts(self):
        wl = PhoronixWorkload("oidn-1")

        class FakeKernel:
            topology = SMALL.topology

        assert wl.n_threads_on(FakeKernel()) == SMALL.topology.n_cpus
