"""Run-history store: sqlite persistence, regression gates, trajectory.

Includes the PR's acceptance gate: ``repro history diff`` must detect an
artificially slowed run and exit non-zero.
"""

from __future__ import annotations

import json
import sqlite3

import pytest

from repro.experiments.cache import ResultCache
from repro.experiments.cli import main
from repro.experiments.parallel import RunSpec, SweepExecutor
from repro.obs.history import (HistoryStore, SCHEMA_VERSION,
                               append_trajectory, trajectory_entries)
from repro.obs.telemetry.hub import TelemetryHub

STATS = {"n_specs": 2, "simulated": 2, "cache_hits": 0, "wall_s": 2.0,
         "events": 100, "workers": 2}


def run_row(label, key, wall=1.0, makespan=1000, energy=2.0,
            metrics=None, **over):
    row = {"label": label, "spec_key": key, "engine": "ref", "seed": 1,
           "outcome": "simulated", "cached": False, "completed": True,
           "attempts": 1, "sim_wall_s": wall, "events_processed": 50,
           "makespan_us": makespan, "energy_j": energy, "rss_peak_kb": 64,
           "metrics": metrics or {"kernel.wakeups": 10}}
    row.update(over)
    return row


@pytest.fixture
def store(tmp_path):
    with HistoryStore(tmp_path / "history.sqlite") as st:
        yield st


class TestSchema:
    def test_fresh_store_is_current_version(self, store):
        assert store.schema_version == SCHEMA_VERSION

    def test_reopen_is_a_noop_migration(self, tmp_path):
        path = tmp_path / "h.sqlite"
        HistoryStore(path).close()
        with HistoryStore(path) as st:
            assert st.schema_version == SCHEMA_VERSION

    def test_future_schema_is_refused(self, tmp_path):
        path = tmp_path / "h.sqlite"
        con = sqlite3.connect(str(path))
        con.execute(f"PRAGMA user_version = {SCHEMA_VERSION + 1}")
        con.close()
        with pytest.raises(RuntimeError, match="newer"):
            HistoryStore(path)

    def test_existing_data_survives_reopen(self, tmp_path):
        path = tmp_path / "h.sqlite"
        with HistoryStore(path) as st:
            st.record_sweep("u1", STATS, [run_row("a", "k1")])
        with HistoryStore(path) as st:
            assert len(st.sweeps()) == 1
            assert st.runs_of(1)[0]["label"] == "a"


class TestRecordAndResolve:
    def test_record_returns_monotonic_ids(self, store):
        a = store.record_sweep("u1", STATS, [])
        b = store.record_sweep("u2", STATS, [])
        assert b == a + 1

    def test_sweeps_newest_first(self, store):
        store.record_sweep("u1", STATS, [])
        store.record_sweep("u2", STATS, [])
        assert [s["uid"] for s in store.sweeps()] == ["u2", "u1"]

    def test_runs_roundtrip_metrics(self, store):
        sid = store.record_sweep("u1", STATS,
                                 [run_row("a", "k1",
                                          metrics={"nest.x": 3.5})])
        runs = store.runs_of(sid)
        assert runs[0]["metrics"] == {"nest.x": 3.5}
        assert runs[0]["rss_peak_kb"] == 64

    def test_resolve_forms(self, store):
        i1 = store.record_sweep("20260101-aaa", STATS, [])
        store.record_sweep("20260202-bbb", STATS, [])
        assert store.resolve("last")["uid"] == "20260202-bbb"
        assert store.resolve("last-1")["uid"] == "20260101-aaa"
        assert store.resolve(str(i1))["uid"] == "20260101-aaa"
        assert store.resolve("20260101")["uid"] == "20260101-aaa"
        with pytest.raises(KeyError):
            store.resolve("nope")


class TestDiffGate:
    def _two_sweeps(self, store, second_runs):
        store.record_sweep("base", STATS,
                           [run_row("a", "k1"), run_row("b", "k2")])
        store.record_sweep("cur", STATS, second_runs)

    def test_identical_sweeps_are_clean(self, store):
        self._two_sweeps(store, [run_row("a", "k1"), run_row("b", "k2")])
        diff = store.diff("last", "last-1")
        assert not diff.has_regressions and diff.compared == 2

    def test_artificially_slowed_run_is_flagged(self, store):
        # The acceptance gate: one run 3x slower must trip the wall gate.
        self._two_sweeps(store, [run_row("a", "k1", wall=3.0),
                                 run_row("b", "k2")])
        diff = store.diff("last", "last-1", wall_tol=0.5)
        assert diff.has_regressions
        assert [r.kind for r in diff.regressions] == ["wall"]
        assert "3.000s" in diff.regressions[0].detail
        assert "REGRESSION" in diff.render()

    def test_wall_tolerance_is_respected(self, store):
        self._two_sweeps(store, [run_row("a", "k1", wall=1.4),
                                 run_row("b", "k2")])
        assert not store.diff(wall_tol=0.5).has_regressions
        assert store.diff(wall_tol=0.2).has_regressions

    def test_deterministic_drift_is_flagged_even_when_fast(self, store):
        self._two_sweeps(store, [run_row("a", "k1", makespan=1001),
                                 run_row("b", "k2")])
        diff = store.diff()
        assert [r.kind for r in diff.regressions] == ["metric"]
        assert "makespan_us" in diff.regressions[0].detail

    def test_metric_registry_drift_is_flagged(self, store):
        self._two_sweeps(store, [
            run_row("a", "k1", metrics={"kernel.wakeups": 11}),
            run_row("b", "k2")])
        diff = store.diff()
        assert any("kernel.wakeups" in r.detail for r in diff.regressions)

    def test_cached_runs_skip_the_wall_gate(self, store):
        # A cache hit replays the producing run's wall time: not a signal.
        self._two_sweeps(store, [
            run_row("a", "k1", wall=9.0, outcome="cached", cached=True),
            run_row("b", "k2")])
        assert not store.diff(wall_tol=0.5).has_regressions

    def test_newly_skipped_run_is_an_outcome_regression(self, store):
        self._two_sweeps(store, [
            run_row("a", "k1", outcome="skipped", completed=False,
                    sim_wall_s=None, makespan_us=None, energy_j=None,
                    error="boom"),
            run_row("b", "k2")])
        diff = store.diff()
        assert [r.kind for r in diff.regressions] == ["outcome"]

    def test_improvements_are_reported_not_flagged(self, store):
        self._two_sweeps(store, [run_row("a", "k1", wall=0.2),
                                 run_row("b", "k2")])
        diff = store.diff(wall_tol=0.5)
        assert not diff.has_regressions
        assert len(diff.improvements) == 1


class TestCliGate:
    """The end-to-end acceptance path: slow run -> CLI exit 1."""

    def _seed_history(self, tmp_path, slow=False):
        cache_dir = tmp_path / "cache"
        cache_dir.mkdir(parents=True, exist_ok=True)
        with HistoryStore(cache_dir / "history.sqlite") as st:
            st.record_sweep("base", STATS,
                            [run_row("a", "k1"), run_row("b", "k2")])
            st.record_sweep("cur", STATS, [
                run_row("a", "k1", wall=5.0 if slow else 1.0),
                run_row("b", "k2")])
        return str(cache_dir)

    def test_diff_exits_zero_when_clean(self, tmp_path, capsys):
        cache_dir = self._seed_history(tmp_path)
        assert main(["history", "diff", "--cache-dir", cache_dir]) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_diff_exits_nonzero_on_slowdown(self, tmp_path, capsys):
        cache_dir = self._seed_history(tmp_path, slow=True)
        assert main(["history", "diff", "--cache-dir", cache_dir,
                     "--wall-tol", "0.5"]) == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out and "[wall]" in out

    def test_list_and_show(self, tmp_path, capsys):
        cache_dir = self._seed_history(tmp_path)
        assert main(["history", "list", "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "base" in out and "cur" in out
        assert main(["history", "show", "last",
                     "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "cur" in out and "simulated" in out

    def test_missing_history_is_an_error(self, tmp_path, capsys):
        assert main(["history", "list",
                     "--cache-dir", str(tmp_path / "void")]) == 1
        assert "no run history" in capsys.readouterr().err


class TestExecutorIntegration:
    def test_sweep_records_itself_into_history(self, tmp_path):
        specs = [RunSpec(workload="configure-gcc", machine="ryzen_4650g",
                         scheduler=s, governor="schedutil", seed=1,
                         scale=0.3) for s in ("cfs", "nest")]
        cache = ResultCache(root=tmp_path / "cache")
        with HistoryStore(tmp_path / "history.sqlite") as hist:
            hub = TelemetryHub(history=hist, label="integration")
            SweepExecutor(jobs=2, cache=cache, telemetry=hub).run(specs)
            sweeps = hist.sweeps()
            assert len(sweeps) == 1
            assert sweeps[0]["n_specs"] == 2
            assert sweeps[0]["simulated"] == 2
            assert sweeps[0]["label"] == "integration"
            runs = hist.runs_of(sweeps[0]["id"])
            assert {r["label"] for r in runs} == {s.label for s in specs}
            assert all(r["spec_key"] for r in runs)
            assert all(r["makespan_us"] for r in runs)
            # A second, fully-cached sweep must still be bit-stable.
            hub2 = TelemetryHub(history=hist)
            SweepExecutor(jobs=2, cache=cache, telemetry=hub2).run(specs)
            diff = hist.diff("last", "last-1")
            assert not diff.has_regressions, diff.render()


TRAJ_RECORD = {
    "workload": "configure x combos",
    "git_sha": "abc1234",
    "engines": {"ref": {"wall_s": 2.0, "events_per_sec": 100.0},
                "fast": {"wall_s": 1.5, "events_per_sec": 133.0}},
    "ratio_fast_over_ref": 1.33,
    "parity_ok": True,
    "speedup_vs_seed": {"ref": 1.7, "fast": 2.2},
}


class TestTrajectoryExport:
    def test_entries_match_the_trajectory_schema(self):
        entries = trajectory_entries(TRAJ_RECORD, pr=7, host="ci")
        assert len(entries) == 2
        by_engine = {e["engine"]: e for e in entries}
        assert by_engine["ref"]["wall_s"] == 2.0
        assert by_engine["ref"]["speedup_vs_seed"] == 1.7
        assert by_engine["fast"]["ratio_fast_over_ref"] == 1.33
        for e in entries:
            assert {"pr", "git_sha", "engine", "workload", "wall_s",
                    "speedup_vs_seed", "host"} <= set(e)

    def test_append_is_idempotent_per_measurement(self, tmp_path):
        path = tmp_path / "traj.json"
        path.write_text(json.dumps({"entries": []}))
        entries = trajectory_entries(TRAJ_RECORD, pr=7)
        assert append_trajectory(path, entries) == 2
        assert append_trajectory(path, entries) == 2   # replace, not dup
        doc = json.loads(path.read_text())
        assert len(doc["entries"]) == 2
        assert [e["engine"] for e in doc["entries"]] == ["fast", "ref"]

    def test_real_trajectory_file_roundtrips(self, tmp_path):
        import shutil
        src = "BENCH_trajectory.json"
        dst = tmp_path / "traj.json"
        shutil.copy(src, dst)
        before = json.loads(dst.read_text())["entries"]
        append_trajectory(dst, trajectory_entries(TRAJ_RECORD, pr=99))
        after = json.loads(dst.read_text())["entries"]
        assert len(after) == len(before) + 2
        # The pre-existing hand-written entries are untouched.
        for entry in before:
            assert entry in after

    def test_cli_export_appends(self, tmp_path, capsys):
        record_path = tmp_path / "perf.json"
        record_path.write_text(json.dumps(TRAJ_RECORD))
        traj = tmp_path / "traj.json"
        traj.write_text(json.dumps({"entries": []}))
        assert main(["history", "export-trajectory",
                     "--record", str(record_path), "--pr", "7",
                     "--host", "ci", "--append", str(traj)]) == 0
        assert "merged 2" in capsys.readouterr().out
        doc = json.loads(traj.read_text())
        assert {e["host"] for e in doc["entries"]} == {"ci"}

    def test_cli_export_refuses_parity_failure(self, tmp_path, capsys):
        bad = dict(TRAJ_RECORD, parity_ok=False)
        record_path = tmp_path / "perf.json"
        record_path.write_text(json.dumps(bad))
        assert main(["history", "export-trajectory",
                     "--record", str(record_path), "--pr", "7"]) == 1
        assert "parity" in capsys.readouterr().err


class TestDerivedMetricGate:
    """The analysis layer's history hook: ``derived.*`` scalars are
    gated like raw counters and drive ``--attribute`` ranking."""

    DERIVED = {"kernel.wakeups": 10, "derived.wakeup_p99_us": 100,
               "derived.warm_share": 0.9}

    def _two_sweeps(self, store, cur_metrics):
        store.record_sweep("base", STATS,
                           [run_row("a", "k1", metrics=dict(self.DERIVED))])
        store.record_sweep("cur", STATS,
                           [run_row("a", "k1", metrics=cur_metrics)])

    def test_derived_drift_is_a_metric_regression(self, store):
        moved = dict(self.DERIVED, **{"derived.warm_share": 0.5})
        self._two_sweeps(store, moved)
        diff = store.diff()
        assert [r.kind for r in diff.regressions] == ["metric"]
        assert "derived.warm_share" in diff.regressions[0].detail

    def test_rows_without_derived_keys_are_skipped(self, store):
        # Pre-analysis-layer history rows: the key intersection protects
        # them from spurious "metric disappeared" regressions.
        self._two_sweeps(store, {"kernel.wakeups": 10})
        assert not store.diff().has_regressions

    def test_attribute_ranks_the_biggest_mover(self, store):
        moved = dict(self.DERIVED, **{"derived.wakeup_p99_us": 500,
                                      "kernel.wakeups": 11})
        self._two_sweeps(store, moved)
        diff = store.diff(attribute=True, top_moves=2)
        assert len(diff.attributions) == 1
        attr = diff.attributions[0]
        # p99 moved 4x, wakeups 10%: p99 must lead the ranking.
        assert attr.startswith("a: moved most — derived.wakeup_p99_us")
        assert "100 -> 500 (+400.0%)" in attr
        assert attr in diff.render()

    def test_attribute_on_identical_runs_says_so(self, store):
        self._two_sweeps(store, dict(self.DERIVED))
        diff = store.diff(attribute=True)
        assert diff.attributions == ["a: no metric moved"]

    def test_cli_gates_on_derived_drift(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        cache_dir.mkdir(parents=True)
        with HistoryStore(cache_dir / "history.sqlite") as st:
            st.record_sweep("base", STATS,
                            [run_row("a", "k1",
                                     metrics=dict(self.DERIVED))])
            st.record_sweep("cur", STATS, [
                run_row("a", "k1",
                        metrics=dict(self.DERIVED,
                                     **{"derived.wakeup_p99_us": 200}))])
        rc = main(["history", "diff", "--cache-dir", str(cache_dir),
                   "--attribute"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "[metric]" in out and "derived.wakeup_p99_us" in out
        assert "moved most" in out

    def test_sweep_rows_carry_derived_metrics(self, tmp_path):
        spec = RunSpec(workload="configure-gcc", machine="ryzen_4650g",
                       scheduler="nest", governor="schedutil", seed=1,
                       scale=0.3)
        cache = ResultCache(root=tmp_path / "cache")
        with HistoryStore(tmp_path / "history.sqlite") as hist:
            hub = TelemetryHub(history=hist)
            SweepExecutor(jobs=1, cache=cache, telemetry=hub).run([spec])
            metrics = hist.runs_of(hist.sweeps()[0]["id"])[0]["metrics"]
        derived = {k for k in metrics if k.startswith("derived.")}
        assert {"derived.wakeup_p50_us", "derived.warm_share",
                "derived.share_cfs"} <= derived
