"""Tests for the turbo tables (paper Table 3)."""

import pytest
from hypothesis import given, strategies as st

from repro.hw.turbo import (E7_8870_V4, RYZEN_4650G, TurboTable, XEON_5218,
                            XEON_5220, XEON_6130)


class TestTable3Values:
    """The exact rows of Table 3."""

    @pytest.mark.parametrize("active,mhz", [
        (1, 3000), (2, 3000), (3, 2800), (4, 2700), (5, 2600),
        (8, 2600), (12, 2600), (16, 2600), (20, 2600)])
    def test_e7_8870(self, active, mhz):
        assert E7_8870_V4.ceiling(active) == mhz

    @pytest.mark.parametrize("active,mhz", [
        (1, 3700), (2, 3700), (3, 3500), (4, 3500), (5, 3400),
        (8, 3400), (9, 3100), (12, 3100), (13, 2800), (16, 2800)])
    def test_6130(self, active, mhz):
        assert XEON_6130.ceiling(active) == mhz

    @pytest.mark.parametrize("active,mhz", [
        (1, 3900), (2, 3900), (3, 3700), (4, 3700), (5, 3600),
        (8, 3600), (9, 3100), (12, 3100), (13, 2800), (16, 2800)])
    def test_5218(self, active, mhz):
        assert XEON_5218.ceiling(active) == mhz

    def test_nominal_frequencies(self):
        assert E7_8870_V4.nominal_mhz == 2100
        assert XEON_6130.nominal_mhz == 2100
        assert XEON_5218.nominal_mhz == 2300

    def test_min_frequencies(self):
        assert E7_8870_V4.min_mhz == 1200
        assert XEON_6130.min_mhz == 1000
        assert XEON_5218.min_mhz == 1000

    def test_max_turbo(self):
        assert E7_8870_V4.max_turbo_mhz == 3000
        assert XEON_6130.max_turbo_mhz == 3700
        assert XEON_5218.max_turbo_mhz == 3900


class TestCeilingSemantics:
    def test_zero_active_returns_single_core_turbo(self):
        assert XEON_6130.ceiling(0) == 3700

    def test_beyond_table_clamps_to_last(self):
        assert XEON_6130.ceiling(99) == 2800

    def test_monotone_non_increasing(self):
        for table in (E7_8870_V4, XEON_6130, XEON_5218, XEON_5220,
                      RYZEN_4650G):
            ceilings = [table.ceiling(k) for k in range(1, 25)]
            assert ceilings == sorted(ceilings, reverse=True)

    def test_allcore_at_least_nominal(self):
        for table in (E7_8870_V4, XEON_6130, XEON_5218, XEON_5220,
                      RYZEN_4650G):
            assert table.limits[-1] >= table.nominal_mhz


class TestValidation:
    def test_rejects_increasing_limits(self):
        with pytest.raises(ValueError):
            TurboTable(min_mhz=1000, nominal_mhz=2000, limits=(2500, 2600))

    def test_rejects_allcore_below_nominal(self):
        with pytest.raises(ValueError):
            TurboTable(min_mhz=1000, nominal_mhz=2000, limits=(2500, 1900))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            TurboTable(min_mhz=1000, nominal_mhz=2000, limits=())


@given(st.integers(1, 64), st.integers(1, 64))
def test_ceiling_monotonicity_property(a, b):
    """More active cores never raises the ceiling."""
    lo, hi = min(a, b), max(a, b)
    for table in (XEON_6130, E7_8870_V4):
        assert table.ceiling(hi) <= table.ceiling(lo)
