"""Dual-engine parity: the fast engine must be bit-identical to the ref.

A representative slice of the figure workloads runs through both
backends; every case asserts three layers of identity:

* the ``RunResult`` JSON image (measurements, metrics snapshot, extras),
* the structured event-log stream, record by record,
* the obs-disabled fast run against the obs-enabled one (the fast
  engine elides observability work when no sink is attached, which must
  never change the simulation).

The fuzz campaign (``verify fuzz``) covers the long tail of generated
scenarios; these cases pin the exact configurations the paper's figures
are built from.
"""

import pytest

from repro.experiments.cache import result_to_jsonable
from repro.experiments.runner import run_experiment
from repro.faults.plan import FaultConfig
from repro.hw.machines import get_machine
from repro.kernel.soa import (EngineState, RefStateView, SoAState,
                              numpy_available)
from repro.workloads.catalog import make_workload

# (label, workload, machine, scheduler, governor, seed, scale, faults)
CASES = [
    pytest.param("fig2-cfs", "configure-llvm_ninja", "5218_2s",
                 "cfs", "schedutil", 1, 0.3, None, id="fig2-cfs"),
    pytest.param("fig2-nest", "configure-llvm_ninja", "5218_2s",
                 "nest", "schedutil", 1, 0.3, None, id="fig2-nest"),
    pytest.param("configure", "configure-gcc", "6130_2s",
                 "nest", "performance", 2, 0.3, None, id="configure"),
    pytest.param("nas", "nas-bt", "6130_2s",
                 "cfs", "performance", 4, 0.3, None, id="nas"),
    pytest.param("smove", "hackbench", "5218_2s",
                 "smove", "schedutil", 5, 0.1, None, id="smove"),
    pytest.param("faulted", "configure-gcc", "6130_2s",
                 "nest", "schedutil", 7, 0.3,
                 FaultConfig(hotplug_rate_per_s=2.0, thermal_rate_per_s=2.0,
                             tick_jitter_us=40, straggler_rate_per_s=1.0),
                 id="faulted"),
]


def _image(result, machine_key):
    """Comparable RunResult image: everything deterministic."""
    data = result_to_jsonable(result, machine_key)
    data.pop("sim_wall_s", None)  # host wall-clock, never comparable
    data.pop("host", None)        # host memory telemetry, ditto
    return data


def _run(engine, workload, machine_key, scheduler, governor, seed, scale,
         faults, collect_events=True):
    return run_experiment(
        make_workload(workload, scale=scale), get_machine(machine_key),
        scheduler, governor, seed=seed, collect_events=collect_events,
        faults=faults, engine=engine)


@pytest.mark.parametrize(
    "label,workload,machine_key,scheduler,governor,seed,scale,faults",
    CASES)
def test_fast_engine_bit_identical(label, workload, machine_key, scheduler,
                                   governor, seed, scale, faults):
    ref = _run("ref", workload, machine_key, scheduler, governor,
               seed, scale, faults)
    fast = _run("fast", workload, machine_key, scheduler, governor,
                seed, scale, faults)

    ref_img = _image(ref, machine_key)
    fast_img = _image(fast, machine_key)
    assert ref_img == fast_img, (
        "RunResult differs on: "
        + ", ".join(sorted(k for k in ref_img.keys() | fast_img.keys()
                           if ref_img.get(k) != fast_img.get(k))))

    ref_events = list(ref.events)
    fast_events = list(fast.events)
    assert len(ref_events) == len(fast_events)
    for i, (a, b) in enumerate(zip(ref_events, fast_events)):
        assert a == b, f"event streams diverge at record {i}: {a} != {b}"

    # Metrics snapshots ride on the result image, but assert explicitly
    # so a divergence names the metric rather than the 'metrics' blob.
    assert set(ref.metrics) == set(fast.metrics)
    for name in ref.metrics:
        assert ref.metrics[name] == fast.metrics[name], name


@pytest.mark.parametrize(
    "label,workload,machine_key,scheduler,governor,seed,scale,faults",
    CASES[:3])
def test_fast_engine_obs_elision_is_pure(label, workload, machine_key,
                                         scheduler, governor, seed, scale,
                                         faults):
    """Fast runs with and without an event sink must agree exactly.

    The fast engine skips observability formatting when no sink is
    attached; that elision must be invisible to the simulation.  Only
    ``extra.n_events`` (bookkeeping about collection itself) may differ.
    """
    with_obs = _run("fast", workload, machine_key, scheduler, governor,
                    seed, scale, faults, collect_events=True)
    without = _run("fast", workload, machine_key, scheduler, governor,
                   seed, scale, faults, collect_events=False)
    a = _image(with_obs, machine_key)
    b = _image(without, machine_key)
    a["extra"] = {k: v for k, v in a["extra"].items() if k != "n_events"}
    b["extra"] = {k: v for k, v in b["extra"].items() if k != "n_events"}
    assert a == b


def test_engine_state_protocol():
    """Both backends implement the narrow EngineState protocol."""
    soa = SoAState(4, 2)
    assert isinstance(soa, EngineState)
    assert issubclass(RefStateView, SoAState)
    tid = soa.add_task(now=100)
    assert tid == 1 and len(soa.t_vruntime) == 2
    assert soa.first_idle((0, 1, 2, 3), check_pending=True) == 0
    soa.running[0] = 1
    soa.nr_queued[1] = 2
    soa.pending[2] = 1
    assert soa.first_idle((0, 1, 2, 3), check_pending=True) == 3
    assert soa.first_idle((0, 1, 2, 3), check_pending=False) == 2
    assert soa.first_idle((0, 1), check_pending=True) == -1


def test_ref_state_view_matches_fast_columns():
    """A RefStateView captured from the ref kernel equals the fast
    kernel's live columns after identical runs."""
    res_ref = _run("ref", "configure-gcc", "5218_2s", "nest", "schedutil",
                   3, 0.2, None, collect_events=False)
    res_fast = _run("fast", "configure-gcc", "5218_2s", "nest", "schedutil",
                    3, 0.2, None, collect_events=False)
    assert _image(res_ref, "5218_2s") == _image(res_fast, "5218_2s")


def test_numpy_layer_if_available():
    """When numpy is installed, the NumpyState scan must agree with the
    stdlib scan on a wide span (the vectorised path's whole point)."""
    if not numpy_available():
        pytest.skip("numpy not installed")
    from repro.kernel.soa import NumpyState
    n = 256
    plain = SoAState(n, n // 2)
    vec = NumpyState(n, n // 2)
    for state in (plain, vec):
        for c in range(0, n, 3):
            state.running[c] = 1
        for c in range(0, n, 5):
            state.nr_queued[c] = 1
        for c in range(0, n, 7):
            state.pending[c] = 1
        state.online[200] = 0
    order = tuple(range(n - 1, -1, -1))
    for check_pending in (True, False):
        for limit in (None, 8, 100):
            assert (plain.first_idle(order, check_pending, limit)
                    == vec.first_idle(order, check_pending, limit))
