"""Tests for NestParams (Table 1), the Smove baseline and the governors."""

import pytest

from repro.core.params import DEFAULT_PARAMS, NestParams
from repro.governors.performance import PerformanceGovernor
from repro.governors.schedutil import HEADROOM, SchedutilGovernor
from repro.hw.freqmodel import SPEED_SHIFT
from repro.hw.machines import Machine, XEON_5218_2S
from repro.hw.topology import Topology
from repro.hw.turbo import XEON_5218
from repro.kernel.scheduler_core import Kernel
from repro.kernel.syscalls import Compute, Fork, Sleep, WaitChildren
from repro.sched.smove import SmovePolicy
from repro.sim.engine import Engine
from repro.workloads.base import ms_of_work

MACHINE = Machine(name="t", cpu_model="t", microarchitecture="t",
                  topology=Topology(2, 4, 2), turbo=XEON_5218, pm=SPEED_SHIFT)


class TestNestParams:
    def test_table1_defaults(self):
        p = DEFAULT_PARAMS
        assert p.p_remove_ticks == 2        # 2 ticks = 8 ms
        assert p.r_max == 5
        assert p.r_impatient == 2
        assert p.s_max_ticks == 2

    def test_all_features_on_by_default(self):
        p = DEFAULT_PARAMS
        assert p.reserve_enabled and p.compaction_enabled
        assert p.impatience_enabled and p.spin_enabled
        assert p.attachment_enabled and p.prev_core_first
        assert p.wakeup_work_conservation and p.placement_flag

    def test_scaled(self):
        p = DEFAULT_PARAMS.scaled(p_remove=0.5, r_max=2, s_max=10)
        assert p.p_remove_ticks == 1.0
        assert p.r_max == 10
        assert p.s_max_ticks == 20.0
        assert p.r_impatient == 2   # untouched

    def test_without_bare_name(self):
        assert not DEFAULT_PARAMS.without("reserve").reserve_enabled

    def test_without_flag_name(self):
        assert not DEFAULT_PARAMS.without("placement_flag").placement_flag
        assert not DEFAULT_PARAMS.without(
            "wakeup_work_conservation").wakeup_work_conservation

    def test_without_unknown_raises(self):
        with pytest.raises(ValueError):
            DEFAULT_PARAMS.without("warp-drive")

    def test_negative_values_rejected(self):
        with pytest.raises(ValueError):
            NestParams(p_remove_ticks=-1)
        with pytest.raises(ValueError):
            NestParams(r_max=-1)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            DEFAULT_PARAMS.r_max = 3

    def test_original_untouched_by_without(self):
        DEFAULT_PARAMS.without("spin")
        assert DEFAULT_PARAMS.spin_enabled


class TestGovernors:
    def make(self, gov):
        eng = Engine(0)
        from repro.sched.cfs import CfsPolicy
        kern = Kernel(eng, MACHINE, CfsPolicy(), gov)
        return eng, kern, gov

    def test_performance_floor_is_nominal(self):
        _, _, gov = self.make(PerformanceGovernor())
        assert gov.floor_mhz(0) == MACHINE.nominal_mhz
        assert gov.request_mhz(0) == MACHINE.max_turbo_mhz
        assert gov.name == "performance"

    def test_schedutil_floor_is_min(self):
        _, _, gov = self.make(SchedutilGovernor())
        assert gov.floor_mhz(0) == MACHINE.min_mhz
        assert gov.name == "schedutil"

    def test_schedutil_idle_requests_min(self):
        _, kern, gov = self.make(SchedutilGovernor())
        assert gov.request_mhz(0) == MACHINE.min_mhz

    def test_schedutil_scales_with_util(self):
        eng, kern, gov = self.make(SchedutilGovernor())
        kern.rqs[0].busy_avg.add(512)
        r_half = gov.request_mhz(0)
        kern.rqs[0].busy_avg.add(512)
        r_full = gov.request_mhz(0)
        assert MACHINE.min_mhz < r_half < r_full
        assert r_full == MACHINE.max_turbo_mhz     # 1.25 headroom clamps

    def test_schedutil_util_est_bumps_request(self):
        """A waking high-utilisation task raises the request immediately."""
        eng, kern, gov = self.make(SchedutilGovernor())

        def hog(api):
            yield Compute(ms_of_work(100))

        t = kern._new_task(hog, "h", None)
        t.util_est = 900.0
        kern.enqueue(t, 0)
        assert gov.request_mhz(0) > HEADROOM * MACHINE.max_turbo_mhz * 0.5 / 1.25

    def test_governor_single_bind(self):
        eng, kern, gov = self.make(PerformanceGovernor())
        with pytest.raises(RuntimeError):
            gov.bind(kern)


class TestSmove:
    def make(self):
        eng = Engine(0)
        policy = SmovePolicy()
        kern = Kernel(eng, MACHINE, policy, SchedutilGovernor())
        return eng, kern, policy

    def test_tick_frequencies_start_optimistic(self):
        """Stale-high tick observations are why Smove rarely fires on
        Speed Shift machines (§5.2)."""
        _, _, policy = self.make()
        assert all(f == MACHINE.max_turbo_mhz for f in policy._tick_freq)

    def test_on_tick_records_frequency(self):
        _, _, policy = self.make()
        policy.on_tick(3, 1234)
        assert policy._tick_freq[3] == 1234

    def test_no_defer_when_observation_high(self):
        eng, kern, policy = self.make()

        def noop(api):
            yield Compute(1)

        t = kern._new_task(noop, "x", None)
        cpu = policy.select_cpu_fork(t, parent_cpu=0)
        assert policy.stats["deferred_placements"] == 0

    def test_defers_to_waker_when_cfs_core_observed_slow(self):
        eng, kern, policy = self.make()
        # All cores observed slow except the waker's; the waker's cpu is
        # busy (it is doing the forking) so CFS picks another, slow core.
        for c in range(MACHINE.n_cpus):
            policy.on_tick(c, MACHINE.min_mhz)
        policy.on_tick(0, MACHINE.max_turbo_mhz)

        def hog(api):
            yield Compute(ms_of_work(100))

        parent = kern._new_task(hog, "parent", None)
        kern.enqueue(parent, 0)

        def noop(api):
            yield Compute(1)

        t = kern._new_task(noop, "x", None)
        cpu = policy.select_cpu_fork(t, parent_cpu=0)
        assert cpu == 0
        assert policy.stats["deferred_placements"] == 1

    def test_no_defer_when_waker_also_slow(self):
        eng, kern, policy = self.make()
        for c in range(MACHINE.n_cpus):
            policy.on_tick(c, MACHINE.min_mhz)

        def noop(api):
            yield Compute(1)

        t = kern._new_task(noop, "x", None)
        cpu = policy.select_cpu_fork(t, parent_cpu=0)
        assert policy.stats["deferred_placements"] == 0
        assert cpu != 0 or True

    def test_timer_migrates_unscheduled_task(self):
        """If the deferred child has not run within the delay, it moves to
        the CFS-chosen core."""
        eng, kern, policy = self.make()
        for c in range(MACHINE.n_cpus):
            policy.on_tick(c, MACHINE.min_mhz)
        policy.on_tick(0, MACHINE.max_turbo_mhz)

        def parent(api):
            yield Fork(child, name="kid")
            yield Compute(ms_of_work(50))   # hog the core: child must wait
            yield WaitChildren()

        def child(api):
            yield Compute(ms_of_work(1))

        p = kern.spawn(parent, "p", on_cpu=0)
        kern.run_until_idle()
        assert policy.stats["timer_migrations"] >= 0   # ran to completion
        assert kern.n_live == 0
