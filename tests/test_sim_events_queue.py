"""Tests for the event records and the event queue."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.events import Event, EventKind
from repro.sim.queue import EventQueue


def _noop(*args):
    pass


class TestEvent:
    def test_sort_key_orders_by_time_first(self):
        a = Event(10, EventKind.TICK, 0, _noop)
        b = Event(5, EventKind.BALANCE, 1, _noop)
        assert b < a

    def test_sort_key_orders_by_kind_on_time_tie(self):
        a = Event(10, EventKind.COMPLETION, 5, _noop)
        b = Event(10, EventKind.TICK, 0, _noop)
        assert a < b   # completions run before ticks at the same instant

    def test_sort_key_orders_by_seq_last(self):
        a = Event(10, EventKind.WAKEUP, 0, _noop)
        b = Event(10, EventKind.WAKEUP, 1, _noop)
        assert a < b

    def test_cancel_flag(self):
        e = Event(0, EventKind.IO, 0, _noop)
        assert not e.cancelled
        e.cancel()
        assert e.cancelled


class TestEventQueue:
    def test_empty(self):
        q = EventQueue()
        assert len(q) == 0
        assert not q
        assert q.pop() is None
        assert q.peek_time() is None

    def test_fifo_within_same_key(self):
        q = EventQueue()
        order = []
        for i in range(5):
            q.schedule(10, EventKind.WAKEUP, order.append, (i,))
        while (ev := q.pop()) is not None:
            ev.callback(*ev.args)
        assert order == [0, 1, 2, 3, 4]

    def test_pop_in_time_order(self):
        q = EventQueue()
        for t in (30, 10, 20):
            q.schedule(t, EventKind.TICK, _noop)
        times = [q.pop().time for _ in range(3)]
        assert times == [10, 20, 30]

    def test_kind_priority_at_same_time(self):
        q = EventQueue()
        q.schedule(5, EventKind.TICK, _noop)
        q.schedule(5, EventKind.COMPLETION, _noop)
        q.schedule(5, EventKind.WAKEUP, _noop)
        kinds = [q.pop().kind for _ in range(3)]
        assert kinds == [EventKind.COMPLETION, EventKind.WAKEUP,
                         EventKind.TICK]

    def test_cancel_skipped_on_pop(self):
        q = EventQueue()
        ev = q.schedule(1, EventKind.IO, _noop)
        q.schedule(2, EventKind.IO, _noop)
        q.cancel(ev)
        assert len(q) == 1
        popped = q.pop()
        assert popped.time == 2

    def test_cancel_is_idempotent(self):
        q = EventQueue()
        ev = q.schedule(1, EventKind.IO, _noop)
        q.cancel(ev)
        q.cancel(ev)
        assert len(q) == 0

    def test_peek_time_skips_cancelled(self):
        q = EventQueue()
        ev = q.schedule(1, EventKind.IO, _noop)
        q.schedule(7, EventKind.IO, _noop)
        q.cancel(ev)
        assert q.peek_time() == 7

    def test_clear(self):
        q = EventQueue()
        q.schedule(1, EventKind.IO, _noop)
        q.clear()
        assert not q
        assert q.pop() is None

    def test_len_tracks_live_events(self):
        q = EventQueue()
        evs = [q.schedule(i, EventKind.IO, _noop) for i in range(4)]
        assert len(q) == 4
        q.cancel(evs[0])
        assert len(q) == 3
        q.pop()
        assert len(q) == 2

    @given(st.lists(st.tuples(st.integers(0, 1000),
                              st.sampled_from(list(EventKind))),
                    min_size=1, max_size=60))
    def test_pop_order_is_total_and_stable(self, items):
        """Property: pops come out sorted by (time, kind, insertion seq)."""
        q = EventQueue()
        for t, k in items:
            q.schedule(t, k, _noop)
        popped = []
        while (ev := q.pop()) is not None:
            popped.append((ev.time, int(ev.kind), ev.seq))
        assert popped == sorted(popped)
        assert len(popped) == len(items)

    @given(st.lists(st.integers(0, 100), min_size=1, max_size=40),
           st.data())
    def test_cancellation_never_loses_live_events(self, times, data):
        q = EventQueue()
        handles = [q.schedule(t, EventKind.IO, _noop) for t in times]
        to_cancel = data.draw(st.sets(
            st.integers(0, len(handles) - 1), max_size=len(handles)))
        for i in to_cancel:
            q.cancel(handles[i])
        survivors = []
        while (ev := q.pop()) is not None:
            survivors.append(ev)
        assert len(survivors) == len(times) - len(to_cancel)
        assert all(not ev.cancelled for ev in survivors)
