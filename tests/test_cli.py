"""Tests for the command-line interface."""

import pytest

from repro.experiments.cli import build_parser, main, make_workload, workload_names
from repro.workloads.configure import ConfigureWorkload
from repro.workloads.dacapo import DacapoWorkload
from repro.workloads.messaging import HackbenchWorkload
from repro.workloads.nas import NasWorkload
from repro.workloads.phoronix import PhoronixWorkload


class TestMakeWorkload:
    def test_configure(self):
        wl = make_workload("configure-gcc")
        assert isinstance(wl, ConfigureWorkload)
        assert wl.name == "configure-gcc"

    def test_dacapo(self):
        assert isinstance(make_workload("dacapo-h2"), DacapoWorkload)

    def test_nas_with_and_without_suffix(self):
        assert isinstance(make_workload("nas-mg"), NasWorkload)
        assert isinstance(make_workload("nas-mg.C"), NasWorkload)

    def test_phoronix(self):
        assert isinstance(make_workload("phoronix-rodinia-5"),
                          PhoronixWorkload)

    def test_simple_names(self):
        assert isinstance(make_workload("hackbench"), HackbenchWorkload)
        assert make_workload("nginx").name == "nginx"

    def test_scale_forwarded(self):
        assert make_workload("configure-gcc", scale=0.5).scale == 0.5

    def test_unknown(self):
        with pytest.raises(KeyError):
            make_workload("quake3")

    def test_every_listed_name_buildable(self):
        for name in workload_names():
            assert make_workload(name) is not None


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "5218_2s" in out and "configure-llvm_ninja" in out
        assert "fig5" in out

    def test_run(self, capsys):
        rc = main(["run", "--workload", "configure-gcc",
                   "--machine", "ryzen_4650g", "--scheduler", "nest",
                   "--scale", "0.5"])
        assert rc == 0
        assert "configure-gcc" in capsys.readouterr().out

    def test_run_verbose_prints_bins(self, capsys):
        main(["run", "--workload", "configure-gcc",
              "--machine", "ryzen_4650g", "--verbose", "--scale", "0.5"])
        assert "GHz" in capsys.readouterr().out

    def test_compare(self, capsys):
        rc = main(["compare", "--workload", "configure-gcc",
                   "--machine", "ryzen_4650g", "--seeds", "1",
                   "--scale", "0.5"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "nest-schedutil" in out and "speedup" in out

    def test_describe(self, capsys):
        assert main(["describe", "fig12"]) == 0
        assert "Figure 12" in capsys.readouterr().out

    def test_describe_unknown_is_error(self, capsys):
        assert main(["describe", "fig99"]) == 2

    def test_run_unknown_workload_is_error(self):
        assert main(["run", "--workload", "nope"]) == 2

    def test_parser_rejects_bad_scheduler(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--workload", "x",
                                       "--scheduler", "rr"])


class TestObservabilityCli:
    def test_run_trace_writes_valid_perfetto_json(self, tmp_path, capsys):
        import json

        from repro.obs.export import validate_chrome_trace
        out = tmp_path / "trace.json"
        rc = main(["run", "--workload", "configure-gcc",
                   "--machine", "ryzen_4650g", "--scheduler", "nest",
                   "--scale", "0.3", "--trace", str(out)])
        assert rc == 0
        doc = json.loads(out.read_text())
        assert validate_chrome_trace(doc) == []
        assert "perfetto" in capsys.readouterr().out

    def test_run_events_writes_jsonl(self, tmp_path):
        import json
        out = tmp_path / "events.jsonl"
        rc = main(["run", "--workload", "configure-gcc",
                   "--machine", "ryzen_4650g", "--scheduler", "nest",
                   "--scale", "0.3", "--events", str(out)])
        assert rc == 0
        lines = out.read_text().splitlines()
        assert lines
        first = json.loads(lines[0])
        assert set(first) == {"t", "kind", "cpu", "task", "value"}

    def test_trace_subcommand_registry_id(self, capsys):
        rc = main(["trace", "fig2", "--scale", "0.05"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "cores used:" in out and "placements:" in out

    def test_trace_subcommand_workload_name(self, tmp_path, capsys):
        out_path = tmp_path / "t.json"
        rc = main(["trace", "configure-gcc", "--machine", "ryzen_4650g",
                   "--scale", "0.3", "--out", str(out_path)])
        assert rc == 0
        assert out_path.is_file()
        assert "cores used:" in capsys.readouterr().out

    def test_trace_pure_table_is_error(self, capsys):
        assert main(["trace", "table1"]) == 2

    def test_trace_unknown_name_is_error(self):
        assert main(["trace", "quake3"]) == 2

    def test_obs_report_without_sweep_is_error(self, tmp_path):
        assert main(["obs", "report", "--cache-dir",
                     str(tmp_path / "empty")]) == 1

    def test_obs_report_after_sweep(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        rc = main(["compare", "--workload", "configure-gcc",
                   "--machine", "ryzen_4650g", "--seeds", "1",
                   "--scale", "0.3", "--jobs", "1",
                   "--cache-dir", cache_dir, "--progress"])
        assert rc == 0
        capsys.readouterr()
        assert main(["obs", "report", "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "last sweep: 4 runs" in out
        assert "cache: 0 hit(s), 4 miss(es)" in out

    def test_obs_report_json(self, tmp_path, capsys):
        import json as _json
        cache_dir = str(tmp_path / "cache")
        rc = main(["compare", "--workload", "configure-gcc",
                   "--machine", "ryzen_4650g", "--seeds", "1",
                   "--scale", "0.3", "--jobs", "1",
                   "--cache-dir", cache_dir, "--progress"])
        assert rc == 0
        capsys.readouterr()
        assert main(["obs", "report", "--cache-dir", cache_dir,
                     "--json"]) == 0
        report = _json.loads(capsys.readouterr().out)
        assert report["stats"]["n_specs"] == 4
        assert len(report["runs"]) == 4
        # sort_keys canonicalization: a second read emits the same doc.
        assert main(["obs", "report", "--cache-dir", cache_dir,
                     "--json"]) == 0
        assert _json.loads(capsys.readouterr().out) == report

    def test_sweep_summary_shows_cache_counters(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        args = ["compare", "--workload", "configure-gcc",
                "--machine", "ryzen_4650g", "--seeds", "1",
                "--scale", "0.3", "--jobs", "1", "--cache-dir", cache_dir]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert "(4 simulated, 0 cached)" in first
        assert "cache: 0 hit(s), 4 miss(es)" in first
        assert main(args) == 0
        second = capsys.readouterr().out
        assert "(0 simulated, 4 cached)" in second
        assert "cache: 4 hit(s), 0 miss(es)" in second

    def test_run_with_faults_profile(self, capsys):
        rc = main(["run", "--workload", "configure-gcc",
                   "--machine", "ryzen_4650g", "--scale", "0.3",
                   "--faults", "hotplug", "--seed", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "faults[hotplug]:" in out
        assert "planned" in out

    def test_run_with_none_faults_profile_is_clean_run(self, capsys):
        rc = main(["run", "--workload", "configure-gcc",
                   "--machine", "ryzen_4650g", "--scale", "0.3",
                   "--faults", "none"])
        assert rc == 0
        assert "faults[" not in capsys.readouterr().out

    def test_run_ftrt_with_corefail_profile(self, capsys):
        rc = main(["run", "--workload", "deadline-periodic",
                   "--machine", "ryzen_4650g", "--scheduler", "ftrt",
                   "--faults", "corefail", "--seed", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Ftrt-schedutil" in out
        assert "faults[corefail]:" in out and "planned" in out

    def test_run_corefail_burst_profile_parses(self, capsys):
        rc = main(["run", "--workload", "deadline-periodic",
                   "--machine", "5218_2s", "--scheduler", "ftrt",
                   "--faults", "corefail-burst", "--seed", "3"])
        assert rc == 0
        assert "faults[corefail-burst]:" in capsys.readouterr().out

    def test_scheduler_choices_come_from_registry(self):
        from repro.sched.registry import available_policies
        p = build_parser()
        args = p.parse_args(["run", "--workload", "deadline-periodic",
                             "--scheduler", "ftrt"])
        assert args.scheduler == "ftrt"
        assert "ftrt" in available_policies()

    def _populate_cache(self, cache_dir, capsys):
        assert main(["compare", "--workload", "configure-gcc",
                     "--machine", "ryzen_4650g", "--seeds", "1",
                     "--scale", "0.3", "--jobs", "1",
                     "--cache-dir", cache_dir]) == 0
        capsys.readouterr()

    @staticmethod
    def _cache_entries(tmp_path):
        # Entries live one shard-directory deep: <root>/<key[:2]>/<key>.json
        return sorted(p for p in (tmp_path / "cache").glob("*/*.json")
                      if p.parent.name != ".quarantine")

    def test_cache_verify_quarantines_corrupt_entry(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        self._populate_cache(cache_dir, capsys)
        victim = self._cache_entries(tmp_path)[0]
        victim.write_text("{ not json", encoding="utf-8")

        assert main(["cache", "verify", "--cache-dir", cache_dir]) == 1
        out = capsys.readouterr().out
        assert "1 corrupt" in out
        assert victim.name in out
        assert "quarantined entries are under" in out
        assert not victim.exists()          # moved out of the way
        quarantined = list((tmp_path / "cache" / ".quarantine").iterdir())
        assert len(quarantined) == 1

        # A second verify pass over the repaired cache is clean.
        assert main(["cache", "verify", "--cache-dir", cache_dir]) == 0
        assert "0 corrupt" in capsys.readouterr().out
        # And stats reports the quarantined entry.
        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        assert "1 quarantined" in capsys.readouterr().out

    def test_cache_verify_dry_run_leaves_entry_in_place(self, tmp_path,
                                                        capsys):
        cache_dir = str(tmp_path / "cache")
        self._populate_cache(cache_dir, capsys)
        victim = self._cache_entries(tmp_path)[0]
        victim.write_text("{ not json", encoding="utf-8")
        assert main(["cache", "verify", "--cache-dir", cache_dir,
                     "--dry-run"]) == 1
        out = capsys.readouterr().out
        assert "left in place" in out
        assert victim.exists()

    def test_obs_report_shape(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        self._populate_cache(cache_dir, capsys)
        assert main(["obs", "report", "--cache-dir", cache_dir,
                     "--top", "2"]) == 0
        out = capsys.readouterr().out
        lines = out.splitlines()
        assert lines[0].startswith("last sweep: 4 runs")
        assert "worker(s)" in lines[0]
        assert any("engine events" in ln and "events/s" in ln
                   for ln in lines)
        # --top bounds the slowest-runs listing; each row names its run.
        rows = [ln for ln in lines if "configure-gcc" in ln]
        assert len(rows) == 2
        assert all("s  " in ln and "ev" in ln for ln in rows)


class TestCliVerify:
    def test_fuzz_smoke(self, capsys):
        rc = main(["verify", "fuzz", "--runs", "5", "--seed", "1",
                   "--diff-every", "0", "--par-every", "0"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "fuzz: 5 scenario(s)" in out and "OK" in out

    def test_fuzz_writes_report(self, tmp_path, capsys):
        report = tmp_path / "report.json"
        rc = main(["verify", "fuzz", "--runs", "3", "--seed", "2",
                   "--diff-every", "0", "--par-every", "0",
                   "--report", str(report)])
        assert rc == 0
        capsys.readouterr()
        import json
        doc = json.loads(report.read_text())
        assert doc["runs"] == 3 and doc["ok"] is True

    def test_replay_clean_repro(self, capsys):
        from pathlib import Path
        repro = Path(__file__).resolve().parent / "repros" \
            / "reserve-bound-canary.json"
        assert main(["verify", "replay", str(repro)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_replay_failing_repro(self, tmp_path, capsys):
        import json
        # A scenario that cannot run -> run.completed fires on replay.
        doc = {"format": 1,
               "scenario": {"workload": "no-such-workload",
                            "machine": "ryzen_4650g", "scheduler": "cfs",
                            "governor": "schedutil", "seed": 1},
               "expect": ["run.completed"], "violations": []}
        path = tmp_path / "broken.json"
        path.write_text(json.dumps(doc))
        assert main(["verify", "replay", str(path)]) == 1
        out = capsys.readouterr().out
        assert "violation" in out and "run.completed" in out

    def test_replay_missing_file_is_clean_error(self, tmp_path, capsys):
        rc = main(["verify", "replay", str(tmp_path / "nope.json")])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_replay_malformed_document_is_clean_error(self, tmp_path,
                                                      capsys):
        import json
        path = tmp_path / "old.json"
        path.write_text(json.dumps({"format": 99, "scenario": {},
                                    "expect": []}))
        rc = main(["verify", "replay", str(path)])
        assert rc == 2
        err = capsys.readouterr().err
        assert "error:" in err and "format" in err
