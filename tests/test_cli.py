"""Tests for the command-line interface."""

import pytest

from repro.experiments.cli import build_parser, main, make_workload, workload_names
from repro.workloads.configure import ConfigureWorkload
from repro.workloads.dacapo import DacapoWorkload
from repro.workloads.messaging import HackbenchWorkload
from repro.workloads.nas import NasWorkload
from repro.workloads.phoronix import PhoronixWorkload


class TestMakeWorkload:
    def test_configure(self):
        wl = make_workload("configure-gcc")
        assert isinstance(wl, ConfigureWorkload)
        assert wl.name == "configure-gcc"

    def test_dacapo(self):
        assert isinstance(make_workload("dacapo-h2"), DacapoWorkload)

    def test_nas_with_and_without_suffix(self):
        assert isinstance(make_workload("nas-mg"), NasWorkload)
        assert isinstance(make_workload("nas-mg.C"), NasWorkload)

    def test_phoronix(self):
        assert isinstance(make_workload("phoronix-rodinia-5"),
                          PhoronixWorkload)

    def test_simple_names(self):
        assert isinstance(make_workload("hackbench"), HackbenchWorkload)
        assert make_workload("nginx").name == "nginx"

    def test_scale_forwarded(self):
        assert make_workload("configure-gcc", scale=0.5).scale == 0.5

    def test_unknown(self):
        with pytest.raises(KeyError):
            make_workload("quake3")

    def test_every_listed_name_buildable(self):
        for name in workload_names():
            assert make_workload(name) is not None


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "5218_2s" in out and "configure-llvm_ninja" in out
        assert "fig5" in out

    def test_run(self, capsys):
        rc = main(["run", "--workload", "configure-gcc",
                   "--machine", "ryzen_4650g", "--scheduler", "nest",
                   "--scale", "0.5"])
        assert rc == 0
        assert "configure-gcc" in capsys.readouterr().out

    def test_run_verbose_prints_bins(self, capsys):
        main(["run", "--workload", "configure-gcc",
              "--machine", "ryzen_4650g", "--verbose", "--scale", "0.5"])
        assert "GHz" in capsys.readouterr().out

    def test_compare(self, capsys):
        rc = main(["compare", "--workload", "configure-gcc",
                   "--machine", "ryzen_4650g", "--seeds", "1",
                   "--scale", "0.5"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "nest-schedutil" in out and "speedup" in out

    def test_describe(self, capsys):
        assert main(["describe", "fig12"]) == 0
        assert "Figure 12" in capsys.readouterr().out

    def test_describe_unknown_is_error(self, capsys):
        assert main(["describe", "fig99"]) == 2

    def test_run_unknown_workload_is_error(self):
        assert main(["run", "--workload", "nope"]) == 2

    def test_parser_rejects_bad_scheduler(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--workload", "x",
                                       "--scheduler", "rr"])
