"""Tests for the Nest policy state machine (paper §3)."""

import pytest

from repro.core.nest import NestPolicy
from repro.core.params import DEFAULT_PARAMS, NestParams
from repro.governors.performance import PerformanceGovernor
from repro.hw.freqmodel import SPEED_SHIFT
from repro.hw.machines import Machine
from repro.hw.topology import Topology
from repro.hw.turbo import XEON_5218
from repro.kernel.scheduler_core import Kernel
from repro.kernel.syscalls import Compute
from repro.sim.clock import TICK_US
from repro.sim.engine import Engine
from repro.workloads.base import ms_of_work

MACHINE = Machine(name="t", cpu_model="t", microarchitecture="t",
                  topology=Topology(2, 4, 2), turbo=XEON_5218, pm=SPEED_SHIFT)


def make(params=None):
    eng = Engine(0)
    policy = NestPolicy(params or NestParams())
    kern = Kernel(eng, MACHINE, policy, PerformanceGovernor())
    return eng, kern, policy


def noop_task(kern, name="x", prev=None):
    def noop(api):
        yield Compute(1)

    t = kern._new_task(noop, name, None)
    t.prev_cpu = prev
    return t


def occupy(kern, cpu):
    def hog(api):
        yield Compute(ms_of_work(1000))

    t = kern._new_task(hog, f"hog{cpu}", None)
    kern.enqueue(t, cpu)
    return t


class TestNestGrowth:
    def test_first_fork_goes_through_cfs_into_reserve(self):
        eng, kern, policy = make()
        t = noop_task(kern)
        cpu = policy.select_cpu_fork(t, parent_cpu=0)
        assert policy.stats["cfs_fallbacks"] == 1
        assert cpu in policy.reserve
        assert policy.home_cpu == 0

    def test_reserve_hit_promotes_to_primary(self):
        eng, kern, policy = make()
        policy.reserve.add(2)
        t = noop_task(kern)
        cpu = policy.select_cpu_fork(t, parent_cpu=0)
        assert cpu == 2
        assert 2 in policy.primary and 2 not in policy.reserve
        assert policy.stats["reserve_hits"] == 1

    def test_primary_searched_first(self):
        eng, kern, policy = make()
        policy.primary.add(3)
        policy.reserve.add(2)
        kern.rqs[3].last_busy_us = 0
        t = noop_task(kern)
        cpu = policy.select_cpu_fork(t, parent_cpu=0)
        assert cpu == 3
        assert policy.stats["primary_hits"] == 1

    def test_reserve_bounded_by_r_max(self):
        eng, kern, policy = make(NestParams(r_max=2))
        for i in range(4):
            t = noop_task(kern, f"t{i}")
            cpu = policy.select_cpu_fork(t, parent_cpu=0)
            occupy(kern, cpu)   # keep it busy so the next fork goes to CFS
        assert len(policy.reserve) <= 2

    def test_busy_primary_cores_skipped(self):
        eng, kern, policy = make()
        policy.primary.update({1, 2})
        occupy(kern, 1)
        kern.rqs[2].last_busy_us = kern.engine.now
        t = noop_task(kern)
        assert policy.select_cpu_fork(t, parent_cpu=0) == 2


class TestCompaction:
    def test_stale_primary_core_demoted_on_touch(self):
        """A stale core is demoted when a task trips over it; since it is
        then the only reserve core, the same search may promote it back
        (Figure 1's reserve->primary arrow)."""
        eng, kern, policy = make()
        policy.primary.update({1})
        # Make core 1 stale: last used long ago.
        kern.rqs[1].last_busy_us = 0
        eng.at(10 * TICK_US, 9, lambda: None)
        eng.run()
        t = noop_task(kern)
        cpu = policy.select_cpu_fork(t, parent_cpu=0)
        assert policy.stats["compactions"] >= 1
        assert cpu == 1 and policy.stats["reserve_hits"] == 1

    def test_stale_core_skipped_when_alternatives_exist(self):
        eng, kern, policy = make()
        policy.primary.update({1, 2})
        kern.rqs[1].last_busy_us = 0            # stale
        eng.at(10 * TICK_US, 9, lambda: None)
        eng.run()
        kern.rqs[2].last_busy_us = eng.now      # fresh
        t = noop_task(kern)
        cpu = policy.select_cpu_fork(t, parent_cpu=0)
        assert cpu == 2
        assert 1 in policy.reserve and 1 not in policy.primary

    def test_fresh_primary_core_not_demoted(self):
        eng, kern, policy = make()
        policy.primary.add(1)
        kern.rqs[1].last_busy_us = kern.engine.now
        t = noop_task(kern)
        cpu = policy.select_cpu_fork(t, parent_cpu=0)
        assert cpu == 1 and 1 in policy.primary

    def test_compaction_disabled_by_ablation(self):
        eng, kern, policy = make(NestParams(compaction_enabled=False))
        policy.primary.add(1)
        kern.rqs[1].last_busy_us = 0
        eng.at(10 * TICK_US, 9, lambda: None)
        eng.run()
        t = noop_task(kern)
        assert policy.select_cpu_fork(t, parent_cpu=0) == 1

    def test_demote_drops_core_when_reserve_full(self):
        eng, kern, policy = make(NestParams(r_max=1))
        policy.reserve.add(5)
        policy.primary.add(1)
        kern.rqs[1].last_busy_us = 0
        eng.at(10 * TICK_US, 9, lambda: None)
        eng.run()
        t = noop_task(kern)
        policy.select_cpu_fork(t, parent_cpu=0)
        assert 1 not in policy.primary and 1 not in policy.reserve


class TestAttachment:
    def test_attached_core_is_first_choice(self):
        eng, kern, policy = make()
        policy.primary.update({2, 3})
        kern.rqs[2].last_busy_us = kern.engine.now
        kern.rqs[3].last_busy_us = kern.engine.now
        t = noop_task(kern, prev=3)
        t.record_core(2)
        t.record_core(2)   # attached to 2
        cpu = policy.select_cpu_wakeup(t, waker_cpu=0)
        assert cpu == 2
        assert policy.stats["attachment_hits"] == 1

    def test_attachment_requires_primary_membership(self):
        eng, kern, policy = make()
        policy.primary.add(3)
        kern.rqs[3].last_busy_us = kern.engine.now
        t = noop_task(kern, prev=3)
        t.record_core(2)
        t.record_core(2)   # attached to 2, but 2 not in the primary nest
        cpu = policy.select_cpu_wakeup(t, waker_cpu=0)
        assert cpu == 3

    def test_attached_core_reclaimable_even_if_stale(self):
        """§3.3: a task can reclaim its attached core even when the core is
        compaction-eligible."""
        eng, kern, policy = make()
        policy.primary.add(2)
        kern.rqs[2].last_busy_us = 0
        eng.at(10 * TICK_US, 9, lambda: None)
        eng.run()
        t = noop_task(kern, prev=2)
        t.record_core(2)
        t.record_core(2)
        assert policy.select_cpu_wakeup(t, waker_cpu=0) == 2

    def test_history_needs_two_consecutive_runs(self):
        eng, kern, policy = make()
        t = noop_task(kern)
        t.record_core(1)
        t.record_core(2)
        assert t.attached_core is None
        t.record_core(2)
        assert t.attached_core == 2

    def test_attachment_disabled_by_ablation(self):
        eng, kern, policy = make(NestParams(attachment_enabled=False))
        policy.primary.update({2})
        kern.rqs[2].last_busy_us = kern.engine.now
        t = noop_task(kern, prev=2)
        t.record_core(2)
        t.record_core(2)
        cpu = policy.select_cpu_wakeup(t, waker_cpu=0)
        assert policy.stats["attachment_hits"] == 0
        assert cpu == 2   # still found via the normal primary search


class TestImpatience:
    def test_busy_prev_increments_impatience(self):
        eng, kern, policy = make()
        occupy(kern, 2)
        policy.primary.update({2, 3})
        kern.rqs[3].last_busy_us = kern.engine.now
        t = noop_task(kern, prev=2)
        policy.select_cpu_wakeup(t, waker_cpu=0)
        assert t.impatience == 1

    def test_idle_prev_resets_impatience(self):
        eng, kern, policy = make()
        policy.primary.add(2)
        kern.rqs[2].last_busy_us = kern.engine.now
        t = noop_task(kern, prev=2)
        t.impatience = 1
        policy.select_cpu_wakeup(t, waker_cpu=0)
        assert t.impatience == 0

    def test_impatient_task_expands_primary_directly(self):
        """§3.1: an impatient task skips the primary nest; its core joins
        the primary nest directly and the counter resets."""
        eng, kern, policy = make()
        occupy(kern, 2)
        policy.primary.add(2)
        t = noop_task(kern, prev=2)
        t.impatience = NestParams().r_impatient   # will exceed on this wakeup
        cpu = policy.select_cpu_wakeup(t, waker_cpu=0)
        assert cpu in policy.primary
        assert t.impatience == 0
        assert policy.stats["impatient_placements"] == 1

    def test_impatience_disabled_by_ablation(self):
        eng, kern, policy = make(NestParams(impatience_enabled=False))
        occupy(kern, 2)
        policy.primary.update({2, 3})
        kern.rqs[3].last_busy_us = kern.engine.now
        t = noop_task(kern, prev=2)
        t.impatience = 99
        policy.select_cpu_wakeup(t, waker_cpu=0)
        assert policy.stats["impatient_placements"] == 0


class TestExitDemotion:
    def test_exit_leaves_idle_core_demoted(self):
        eng, kern, policy = make()
        policy.primary.add(1)
        policy.on_exit_idle(1)
        assert 1 not in policy.primary
        assert 1 in policy.reserve
        assert policy.stats["exit_demotions"] == 1

    def test_exit_on_busy_core_keeps_primary(self):
        eng, kern, policy = make()
        policy.primary.add(1)
        occupy(kern, 1)
        policy.on_exit_idle(1)
        assert 1 in policy.primary


class TestFlagAndSpin:
    def test_placement_pending_blocks_selection(self):
        eng, kern, policy = make()
        policy.primary.add(2)
        kern.rqs[2].last_busy_us = kern.engine.now
        kern.rqs[2].placement_pending = 1
        t = noop_task(kern, prev=2)
        assert policy.select_cpu_wakeup(t, waker_cpu=0) != 2

    def test_flag_ignored_when_disabled(self):
        eng, kern, policy = make(NestParams(placement_flag=False))
        policy.primary.add(2)
        kern.rqs[2].last_busy_us = kern.engine.now
        kern.rqs[2].placement_pending = 1
        t = noop_task(kern, prev=2)
        assert policy.select_cpu_wakeup(t, waker_cpu=0) == 2

    def test_spin_ticks_from_params(self):
        _, _, policy = make()
        assert policy.spin_ticks() == DEFAULT_PARAMS.s_max_ticks
        _, _, nospin = make(NestParams(spin_enabled=False))
        assert nospin.spin_ticks() == 0

    def test_nest_sizes(self):
        _, _, policy = make()
        policy.primary.update({1, 2})
        policy.reserve.add(3)
        assert policy.nest_sizes() == (2, 1)

    def test_policy_name(self):
        _, _, policy = make()
        assert policy.name == "Nest"


class TestWakeupWorkConservation:
    def test_fallback_crosses_dies_when_enabled(self):
        eng, kern, policy = make()
        die0 = kern.domains.die_span(0)
        for c in die0:
            occupy(kern, c)
        t = noop_task(kern, prev=0)
        cpu = policy.select_cpu_wakeup(t, waker_cpu=0)
        assert cpu not in die0

    def test_fallback_stays_on_die_when_disabled(self):
        eng, kern, policy = make(
            NestParams(wakeup_work_conservation=False))
        die0 = kern.domains.die_span(0)
        for c in die0:
            occupy(kern, c)
        t = noop_task(kern, prev=0)
        cpu = policy.select_cpu_wakeup(t, waker_cpu=0)
        assert cpu in die0
