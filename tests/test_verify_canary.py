"""Mutation canaries: prove the oracle is not vacuously green.

Each canary monkeypatches a real Nest branch into a subtly wrong one —
the kind of bug a refactor could introduce — runs the *real* simulator,
and asserts the oracle convicts it.  Crucially the mutations chosen here
survive ``NestPolicy.check_invariants`` (the policy's own self-check),
so only the external oracle stands between them and a green suite.
"""

from unittest import mock

import pytest

from repro.core.nest import NestPolicy
from repro.core.params import NestParams
from repro.faults import FaultConfig
from repro.kernel.scheduler_core import Kernel
from repro.obs import events as oev
from repro.sched.ftrt import FtrtPolicy
from repro.verify import Scenario, check_run, run_scenario
from repro.verify.generate import freeze_faults, freeze_params
from repro.verify.shrink import shrink

#: dacapo-h2 churns enough tasks that end-of-run exit demotions pile
#: cores into the reserve — exactly where a missing R_max bound shows.
CANARY_SCENARIO = Scenario(
    workload="dacapo-h2", machine="ryzen_4650g", scheduler="nest",
    governor="schedutil", seed=3, scale=0.1,
    nest_params=freeze_params(NestParams(r_max=1)))

#: Fault-free FT-RT deadline run: every job meets its deadline and every
#: backup is admitted disjoint, so the rt.* invariants are silent — until
#: a mutant breaks the protocol.
FTRT_CANARY = Scenario(
    workload="deadline-periodic", machine="ryzen_4650g", scheduler="ftrt",
    governor="schedutil", seed=7, scale=1.0)

#: The same run under a correlated core-failure storm dense enough that
#: kills and backup activations actually happen (the stock profiles'
#: 2s horizon outlives this short run).
FTRT_FAULTED_CANARY = Scenario(
    workload="deadline-periodic", machine="ryzen_4650g", scheduler="ftrt",
    governor="schedutil", seed=7, scale=1.0,
    faults=freeze_faults(FaultConfig(core_failure_rate_per_s=60.0,
                                     core_failure_burst=3,
                                     core_failure_downtime_us=10_000,
                                     horizon_us=100_000)))


def _names(scenario=CANARY_SCENARIO):
    return {v.invariant for v in check_run(run_scenario(scenario))}


def test_unmutated_baseline_is_clean():
    assert _names() == set()


def test_oracle_catches_missing_r_max_bound():
    # Mutation: _demote forgets the §3.1 R_max check and grows the
    # reserve without bound.
    def bad_demote(self, cpu, kind=oev.NEST_COMPACT):
        self.primary.discard(cpu)
        self.reserve.add(cpu)          # missing: len(reserve) < r_max
        self._c_compact.value += 1
        if self._obs.enabled:
            self._obs.emit(self.kernel.engine.now, kind, cpu=cpu,
                           value=len(self.primary))

    with mock.patch.object(NestPolicy, "_demote", bad_demote):
        names = _names()
    assert "nest.final_state" in names


def test_oracle_catches_compaction_that_keeps_the_core():
    # Mutation: compaction moves the core into the reserve but forgets
    # to remove it from the primary (overlap + wrong replay size).
    def bad_demote(self, cpu, kind=oev.NEST_COMPACT):
        if self.params.reserve_enabled \
                and len(self.reserve) < self.params.r_max:
            self.reserve.add(cpu)      # missing: primary.discard(cpu)
        self._c_compact.value += 1
        if self._obs.enabled:
            self._obs.emit(self.kernel.engine.now, kind, cpu=cpu,
                           value=len(self.primary))

    with mock.patch.object(NestPolicy, "_demote", bad_demote):
        names = _names()
    assert names & {"nest.primary_replay", "nest.final_state"}


def test_oracle_catches_stale_placement_histograms():
    # Mutation: the per-placement instrumentation stops being recorded.
    with mock.patch.object(NestPolicy, "_finish_placement",
                           lambda self, examined: None):
        names = _names()
    assert "metrics.histograms" in names


def test_canary_failure_shrinks_to_a_replayable_repro(tmp_path):
    # The whole loop: mutate, catch, shrink under the mutation, save,
    # and confirm the shrunk scenario still convicts the mutant.
    def bad_demote(self, cpu, kind=oev.NEST_COMPACT):
        self.primary.discard(cpu)
        self.reserve.add(cpu)
        self._c_compact.value += 1
        if self._obs.enabled:
            self._obs.emit(self.kernel.engine.now, kind, cpu=cpu,
                           value=len(self.primary))

    with mock.patch.object(NestPolicy, "_demote", bad_demote):
        def checker(sc):
            return check_run(run_scenario(sc))

        violations = checker(CANARY_SCENARIO)
        assert violations
        small, small_violations = shrink(CANARY_SCENARIO, checker,
                                         violations=violations, budget=20)
        assert small_violations
        assert {v.invariant for v in small_violations} \
            & {v.invariant for v in violations}
        # The shrunk scenario stays a nest scenario (the bug needs one).
        assert small.scheduler == "nest"

    from repro.verify.repro import replay_repro, save_repro
    path = save_repro(tmp_path / "canary.json", small, small_violations)
    # Unmutated code replays clean: the repro documents a fixed bug.
    assert replay_repro(path) == []


class TestRtCanaries:
    """Mutation canaries for the three FT-RT invariants (DESIGN.md §10):
    each mutant is protocol-breaking but keeps the policy's own counter
    self-check green, so only the oracle stands in its way."""

    def test_ftrt_baselines_are_clean(self):
        assert _names(FTRT_CANARY) == set()
        assert _names(FTRT_FAULTED_CANARY) == set()

    def test_oracle_catches_backup_on_primary_core(self):
        # Mutation: the disjointness scan "finds" the primary's own cpu —
        # one core failure would now take out both copies of the job.
        def bad_disjoint(self, pcpu):
            return pcpu if self.kernel.cpu_online[pcpu] else None

        with mock.patch.object(FtrtPolicy, "_disjoint_cpu", bad_disjoint):
            names = _names(FTRT_CANARY)
        assert "rt.backup_disjoint" in names

    def test_oracle_catches_phantom_deadline_misses(self):
        # Mutation: the accounting flips every outcome to a miss.  In a
        # fault-free run there is nothing to blame the misses on, so the
        # causality invariant convicts.
        orig = Kernel._rt_account

        def bad_account(self, primary, met, recovery_us=None):
            orig(self, primary, False, recovery_us)

        with mock.patch.object(Kernel, "_rt_account", bad_account):
            names = _names(FTRT_CANARY)
        assert "rt.miss_causality" in names

    def test_oracle_catches_unpaired_backup_activation(self):
        # Mutation: retiring a cancelled backup emits a spurious
        # activation event (a plausible refactor slip) — the event stream
        # no longer mirrors the activation counter, and the event's
        # timestamp has no core-failure to pair with.
        orig = Kernel._rt_on_exit

        def bad_on_exit(self, task):
            if task.backup_of is not None and self.obs.enabled:
                self.obs.emit(self.engine.now, oev.RT_BACKUP_ACTIVATE,
                              task=task.tid, value=task.backup_of.tid)
            orig(self, task)

        with mock.patch.object(Kernel, "_rt_on_exit", bad_on_exit):
            names = _names(FTRT_CANARY)
        assert "rt.activation_pairing" in names

    def test_rt_mutations_survive_the_policy_self_check(self):
        # The disjointness mutant increments disjoint_ok for its bogus
        # placements, so FtrtPolicy.check_invariants stays balanced.
        def bad_disjoint(self, pcpu):
            return pcpu if self.kernel.cpu_online[pcpu] else None

        with mock.patch.object(FtrtPolicy, "_disjoint_cpu", bad_disjoint):
            art = run_scenario(FTRT_CANARY)
        assert art.error is None


def test_mutations_survive_the_policy_self_check():
    # The canaries specifically target gaps the policy's own
    # check_invariants cannot see — placement-tier accounting still adds
    # up — so a passing self-check must NOT be read as "nest is correct".
    def bad_demote(self, cpu, kind=oev.NEST_COMPACT):
        self.primary.discard(cpu)
        self.reserve.add(cpu)
        self._c_compact.value += 1

    with mock.patch.object(NestPolicy, "_demote", bad_demote):
        art = run_scenario(CANARY_SCENARIO)
    assert art.error is None   # run_experiment's self-check passed
