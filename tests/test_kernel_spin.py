"""End-to-end tests of the warm-core spin (§3.2) in the kernel."""

import pytest

from repro.core.nest import NestPolicy
from repro.core.params import NestParams
from repro.governors.schedutil import SchedutilGovernor
from repro.hw.freqmodel import SPEED_SHIFT
from repro.hw.machines import Machine
from repro.hw.topology import Topology
from repro.hw.turbo import XEON_5218
from repro.kernel.scheduler_core import Kernel
from repro.kernel.syscalls import Compute, Fork, Sleep, WaitChildren
from repro.sim.clock import TICK_US
from repro.sim.engine import Engine
from repro.sim.trace import Tracer
from repro.workloads.base import ms_of_work

MACHINE = Machine(name="t", cpu_model="t", microarchitecture="t",
                  topology=Topology(1, 2, 2), turbo=XEON_5218, pm=SPEED_SHIFT)


def make(params=None):
    eng = Engine(0)
    policy = NestPolicy(params or NestParams())
    kern = Kernel(eng, MACHINE, policy, SchedutilGovernor(),
                  tracer=Tracer(MACHINE.n_cpus, record_segments=True))
    return eng, kern, policy


def spin_segments(kern):
    return [s for s in kern.tracer.segments if s.spinning]


class TestSpin:
    def test_block_triggers_spin(self):
        eng, kern, _ = make()

        def beh(api):
            yield Compute(ms_of_work(2))
            yield Sleep(2_000)
            yield Compute(ms_of_work(1))

        kern.spawn(beh, "t")
        kern.run_until_idle()
        spins = spin_segments(kern)
        assert spins, "blocking should have started a spin"

    def test_spin_bounded_by_s_max(self):
        eng, kern, _ = make()

        def beh(api):
            yield Compute(ms_of_work(1))
            yield Sleep(10 * TICK_US)      # longer than S_max

        kern.spawn(beh, "t")
        kern.run_until_idle()
        s_max_us = NestParams().s_max_ticks * TICK_US
        for seg in spin_segments(kern):
            assert seg.duration <= s_max_us + 1

    def test_exit_does_not_spin(self):
        eng, kern, _ = make()

        def beh(api):
            yield Compute(ms_of_work(1))

        kern.spawn(beh, "t")
        kern.run_until_idle()
        assert spin_segments(kern) == []

    def test_no_spin_when_disabled(self):
        eng, kern, _ = make(NestParams(spin_enabled=False))

        def beh(api):
            yield Compute(ms_of_work(1))
            yield Sleep(2_000)

        kern.spawn(beh, "t")
        kern.run_until_idle()
        assert spin_segments(kern) == []

    def test_spin_keeps_frequency_for_returning_task(self):
        """The point of §3.2: a task that briefly blocks resumes on a core
        still at a high frequency when the idle loop spun."""

        def run(params):
            eng, kern, _ = make(params)
            freqs = {}

            def beh(api):
                yield Compute(ms_of_work(30))   # get the core hot
                yield Sleep(6_000)              # pause > idle_hold
                freqs["at_wake"] = kern.freq.freq_mhz(api.task.prev_cpu)
                yield Compute(ms_of_work(1))

            kern.spawn(beh, "t")
            kern.run_until_idle()
            return freqs["at_wake"]

        with_spin = run(NestParams())
        without = run(NestParams(spin_enabled=False))
        assert with_spin > without

    def test_spin_interrupted_by_placement(self):
        """A task placed on a spinning core starts immediately; the spin
        segment ends at that point."""
        eng, kern, _ = make()

        def child(api):
            yield Compute(ms_of_work(0.5))

        def parent(api):
            yield Compute(ms_of_work(1))
            yield Sleep(1_000)              # parent's core starts spinning
            yield Fork(child)               # likely lands on a nest core
            yield WaitChildren()

        kern.spawn(parent, "p")
        kern.run_until_idle()
        # No spin segment may overlap a busy segment on the same core.
        by_core = {}
        for seg in kern.tracer.segments:
            by_core.setdefault(seg.core, []).append(seg)
        for segs in by_core.values():
            segs.sort(key=lambda s: s.start)
            for a, b in zip(segs, segs[1:]):
                assert a.end <= b.start

    def test_spin_stops_when_sibling_gets_task(self):
        eng, kern, policy = make()
        # cpu 0 and cpu 2 are SMT siblings on this 1x2x2 machine.
        assert kern.topology.sibling_of(0) == 2

        def blocker(api):
            yield Compute(ms_of_work(1))
            yield Sleep(7_000)

        def hog(api):
            yield Compute(ms_of_work(3))

        t = kern._new_task(blocker, "blocker", None)
        kern.enqueue(t, 0)
        kern.run_until_idle(max_us=1_500)
        assert kern.cpus[0].spinning

        h = kern._new_task(hog, "hog", None)
        kern.enqueue(h, 2)          # sibling becomes busy
        assert not kern.cpus[0].spinning
        kern.stop_when_idle = True
        kern.run_until_idle()
