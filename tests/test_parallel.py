"""Parallel sweep execution: serial and pooled runs must be identical."""

from __future__ import annotations

import pickle

import pytest

from repro.experiments.parallel import (RunSpec, SweepExecutor, default_jobs,
                                        execute_spec)
from repro.experiments.runner import compare
from repro.hw.machines import get_machine
from repro.workloads.catalog import make_workload

#: A small, fast sweep: one workload, two combos, two seeds.
SPECS = [
    RunSpec(workload="phoronix-libavif-avifenc-1", machine="5218_2s",
            scheduler=sched, governor="schedutil", seed=seed, scale=0.3)
    for sched in ("cfs", "nest")
    for seed in (1, 2)
]

#: RunResult fields that must survive any execution strategy bit-for-bit
#: (wall-clock telemetry legitimately differs between runs).
DETERMINISTIC_FIELDS = (
    "scheduler", "governor", "machine", "workload", "seed", "makespan_us",
    "energy_joules", "n_tasks", "n_migrations", "total_wakeups",
    "wakeup_latency_us", "policy_stats", "extra", "metrics",
    "events_processed",
)


def assert_results_identical(a, b):
    for name in DETERMINISTIC_FIELDS:
        assert getattr(a, name) == getattr(b, name), name
    assert a.underload.interval_us == b.underload.interval_us
    assert a.underload.series == b.underload.series
    assert a.underload.end_us == b.underload.end_us
    assert a.freq_dist.bin_time_us == b.freq_dist.bin_time_us
    assert a.freq_dist.total_us == b.freq_dist.total_us


class TestRunSpec:
    def test_picklable(self):
        for spec in SPECS:
            clone = pickle.loads(pickle.dumps(spec))
            assert clone == spec

    def test_label(self):
        assert SPECS[0].label == \
            "phoronix-libavif-avifenc-1/5218_2s/cfs-schedutil/s1"

    def test_execute_spec_matches_direct_run(self):
        from repro.experiments.runner import run_experiment
        spec = SPECS[0]
        via_spec = execute_spec(spec)
        direct = run_experiment(
            make_workload(spec.workload, scale=spec.scale),
            get_machine(spec.machine), spec.scheduler, spec.governor,
            seed=spec.seed)
        assert_results_identical(via_spec, direct)


class TestDefaultJobs:
    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "7")
        assert default_jobs() == 7

    def test_env_clamped_to_one(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "0")
        assert default_jobs() == 1

    def test_garbage_env_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "lots")
        assert default_jobs() >= 1


class TestSweepExecutor:
    def test_parallel_identical_to_serial(self):
        """The acceptance criterion: N workers, byte-identical results."""
        serial = [execute_spec(s) for s in SPECS]
        parallel = SweepExecutor(jobs=2).run(SPECS)
        assert len(parallel) == len(serial)
        for a, b in zip(serial, parallel):
            assert_results_identical(a, b)

    def test_results_preserve_spec_order(self):
        results = SweepExecutor(jobs=2).run(SPECS)
        got = [(r.seed, r.workload) for r in results]
        want = [(s.seed, s.workload) for s in SPECS]
        assert got == want

    def test_single_worker_path(self):
        results = SweepExecutor(jobs=1).run(SPECS[:1])
        assert_results_identical(results[0], execute_spec(SPECS[0]))

    def test_stats_telemetry(self):
        ex = SweepExecutor(jobs=1)
        results = ex.run(SPECS[:2])
        st = ex.last_stats
        assert st.n_specs == 2
        assert st.simulated == 2
        assert st.cache_hits == 0
        assert st.events == sum(r.events_processed for r in results)
        assert st.wall_s > 0
        assert "2 runs" in st.summary()


class TestCompareWithExecutor:
    def test_compare_identical_serial_vs_executor(self):
        factory = lambda: make_workload("phoronix-libavif-avifenc-1",
                                        scale=0.3)
        machine = get_machine("5218_2s")
        combos = (("cfs", "schedutil"), ("nest", "schedutil"))
        plain = compare(factory, machine, combos=combos, seeds=(1, 2))
        pooled = compare(factory, machine, combos=combos, seeds=(1, 2),
                         executor=SweepExecutor(jobs=2))
        assert plain.workload == pooled.workload
        assert plain.machine == pooled.machine
        for combo in combos:
            a, b = plain.combos[combo], pooled.combos[combo]
            assert a.makespans_us == b.makespans_us
            assert a.energies_j == b.energies_j
            assert a.underload_per_s == b.underload_per_s
            assert a.top_freq_fraction == b.top_freq_fraction
        assert plain.speedup_of("nest", "schedutil") == \
            pytest.approx(pooled.speedup_of("nest", "schedutil"))
