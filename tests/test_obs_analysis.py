"""Trace-analysis engine: analyzers, reports, goldens, diffs, CLI.

The central contracts under test:

* every analyzer is a correct single-pass reduction (synthetic logs
  with known answers);
* a report is deterministic — byte-identical across repeat simulations
  and across the ``ref``/``fast`` engines — and the fig2 reference
  report is pinned byte-for-byte in ``tests/data/golden_analysis.json``
  (regenerate via tests/golden_regen.py after an intentional change);
* ``derived.*`` metrics are a pure function of a serialized metrics
  registry and ride into history rows, where ``repro history diff``
  gates on them (exit 1) and ``--attribute`` ranks what moved;
* the ``repro obs analyze`` / ``repro obs query`` CLI round-trips all
  of the above, including ``--events`` JSONL dumps and ``--baseline``
  cross-run attribution.
"""

import io
import json
from pathlib import Path

import pytest

from repro.experiments.cli import main
from repro.obs.analysis import (ANALYSIS_VERSION, AnalysisContext,
                                EventFilter, analysis_digest, analyze_run,
                                default_analyzers, derived_metrics,
                                diff_reports, filter_events, flatten_numeric,
                                rank_moves, render_attribution,
                                render_events_table, report_json,
                                report_text, run_analyzers)
from repro.obs.analysis.analyzers import (FreqRampAnalyzer,
                                          LatencyTierAnalyzer,
                                          NestDynamicsAnalyzer,
                                          OccupancyAnalyzer,
                                          SpinEconomicsAnalyzer,
                                          WarmCoreAnalyzer)
from repro.obs.events import (FREQ_STEP, NEST_COMPACT, NEST_EXPAND,
                              NEST_PROMOTE, PLACE_CFS, PLACE_PRIMARY,
                              SCHED_DISPATCH, SPIN_START, SPIN_STOP,
                              SchedEvent, event_from_dict, event_to_dict)
from repro.obs.export import events_from_jsonl, events_to_jsonl

ANALYSIS_GOLDEN_PATH = Path(__file__).parent / "data" / "golden_analysis.json"

_REPORTS = {}


def analysis_golden_run(engine: str = "ref"):
    """The pinned reference run: fig2's traceable spec at scale 0.3."""
    from repro.experiments.registry import get_experiment, reference_spec
    from repro.experiments.runner import run_experiment
    from repro.hw.machines import get_machine
    from repro.workloads.catalog import make_workload

    spec = reference_spec(get_experiment("fig2"), seed=1, scale=0.3)
    machine = get_machine(spec.machine)
    res = run_experiment(
        make_workload(spec.workload, scale=spec.scale), machine,
        spec.scheduler, spec.governor, seed=spec.seed,
        record_trace=True, collect_events=True, engine=engine)
    return res, machine


def analysis_golden_report(engine: str = "ref", cached: bool = True):
    """The full analysis report of the pinned reference run."""
    if cached and engine in _REPORTS:
        return _REPORTS[engine]
    res, machine = analysis_golden_run(engine)
    report = analyze_run(res, res.events, n_cpus=machine.n_cpus,
                         segments=res.trace_segments)
    if cached:
        _REPORTS[engine] = report
    return report


def ev(t, kind, cpu=0, task=0, value=0):
    return SchedEvent(t, kind, cpu, task, value)


def finish(analyzer, events, **ctx_kw):
    for e in events:
        analyzer.feed(e)
    return analyzer.finish(AnalysisContext(**ctx_kw))


# ---------------------------------------------------------------------------
# Individual analyzers on synthetic logs with known answers
# ---------------------------------------------------------------------------

class TestLatencyTiers:
    def test_attributes_latency_to_placing_tier(self):
        rep = finish(LatencyTierAnalyzer(), [
            ev(10, PLACE_PRIMARY, task=1),
            ev(11, SCHED_DISPATCH, task=1, value=10),
            ev(20, PLACE_CFS, task=2),
            ev(21, SCHED_DISPATCH, task=2, value=100),
            ev(30, SCHED_DISPATCH, task=3, value=7),
        ])
        assert rep["overall"]["n"] == 3
        assert rep["tiers"]["primary"] == {
            "n": 1, "mean_us": 10.0, "max_us": 10,
            "p50_us": 10, "p90_us": 10, "p99_us": 10}
        assert rep["tiers"]["cfs"]["max_us"] == 100
        assert rep["tiers"]["unattributed"]["n"] == 1

    def test_top_tasks_ranked_by_total_latency(self):
        rep = finish(LatencyTierAnalyzer(), [
            ev(1, SCHED_DISPATCH, task=7, value=5),
            ev(2, SCHED_DISPATCH, task=7, value=5),
            ev(3, SCHED_DISPATCH, task=2, value=30),
        ])
        assert [t["task"] for t in rep["top_tasks"]] == [2, 7]
        assert rep["top_tasks"][0] == {
            "task": 2, "dispatches": 1, "total_us": 30, "max_us": 30}

    def test_tier_follows_latest_placement(self):
        rep = finish(LatencyTierAnalyzer(), [
            ev(1, PLACE_PRIMARY, task=1),
            ev(2, PLACE_CFS, task=1),
            ev(3, SCHED_DISPATCH, task=1, value=4),
        ])
        assert "primary" not in rep["tiers"]
        assert rep["tiers"]["cfs"]["n"] == 1


class TestWarmCores:
    def test_first_dispatch_on_a_core_is_cold(self):
        rep = finish(WarmCoreAnalyzer(), [
            ev(100, SCHED_DISPATCH, cpu=0, task=1),
        ], warm_window_us=1000)
        assert rep == {"window_us": 1000, "dispatches": 1, "warm": 0,
                       "warm_fraction": 0.0,
                       "tiers": {"unattributed": {
                           "dispatches": 1, "warm": 0,
                           "warm_fraction": 0.0}}}

    def test_window_boundary_is_inclusive(self):
        events = [ev(0, SCHED_DISPATCH, cpu=3, task=1),
                  ev(1000, SCHED_DISPATCH, cpu=3, task=1),   # age == window
                  ev(2500, SCHED_DISPATCH, cpu=3, task=1)]   # age 1500: cold
        rep = finish(WarmCoreAnalyzer(), events, warm_window_us=1000)
        assert (rep["dispatches"], rep["warm"]) == (3, 1)

    def test_spinning_keeps_a_core_warm(self):
        rep = finish(WarmCoreAnalyzer(), [
            ev(0, SPIN_START, cpu=1),
            ev(100, SPIN_STOP, cpu=1),
            ev(600, SCHED_DISPATCH, cpu=1, task=1),
        ], warm_window_us=1000)
        assert rep["warm"] == 1


class TestNestDynamics:
    EVENTS = [ev(100, NEST_PROMOTE, value=1),
              ev(200, NEST_EXPAND, value=2),
              ev(300, NEST_COMPACT, value=1),
              ev(400, NEST_PROMOTE, value=2)]

    def test_counts_churn_and_size_stats(self):
        rep = finish(NestDynamicsAnalyzer(), self.EVENTS, makespan_us=1000)
        assert rep["transitions"] == 4
        assert rep["by_kind"] == {"nest.promote": 2, "nest.expand": 1,
                                  "nest.compact": 1}
        assert rep["churn_per_s"] == 4000.0
        # Step function: 0 until t=100, then 1,2,1 for 100µs each, 2 for
        # the final 600µs -> mean (100+200+100+1200)/1000.
        assert rep["primary_size"] == {
            "min": 1, "max": 2, "final": 2, "time_weighted_mean": 1.6}
        assert rep["cadence"]["nest.promote"] == {
            "n_gaps": 1, "mean_gap_us": 300.0}

    def test_timeline_downsampled_keeps_final_point(self):
        events = [ev(t, NEST_PROMOTE, value=t % 5) for t in range(200)]
        rep = finish(NestDynamicsAnalyzer(), events, makespan_us=200)
        assert len(rep["timeline"]) == 65
        assert rep["timeline"][-1] == [199, 199 % 5]

    def test_empty_log(self):
        rep = finish(NestDynamicsAnalyzer(), [], makespan_us=1000)
        assert rep["transitions"] == 0 and "primary_size" not in rep


class TestFreqRamps:
    def test_steps_residency_and_time_to_peak(self):
        rep = finish(FreqRampAnalyzer(), [
            ev(0, FREQ_STEP, cpu=0, value=1000),
            ev(100, FREQ_STEP, cpu=0, value=2000),
            ev(300, FREQ_STEP, cpu=0, value=3000),
        ], makespan_us=1000)
        assert (rep["steps"], rep["up_steps"], rep["down_steps"]) == (3, 2, 0)
        assert rep["residency"] == [
            {"mhz": 1000, "us": 100, "fraction": 0.1},
            {"mhz": 2000, "us": 200, "fraction": 0.2},
            {"mhz": 3000, "us": 700, "fraction": 0.7},
        ]
        assert rep["peak_mhz"] == 3000 and rep["time_to_peak_us"] == 300
        assert rep["residency_basis"] == "wall"

    def test_down_steps_counted(self):
        rep = finish(FreqRampAnalyzer(), [
            ev(0, FREQ_STEP, cpu=1, value=3000),
            ev(50, FREQ_STEP, cpu=1, value=1000),
        ], makespan_us=100)
        assert rep["down_steps"] == 1
        assert rep["time_to_peak_us"] == 0   # first step was the peak


class TestOccupancy:
    def test_event_fallback_without_segments(self):
        rep = finish(OccupancyAnalyzer(), [
            ev(1, SCHED_DISPATCH, cpu=0, task=1),
            ev(2, SCHED_DISPATCH, cpu=0, task=2),
            ev(3, SCHED_DISPATCH, cpu=5, task=1),
        ], makespan_us=10, n_cpus=8)
        assert rep["source"] == "events"
        assert rep["cores_used"] == 2 and rep["n_cpus"] == 8
        assert rep["top_cores"][0] == {"cpu": 0, "dispatches": 2,
                                       "distinct_tasks": 2}

    def test_segments_give_busy_spin_idle(self):
        class Seg:
            def __init__(self, core, duration, spinning=False, task_id=0):
                self.core, self.duration = core, duration
                self.spinning, self.task_id = spinning, task_id
        segs = [Seg(0, 600), Seg(0, 100, spinning=True),
                Seg(1, 300), Seg(2, 50, task_id=-1)]   # idle seg ignored
        rep = finish(OccupancyAnalyzer(), [], makespan_us=1000, n_cpus=2,
                     segments=segs)
        assert rep["source"] == "segments"
        assert (rep["busy_us"], rep["spin_us"]) == (900, 100)
        assert rep["idle_us"] == 2 * 1000 - 900 - 100
        assert rep["mean_utilization"] == 0.45
        assert rep["top_cores"][0]["cpu"] == 0


class TestSpinEconomics:
    def test_pairs_spins_and_detects_absorption(self):
        rep = finish(SpinEconomicsAnalyzer(), [
            ev(0, SPIN_START, cpu=0),
            ev(50, SPIN_STOP, cpu=0),          # emission order: stop first
            ev(50, SCHED_DISPATCH, cpu=0),     # same-t dispatch = absorbed
            ev(100, SPIN_START, cpu=1),
            ev(400, SPIN_STOP, cpu=1),
            ev(900, SCHED_DISPATCH, cpu=1),    # long after: not absorbed
        ])
        assert rep["spins"] == 2 and rep["spin_us"] == 350
        assert rep["absorbed_wakeups"] == 1
        assert rep["absorbed_fraction_of_spins"] == 0.5
        assert rep["spin_us_per_absorbed"] == 350.0

    def test_dispatch_into_open_spin_is_absorbed(self):
        rep = finish(SpinEconomicsAnalyzer(), [
            ev(0, SPIN_START, cpu=2),
            ev(10, SCHED_DISPATCH, cpu=2),
        ])
        assert rep["absorbed_wakeups"] == 1
        assert rep["unfinished_spins"] == 1 and rep["spins"] == 0

    def test_empty_log_all_zero(self):
        rep = finish(SpinEconomicsAnalyzer(), [])
        assert rep["spins"] == 0 and rep["spin_us_per_absorbed"] == 0.0


# ---------------------------------------------------------------------------
# The driver and the report envelope
# ---------------------------------------------------------------------------

class TestRunAnalyzers:
    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            run_analyzers([], AnalysisContext(),
                          [SpinEconomicsAnalyzer(), SpinEconomicsAnalyzer()])

    def test_standard_analyzers_sorted(self):
        reports = run_analyzers([], AnalysisContext())
        assert list(reports) == sorted(a.name for a in default_analyzers())
        assert len(reports) == 7

    def test_envelope_without_result_uses_event_span(self):
        report = analyze_run(None, [ev(500, NEST_PROMOTE, value=1)])
        assert report["analysis_version"] == ANALYSIS_VERSION
        assert report["run"] == {"n_events": 1}
        assert report["analyzers"]["nest_dynamics"]["churn_per_s"] == 2000.0

    def test_report_json_is_canonical(self):
        report = {"b": 1, "a": {"z": 2, "y": 3}}
        doc = report_json(report)
        assert doc == json.dumps(report, sort_keys=True, indent=2) + "\n"


# ---------------------------------------------------------------------------
# Determinism: repeats, engines and the pinned golden
# ---------------------------------------------------------------------------

class TestDeterminism:
    def test_repeat_simulation_byte_identical(self):
        a = report_json(analysis_golden_report("ref", cached=False))
        b = report_json(analysis_golden_report("ref", cached=False))
        assert a == b

    def test_ref_and_fast_engines_byte_identical(self):
        assert report_json(analysis_golden_report("ref")) == \
            report_json(analysis_golden_report("fast"))

    def test_matches_golden_file(self):
        assert ANALYSIS_GOLDEN_PATH.is_file(), \
            "golden missing; regenerate via tests/golden_regen.py"
        assert report_json(analysis_golden_report()) == \
            ANALYSIS_GOLDEN_PATH.read_text(encoding="utf-8")

    def test_envelope_carries_no_host_or_engine_facts(self):
        doc = report_json(analysis_golden_report())
        for leak in ('"engine"', '"host"', '"wall_s"', '"rss_'):
            assert leak not in doc

    def test_digest_fingerprints_the_report(self):
        report = analysis_golden_report()
        digest = analysis_digest(report)
        assert digest["analysis_version"] == ANALYSIS_VERSION
        assert len(digest["sha256"]) == 64
        assert digest["summary"]["latency_n"] == \
            report["analyzers"]["latency_tiers"]["overall"]["n"]
        assert digest == analysis_digest(json.loads(report_json(report)))

    def test_text_digest_mentions_every_analyzer_family(self):
        text = report_text(analysis_golden_report())
        for token in ("latency:", "warm cores:", "nest:", "freq:",
                      "occupancy[segments]:", "spin:"):
            assert token in text


# ---------------------------------------------------------------------------
# Derived paper metrics (registry -> history scalars)
# ---------------------------------------------------------------------------

class TestDerivedMetrics:
    METRICS = {
        "kernel.wakeup_latency_us": {
            "type": "histogram", "edges": [1, 10, 100],
            "counts": [50, 40, 9, 1]},
        "nest.placements": {"type": "counter", "value": 100},
        "nest.attachment_hits": {"type": "counter", "value": 40},
        "nest.primary_hits": {"type": "counter", "value": 30},
        "nest.reserve_hits": {"type": "counter", "value": 20},
        "nest.impatient_placements": {"type": "counter", "value": 6},
        "nest.cfs_fallbacks": {"type": "counter", "value": 4},
    }

    def test_percentiles_and_shares(self):
        derived = derived_metrics(self.METRICS)
        assert derived["derived.wakeup_p50_us"] == 1
        assert derived["derived.wakeup_p90_us"] == 10
        assert derived["derived.wakeup_p99_us"] == 100
        assert derived["derived.share_attach"] == 0.4
        assert derived["derived.share_cfs"] == 0.04
        assert derived["derived.warm_share"] == 0.9   # attach+primary+reserve

    def test_empty_registry_yields_nothing(self):
        assert derived_metrics({}) == {}
        assert derived_metrics({"nest.placements": {
            "type": "counter", "value": 0}}) == {}

    def test_overflow_only_histogram_has_no_percentiles(self):
        derived = derived_metrics({"kernel.wakeup_latency_us": {
            "type": "histogram", "edges": [1], "counts": [0, 5]}})
        assert derived == {}

    def test_golden_run_carries_derived_metrics(self):
        res, _ = analysis_golden_run()
        derived = derived_metrics(res.metrics)
        assert derived["derived.warm_share"] > 0.5
        assert set(derived) >= {"derived.wakeup_p50_us",
                                "derived.share_cfs", "derived.warm_share"}


# ---------------------------------------------------------------------------
# Cross-run diffing and attribution
# ---------------------------------------------------------------------------

class TestDiffing:
    def test_flatten_skips_lists_and_bools(self):
        flat = flatten_numeric({"a": {"b": 1, "flag": True},
                                "timeline": [[1, 2]], "c": 2.5})
        assert flat == {"a.b": 1.0, "c": 2.5}

    def test_rank_moves_orders_by_relative_movement(self):
        cur = {"x": 110.0, "y": 4.0, "same": 7.0, "only_cur": 1.0}
        base = {"x": 100.0, "y": 1.0, "same": 7.0, "only_base": 9.0}
        moves = rank_moves(cur, base)
        assert [m.name for m in moves] == ["y", "x"]   # 3.0x beats 10%
        assert moves[0].rel == 3.0
        assert "+300.0%" in moves[0].render()

    def test_zero_baseline_ranks_by_absolute_delta(self):
        moves = rank_moves({"new": 5.0}, {"new": 0.0})
        assert moves[0].rel == 5.0
        assert "%" not in moves[0].render()

    def test_diff_reports_ranks_and_carries_tier_latency(self):
        cur = analysis_golden_report()
        base = json.loads(report_json(cur))
        base["run"]["makespan_us"] = cur["run"]["makespan_us"] * 2
        tier = next(iter(base["analyzers"]["latency_tiers"]["tiers"]))
        base["analyzers"]["latency_tiers"]["tiers"][tier]["p99_us"] += 40
        diff = diff_reports(cur, base, top=3)
        assert diff["compared_metrics"] > 20
        assert diff["moves"], "perturbed report must rank at least one move"
        rows = {r["tier"]: r for r in diff["tier_latency"]}
        assert rows[tier]["p99_us"][2] == -40

    def test_attribution_text_reads_as_a_verdict(self):
        cur = analysis_golden_report()
        base = json.loads(report_json(cur))
        base["run"]["makespan_us"] = max(cur["run"]["makespan_us"] // 2, 1)
        text = render_attribution(diff_reports(cur, base),
                                  cur_label="this run", base_label="base")
        assert "this run is" in text and "slower than base" in text
        assert "per-tier wakeup latency" in text

    def test_identical_reports_no_moves(self):
        cur = analysis_golden_report()
        text = render_attribution(diff_reports(cur, cur))
        assert "equal makespan" in text
        assert "no shared metric moved" in text


# ---------------------------------------------------------------------------
# Event querying
# ---------------------------------------------------------------------------

class TestQuery:
    EVENTS = [ev(10, PLACE_PRIMARY, cpu=1, task=5),
              ev(20, PLACE_CFS, cpu=2, task=6),
              ev(30, SCHED_DISPATCH, cpu=1, task=5, value=3),
              ev(40, NEST_PROMOTE, cpu=1, value=2)]

    def filtered(self, **kw):
        return list(filter_events(self.EVENTS, EventFilter(**kw)))

    def test_prefix_group_and_exact_kind(self):
        assert len(self.filtered(kinds=("place",))) == 2
        assert len(self.filtered(kinds=("place.cfs",))) == 1
        assert len(self.filtered(kinds=("place", "nest"))) == 3

    def test_cpu_task_and_time_window(self):
        assert len(self.filtered(cpu=1)) == 3
        assert len(self.filtered(task=5)) == 2
        assert len(self.filtered(since_us=20, until_us=30)) == 2
        assert self.filtered(cpu=1, kinds=("sched",)) == [self.EVENTS[2]]

    def test_table_footer_counts_hidden_rows(self):
        table = render_events_table(self.EVENTS[:2], total=10)
        assert "place.primary" in table
        assert "... 8 more matching event(s)" in table
        assert "more" not in render_events_table(self.EVENTS, total=4)


# ---------------------------------------------------------------------------
# JSONL event round-trip (the --events source)
# ---------------------------------------------------------------------------

class TestEventsJsonl:
    def test_roundtrip(self):
        events = [ev(1, PLACE_PRIMARY, cpu=2, task=3, value=0),
                  ev(9, FREQ_STEP, cpu=0, task=-1, value=2300)]
        buf = io.StringIO()
        assert events_to_jsonl(events, buf) == 2
        buf.seek(0)
        assert events_from_jsonl(buf) == events

    def test_dict_roundtrip_defaults(self):
        assert event_from_dict(event_to_dict(ev(5, SPIN_START, cpu=7))) == \
            ev(5, SPIN_START, cpu=7)
        assert event_from_dict({"t": 1, "kind": "sched.dispatch"}) == \
            SchedEvent(1, "sched.dispatch", -1, -1, 0)

    def test_strict_reader_rejects_garbage(self):
        bad = io.StringIO('{"t": 1, "kind": "sched.dispatch"}\nnot json\n')
        with pytest.raises(ValueError, match="line 2"):
            events_from_jsonl(bad)
        with pytest.raises(ValueError, match="not an event record"):
            events_from_jsonl(io.StringIO('{"no": "fields"}\n'))


# ---------------------------------------------------------------------------
# CLI: repro obs analyze / query
# ---------------------------------------------------------------------------

class TestAnalyzeCli:
    ARGS = ["obs", "analyze", "fig2", "--scale", "0.3"]

    def test_json_out_matches_golden(self, capsys, tmp_path):
        out = tmp_path / "report.json"
        assert main(self.ARGS + ["--json", "--out", str(out)]) == 0
        doc = capsys.readouterr().out
        assert doc == out.read_text(encoding="utf-8")
        assert doc == ANALYSIS_GOLDEN_PATH.read_text(encoding="utf-8")

    def test_text_digest_default(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "warm cores:" in out and "spin:" in out

    def test_baseline_attribution(self, capsys, tmp_path):
        base = tmp_path / "base.json"
        base.write_text(ANALYSIS_GOLDEN_PATH.read_text(encoding="utf-8"))
        assert main(self.ARGS + ["--baseline", str(base)]) == 0
        out = capsys.readouterr().out
        assert "equal makespan" in out

    def test_events_jsonl_source(self, capsys, tmp_path):
        res, _ = analysis_golden_run()
        dump = tmp_path / "events.jsonl"
        with dump.open("w", encoding="utf-8") as fh:
            events_to_jsonl(res.events, fh)
        assert main(["obs", "analyze", "--events", str(dump),
                     "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["run"] == {"n_events": len(res.events)}
        assert report["analyzers"]["spin_economics"]["spins"] > 0

    def test_source_required(self, capsys):
        assert main(["obs", "analyze"]) == 2
        assert "--events" in capsys.readouterr().err

    def test_pure_table_experiment_rejected(self, capsys):
        # table1 aggregates published numbers; there is nothing to trace.
        assert main(["obs", "analyze", "table1"]) == 2
        assert "no traceable workload" in capsys.readouterr().err


class TestQueryCli:
    def test_table_with_filters(self, capsys):
        assert main(["obs", "query", "fig2", "--scale", "0.3",
                     "--kind", "nest", "--limit", "5"]) == 0
        out = capsys.readouterr().out
        assert "nest." in out and "event(s) matched" in out

    def test_json_lines_parse_back(self, capsys):
        assert main(["obs", "query", "fig2", "--scale", "0.3", "--kind",
                     "sched.dispatch", "--limit", "3", "--json"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 3
        for line in lines:
            assert event_from_dict(json.loads(line)).kind == "sched.dispatch"
