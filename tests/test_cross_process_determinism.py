"""Cross-process determinism: keys and serialized results are identical
when computed in a fresh interpreter.

The content-addressed cache and the parallel sweep both assume that any
process, any day, computes the same ``spec_key`` and the same canonical
result JSON for the same spec.  Anything hash-seed dependent (set/dict
iteration leaking into serialized output, ``PYTHONHASHSEED``-sensitive
ordering) breaks that silently — entries stop matching and the sweep
quietly re-simulates.  This test runs the whole pipeline in child
interpreters with *different* fixed hash seeds and compares bytes.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

from repro.experiments.cache import result_to_jsonable, spec_key
from repro.experiments.parallel import RunSpec, execute_spec

REPO = Path(__file__).resolve().parent.parent

SPEC_KWARGS = dict(workload="configure-gcc", machine="ryzen_4650g",
                   scheduler="nest", governor="schedutil", seed=7,
                   scale=0.3)

CHILD_SCRIPT = """\
import json, sys
from repro.core.params import NestParams
from repro.experiments.cache import result_to_jsonable, spec_key
from repro.experiments.parallel import RunSpec, execute_spec

spec = RunSpec(workload="configure-gcc", machine="ryzen_4650g",
               scheduler="nest", governor="schedutil", seed=7, scale=0.3)
result = execute_spec(spec)
payload = result_to_jsonable(result, spec.machine)
payload.pop("sim_wall_s")
payload.pop("host")
print(json.dumps({
    "key": spec_key(spec),
    "params_key": spec_key(RunSpec(workload="redis", machine="5218_2s",
                                   nest_params=NestParams(r_max=2))),
    "canonical": json.dumps(payload, sort_keys=True),
}))
"""


def _run_child(hashseed: str) -> dict:
    env = dict(os.environ, PYTHONHASHSEED=hashseed,
               PYTHONPATH=str(REPO / "src"))
    proc = subprocess.run([sys.executable, "-c", CHILD_SCRIPT],
                          capture_output=True, text=True, env=env,
                          check=True)
    return json.loads(proc.stdout)


def test_subprocess_matches_parent_and_is_hashseed_independent():
    spec = RunSpec(**SPEC_KWARGS)
    parent_key = spec_key(spec)
    parent_payload = result_to_jsonable(execute_spec(spec), spec.machine)
    parent_payload.pop("sim_wall_s")
    parent_payload.pop("host")
    parent_canonical = json.dumps(parent_payload, sort_keys=True)

    children = [_run_child(seed) for seed in ("0", "12345")]
    for child in children:
        assert child["key"] == parent_key
        assert child["canonical"] == parent_canonical
    # Both children agreed with the parent; make the pairwise claim
    # explicit for the nest_params-bearing key too.
    assert children[0]["params_key"] == children[1]["params_key"]


def test_spec_key_is_pinned():
    # The key format itself is load-bearing: changing spec_key (or
    # ENGINE_VERSION / FORMAT_VERSION) silently invalidates every
    # existing cache entry, so it must be a deliberate act.
    assert spec_key(RunSpec(**SPEC_KWARGS)) == spec_key(RunSpec(**SPEC_KWARGS))
    changed = dict(SPEC_KWARGS, seed=8)
    assert spec_key(RunSpec(**changed)) != spec_key(RunSpec(**SPEC_KWARGS))
