"""Tests for the metrics: underload, frequency distributions, latency,
summaries."""

import pytest
from hypothesis import given, strategies as st

from repro.hw.machines import XEON_5218_2S, XEON_6130_2S
from repro.metrics.freqdist import FreqDistribution, bins_for
from repro.metrics.latency import LatencyRecorder, percentile
from repro.metrics.summary import (energy_savings, improvement_stddev,
                                   speedup)
from repro.metrics.underload import UnderloadTracker
from repro.sim.clock import TICK_US


class TestUnderload:
    def track(self):
        return UnderloadTracker(interval_us=TICK_US)

    def test_no_activity_no_underload(self):
        t = self.track()
        res = t.finalize(4 * TICK_US)
        assert res.total_underload == 0
        assert res.underload_per_second == 0

    def test_paper_definition(self):
        """Two cores used while at most one task was runnable: underload 1
        in that interval."""
        t = self.track()
        t.runnable_sink(0, 1)
        t.segment_sink(0, 0, 1000, 2000, task_id=1, spinning=False)
        t.segment_sink(5, 1500, 3000, 2000, task_id=1, spinning=False)
        res = t.finalize(TICK_US)
        assert res.series == [1]

    def test_matched_cores_and_tasks_no_underload(self):
        t = self.track()
        t.runnable_sink(0, 2)
        t.segment_sink(0, 0, 4000, 2000, 1, False)
        t.segment_sink(1, 0, 4000, 2000, 2, False)
        res = t.finalize(TICK_US)
        assert res.series == [0]

    def test_overload_counts_negative(self):
        """More runnable tasks than cores used: overload."""
        t = self.track()
        t.runnable_sink(0, 3)
        t.segment_sink(0, 0, 4000, 2000, 1, False)
        res = t.finalize(TICK_US)
        assert res.series == [-2]
        assert res.total_overload == 2
        assert res.total_underload == 0

    def test_spin_segments_ignored(self):
        t = self.track()
        t.runnable_sink(0, 1)
        t.segment_sink(0, 0, 4000, 2000, 1, False)
        t.segment_sink(1, 0, 4000, 3900, -1, True)     # spinning idle
        res = t.finalize(TICK_US)
        assert res.series == [0]

    def test_segment_spanning_intervals_counts_in_each(self):
        t = self.track()
        t.runnable_sink(0, 0)
        t.segment_sink(3, 0, 3 * TICK_US, 2000, 1, False)
        res = t.finalize(3 * TICK_US)
        assert res.series == [1, 1, 1]

    def test_runnable_peak_within_interval_counts(self):
        t = self.track()
        t.runnable_sink(100, 5)
        t.runnable_sink(200, 0)
        t.segment_sink(0, 0, 4000, 2000, 1, False)
        res = t.finalize(TICK_US)
        assert res.series == [1 - 5]

    def test_underload_per_second_is_time_average(self):
        t = self.track()
        t.runnable_sink(0, 0)
        t.segment_sink(0, 0, TICK_US, 2000, 1, False)   # 1 underload
        res = t.finalize(4 * TICK_US)                    # over 4 intervals
        assert res.underload_per_second == pytest.approx(0.25)

    def test_timeline(self):
        t = self.track()
        t.runnable_sink(0, 0)
        t.segment_sink(0, 0, TICK_US, 2000, 1, False)
        res = t.finalize(2 * TICK_US)
        assert res.timeline() == [(0.0, 1), (TICK_US / 1e6, 0)]

    @given(st.lists(st.tuples(st.integers(0, 7),        # core
                              st.integers(0, 40_000),   # start
                              st.integers(1, 20_000)),  # duration
                    max_size=20))
    def test_underload_bounded_by_cores_used(self, segs):
        t = UnderloadTracker()
        t.runnable_sink(0, 0)
        for core, start, dur in segs:
            t.segment_sink(core, start, start + dur, 2000, 1, False)
        res = t.finalize(60_000)
        assert 0 <= res.total_underload <= 8 * len(res.series)


class TestFreqDist:
    def test_paper_bins_for_5218(self):
        assert bins_for(XEON_5218_2S) == (1.0, 1.6, 2.3, 2.8, 3.1, 3.6, 3.9)

    def test_paper_bins_for_6130(self):
        assert bins_for(XEON_6130_2S) == (1.0, 1.6, 2.1, 2.8, 3.1, 3.4, 3.7)

    def test_bin_index_edges(self):
        fd = FreqDistribution(XEON_6130_2S)
        assert fd.bin_index(1000) == 0
        assert fd.bin_index(1001) == 1
        assert fd.bin_index(3700) == 6
        assert fd.bin_index(9999) == 6

    def test_accumulation_and_fractions(self):
        fd = FreqDistribution(XEON_6130_2S)
        fd.segment_sink(0, 0, 3000, 3700, 1, False)
        fd.segment_sink(0, 3000, 4000, 1000, 1, False)
        assert fd.total_us == 4000
        fr = fd.fractions()
        assert fr[6] == pytest.approx(0.75)
        assert fr[0] == pytest.approx(0.25)
        assert sum(fr) == pytest.approx(1.0)

    def test_idle_and_spin_ignored(self):
        fd = FreqDistribution(XEON_6130_2S)
        fd.segment_sink(0, 0, 1000, 3700, -1, False)
        fd.segment_sink(0, 0, 1000, 3700, 1, True)
        assert fd.total_us == 0
        assert fd.fractions() == [0.0] * 7

    def test_top_bins_fraction(self):
        fd = FreqDistribution(XEON_6130_2S)
        fd.segment_sink(0, 0, 1000, 3600, 1, False)   # (3.4,3.7]
        fd.segment_sink(0, 1000, 2000, 2000, 1, False)
        assert fd.top_bins_fraction(2) == pytest.approx(0.5)

    def test_mean_ghz_weighted(self):
        fd = FreqDistribution(XEON_6130_2S)
        fd.segment_sink(0, 0, 1000, 3700, 1, False)
        assert fd.mean_ghz() == pytest.approx((3.4 + 3.7) / 2)

    def test_labels_match_bins(self):
        fd = FreqDistribution(XEON_6130_2S)
        labels = fd.labels()
        assert labels[0] == "(0.0,1.0] GHz"
        assert labels[-1] == "(3.4,3.7] GHz"
        assert len(labels) == len(fd.fractions())

    def test_as_dict(self):
        fd = FreqDistribution(XEON_6130_2S)
        fd.segment_sink(0, 0, 500, 3700, 1, False)
        assert fd.as_dict()["(3.4,3.7] GHz"] == pytest.approx(1.0)


class TestLatency:
    def test_percentile_nearest_rank(self):
        vals = list(range(1, 101))
        assert percentile(vals, 50) == 50
        assert percentile(vals, 99) == 99
        assert percentile(vals, 100) == 100
        assert percentile(vals, 0) == 1

    def test_percentile_validation(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1], 101)

    def test_recorder(self):
        r = LatencyRecorder()
        for v in (10, 30, 20):
            r.record(v)
        assert r.count == 3
        assert r.mean() == pytest.approx(20)
        assert r.p50() == 20

    def test_recorder_rejects_negative(self):
        with pytest.raises(ValueError):
            LatencyRecorder().record(-1)

    def test_p999_is_tail(self):
        r = LatencyRecorder()
        for _ in range(999):
            r.record(10)
        r.record(1000)
        assert r.p999() == 1000

    @given(st.lists(st.integers(0, 10_000), min_size=1, max_size=200))
    def test_percentiles_monotone(self, vals):
        ps = [percentile(vals, p) for p in (10, 50, 90, 99, 99.9)]
        assert ps == sorted(ps)
        assert min(vals) <= ps[0] and ps[-1] <= max(vals)


class TestSummaryMath:
    def test_speedup_positive_when_faster(self):
        assert speedup([200], [100]) == pytest.approx(1.0)

    def test_speedup_zero_when_equal(self):
        assert speedup([100, 100], [100, 100]) == pytest.approx(0.0)

    def test_speedup_negative_when_slower(self):
        assert speedup([100], [200]) == pytest.approx(-0.5)

    def test_energy_savings(self):
        assert energy_savings([100.0], [80.0]) == pytest.approx(0.2)

    def test_improvement_stddev_zero_for_constant(self):
        assert improvement_stddev(100.0, [90.0, 90.0]) == pytest.approx(0.0)

    def test_improvement_stddev_positive_for_spread(self):
        assert improvement_stddev(100.0, [80.0, 120.0]) > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            speedup([], [1])
        with pytest.raises(ValueError):
            energy_savings([0.0], [1.0])
