"""Tests for the action vocabulary and synchronisation objects."""

import pytest

from repro.kernel.syscalls import (Barrier, BarrierWait, Channel, Compute,
                                   Exit, Fork, Recv, Send, Sleep,
                                   WaitChildren, Yield)


class TestActions:
    def test_negative_compute_rejected(self):
        with pytest.raises(ValueError):
            Compute(-1)

    def test_zero_compute_ok(self):
        assert Compute(0).cycles == 0

    def test_negative_sleep_rejected(self):
        with pytest.raises(ValueError):
            Sleep(-5)

    def test_actions_are_frozen(self):
        c = Compute(10)
        with pytest.raises(AttributeError):
            c.cycles = 5

    def test_fork_defaults(self):
        f = Fork(lambda api: iter(()))
        assert f.name == "child"
        assert f.args == ()


class TestBarrier:
    def test_needs_positive_parties(self):
        with pytest.raises(ValueError):
            Barrier(0)

    def test_last_arriver_releases_waiters(self):
        b = Barrier(3)
        assert b.arrive("t1") is None
        assert b.arrive("t2") is None
        released = b.arrive("t3")
        assert released == ["t1", "t2"]
        assert b.n_waiting == 0

    def test_generation_increments(self):
        b = Barrier(2)
        b.arrive("a")
        b.arrive("b")
        assert b.generation == 1
        b.arrive("c")
        b.arrive("d")
        assert b.generation == 2

    def test_single_party_barrier_never_blocks(self):
        b = Barrier(1)
        assert b.arrive("only") == []

    def test_reusable(self):
        b = Barrier(2)
        b.arrive("a")
        assert b.arrive("b") == ["a"]
        assert b.arrive("c") is None
        assert b.arrive("d") == ["c"]


class TestChannel:
    def test_put_without_receiver_queues_message(self):
        ch = Channel()
        assert ch.put("m") is None
        ok, msg = ch.try_get()
        assert ok and msg == "m"

    def test_try_get_empty(self):
        assert Channel().try_get() == (False, None)

    def test_put_returns_waiting_receiver(self):
        ch = Channel()
        ch.receivers.append("taskA")
        assert ch.put("m") == "taskA"
        assert ch.receivers == []

    def test_fifo_receivers(self):
        ch = Channel()
        ch.receivers.extend(["a", "b"])
        assert ch.put("m1") == "a"
        assert ch.put("m2") == "b"

    def test_fifo_messages(self):
        ch = Channel()
        ch.put(1)
        ch.put(2)
        assert ch.try_get() == (True, 1)
        assert ch.try_get() == (True, 2)
