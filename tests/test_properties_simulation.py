"""Property-based tests over whole simulations.

Hypothesis generates small random workload structures and scheduler
configurations; the properties are the accounting invariants every valid
run must satisfy, whatever the placement decisions were.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.experiments.runner import run_experiment
from repro.governors.performance import PerformanceGovernor
from repro.hw.freqmodel import SPEED_SHIFT
from repro.hw.machines import Machine, get_machine
from repro.hw.topology import Topology
from repro.hw.turbo import XEON_5218
from repro.kernel.scheduler_core import Kernel
from repro.kernel.syscalls import Compute, Fork, Sleep, WaitChildren
from repro.kernel.task import TaskState
from repro.sim.engine import Engine
from repro.sim.trace import Tracer
from repro.workloads.base import Workload, us_of_work

MACHINE = Machine(name="prop", cpu_model="t", microarchitecture="t",
                  topology=Topology(2, 3, 2), turbo=XEON_5218,
                  pm=SPEED_SHIFT)


class RandomTreeWorkload(Workload):
    """A random fork tree with computes and sleeps."""

    def __init__(self, seed: int, width: int, depth: int) -> None:
        self.seed = seed
        self.width = width
        self.depth = depth
        self.name = f"tree-{seed}-{width}x{depth}"

    def start(self, kernel):
        return kernel.spawn(self._node, name="root",
                            args=(random.Random(self.seed), self.depth))

    def _node(self, api, rng, depth):
        yield Compute(us_of_work(rng.randrange(20, 400)))
        if depth > 0:
            for _ in range(rng.randrange(1, self.width + 1)):
                yield Fork(self._node, name=f"n{depth}",
                           args=(random.Random(rng.randrange(1 << 30)),
                                 depth - 1))
        if rng.random() < 0.4:
            yield Sleep(rng.randrange(10, 500))
        yield Compute(us_of_work(rng.randrange(10, 200)))
        yield WaitChildren()


@st.composite
def tree_params(draw):
    return (draw(st.integers(0, 10_000)),     # seed
            draw(st.integers(1, 3)),          # width
            draw(st.integers(0, 3)),          # depth
            draw(st.sampled_from(["cfs", "nest", "smove"])))


@settings(max_examples=12, deadline=None)
@given(tree_params())
def test_random_workloads_terminate_cleanly(params):
    """Every task exits; counters return to zero; time/energy positive;
    per-core trace segments never overlap."""
    seed, width, depth, scheduler = params
    eng = Engine(seed)
    from repro.experiments.runner import make_governor, make_policy
    tracer = Tracer(MACHINE.n_cpus, record_segments=True)
    kern = Kernel(eng, MACHINE, make_policy(scheduler),
                  make_governor("schedutil"), tracer=tracer)
    RandomTreeWorkload(seed, width, depth).start(kern)
    kern.run_until_idle(max_us=60_000_000)

    assert kern.n_live == 0
    assert kern.n_runnable == 0
    assert all(t.state is TaskState.EXITED for t in kern.tasks.values())
    assert eng.now > 0
    assert kern.energy.energy_joules > 0

    per_core = {}
    for seg in tracer.segments:
        per_core.setdefault(seg.core, []).append(seg)
    for segs in per_core.values():
        segs.sort(key=lambda s: s.start)
        for a, b in zip(segs, segs[1:]):
            assert a.end <= b.start

    # Executed cycles are conserved: what tasks were asked to compute is
    # what was accounted (within rounding of the 1 µs event grid).
    for t in kern.tasks.values():
        assert t.remaining_cycles == pytest.approx(0.0, abs=1e-6)
        assert t.total_cycles >= 0


@settings(max_examples=6, deadline=None)
@given(st.integers(0, 1000), st.sampled_from(["cfs", "nest"]))
def test_same_seed_bitwise_deterministic(seed, scheduler):
    """Two identical runs produce identical makespans and energy."""

    def once():
        eng = Engine(seed)
        from repro.experiments.runner import make_governor, make_policy
        kern = Kernel(eng, MACHINE, make_policy(scheduler),
                      make_governor("schedutil"))
        RandomTreeWorkload(seed, 2, 2).start(kern)
        kern.run_until_idle(max_us=60_000_000)
        return eng.now, kern.energy.energy_joules

    t1, e1 = once()
    t2, e2 = once()
    assert t1 == t2
    assert e1 == e2


@settings(max_examples=6, deadline=None)
@given(st.integers(0, 1000))
def test_nest_invariants_hold_throughout(seed):
    """The primary and reserve nests stay disjoint and the reserve stays
    bounded by R_max at every placement."""
    from repro.core.nest import NestPolicy
    from repro.governors.schedutil import SchedutilGovernor

    eng = Engine(seed)
    policy = NestPolicy()
    kern = Kernel(eng, MACHINE, policy, SchedutilGovernor())

    violations = []
    orig_fork = policy.select_cpu_fork
    orig_wake = policy.select_cpu_wakeup

    def check():
        if policy.primary & policy.reserve:
            violations.append("overlap")
        if len(policy.reserve) > policy.params.r_max:
            violations.append("reserve overflow")

    def fork(task, parent_cpu):
        cpu = orig_fork(task, parent_cpu)
        check()
        return cpu

    def wake(task, waker_cpu):
        cpu = orig_wake(task, waker_cpu)
        check()
        return cpu

    policy.select_cpu_fork = fork
    policy.select_cpu_wakeup = wake
    RandomTreeWorkload(seed, 3, 2).start(kern)
    kern.run_until_idle(max_us=60_000_000)
    assert violations == []


def test_larger_machine_is_not_slower_for_parallel_work():
    """Sanity: the same parallel workload on a machine with more cores
    finishes no later (work conservation at the macro level)."""
    times = {}
    for mk in ("ryzen_4650g", "5218_2s"):
        res = run_experiment(RandomTreeWorkload(7, 3, 3), get_machine(mk),
                             "cfs", "schedutil", seed=7)
        times[mk] = res.makespan_us
    assert times["5218_2s"] <= times["ryzen_4650g"] * 1.2
