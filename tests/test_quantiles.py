"""Shared nearest-rank quantile math (metrics/quantiles.py).

The dedupe contract: the schbench-style sample percentile and the
histogram bucket quantile route through the same ``nearest_rank``, so
whenever a histogram's edges can represent a sample exactly, both paths
name the same observation.  Pinned here property-style (hypothesis)
rather than by examples alone.
"""

import pytest
from hypothesis import given, strategies as st

from repro.metrics.latency import LatencyRecorder
from repro.metrics.latency import percentile as latency_percentile
from repro.metrics.quantiles import (histogram_quantile, nearest_rank,
                                     percentile)
from repro.obs.metrics import Histogram

EDGES = (1, 2, 5, 10, 20, 50, 100, 200, 500, 1000)

samples_on_edges = st.lists(st.sampled_from(EDGES), min_size=1,
                            max_size=200)
percentiles = st.floats(min_value=0, max_value=100,
                        allow_nan=False)


def to_counts(values):
    counts = [0] * (len(EDGES) + 1)
    for v in values:
        for i, edge in enumerate(EDGES):
            if v <= edge:
                counts[i] += 1
                break
        else:
            counts[-1] += 1
    return counts


class TestNearestRank:
    def test_bounds_and_errors(self):
        assert nearest_rank(10, 0) == 1
        assert nearest_rank(10, 100) == 10
        assert nearest_rank(1, 50) == 1
        with pytest.raises(ValueError):
            nearest_rank(0, 50)
        with pytest.raises(ValueError):
            nearest_rank(5, 101)

    @given(n=st.integers(1, 500), p=percentiles)
    def test_rank_always_a_valid_index(self, n, p):
        assert 1 <= nearest_rank(n, p) <= n

    @given(n=st.integers(1, 100), p=percentiles, q=percentiles)
    def test_rank_monotone_in_percentile(self, n, p, q):
        lo, hi = sorted((p, q))
        assert nearest_rank(n, lo) <= nearest_rank(n, hi)


class TestPercentile:
    def test_classic_examples(self):
        assert percentile([15, 20, 35, 40, 50], 30) == 20
        assert percentile([15, 20, 35, 40, 50], 100) == 50
        assert percentile([7], 99) == 7
        with pytest.raises(ValueError):
            percentile([], 50)

    @given(values=st.lists(st.integers(0, 10_000), min_size=1), p=percentiles)
    def test_result_is_an_observation_within_range(self, values, p):
        got = percentile(values, p)
        assert got in values
        assert min(values) <= got <= max(values)

    def test_latency_module_reexports_the_shared_helper(self):
        assert latency_percentile is percentile
        rec = LatencyRecorder()
        for v in (1, 2, 3, 4, 100):
            rec.record(v)
        assert rec.p99() == 100


class TestHistogramQuantile:
    def test_empty_and_overflow(self):
        assert histogram_quantile(EDGES, [0] * (len(EDGES) + 1), 50) is None
        counts = [0] * (len(EDGES) + 1)
        counts[-1] = 3   # everything overflowed: no finite bound exists
        assert histogram_quantile(EDGES, counts, 50) is None

    @given(values=samples_on_edges, p=percentiles)
    def test_agrees_with_sample_percentile_on_representable_data(
            self, values, p):
        # Samples drawn from the edge set are represented exactly, so
        # the histogram's bucket bound IS the sample's percentile.
        assert histogram_quantile(EDGES, to_counts(values), p) == \
            percentile(values, p)

    @given(values=st.lists(st.integers(0, 999), min_size=1), p=percentiles)
    def test_bucket_bound_never_below_the_sample_percentile(self, values, p):
        # For arbitrary in-range samples the upper edge is a bound.
        assert histogram_quantile(EDGES, to_counts(values), p) >= \
            percentile(values, p)

    @given(values=samples_on_edges, p=percentiles)
    def test_matches_the_obs_histogram_method(self, values, p):
        hist = Histogram("h", EDGES)
        for v in values:
            hist.observe(v)
        assert hist.quantile(p) == \
            histogram_quantile(EDGES, list(hist.counts), p)
