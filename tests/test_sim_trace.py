"""Tests for the tracer."""

import pytest

from repro.sim.trace import Segment, Tracer


def collect(tracer):
    out = []
    tracer.add_sink(lambda *a: out.append(a))
    return out


class TestTracer:
    def test_begin_end_produces_segment(self):
        t = Tracer(2, record_segments=True)
        t.begin(0, 10, 2100, task_id=7)
        t.end(0, 25)
        (seg,) = t.segments
        assert seg == Segment(0, 10, 25, 2100, 7, False)
        assert seg.duration == 15

    def test_zero_length_segments_suppressed(self):
        t = Tracer(1, record_segments=True)
        t.begin(0, 10, 2100, 1)
        t.end(0, 10)
        assert t.segments == []

    def test_begin_closes_previous(self):
        t = Tracer(1, record_segments=True)
        t.begin(0, 0, 1000, 1)
        t.begin(0, 5, 1000, 2)
        t.end(0, 9)
        assert [(s.task_id, s.start, s.end) for s in t.segments] == \
            [(1, 0, 5), (2, 5, 9)]

    def test_freq_change_splits_segment(self):
        t = Tracer(1, record_segments=True)
        t.begin(0, 0, 1000, 1)
        t.freq_change(0, 4, 2000)
        t.end(0, 10)
        assert [(s.freq_mhz, s.start, s.end) for s in t.segments] == \
            [(1000, 0, 4), (2000, 4, 10)]

    def test_freq_change_same_freq_noop(self):
        t = Tracer(1, record_segments=True)
        t.begin(0, 0, 1000, 1)
        t.freq_change(0, 4, 1000)
        t.end(0, 10)
        assert len(t.segments) == 1

    def test_freq_change_on_idle_core_noop(self):
        t = Tracer(1, record_segments=True)
        t.freq_change(0, 4, 2000)
        assert t.segments == []

    def test_end_without_begin_noop(self):
        t = Tracer(1, record_segments=True)
        t.end(0, 5)
        assert t.segments == []

    def test_sinks_called_even_without_recording(self):
        t = Tracer(1, record_segments=False)
        out = collect(t)
        t.begin(0, 0, 1500, 3)
        t.end(0, 8)
        assert out == [(0, 0, 8, 1500, 3, False)]
        assert t.segments == []

    def test_flush_closes_all(self):
        t = Tracer(3, record_segments=True)
        t.begin(0, 0, 1000, 1)
        t.begin(2, 0, 1000, 2)
        t.flush(20)
        assert sorted(s.core for s in t.segments) == [0, 2]
        assert all(s.end == 20 for s in t.segments)

    def test_spin_segments_marked(self):
        t = Tracer(1, record_segments=True)
        t.begin(0, 0, 3000, -1, spinning=True)
        t.end(0, 5)
        (seg,) = t.segments
        assert seg.spinning and seg.task_id == -1
        assert t.busy_segments() == []

    def test_busy_segments_filters_idle_and_spin(self):
        t = Tracer(2, record_segments=True)
        t.begin(0, 0, 3000, 5)
        t.end(0, 5)
        t.begin(1, 0, 3000, -1, spinning=True)
        t.end(1, 5)
        assert [s.task_id for s in t.busy_segments()] == [5]

    def test_busy_segments_raises_without_recording(self):
        """Sink-only tracers store nothing; asking for segments must not
        silently return []."""
        t = Tracer(1, record_segments=False)
        t.begin(0, 0, 1500, 3)
        t.end(0, 8)
        with pytest.raises(RuntimeError, match="record_segments"):
            t.busy_segments()
