"""Deeper tests for the server and messaging workloads (§5.6)."""

import pytest

from repro.experiments.runner import run_experiment
from repro.hw.machines import get_machine
from repro.workloads.messaging import HackbenchWorkload, SchbenchWorkload
from repro.workloads.multiapp import MultiAppWorkload
from repro.workloads.phoronix import PhoronixWorkload
from repro.workloads.servers import (KeyValueStoreWorkload, ServerWorkload,
                                     apache_siege, leveldb, nginx, redis)

SMALL = get_machine("ryzen_4650g")


def run(wl, sched="cfs", seed=1, machine=SMALL):
    return run_experiment(wl, machine, sched, "schedutil", seed=seed)


class TestServerWorkload:
    def test_all_requests_served(self):
        wl = ServerWorkload(n_workers=4, n_requests=80)
        run(wl)
        assert wl.recorder.count == 80

    def test_latencies_positive(self):
        wl = ServerWorkload(n_workers=4, n_requests=50)
        run(wl)
        assert min(wl.recorder.samples_us) >= 0
        assert wl.recorder.p99() >= wl.recorder.p50()

    def test_more_workers_lower_tail(self):
        tails = {}
        for n in (1, 8):
            wl = ServerWorkload(n_workers=n, n_requests=120,
                                request_us=400, arrival_us=60)
            run(wl)
            tails[n] = wl.recorder.p99()
        assert tails[8] < tails[1]

    def test_factories(self):
        assert nginx().n_workers == 4
        assert apache_siege(16).name == "apache-siege-c16"
        assert isinstance(leveldb(), KeyValueStoreWorkload)
        assert isinstance(redis(), KeyValueStoreWorkload)

    def test_kv_compaction_forks_children(self):
        wl = leveldb()
        res = run(wl)
        assert res.n_tasks > 5     # main + background compactions

    def test_redis_lighter_than_leveldb(self):
        r1 = run(leveldb(), seed=2)
        r2 = run(redis(), seed=2)
        assert r2.n_tasks <= r1.n_tasks


class TestHackbench:
    def test_message_count_conserved(self):
        wl = HackbenchWorkload(groups=2, pairs_per_group=2, loops=25)
        res = run(wl)
        # 2 groups x 2 pairs x 25 loops x 2 directions of messages; every
        # Send wakes its peer: wakeups scale with the message count.
        assert res.total_wakeups >= 2 * 2 * 25

    def test_loops_scale_runtime(self):
        short = run(HackbenchWorkload(groups=2, pairs_per_group=2, loops=20),
                    seed=3)
        long = run(HackbenchWorkload(groups=2, pairs_per_group=2, loops=60),
                   seed=3)
        assert long.makespan_us > short.makespan_us * 1.5


class TestSchbench:
    def test_poison_pills_terminate_workers(self):
        wl = SchbenchWorkload(message_threads=2, workers_per_thread=2,
                              requests=10)
        res = run(wl)
        assert res.makespan_us > 0
        assert wl.recorder.count == 20

    def test_latency_includes_work_time(self):
        wl = SchbenchWorkload(message_threads=1, workers_per_thread=1,
                              requests=10, work_us=500)
        run(wl)
        # Latency = wake + run + 500 us of work, at >= 1 GHz-equivalent.
        assert wl.recorder.p50() >= 100


class TestMultiApp:
    def test_completion_before_run_raises(self):
        wl = MultiAppWorkload([nginx(n_requests=30)])
        with pytest.raises(RuntimeError):
            wl.completion_times_us()

    def test_pair_runs_concurrently(self):
        a = PhoronixWorkload("zstd-compression-7", scale=0.2)
        b = PhoronixWorkload("libgav1-4", scale=0.2)
        wl = MultiAppWorkload([a, b])
        res = run(wl, machine=get_machine("6130_2s"))
        times = wl.completion_times_us()
        # Both finished within the run, and the run ended with the later.
        assert max(times.values()) <= res.makespan_us
        assert len(times) == 2

    def test_name_composition(self):
        wl = MultiAppWorkload([nginx(), redis()])
        assert wl.name == "multi:nginx+redis"
