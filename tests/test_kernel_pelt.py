"""Tests for PELT load tracking."""

import pytest
from hypothesis import given, strategies as st

from repro.kernel.pelt import (HALFLIFE_US, PELT_MAX, PeltAvg, decay_factor)


class TestDecayFactor:
    def test_halflife(self):
        assert decay_factor(HALFLIFE_US) == pytest.approx(0.5)

    def test_zero_delta(self):
        assert decay_factor(0) == 1.0

    def test_two_halflives(self):
        assert decay_factor(2 * HALFLIFE_US) == pytest.approx(0.25)

    def test_composition(self):
        assert decay_factor(10_000) * decay_factor(22_000) == \
            pytest.approx(decay_factor(32_000))


class TestPeltAvg:
    def test_running_converges_to_max(self):
        avg = PeltAvg(0)
        avg.update(20 * HALFLIFE_US, running=True)
        assert avg.value == pytest.approx(PELT_MAX, rel=1e-4)

    def test_idle_decays_to_zero(self):
        avg = PeltAvg(0, value=PELT_MAX)
        avg.update(20 * HALFLIFE_US, running=False)
        assert avg.value < 1.0

    def test_halflife_semantics(self):
        avg = PeltAvg(0, value=800.0)
        avg.update(HALFLIFE_US, running=False)
        assert avg.value == pytest.approx(400.0)

    def test_running_one_halflife_gains_half_the_gap(self):
        avg = PeltAvg(0, value=0.0)
        avg.update(HALFLIFE_US, running=True)
        assert avg.value == pytest.approx(PELT_MAX / 2)

    def test_incremental_equals_batch(self):
        a = PeltAvg(0, value=300.0)
        b = PeltAvg(0, value=300.0)
        for t in (1_000, 5_000, 12_000, 30_000):
            a.update(t, running=True)
        b.update(30_000, running=True)
        assert a.value == pytest.approx(b.value)

    def test_peek_does_not_mutate(self):
        avg = PeltAvg(0, value=500.0)
        peeked = avg.peek(HALFLIFE_US, running=False)
        assert peeked == pytest.approx(250.0)
        assert avg.value == 500.0
        assert avg.last_update_us == 0

    def test_peek_running(self):
        avg = PeltAvg(0, value=0.0)
        assert avg.peek(HALFLIFE_US, running=True) == \
            pytest.approx(PELT_MAX / 2)

    def test_add_caps_at_max(self):
        avg = PeltAvg(0, value=1000.0)
        avg.add(500.0)
        assert avg.value == PELT_MAX

    def test_remove_floors_at_zero(self):
        avg = PeltAvg(0, value=100.0)
        avg.remove(500.0)
        assert avg.value == 0.0

    def test_stale_update_noop(self):
        avg = PeltAvg(100, value=500.0)
        avg.update(50, running=True)
        assert avg.value == 500.0


@given(st.floats(0, PELT_MAX), st.lists(
    st.tuples(st.integers(1, 50_000), st.booleans()), min_size=1,
    max_size=30))
def test_bounds_invariant(initial, steps):
    """Property: the average always stays in [0, PELT_MAX]."""
    avg = PeltAvg(0, value=initial)
    t = 0
    for delta, running in steps:
        t += delta
        avg.update(t, running)
        assert 0.0 <= avg.value <= PELT_MAX


@given(st.integers(1, 100_000), st.integers(1, 100_000))
def test_idle_decay_is_multiplicative(d1, d2):
    """Property: decaying in two steps equals decaying once."""
    a = PeltAvg(0, value=900.0)
    a.update(d1, False)
    a.update(d1 + d2, False)
    b = PeltAvg(0, value=900.0)
    b.update(d1 + d2, False)
    assert a.value == pytest.approx(b.value, rel=1e-9)
