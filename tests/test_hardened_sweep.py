"""Hardened sweep execution: crash/hang recovery, checkpoints, quarantine.

The chaos worker hook (``$REPRO_CHAOS`` + ``$REPRO_CHAOS_DIR``) faults each
spec's *worker process* exactly once — a crash (`os._exit`) or a hang — so
these tests drive the executor's retry, timeout, degradation and resume
machinery end to end with real process pools.
"""

import json
import os

import pytest

from repro.experiments.cache import (QUARANTINE_DIR, ResultCache,
                                     atomic_write_json, spec_key)
from repro.experiments.parallel import (RunSpec, SweepExecutor, SweepFailure,
                                        execute_spec)
from repro.faults import FaultConfig

SPECS = [
    RunSpec(workload="phoronix-libavif-avifenc-1", machine="5218_2s",
            scheduler=sched, governor="schedutil", seed=seed, scale=0.3)
    for sched in ("cfs", "nest")
    for seed in (1, 2)
]


def assert_results_identical(a, b):
    assert a.makespan_us == b.makespan_us
    assert a.energy_joules == b.energy_joules
    assert a.metrics == b.metrics
    assert a.policy_stats == b.policy_stats


@pytest.fixture
def chaos(monkeypatch, tmp_path):
    """Arm the chaos worker hook; returns a setter for the mode list."""
    sentinel_dir = tmp_path / "sentinels"
    sentinel_dir.mkdir()
    monkeypatch.setenv("REPRO_CHAOS_DIR", str(sentinel_dir))

    def arm(modes):
        monkeypatch.setenv("REPRO_CHAOS", modes)

    return arm


class TestChaosHook:
    def test_inert_in_parent_process(self, chaos):
        """The hook must never fault the parent (serial/degraded path)."""
        chaos("crash-once")
        res = execute_spec(SPECS[0])     # would os._exit(23) if buggy
        assert res.makespan_us > 0

    def test_inert_without_env(self):
        assert execute_spec(SPECS[0]).makespan_us > 0


class TestCrashRecovery:
    def test_crashed_workers_retried_to_completion(self, chaos):
        chaos("crash-once")
        ex = SweepExecutor(jobs=2, retries=2)
        results = ex.run(SPECS)
        assert all(r is not None for r in results)
        assert ex.last_stats.retried > 0
        assert "retried" in ex.last_stats.summary()
        # Recovery must not change the science: same results as serial.
        for spec, res in zip(SPECS, results):
            assert_results_identical(res, execute_spec(spec))

    def test_pool_break_degrades_to_serial(self, chaos):
        chaos("crash-once")
        ex = SweepExecutor(jobs=2, retries=0)
        results = ex.run(SPECS)
        assert all(r is not None for r in results)
        assert ex.last_stats.degraded
        assert "degraded to serial" in ex.last_stats.summary()


class TestHangRecovery:
    def test_hung_pool_timed_out_and_retried(self, chaos):
        chaos("hang-once")
        ex = SweepExecutor(jobs=2, retries=2, timeout_s=1.0)
        results = ex.run(SPECS[:2])
        assert all(r is not None for r in results)
        assert ex.last_stats.timeouts >= 1
        for spec, res in zip(SPECS[:2], results):
            assert_results_identical(res, execute_spec(spec))


class TestFailureBudget:
    BAD = RunSpec(workload="no-such-workload", machine="5218_2s")

    def test_exhausted_retries_raise_sweep_failure(self):
        ex = SweepExecutor(jobs=1, retries=1, backoff_s=0.0)
        with pytest.raises(SweepFailure, match="no-such-workload"):
            ex.run([self.BAD])

    def test_skip_failures_yields_none_and_counts(self):
        ex = SweepExecutor(jobs=1, retries=1, backoff_s=0.0,
                           skip_failures=True)
        results = ex.run([SPECS[0], self.BAD])
        assert results[0] is not None
        assert results[1] is None
        assert ex.last_stats.skipped == 1
        assert "skipped" in ex.last_stats.summary()


class TestCheckpointResume:
    def test_interrupt_flushes_completed_runs(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        calls = []

        def bomb(done, total, spec, result, cached):
            calls.append(spec.label)
            raise KeyboardInterrupt

        ex = SweepExecutor(jobs=1, cache=cache, progress=bomb)
        with pytest.raises(KeyboardInterrupt):
            ex.run(SPECS)
        assert ex.last_stats.interrupted
        assert len(calls) == 1
        # The completed run was checkpointed before the interrupt landed
        # and the report records the sweep as interrupted.
        report = cache.read_report("last-sweep")
        assert report["interrupted"] is True
        completed = [r for r in report["runs"] if r["completed"]]
        pending = [r for r in report["runs"] if r["outcome"] == "pending"]
        assert len(completed) == 1
        assert len(pending) == len(SPECS) - 1

    def test_resumed_sweep_recovers_from_checkpoint(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")

        def bomb(done, total, spec, result, cached):
            raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            SweepExecutor(jobs=1, cache=cache, progress=bomb).run(SPECS)

        ex = SweepExecutor(jobs=1, cache=cache)
        results = ex.run(SPECS)
        assert all(r is not None for r in results)
        assert ex.last_stats.recovered == 1
        assert ex.last_stats.cache_hits == 1
        assert "recovered from checkpoint" in ex.last_stats.summary()
        report = cache.read_report("last-sweep")
        assert report["interrupted"] is False
        outcomes = {r["label"]: r["outcome"] for r in report["runs"]}
        assert sum(1 for o in outcomes.values() if o == "checkpoint") == 1
        assert sum(1 for o in outcomes.values() if o == "simulated") == 3


class TestSpecKeys:
    def test_faults_do_not_perturb_clean_keys(self):
        """Pre-existing cache entries keep their address: a spec with
        faults=None hashes as if the field did not exist."""
        class Legacy:
            pass

        legacy = Legacy()
        for f in ("machine", "workload", "scale", "scheduler", "governor",
                  "seed", "max_us", "nest_params", "kernel_config",
                  "record_trace"):
            setattr(legacy, f, getattr(SPECS[0], f))
        assert spec_key(SPECS[0]) == spec_key(legacy)

    def test_faulted_spec_gets_a_distinct_key(self):
        import dataclasses
        faulted = dataclasses.replace(
            SPECS[0], faults=FaultConfig(hotplug_rate_per_s=1.0))
        assert spec_key(faulted) != spec_key(SPECS[0])


class TestQuarantine:
    def corrupt_entry(self, cache, spec):
        key = spec_key(spec)
        path = cache._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("{ torn", encoding="utf-8")
        return key, path

    def test_corrupt_entry_is_a_miss_and_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        key, path = self.corrupt_entry(cache, SPECS[0])
        assert cache.get(key) is None
        assert not path.exists()
        qfile = cache.root / QUARANTINE_DIR / path.name
        assert qfile.exists()
        assert cache.quarantined == 1
        assert cache.stats()["quarantined"] == 1
        assert cache.stats()["entries"] == 0

    def test_quarantined_entry_resimulated_on_next_sweep(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        ex = SweepExecutor(jobs=1, cache=cache)
        first = ex.run(SPECS[:1])
        self.corrupt_entry(cache, SPECS[0])
        again = SweepExecutor(jobs=1, cache=cache).run(SPECS[:1])
        assert_results_identical(first[0], again[0])

    def test_verify_reports_and_fixes(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        SweepExecutor(jobs=1, cache=cache).run(SPECS[:2])
        self.corrupt_entry(cache, SPECS[2])
        report = cache.verify(fix=True)
        assert report["checked"] == 3
        assert report["corrupt"] == 1
        assert "quarantined_to" in report["entries"][0]
        # The survivors still decode.
        assert cache.verify(fix=True)["corrupt"] == 0

    def test_verify_dry_run_leaves_entries_in_place(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        key, path = self.corrupt_entry(cache, SPECS[0])
        report = cache.verify(fix=False)
        assert report["corrupt"] == 1
        assert path.exists()

    def test_cli_cache_verify(self, tmp_path, monkeypatch, capsys):
        from repro.experiments.cli import main
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        cache = ResultCache()
        assert main(["cache", "verify"]) == 0
        self.corrupt_entry(cache, SPECS[0])
        assert main(["cache", "verify"]) == 1
        out = capsys.readouterr().out
        assert "corrupt" in out
        assert main(["cache", "verify"]) == 0   # already quarantined


class TestAtomicWrites:
    def test_no_tmp_droppings(self, tmp_path):
        target = tmp_path / "sub" / "report.json"
        atomic_write_json(target, {"a": 1}, indent=2)
        assert json.loads(target.read_text()) == {"a": 1}
        assert [p.name for p in target.parent.iterdir()] == ["report.json"]

    def test_failed_write_leaves_no_partial_file(self, tmp_path):
        target = tmp_path / "report.json"
        with pytest.raises(TypeError):
            atomic_write_json(target, {"bad": object()})
        assert not target.exists()
        assert list(tmp_path.iterdir()) == []

    def test_cache_put_is_atomic_format(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        SweepExecutor(jobs=1, cache=cache).run(SPECS[:1])
        entries = list(cache._entry_paths())
        assert len(entries) == 1
        json.loads(entries[0].read_text())   # decodes cleanly
        assert not any(p.suffix == ".tmp"
                       for p in entries[0].parent.iterdir())


class TestFaultedSweep:
    def test_faulted_specs_sweep_deterministically(self, tmp_path):
        fc = FaultConfig(hotplug_rate_per_s=300.0, thermal_rate_per_s=300.0,
                         hotplug_downtime_us=2500, horizon_us=10_000)
        import dataclasses
        specs = [dataclasses.replace(s, faults=fc) for s in SPECS]
        cache = ResultCache(tmp_path / "cache")
        first = SweepExecutor(jobs=2, cache=cache).run(specs)
        second = SweepExecutor(jobs=2, cache=ResultCache(tmp_path / "cache"))\
            .run(specs)
        for a, b in zip(first, second):
            assert_results_identical(a, b)
        serial = [execute_spec(s) for s in specs]
        for a, b in zip(first, serial):
            assert_results_identical(a, b)
