"""Regenerate the golden files pinned by the observability tests.

* ``tests/data/golden_trace.json`` — the Perfetto trace of the pinned
  hand-built run (test_obs_export.py).
* ``tests/data/golden_analysis.json`` — the trace-analysis report of
  the fig2 reference run (test_obs_analysis.py).

Run after an *intentional* simulator, exporter or analyzer change::

    PYTHONPATH=src:tests python tests/golden_regen.py

then review the diffs under tests/data/ before committing.  An explicit
output path regenerates only the trace golden elsewhere
(test_golden_regen.py uses this to prove the script reproduces the
checked-in file byte for byte)::

    PYTHONPATH=src:tests python tests/golden_regen.py /tmp/regen.json
"""

import sys
from pathlib import Path
from typing import Optional

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from test_obs_export import GOLDEN_PATH, golden_doc, golden_json  # noqa: E402
from test_obs_analysis import (ANALYSIS_GOLDEN_PATH,  # noqa: E402
                               analysis_golden_report)
from test_scxnest_golden import (SCXNEST_GOLDEN_PATH,  # noqa: E402
                                 scxnest_golden_report)


def regenerate(out: Optional[Path] = None) -> Path:
    """Write the golden trace to ``out`` (default: the checked-in path)."""
    out = Path(out) if out is not None else GOLDEN_PATH
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(golden_json(golden_doc()) + "\n", encoding="utf-8")
    return out


def regenerate_analysis(out: Optional[Path] = None) -> Path:
    """Write the golden analysis report (default: the checked-in path)."""
    from repro.obs.analysis import report_json
    out = Path(out) if out is not None else ANALYSIS_GOLDEN_PATH
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(report_json(analysis_golden_report(cached=False)),
                   encoding="utf-8")
    return out


def regenerate_scxnest(out: Optional[Path] = None) -> Path:
    """Write the golden scxnest analysis report (default: checked in)."""
    from repro.obs.analysis import report_json
    out = Path(out) if out is not None else SCXNEST_GOLDEN_PATH
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(report_json(scxnest_golden_report(cached=False)),
                   encoding="utf-8")
    return out


if __name__ == "__main__":
    if len(sys.argv) > 1:
        print(f"wrote {regenerate(Path(sys.argv[1]))}")
    else:
        print(f"wrote {regenerate()}")
        print(f"wrote {regenerate_analysis()}")
        print(f"wrote {regenerate_scxnest()}")
