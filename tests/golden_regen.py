"""Regenerate the golden Perfetto trace pinned by test_obs_export.py.

Run after an *intentional* simulator or exporter change::

    PYTHONPATH=src:tests python tests/golden_regen.py

then review the diff of tests/data/golden_trace.json before committing.
An explicit output path regenerates elsewhere (test_golden_regen.py uses
this to prove the script reproduces the checked-in file byte for byte)::

    PYTHONPATH=src:tests python tests/golden_regen.py /tmp/regen.json
"""

import sys
from pathlib import Path
from typing import Optional

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from test_obs_export import GOLDEN_PATH, golden_doc, golden_json  # noqa: E402


def regenerate(out: Optional[Path] = None) -> Path:
    """Write the golden trace to ``out`` (default: the checked-in path)."""
    out = Path(out) if out is not None else GOLDEN_PATH
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(golden_json(golden_doc()) + "\n", encoding="utf-8")
    return out


if __name__ == "__main__":
    target = Path(sys.argv[1]) if len(sys.argv) > 1 else None
    print(f"wrote {regenerate(target)}")
