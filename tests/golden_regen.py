"""Regenerate the golden Perfetto trace pinned by test_obs_export.py.

Run after an *intentional* simulator or exporter change::

    PYTHONPATH=src:tests python tests/golden_regen.py

then review the diff of tests/data/golden_trace.json before committing.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from test_obs_export import GOLDEN_PATH, golden_doc, golden_json  # noqa: E402

if __name__ == "__main__":
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(golden_json(golden_doc()) + "\n",
                           encoding="utf-8")
    print(f"wrote {GOLDEN_PATH}")
