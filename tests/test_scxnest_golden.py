"""Byte-pinned golden analysis report for the scx_nest comparator.

Mirrors test_obs_analysis.py's golden for Nest: one pinned scxnest run
analyzed end to end, the JSON report checked in and compared byte for
byte.  Drift means a simulator/policy/analyzer change nobody reviewed.
Regenerate deliberately with ``PYTHONPATH=src:tests python
tests/golden_regen.py`` and review the diff.
"""

import json
from pathlib import Path

from repro.obs.analysis import analysis_digest, report_json, report_text

SCXNEST_GOLDEN_PATH = (Path(__file__).parent / "data"
                       / "golden_scxnest_analysis.json")

_CACHE = {}


def scxnest_golden_run(engine: str = "ref"):
    """The pinned scxnest reference run (the conformance 'warm' box)."""
    from repro.experiments.runner import run_experiment
    from repro.hw.machines import get_machine
    from repro.workloads.catalog import make_workload

    machine = get_machine("ryzen_4650g")
    res = run_experiment(
        make_workload("dacapo-h2", scale=0.1), machine,
        "scxnest", "schedutil", seed=3,
        record_trace=True, collect_events=True, engine=engine)
    return res, machine


def scxnest_golden_report(cached: bool = True):
    from repro.obs.analysis import analyze_run
    if cached and "report" in _CACHE:
        return _CACHE["report"]
    res, machine = scxnest_golden_run()
    report = analyze_run(res, res.events, n_cpus=machine.n_cpus,
                         segments=res.trace_segments)
    if cached:
        _CACHE["report"] = report
    return report


def test_matches_golden_file():
    assert SCXNEST_GOLDEN_PATH.is_file(), \
        "golden missing; regenerate via tests/golden_regen.py"
    assert report_json(scxnest_golden_report()) == \
        SCXNEST_GOLDEN_PATH.read_text(encoding="utf-8")


def test_report_covers_the_scxnest_placement_tiers():
    report = json.loads(SCXNEST_GOLDEN_PATH.read_text(encoding="utf-8"))
    tiers = report["analyzers"]["latency_tiers"]["tiers"]
    # The pinned run exercises the whole placement ladder: warm primary
    # hits, reserve promotions, impatient fallbacks and CFS fallbacks.
    for tier in ("primary", "reserve", "impatient", "cfs"):
        assert tiers.get(tier, {}).get("n", 0) > 0, tier


def test_digest_fingerprints_the_report():
    digest = analysis_digest(scxnest_golden_report())
    assert len(digest["sha256"]) == 64
    assert digest == analysis_digest(
        json.loads(SCXNEST_GOLDEN_PATH.read_text(encoding="utf-8")))


def test_text_digest_renders():
    text = report_text(scxnest_golden_report())
    assert "latency:" in text and "warm cores:" in text
