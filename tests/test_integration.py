"""Cross-module integration tests: the paper's headline behaviours.

These are slower than unit tests but assert the properties the whole
reproduction stands on.  Thresholds are deliberately loose — they encode
*shapes* (who wins, directions), not point estimates.
"""

import pytest

from repro.core.params import NestParams
from repro.experiments.runner import run_experiment
from repro.hw.machines import get_machine
from repro.workloads.configure import ConfigureWorkload
from repro.workloads.dacapo import DacapoWorkload
from repro.workloads.messaging import HackbenchWorkload
from repro.workloads.nas import NasWorkload

M5218 = get_machine("5218_2s")
M6130_4S = get_machine("6130_4s")
ME7 = get_machine("e78870_4s")


def run(wl, machine, sched, gov="schedutil", seed=1, **kw):
    return run_experiment(wl, machine, sched, gov, seed=seed, **kw)


class TestConfigureHeadline:
    """§5.2: the software-configuration result."""

    @pytest.fixture(scope="class")
    def results(self):
        out = {}
        for sched, gov in (("cfs", "schedutil"), ("cfs", "performance"),
                           ("nest", "schedutil"), ("smove", "schedutil")):
            out[(sched, gov)] = run(ConfigureWorkload("llvm_ninja",
                                                      scale=0.6),
                                    M5218, sched, gov)
        return out

    def test_nest_speedup_over_5pct(self, results):
        base = results[("cfs", "schedutil")].makespan_us
        nest = results[("nest", "schedutil")].makespan_us
        assert base / nest - 1 > 0.05

    def test_nest_nearly_eliminates_underload(self, results):
        cfs_u = results[("cfs", "schedutil")].underload.underload_per_second
        nest_u = results[("nest", "schedutil")].underload.underload_per_second
        assert nest_u < cfs_u * 0.6

    def test_nest_reaches_higher_frequencies(self, results):
        cfs_f = results[("cfs", "schedutil")].freq_dist.top_bins_fraction()
        nest_f = results[("nest", "schedutil")].freq_dist.top_bins_fraction()
        assert nest_f > cfs_f + 0.3

    def test_nest_saves_energy(self, results):
        base = results[("cfs", "schedutil")].energy_joules
        nest = results[("nest", "schedutil")].energy_joules
        assert nest < base

    def test_smove_far_from_nest_on_speed_shift(self, results):
        """§5.2: Smove's speedup stays small on the 5218."""
        base = results[("cfs", "schedutil")].makespan_us
        smove = results[("smove", "schedutil")].makespan_us
        nest = results[("nest", "schedutil")].makespan_us
        smove_speedup = base / smove - 1
        nest_speedup = base / nest - 1
        assert smove_speedup < nest_speedup


class TestDacapoHeadline:
    """§5.3: high-underload apps win, few-task apps are unharmed."""

    def test_h2_improves_on_4socket_6130(self):
        base = run(DacapoWorkload("h2", scale=0.7), M6130_4S, "cfs")
        nest = run(DacapoWorkload("h2", scale=0.7), M6130_4S, "nest")
        assert base.makespan_us / nest.makespan_us - 1 > 0.04

    def test_fop_within_noise(self):
        base = run(DacapoWorkload("fop", scale=0.5), M6130_4S, "cfs")
        nest = run(DacapoWorkload("fop", scale=0.5), M6130_4S, "nest")
        assert abs(base.makespan_us / nest.makespan_us - 1) < 0.08


class TestNasHeadline:
    """§5.4: parity on 2-socket Skylake; no large regression anywhere."""

    def test_mg_parity_on_2socket(self):
        base = run(NasWorkload("mg", scale=0.3), M5218, "cfs")
        nest = run(NasWorkload("mg", scale=0.3), M5218, "nest")
        assert abs(base.makespan_us / nest.makespan_us - 1) < 0.10

    def test_bt_speedup_on_e7(self):
        base = run(NasWorkload("bt", scale=0.15), ME7, "cfs")
        nest = run(NasWorkload("bt", scale=0.15), ME7, "nest")
        assert base.makespan_us / nest.makespan_us - 1 > 0.10


class TestHackbenchHeadline:
    """§5.6: Nest's selection overhead shows on wakeup-dominated loads."""

    def test_nest_slower_on_hackbench(self):
        base = run(HackbenchWorkload(groups=4, pairs_per_group=3, loops=80),
                   M5218, "cfs")
        nest = run(HackbenchWorkload(groups=4, pairs_per_group=3, loops=80),
                   M5218, "nest")
        assert nest.makespan_us > base.makespan_us


class TestWorkConservationInvariant:
    def test_no_overload_with_placement_flag(self):
        """With the §3.4 flag, Nest should essentially never pile tasks on
        one core while others idle."""
        res = run(ConfigureWorkload("gcc"), M5218, "nest")
        assert res.underload.overload_per_second < 0.5

    def test_determinism_across_policies_workload_shape(self):
        """The workload structure (task count) is placement-independent."""
        a = run(DacapoWorkload("pmd", scale=0.3), M5218, "cfs", seed=4)
        b = run(DacapoWorkload("pmd", scale=0.3), M5218, "nest", seed=4)
        assert a.n_tasks == b.n_tasks


class TestAblationShapes:
    def test_reserve_matters_for_configure(self):
        """§5.2: removing the reserve nest degrades configure."""
        full = run(ConfigureWorkload("mplayer", scale=0.5), M5218, "nest")
        nores = run_experiment(ConfigureWorkload("mplayer", scale=0.5),
                               M5218, "nest", "schedutil", seed=1,
                               nest_params=NestParams().without("reserve"))
        assert nores.makespan_us > full.makespan_us * 1.02

    def test_spin_matters_for_h2(self):
        """§5.3: removing spinning costs h2-class apps the most (the paper
        measures 17-26% on the 4-socket 6130)."""
        full = run(DacapoWorkload("h2"), M6130_4S, "nest")
        nospin = run_experiment(DacapoWorkload("h2"), M6130_4S,
                                "nest", "schedutil", seed=1,
                                nest_params=NestParams().without("spin"))
        assert nospin.makespan_us > full.makespan_us * 1.05
