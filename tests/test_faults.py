"""Fault-injection subsystem: plans, injector, kernel fault mechanics.

The contract under test is the chaos subsystem's headline property: a
faulted run is exactly as deterministic as a clean one, because the fault
plan is drawn from the run's own seeded RNG streams and every fault is
applied as an ordinary engine event.
"""

import pytest

from repro.experiments.runner import run_experiment
from repro.faults import (FAULT_PROFILES, FaultConfig, FaultInjector,
                          FaultPlan, fault_profile)
from repro.faults.plan import (KIND_CORE_FAILURE, KIND_CPU_OFFLINE,
                               KIND_STRAGGLER, KIND_THERMAL_CAP, _count)
from repro.governors.performance import PerformanceGovernor
from repro.hw.freqmodel import SPEED_SHIFT
from repro.hw.machines import Machine, get_machine
from repro.hw.topology import Topology
from repro.hw.turbo import XEON_5218
from repro.kernel.scheduler_core import Kernel
from repro.kernel.syscalls import Compute
from repro.sched.cfs import CfsPolicy
from repro.sim.engine import Engine, SimulationError
from repro.sim.rng import RngRegistry
from repro.workloads.base import ms_of_work
from repro.workloads.catalog import make_workload

MACHINE = Machine(name="t", cpu_model="t", microarchitecture="t",
                  topology=Topology(2, 4, 2), turbo=XEON_5218, pm=SPEED_SHIFT)

#: A config whose horizon matches the short test workloads, so planned
#: faults actually land inside the run.
SHORT = dict(horizon_us=10_000)


def make_kernel():
    eng = Engine(0)
    kern = Kernel(eng, MACHINE, CfsPolicy(), PerformanceGovernor())
    return eng, kern


def hog(kern, cpu, work_ms=1000):
    def body(api):
        yield Compute(ms_of_work(work_ms))

    t = kern._new_task(body, f"hog{cpu}", None)
    kern.enqueue(t, cpu)
    return t


class TestFaultConfig:
    def test_disabled_by_default(self):
        assert not FaultConfig().enabled

    def test_each_family_enables(self):
        assert FaultConfig(hotplug_rate_per_s=1.0).enabled
        assert FaultConfig(thermal_rate_per_s=1.0).enabled
        assert FaultConfig(tick_jitter_us=10).enabled
        assert FaultConfig(straggler_rate_per_s=1.0).enabled

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultConfig(horizon_us=0)
        with pytest.raises(ValueError):
            FaultConfig(straggler_factor=0.5)
        with pytest.raises(ValueError):
            FaultConfig(thermal_cap_ratio=0.0)
        with pytest.raises(ValueError):
            FaultConfig(min_online_cpus=0)

    def test_profiles(self):
        assert not fault_profile("none").enabled
        for name in ("hotplug", "thermal", "jitter", "stragglers", "chaos"):
            assert fault_profile(name).enabled, name
        with pytest.raises(KeyError):
            fault_profile("earthquake")

    def test_count_rounding(self):
        assert _count(0.0, 1_000_000) == 0
        assert _count(4.0, 1_000_000) == 4
        assert _count(4.0, 500_000) == 2


class TestFaultPlan:
    def gen(self, config, seed=0):
        return FaultPlan.generate(config, n_cpus=16, n_physical_cores=8,
                                  nominal_mhz=2300, min_mhz=800,
                                  rng=RngRegistry(seed))

    def test_same_seed_same_plan(self):
        cfg = FaultConfig(hotplug_rate_per_s=3.0, thermal_rate_per_s=3.0,
                          straggler_rate_per_s=3.0)
        a, b = self.gen(cfg, seed=7), self.gen(cfg, seed=7)
        assert a.specs == b.specs

    def test_different_seed_different_plan(self):
        cfg = FaultConfig(hotplug_rate_per_s=5.0)
        assert self.gen(cfg, seed=1).specs != self.gen(cfg, seed=2).specs

    def test_families_draw_from_independent_streams(self):
        """Enabling thermal faults must not shift the hotplug draws."""
        only_hotplug = self.gen(FaultConfig(hotplug_rate_per_s=5.0))
        both = self.gen(FaultConfig(hotplug_rate_per_s=5.0,
                                    thermal_rate_per_s=5.0))
        hot = [s for s in both.specs if s.kind == KIND_CPU_OFFLINE]
        assert hot == only_hotplug.specs

    def test_specs_sorted_and_in_horizon(self):
        plan = self.gen(FaultConfig(hotplug_rate_per_s=10.0,
                                    straggler_rate_per_s=10.0,
                                    horizon_us=50_000))
        times = [s.at_us for s in plan.specs]
        assert times == sorted(times)
        assert all(1 <= t <= 50_000 for t in times)

    def test_counts_and_describe(self):
        plan = self.gen(FaultConfig(hotplug_rate_per_s=3.0,
                                    tick_jitter_us=100))
        assert plan.counts() == {KIND_CPU_OFFLINE: 6}   # 3/s over the 2s horizon
        assert "cpu_offline=6" in plan.describe()
        assert "tick_jitter" in plan.describe()

    def test_thermal_cap_floored_at_min_mhz(self):
        plan = self.gen(FaultConfig(thermal_rate_per_s=5.0,
                                    thermal_cap_ratio=0.01))
        assert all(s.value == 800 for s in plan.specs
                   if s.kind == KIND_THERMAL_CAP)

    def test_straggler_value_scales_factor(self):
        plan = self.gen(FaultConfig(straggler_rate_per_s=5.0,
                                    straggler_factor=2.5))
        assert all(s.value == 250 for s in plan.specs
                   if s.kind == KIND_STRAGGLER)


class TestCorrelatedFailurePlans:
    """Correlated core-failure bursts: same-socket targeting, the k-of-n
    budget, seeded determinism, and the named CLI profiles."""

    def gen(self, config, seed=0, n_cpus=16, n_sockets=2):
        return FaultPlan.generate(config, n_cpus=n_cpus,
                                  n_physical_cores=n_cpus // 2,
                                  nominal_mhz=2300, min_mhz=800,
                                  rng=RngRegistry(seed), n_sockets=n_sockets)

    def test_same_seed_bit_identical_plan(self):
        cfg = FaultConfig(core_failure_rate_per_s=10.0,
                          core_failure_burst=3)
        a, b = self.gen(cfg, seed=9), self.gen(cfg, seed=9)
        assert a.specs == b.specs

    def test_different_seed_different_plan(self):
        cfg = FaultConfig(core_failure_rate_per_s=10.0)
        assert self.gen(cfg, seed=1).specs != self.gen(cfg, seed=2).specs

    def test_burst_targets_share_a_socket(self):
        cfg = FaultConfig(core_failure_rate_per_s=20.0,
                          core_failure_burst=4)
        plan = self.gen(cfg, n_cpus=16, n_sockets=2)
        bursts = {}
        for s in plan.specs:
            assert s.kind == KIND_CORE_FAILURE
            bursts.setdefault(s.at_us, []).append(s.target)
        assert bursts
        for targets in bursts.values():
            sockets = {t // 8 for t in targets}   # 8 threads per socket
            assert len(sockets) == 1
            assert len(set(targets)) == len(targets)   # distinct threads

    def test_budget_caps_total_failures(self):
        cfg = FaultConfig(core_failure_rate_per_s=50.0,
                          core_failure_burst=4, core_failure_budget=6)
        plan = self.gen(cfg)
        assert 0 < len(plan.specs) <= 6

    def test_burst_clamped_to_socket_size(self):
        cfg = FaultConfig(core_failure_rate_per_s=5.0,
                          core_failure_burst=64)
        plan = self.gen(cfg, n_cpus=8, n_sockets=2)
        bursts = {}
        for s in plan.specs:
            bursts.setdefault(s.at_us, []).append(s.target)
        assert all(len(ts) <= 4 for ts in bursts.values())

    def test_family_stream_is_independent(self):
        """Enabling hotplug must not shift the corefail draws."""
        only = self.gen(FaultConfig(core_failure_rate_per_s=5.0))
        both = self.gen(FaultConfig(core_failure_rate_per_s=5.0,
                                    hotplug_rate_per_s=5.0))
        core = [s for s in both.specs if s.kind == KIND_CORE_FAILURE]
        assert core == only.specs

    def test_downtime_carried_on_specs(self):
        cfg = FaultConfig(core_failure_rate_per_s=5.0,
                          core_failure_downtime_us=77_000)
        plan = self.gen(cfg)
        assert all(s.duration_us == 77_000 for s in plan.specs)

    def test_profiles_registered(self):
        for name in ("corefail", "corefail-burst"):
            cfg = fault_profile(name)
            assert cfg.enabled
            assert cfg.core_failure_rate_per_s > 0
        assert fault_profile("corefail-burst").core_failure_burst \
            > fault_profile("corefail").core_failure_burst

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultConfig(core_failure_burst=0)
        with pytest.raises(ValueError):
            FaultConfig(core_failure_budget=-1)
        with pytest.raises(ValueError):
            FaultConfig(core_failure_downtime_us=-1)


class TestHotplugMechanics:
    def test_offline_drains_and_migrates(self):
        eng, kern = make_kernel()
        t = hog(kern, 3)
        eng.run(until=100)
        assert t.cpu == 3
        kern.set_cpu_offline(3)
        assert not kern.cpu_online[3]
        assert kern.cpus[3].current is None
        assert kern.rqs[3].nr_queued == 0
        assert not kern.cpu_is_idle(3)       # offline is not "idle"
        assert kern.metrics.counter("fault_orphan_migrations").value == 1
        eng.run(until=200)
        assert t.cpu is not None and t.cpu != 3

    def test_offline_scrubs_attachment_history(self):
        eng, kern = make_kernel()
        t = hog(kern, 2)
        t.core_history = [2, 2]
        assert t.attached_core == 2
        kern.set_cpu_offline(2)
        assert t.attached_core is None

    def test_cannot_offline_last_cpu(self):
        eng, kern = make_kernel()
        for cpu in range(1, MACHINE.topology.n_cpus):
            kern.set_cpu_offline(cpu)
        with pytest.raises(SimulationError):
            kern.set_cpu_offline(0)

    def test_online_restores_placement_target(self):
        eng, kern = make_kernel()
        kern.set_cpu_offline(5)
        assert kern.least_loaded_online(5) != 5
        kern.set_cpu_online(5)
        assert kern.cpu_online[5]
        assert kern.cpu_is_idle(5)

    def test_least_loaded_online_prefers_near_die(self):
        eng, kern = make_kernel()
        near_die = list(kern.domains.die_span(0))
        assert kern.least_loaded_online(0) in near_die

    def test_offline_idempotent(self):
        eng, kern = make_kernel()
        kern.set_cpu_offline(4)
        kern.set_cpu_offline(4)          # no-op, no double accounting
        kern.set_cpu_online(4)
        kern.set_cpu_online(4)
        assert kern.cpu_online[4]


class TestStragglerMechanics:
    def test_slow_running_task_stretches_remaining_work(self):
        eng, kern = make_kernel()
        t = hog(kern, 1, work_ms=10)
        eng.run(until=1000)
        assert t.completion_event is not None
        before = t.completion_event.time
        assert kern.slow_running_task(1, 3.0)
        assert t.completion_event.time > before

    def test_idle_cpu_is_skipped(self):
        eng, kern = make_kernel()
        assert not kern.slow_running_task(0, 3.0)

    def test_factor_one_is_noop(self):
        eng, kern = make_kernel()
        hog(kern, 1)
        eng.run(until=1000)
        assert not kern.slow_running_task(1, 1.0)


class TestThermalMechanics:
    def test_cap_clamps_down_immediately(self):
        eng, kern = make_kernel()
        hog(kern, 0)
        eng.run(until=5000)
        pc = kern.topology.physical_core_of(0)
        assert kern.freq.core_freq_mhz(pc) > 1200   # busy core is turboing
        kern.freq.set_thermal_cap(pc, 1200)
        assert kern.freq.core_freq_mhz(pc) <= 1200
        assert kern.freq.thermal_cap(pc) == 1200
        kern.freq.set_thermal_cap(pc, None)
        assert kern.freq.thermal_cap(pc) is None

    def test_cap_floored_at_min_mhz(self):
        eng, kern = make_kernel()
        pc = 0
        kern.freq.set_thermal_cap(pc, 1)
        assert kern.freq.thermal_cap(pc) == kern.freq._min_mhz


def faulted_run(fc, scheduler="nest", seed=7):
    return run_experiment(
        make_workload("phoronix-libavif-avifenc-1", scale=0.3),
        get_machine("5218_2s"), scheduler, "schedutil", seed=seed, faults=fc)


class TestEndToEndDeterminism:
    """Same seed + same fault config => bit-identical results."""

    def assert_identical(self, a, b):
        assert a.makespan_us == b.makespan_us
        assert a.energy_joules == b.energy_joules
        assert a.metrics == b.metrics
        assert a.policy_stats == b.policy_stats
        assert a.n_migrations == b.n_migrations
        assert a.extra == b.extra

    def test_hotplug_run_reproducible_and_effective(self):
        fc = FaultConfig(hotplug_rate_per_s=400.0, hotplug_downtime_us=3000,
                         **SHORT)
        a, b = faulted_run(fc), faulted_run(fc)
        self.assert_identical(a, b)
        assert a.metrics["kernel.fault_cpu_offline"]["value"] > 0
        assert a.extra["faults_injected"] > 0

    def test_chaos_run_reproducible(self):
        fc = FaultConfig(hotplug_rate_per_s=300.0, thermal_rate_per_s=300.0,
                         straggler_rate_per_s=300.0, tick_jitter_us=300,
                         hotplug_downtime_us=2500, **SHORT)
        for scheduler in ("nest", "cfs", "smove"):
            self.assert_identical(faulted_run(fc, scheduler),
                                  faulted_run(fc, scheduler))

    def test_thermal_cap_slows_the_run(self):
        fc = FaultConfig(thermal_rate_per_s=400.0, thermal_duration_us=4000,
                         **SHORT)
        assert faulted_run(fc).makespan_us > faulted_run(None).makespan_us

    def test_clean_run_untouched_by_subsystem(self):
        """No fault config => no fault counters, no extra keys: cached
        results and golden files from fault-free runs stay bit-identical."""
        res = faulted_run(None)
        assert "faults_injected" not in res.extra
        assert not any(k.startswith("kernel.fault_") for k in res.metrics)

    def test_disabled_config_equals_no_config(self):
        a = faulted_run(FaultConfig())
        b = faulted_run(None)
        self.assert_identical(a, b)

    def test_profiles_all_run_clean(self):
        for name in FAULT_PROFILES:
            res = faulted_run(fault_profile(name) if name != "none" else None,
                              seed=3)
            assert res.makespan_us > 0, name


#: Dense enough that correlated bursts reliably land inside a ~65ms
#: deadline run and catch RT copies on-core.
COREFAIL_DENSE = FaultConfig(core_failure_rate_per_s=60.0,
                             core_failure_burst=3,
                             core_failure_downtime_us=10_000,
                             horizon_us=100_000)


def ftrt_run(fc=COREFAIL_DENSE, seed=2, collect_events=False):
    return run_experiment(make_workload("deadline-periodic"),
                          get_machine("ryzen_4650g"), "ftrt", "schedutil",
                          seed=seed, faults=fc,
                          collect_events=collect_events)


class TestCorrelatedFailureRuns:
    """End-to-end correlated core failures against the FT-RT scheduler:
    deterministic replay, fail-stop kill semantics, and reconciliation
    through the oracle's plan re-derivation."""

    def test_faulted_ftrt_run_bit_identical(self):
        a, b = ftrt_run(), ftrt_run()
        assert a.makespan_us == b.makespan_us
        assert a.energy_joules == b.energy_joules
        assert a.metrics == b.metrics
        assert a.policy_stats == b.policy_stats
        assert a.extra == b.extra

    def test_failures_kill_and_recover(self):
        res = ftrt_run()
        m = res.metrics
        assert m["kernel.fault_core_failures"]["value"] > 0
        jobs = (m["kernel.rt_deadline_met"]["value"]
                + m["kernel.rt_deadline_miss"]["value"])
        assert jobs == 32   # every released job accounted exactly once
        # Kills happened and every activation answers a kill.
        assert m["kernel.rt_kills"]["value"] > 0
        assert m["kernel.rt_backup_activations"]["value"] \
            <= m["kernel.rt_kills"]["value"]

    def test_plan_rederivation_reconciles(self):
        """The oracle re-derives the corefail plan from (seed, config,
        machine shape) and reconciles it against the run's counters."""
        from repro.verify import Scenario, check_run, run_scenario
        from repro.verify.generate import freeze_faults
        sc = Scenario(workload="deadline-periodic", machine="ryzen_4650g",
                      scheduler="ftrt", governor="schedutil", seed=2,
                      scale=1.0, faults=freeze_faults(COREFAIL_DENSE))
        assert check_run(run_scenario(sc)) == []

    def test_corefail_skip_guard_counts(self):
        """Bursts that would drop below min_online_cpus are skipped and
        counted, keeping plan reconciliation exact."""
        fc = FaultConfig(core_failure_rate_per_s=400.0,
                         core_failure_burst=6, core_failure_downtime_us=30_000,
                         min_online_cpus=10, horizon_us=60_000)
        res = ftrt_run(fc)
        m = res.metrics
        applied = m["kernel.fault_core_failures"]["value"]
        skipped = m["kernel.fault_core_failure_skipped"]["value"]
        assert applied + skipped == res.extra["faults_injected"]
        assert skipped > 0

    def test_non_rt_tasks_survive_core_failure(self):
        """Fail-stop destroys only deadline-carrying copies; ordinary
        tasks are migrated by the hotplug path underneath."""
        fc = FaultConfig(core_failure_rate_per_s=400.0,
                         core_failure_burst=4, core_failure_downtime_us=5_000,
                         horizon_us=10_000)
        res = faulted_run(fc)   # nest + throughput workload: no RT tasks
        assert res.metrics["kernel.fault_core_failures"]["value"] > 0
        assert "kernel.rt_kills" not in res.metrics
        assert res.makespan_us > 0


class TestInjectorGuards:
    def test_min_online_cpus_respected(self):
        fc = FaultConfig(hotplug_rate_per_s=5000.0, hotplug_downtime_us=9000,
                         min_online_cpus=2, horizon_us=10_000)
        res = faulted_run(fc)
        skipped = res.metrics["kernel.fault_offline_skipped"]["value"]
        applied = res.metrics["kernel.fault_cpu_offline"]["value"]
        assert applied + skipped == res.extra["faults_injected"]
        assert skipped > 0   # the guard actually fired at this rate

    def test_install_counts_specs(self):
        eng, kern = make_kernel()
        cfg = FaultConfig(hotplug_rate_per_s=5.0, horizon_us=1_000_000)
        plan = FaultPlan.generate(cfg, kern.topology.n_cpus,
                                  kern.topology.n_physical_cores,
                                  2300, 800, eng.rng)
        assert FaultInjector(kern, plan, cfg).install() == len(plan)
