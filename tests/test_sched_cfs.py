"""Tests for the CFS placement model (§2.1 behaviours)."""

import pytest

from repro.governors.performance import PerformanceGovernor
from repro.hw.freqmodel import SPEED_SHIFT
from repro.hw.machines import Machine
from repro.hw.topology import Topology
from repro.hw.turbo import XEON_5218
from repro.kernel.scheduler_core import Kernel
from repro.kernel.syscalls import Compute
from repro.sched.cfs import CfsPolicy, WAKEUP_SCAN_LIMIT, _qload, _rotate
from repro.sim.engine import Engine
from repro.workloads.base import ms_of_work

MACHINE = Machine(name="t", cpu_model="t", microarchitecture="t",
                  topology=Topology(2, 4, 2), turbo=XEON_5218, pm=SPEED_SHIFT)


def make():
    eng = Engine(0)
    policy = CfsPolicy()
    kern = Kernel(eng, MACHINE, policy, PerformanceGovernor())
    return eng, kern, policy


def occupy(kern, cpu):
    """Install a fake running task on a cpu."""

    def hog(api):
        yield Compute(ms_of_work(1000))

    t = kern._new_task(hog, f"hog{cpu}", None)
    kern.enqueue(t, cpu)
    return t


class TestRotate:
    def test_rotate_starts_at_member(self):
        assert _rotate((0, 1, 2, 3), 2) == (2, 3, 0, 1)

    def test_rotate_nonmember_starts_after(self):
        assert _rotate((0, 2, 4, 6), 3) == (4, 6, 0, 2)

    def test_rotate_beyond_end_wraps(self):
        assert _rotate((0, 1, 2), 9) == (0, 1, 2)

    def test_rotate_sorts_input(self):
        assert _rotate((3, 1, 2), 2) == (2, 3, 1)


class TestQload:
    def test_quantisation_buckets(self):
        assert _qload(0.0) == _qload(31.0)
        assert _qload(31.0) < _qload(33.0)


class TestForkPlacement:
    def test_idle_machine_fork_lands_near_parent(self):
        eng, kern, policy = make()

        def noop(api):
            yield Compute(1)

        t = kern._new_task(noop, "x", None)
        cpu = policy.select_cpu_fork(t, parent_cpu=0)
        # Same socket as the parent on an idle machine.
        assert kern.topology.socket_of(cpu) == 0

    def test_fork_avoids_busy_cpus(self):
        eng, kern, policy = make()
        for c in (0, 1):
            occupy(kern, c)

        def noop(api):
            yield Compute(1)

        t = kern._new_task(noop, "x", None)
        cpu = policy.select_cpu_fork(t, parent_cpu=0)
        assert kern.cpu_is_idle(cpu)

    def test_fork_prefers_long_idle_over_recently_used(self):
        """The §2.1 anti-reuse bias: recent load disfavours warm cores."""
        eng, kern, policy = make()
        # Give cpu 1 a recent-load footprint.
        kern.rqs[1].busy_avg.add(500)

        def noop(api):
            yield Compute(1)

        t = kern._new_task(noop, "x", None)
        cpu = policy.select_cpu_fork(t, parent_cpu=0)
        assert cpu != 1

    def test_fork_stays_local_when_idle_counts_equal(self):
        """v5.9 find_idlest_group: the local group wins unless another has
        strictly more idle cpus."""
        eng, kern, policy = make()

        def noop(api):
            yield Compute(1)

        t = kern._new_task(noop, "x", None)
        cpu = policy.select_cpu_fork(t, parent_cpu=4)   # socket 1 cpu
        assert kern.topology.socket_of(cpu) == 1

    def test_fork_crosses_socket_when_local_fuller(self):
        eng, kern, policy = make()
        for c in (0, 1, 2):
            occupy(kern, c)

        def noop(api):
            yield Compute(1)

        t = kern._new_task(noop, "x", None)
        cpu = policy.select_cpu_fork(t, parent_cpu=0)
        assert kern.topology.socket_of(cpu) == 1


class TestWakeupPlacement:
    def _task(self, kern, prev_cpu):
        def noop(api):
            yield Compute(1)

        t = kern._new_task(noop, "w", None)
        t.prev_cpu = prev_cpu
        t.util_est = 300.0
        return t

    def test_idle_prev_wins(self):
        eng, kern, policy = make()
        t = self._task(kern, prev_cpu=3)
        assert policy.select_cpu_wakeup(t, waker_cpu=1) == 3

    def test_busy_prev_falls_to_die_scan(self):
        eng, kern, policy = make()
        occupy(kern, 3)
        t = self._task(kern, prev_cpu=3)
        cpu = policy.select_cpu_wakeup(t, waker_cpu=1)
        assert cpu != 3
        assert kern.topology.die_of(cpu) == kern.topology.die_of(3)

    def test_wakeup_not_work_conserving_across_dies(self):
        """§2.1: wakeup only considers the target die; with the whole die
        busy the task queues there even though the other die is idle."""
        eng, kern, policy = make()
        die = kern.domains.die_span(0)
        for c in die:
            occupy(kern, c)
        t = self._task(kern, prev_cpu=0)
        cpu = policy.select_cpu_wakeup(t, waker_cpu=0)
        assert cpu in die   # stuck on the busy die

    def test_nest_extension_searches_all_dies(self):
        """The same scenario through the all-dies search finds the idle
        socket (Nest's §3.4 work conservation)."""
        eng, kern, policy = make()
        die = kern.domains.die_span(0)
        for c in die:
            occupy(kern, c)
        cpu = policy.select_idle_sibling(0, all_dies=True,
                                         check_pending=True)
        assert cpu not in die

    def test_prefers_core_with_idle_sibling(self):
        eng, kern, policy = make()
        occupy(kern, 0)     # physical core 0: thread 8 is its sibling
        t = self._task(kern, prev_cpu=0)
        cpu = policy.select_cpu_wakeup(t, waker_cpu=0)
        # The chosen cpu's sibling should be idle (select_idle_core).
        sib = kern.topology.sibling_of(cpu)
        assert kern.cpu_is_idle(cpu) and kern.cpu_is_idle(sib)

    def test_pending_flag_respected_when_asked(self):
        eng, kern, policy = make()
        kern.rqs[2].placement_pending = 1
        assert not policy._usable_idle(2, check_pending=True)
        assert policy._usable_idle(2, check_pending=False)

    def test_scan_limit_constant_sane(self):
        assert 1 <= WAKEUP_SCAN_LIMIT <= 64
