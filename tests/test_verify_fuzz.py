"""Fuzzer, shrinker, differential checks and repro files, end to end.

Synthetic check functions drive the shrinker (no simulator needed); the
fuzz loop and repro replay run the real thing on small budgets.
"""

import dataclasses
import json

from repro.verify.differential import (DIFF_CHECKS, canonical,
                                       check_cached_roundtrip,
                                       check_empty_fault_plan,
                                       check_nest_vs_cfs, spec_of)
from repro.verify.execute import run_scenario
from repro.verify.fuzz import FuzzConfig, fuzz
from repro.verify.generate import Scenario, freeze_faults
from repro.verify.oracle import Violation, check_run
from repro.verify.repro import load_repro, replay_repro, save_repro
from repro.verify.shrink import shrink
from repro.faults.plan import FaultConfig
from repro.experiments.parallel import execute_spec

COMPLEX = Scenario(
    workload="leveldb", machine="5218_2s", scheduler="nest",
    governor="performance", seed=424242, scale=1.0,
    faults=freeze_faults(FaultConfig(hotplug_rate_per_s=50.0)),
    max_us=30_000)

MINIMAL = Scenario(workload="configure-gcc", machine="ryzen_4650g",
                   scheduler="nest", governor="schedutil", seed=1, scale=0.1)


# ---------------------------------------------------------------------------
# Shrinker
# ---------------------------------------------------------------------------

def test_shrink_reaches_the_minimal_scenario():
    # A failure that reproduces everywhere shrinks all the way down.
    calls = []

    def always_fails(sc):
        calls.append(sc)
        return [Violation("nest.final_state", "synthetic")]

    small, violations = shrink(COMPLEX, always_fails,
                               violations=always_fails(COMPLEX), budget=40)
    assert small == MINIMAL
    assert {v.invariant for v in violations} == {"nest.final_state"}


def test_shrink_keeps_only_the_same_failure():
    # Simplifying the machine "fixes" the bug -> that rung is rejected.
    def machine_sensitive(sc):
        if sc.machine == "5218_2s":
            return [Violation("clock.monotonic", "only on the big box")]
        return []

    small, violations = shrink(COMPLEX, machine_sensitive,
                               violations=machine_sensitive(COMPLEX),
                               budget=40)
    assert small.machine == "5218_2s"
    assert small.faults is None and small.max_us is None
    assert small.seed == 1
    assert {v.invariant for v in violations} == {"clock.monotonic"}


def test_shrink_rejects_different_failures():
    # Candidates that fail a *different* invariant must not be accepted.
    def swaps_failure(sc):
        if sc == COMPLEX:
            return [Violation("nest.attachment", "original")]
        return [Violation("run.completed", "unrelated crash")]

    small, violations = shrink(COMPLEX, swaps_failure,
                               violations=swaps_failure(COMPLEX), budget=40)
    assert small == COMPLEX
    assert {v.invariant for v in violations} == {"nest.attachment"}


def test_shrink_respects_budget():
    calls = []

    def count(sc):
        calls.append(sc)
        return [Violation("x", "always")]

    shrink(COMPLEX, count, violations=[Violation("x", "seed")], budget=3)
    assert len(calls) == 3
    shrink(COMPLEX, count, violations=[Violation("x", "seed")], budget=0)
    assert len(calls) == 3   # zero budget -> no re-runs at all


def test_shrink_passing_scenario_is_identity():
    sc, violations = shrink(COMPLEX, lambda s: [], violations=[], budget=40)
    assert sc == COMPLEX and violations == []


# ---------------------------------------------------------------------------
# Differential checks
# ---------------------------------------------------------------------------

def test_cached_roundtrip_clean():
    assert list(check_cached_roundtrip(MINIMAL)) == []


def test_empty_fault_plan_clean_and_gated():
    assert list(check_empty_fault_plan(MINIMAL)) == []
    # Already-faulted scenarios have no clean baseline to compare against.
    assert list(check_empty_fault_plan(COMPLEX)) == []


def test_nest_vs_cfs_clean_and_gated():
    assert list(check_nest_vs_cfs(MINIMAL)) == []
    capped = dataclasses.replace(MINIMAL, max_us=10_000)
    assert list(check_nest_vs_cfs(capped)) == []      # gated on max_us
    cfs = dataclasses.replace(MINIMAL, scheduler="cfs")
    assert list(check_nest_vs_cfs(cfs)) == []         # nest-only


def test_canonical_drops_wall_clock():
    a = canonical(execute_spec(spec_of(MINIMAL)), MINIMAL.machine)
    b = canonical(execute_spec(spec_of(MINIMAL)), MINIMAL.machine)
    assert "sim_wall_s" not in a
    assert a == b


def test_diff_check_names_match_registry():
    for name, fn in DIFF_CHECKS:
        assert name.startswith("diff.")
        assert callable(fn)


# ---------------------------------------------------------------------------
# The fuzz loop
# ---------------------------------------------------------------------------

def test_fuzz_small_campaign_is_clean_and_deterministic():
    cfg = FuzzConfig(runs=15, base_seed=5, diff_every=7, par_every=0)
    first = fuzz(cfg)
    second = fuzz(cfg)
    assert first.ok
    assert first.n_runs == second.n_runs == 15
    assert first.n_diff_rounds == second.n_diff_rounds > 0
    assert first.verdicts == second.verdicts == []
    assert "OK" in first.summary()


def test_fuzz_reports_and_shrinks_failures(tmp_path, monkeypatch):
    # Sabotage the oracle for one specific scheduler: every scenario that
    # uses it fails, and shrinking must stop at the sabotaged dimension.
    # (importlib: the fuzz *function* shadows the module on the package.)
    import importlib
    fuzz_mod = importlib.import_module("repro.verify.fuzz")

    real_check_run = check_run

    def sabotaged(art):
        violations = list(real_check_run(art))
        if art.scenario.scheduler == "smove":
            violations.append(Violation("nest.final_state", "synthetic"))
        return violations

    monkeypatch.setattr(fuzz_mod, "check_run", sabotaged)
    cfg = FuzzConfig(runs=30, base_seed=1, diff_every=0, par_every=0,
                     max_failures=2, repro_dir=tmp_path, shrink_budget=25)
    report = fuzz(cfg)
    assert not report.ok
    assert len(report.failures) == 2
    for failure in report.failures:
        assert failure.scenario.scheduler == "smove"
        assert failure.shrunk.scheduler == "smove"      # preserved
        assert failure.shrunk.workload == "configure-gcc"  # simplified
        assert failure.shrunk.seed == 1
        assert failure.repro_path is not None and failure.repro_path.exists()
        # The repro embeds a trace-analysis digest of the shrunk run.
        doc = load_repro(failure.repro_path)
        assert doc["analysis"]["analysis_version"] >= 1
        assert len(doc["analysis"]["sha256"]) == 64
        assert doc["analysis"]["summary"]["latency_n"] > 0
    # The report serializes.
    doc = report.to_dict()
    assert doc["ok"] is False and len(doc["failures"]) == 2
    json.dumps(doc)


def test_fuzz_max_failures_zero_never_stops(monkeypatch):
    import importlib
    fuzz_mod = importlib.import_module("repro.verify.fuzz")
    monkeypatch.setattr(
        fuzz_mod, "check_run",
        lambda art: [Violation("run.completed", "synthetic")])
    cfg = FuzzConfig(runs=8, base_seed=1, diff_every=0, par_every=0,
                     max_failures=0, shrink_budget=0)
    report = fuzz(cfg)
    assert report.n_runs == 8 and len(report.failures) == 8


# ---------------------------------------------------------------------------
# Repro files
# ---------------------------------------------------------------------------

def test_repro_roundtrip_and_replay(tmp_path):
    violations = [Violation("nest.final_state", "was broken", t=100)]
    path = save_repro(tmp_path / "r.json", MINIMAL, violations,
                      origin={"base_seed": 1, "index": 3})
    data = load_repro(path)
    assert data["expect"] == ["nest.final_state"]
    assert Scenario.from_dict(data["scenario"]) == MINIMAL
    assert data["origin"]["index"] == 3
    assert "analysis" not in data   # optional key: omitted when not given
    # The captured "bug" does not exist -> replay comes back clean.
    assert replay_repro(path) == []


def test_repro_carries_optional_analysis_digest(tmp_path):
    digest = {"analysis_version": 1, "sha256": "ab" * 32,
              "summary": {"latency_n": 5}}
    path = save_repro(tmp_path / "r.json", MINIMAL,
                      [Violation("nest.final_state", "x")],
                      analysis=digest)
    data = load_repro(path)
    assert data["analysis"] == digest


def test_repro_replay_runs_named_diff_checks(tmp_path, monkeypatch):
    violations = [Violation("diff.nest_vs_cfs", "was broken")]
    path = save_repro(tmp_path / "r.json", MINIMAL, violations)
    calls = []
    import repro.verify.differential as diff_mod

    def spy(scenario):
        calls.append(scenario)
        return []

    monkeypatch.setattr(diff_mod, "DIFF_CHECKS",
                        (("diff.nest_vs_cfs", spy),))
    assert replay_repro(path) == []
    assert calls == [MINIMAL]


def test_repro_rejects_bad_documents(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"format": 99}))
    try:
        load_repro(bad)
    except ValueError as exc:
        assert "format" in str(exc)
    else:
        raise AssertionError("expected ValueError")

    missing = tmp_path / "missing.json"
    missing.write_text(json.dumps({"format": 1, "scenario": {}}))
    try:
        load_repro(missing)
    except ValueError as exc:
        assert "expect" in str(exc)
    else:
        raise AssertionError("expected ValueError")
