"""End-to-end tests of the kernel core: lifecycle, ticks, preemption,
blocking, barriers, channels, spinning, balancing."""

import pytest

from repro.governors.performance import PerformanceGovernor
from repro.governors.schedutil import SchedutilGovernor
from repro.hw.energy import PowerParams
from repro.hw.freqmodel import SPEED_SHIFT
from repro.hw.machines import Machine
from repro.hw.topology import Topology
from repro.hw.turbo import XEON_5218
from repro.kernel.scheduler_core import Kernel, KernelConfig
from repro.kernel.syscalls import (Barrier, BarrierWait, Channel, Compute,
                                   Exit, Fork, Recv, Send, Sleep,
                                   WaitChildren, WaitTask, Yield)
from repro.kernel.task import TaskState
from repro.sched.cfs import CfsPolicy
from repro.sim.engine import Engine
from repro.sim.trace import Tracer
from repro.workloads.base import ms_of_work, us_of_work

TINY = Machine(
    name="tiny", cpu_model="Test CPU", microarchitecture="Test",
    topology=Topology(1, 2, 2), turbo=XEON_5218, pm=SPEED_SHIFT,
    power=PowerParams())

BIG = Machine(
    name="big", cpu_model="Test CPU", microarchitecture="Test",
    topology=Topology(2, 4, 2), turbo=XEON_5218, pm=SPEED_SHIFT,
    power=PowerParams())


def make_kernel(machine=TINY, policy=None, governor=None, config=None,
                seed=0):
    eng = Engine(seed)
    kern = Kernel(eng, machine, policy or CfsPolicy(),
                  governor or PerformanceGovernor(), config=config,
                  tracer=Tracer(machine.n_cpus, record_segments=True))
    return eng, kern


class TestBasicLifecycle:
    def test_single_compute_task_runs_and_exits(self):
        eng, kern = make_kernel()

        def beh(api):
            yield Compute(ms_of_work(1.0))

        t = kern.spawn(beh, "solo")
        kern.run_until_idle()
        assert t.state is TaskState.EXITED
        assert t.exited_us is not None
        assert kern.n_live == 0
        assert kern.n_runnable == 0

    def test_compute_time_scales_with_frequency(self):
        # At the all-core cap (2.8 GHz pre-sustain with performance
        # governor), 2.8M cycles take about 1 ms.
        eng, kern = make_kernel()

        def beh(api):
            yield Compute(2_800_000)

        kern.spawn(beh, "t")
        end = kern.run_until_idle()
        assert 900 <= end <= 1_500

    def test_empty_behaviour_exits_immediately(self):
        eng, kern = make_kernel()

        def beh(api):
            return
            yield  # pragma: no cover

        t = kern.spawn(beh, "noop")
        kern.run_until_idle()
        assert t.state is TaskState.EXITED

    def test_explicit_exit_action(self):
        eng, kern = make_kernel()
        after_exit = []

        def beh(api):
            yield Exit()
            after_exit.append(1)  # pragma: no cover

        kern.spawn(beh, "t")
        kern.run_until_idle()
        assert after_exit == []

    def test_sleep_blocks_for_duration(self):
        eng, kern = make_kernel()
        times = {}

        def beh(api):
            times["before"] = api.now
            yield Sleep(5_000)
            times["after"] = api.now

        kern.spawn(beh, "sleeper")
        kern.run_until_idle()
        assert times["after"] - times["before"] >= 5_000

    def test_stop_when_idle(self):
        eng, kern = make_kernel()

        def beh(api):
            yield Compute(us_of_work(100))

        kern.spawn(beh, "t")
        kern.run_until_idle()
        assert eng.stop_reason == "workload-complete"


class TestForkAndWait:
    def test_fork_returns_child_task(self):
        eng, kern = make_kernel()
        seen = {}

        def child(api):
            yield Compute(us_of_work(50))

        def parent(api):
            c = yield Fork(child, name="kid")
            seen["child"] = c
            yield WaitChildren()
            seen["child_state"] = c.state

        kern.spawn(parent, "parent")
        kern.run_until_idle()
        assert seen["child"].name == "kid"
        assert seen["child_state"] is TaskState.EXITED

    def test_wait_children_with_no_children_continues(self):
        eng, kern = make_kernel()

        def parent(api):
            yield WaitChildren()
            yield Compute(us_of_work(10))

        t = kern.spawn(parent, "p")
        kern.run_until_idle()
        assert t.state is TaskState.EXITED

    def test_wait_task_specific(self):
        eng, kern = make_kernel()
        order = []

        def slow(api):
            yield Compute(ms_of_work(2.0))
            order.append("slow")

        def fast(api):
            yield Compute(us_of_work(50))
            order.append("fast")

        def parent(api):
            s = yield Fork(slow, name="slow")
            f = yield Fork(fast, name="fast")
            yield WaitTask(s)
            order.append("parent")

        kern.spawn(parent, "p")
        kern.run_until_idle()
        assert order.index("slow") < order.index("parent")

    def test_fork_runs_children_in_parallel(self):
        eng, kern = make_kernel()

        def child(api):
            yield Compute(ms_of_work(2.0))

        def parent(api):
            for _ in range(3):
                # Space the forks out (simultaneous forks legitimately race
                # for the same core, the paper's §3.4 collision).
                yield Compute(us_of_work(20))
                yield Fork(child)
            yield WaitChildren()

        kern.spawn(parent, "p")
        end = kern.run_until_idle()
        # 3 x 2 ms of work on >= 3 effective cpus: far less than serial.
        serial_us = 3 * 2_000 * 1000 / 2_800
        assert end < serial_us * 0.8

    def test_task_tree_recorded(self):
        eng, kern = make_kernel()

        def child(api):
            yield Compute(us_of_work(10))

        def parent(api):
            yield Fork(child)
            yield WaitChildren()

        p = kern.spawn(parent, "p")
        kern.run_until_idle()
        assert len(p.children) == 1
        assert next(iter(p.children)).parent is p


class TestChannels:
    def test_send_recv_roundtrip(self):
        eng, kern = make_kernel()
        got = []

        def receiver(api, ch):
            msg = yield Recv(ch)
            got.append(msg)

        def sender(api):
            ch = Channel()
            yield Fork(receiver, name="rx", args=(ch,))
            yield Compute(us_of_work(100))
            yield Send(ch, "hello")
            yield WaitChildren()

        kern.spawn(sender, "tx")
        kern.run_until_idle()
        assert got == ["hello"]

    def test_recv_of_buffered_message_does_not_block(self):
        eng, kern = make_kernel()
        got = []

        def beh(api):
            ch = Channel()
            yield Send(ch, 1)
            yield Send(ch, 2)
            got.append((yield Recv(ch)))
            got.append((yield Recv(ch)))

        kern.spawn(beh, "t")
        kern.run_until_idle()
        assert got == [1, 2]

    def test_ping_pong(self):
        eng, kern = make_kernel()
        hops = []

        def ponger(api, ping, pong):
            for _ in range(3):
                yield Recv(ping)
                hops.append("pong")
                yield Send(pong, "p")

        def pinger(api):
            ping, pong = Channel(), Channel()
            yield Fork(ponger, name="pong", args=(ping, pong))
            for _ in range(3):
                yield Send(ping, "p")
                hops.append("ping")
                yield Recv(pong)
            yield WaitChildren()

        kern.spawn(pinger, "ping")
        kern.run_until_idle()
        assert hops.count("ping") == 3 and hops.count("pong") == 3


class TestBarriers:
    def test_barrier_synchronises(self):
        eng, kern = make_kernel(BIG)
        after = []

        def worker(api, barrier, wait_ms):
            yield Compute(ms_of_work(wait_ms))
            yield BarrierWait(barrier)
            after.append(api.now)

        def parent(api):
            b = Barrier(3)
            yield Fork(worker, args=(b, 0.5))
            yield Fork(worker, args=(b, 1.0))
            yield Fork(worker, args=(b, 2.0))
            yield WaitChildren()

        kern.spawn(parent, "p")
        kern.run_until_idle()
        assert len(after) == 3
        # Everyone leaves the barrier close to the slowest arrival.
        assert max(after) - min(after) < 1_000

    def test_barrier_rounds(self):
        eng, kern = make_kernel(BIG)
        rounds_done = []

        def worker(api, barrier, idx):
            for r in range(3):
                yield Compute(us_of_work(100 * (idx + 1)))
                yield BarrierWait(barrier)
            rounds_done.append(idx)

        def parent(api):
            b = Barrier(2)
            yield Fork(worker, args=(b, 0))
            yield Fork(worker, args=(b, 1))
            yield WaitChildren()

        kern.spawn(parent, "p")
        kern.run_until_idle()
        assert sorted(rounds_done) == [0, 1]


class TestPreemptionAndTicks:
    def test_timeslice_shares_one_cpu(self):
        """Two CPU hogs pinned by circumstance to one core both finish."""
        eng, kern = make_kernel(config=KernelConfig(newidle_balance=False,
                                                    periodic_balance_us=0))

        def hog(api):
            yield Compute(ms_of_work(20.0))

        def parent(api):
            yield Fork(hog)
            yield Fork(hog)
            yield WaitChildren()

        kern.spawn(parent, "p")
        kern.run_until_idle(max_us=2_000_000)
        assert kern.n_live == 0

    def test_wakeup_preemption(self):
        """A task waking after a sleep preempts a long-running hog on its
        cpu when no other cpu is available."""
        eng, kern = make_kernel()
        wake_latency = {}

        def sleeper(api):
            yield Compute(us_of_work(100))
            t0 = api.now
            yield Sleep(1_000)
            wake_latency["v"] = api.task.wakeup_latency_us

        kern.spawn(sleeper, "s")
        kern.run_until_idle()
        assert wake_latency["v"] < 1_000

    def test_vruntime_accumulates(self):
        eng, kern = make_kernel()

        def beh(api):
            yield Compute(ms_of_work(10))

        t = kern.spawn(beh, "t")
        kern.run_until_idle()
        assert t.vruntime > 0
        assert t.total_runtime_us > 0

    def test_total_cycles_accounted(self):
        eng, kern = make_kernel()
        work = ms_of_work(5.0)

        def beh(api):
            yield Compute(work)

        t = kern.spawn(beh, "t")
        kern.run_until_idle()
        assert t.total_cycles == pytest.approx(work, rel=0.01)


class TestYield:
    def test_yield_keeps_task_runnable(self):
        eng, kern = make_kernel()
        steps = []

        def beh(api):
            steps.append(1)
            yield Yield()
            steps.append(2)
            yield Compute(us_of_work(10))

        t = kern.spawn(beh, "y")
        kern.run_until_idle()
        assert steps == [1, 2]
        assert t.state is TaskState.EXITED


class TestSmtContention:
    def test_sibling_contention_slows_execution(self):
        """Two tasks on the two hyperthreads of one physical core run
        slower than two tasks on separate physical cores."""

        def run(machine, pin_same_core):
            eng, kern = make_kernel(
                machine, config=KernelConfig(newidle_balance=False,
                                             periodic_balance_us=0))

            def hog(api):
                yield Compute(ms_of_work(10.0))

            t1 = kern._new_task(hog, "a", None)
            t2 = kern._new_task(hog, "b", None)
            kern.enqueue(t1, 0)
            kern.enqueue(t2, 2 if pin_same_core else 1)  # 2 = sibling of 0
            kern.run_until_idle()
            return eng.now

        shared = run(TINY, True)
        separate = run(TINY, False)
        assert shared > separate * 1.3


class TestBalancing:
    def test_newidle_balance_pulls_queued_work(self):
        eng, kern = make_kernel(BIG)

        def hog(api):
            yield Compute(ms_of_work(5.0))

        # Overload cpu 0 artificially with direct enqueues.
        tasks = [kern._new_task(hog, f"h{i}", None) for i in range(4)]
        for t in tasks:
            kern.enqueue(t, 0)
        kern.run_until_idle()
        assert sum(t.n_migrations for t in tasks) > 0

    def test_periodic_balance_runs(self):
        eng, kern = make_kernel(
            BIG, config=KernelConfig(newidle_balance=False,
                                     periodic_balance_us=10_000))

        def hog(api):
            yield Compute(ms_of_work(40.0))

        tasks = [kern._new_task(hog, f"h{i}", None) for i in range(3)]
        for t in tasks:
            kern.enqueue(t, 0)
        kern.run_until_idle(max_us=3_000_000)
        assert sum(t.n_migrations for t in tasks) > 0


class TestAccountingInvariants:
    def test_runnable_counter_returns_to_zero(self):
        eng, kern = make_kernel(BIG)

        def child(api):
            yield Compute(us_of_work(200))
            yield Sleep(100)
            yield Compute(us_of_work(200))

        def parent(api):
            for _ in range(6):
                yield Fork(child)
            yield WaitChildren()

        kern.spawn(parent, "p")
        kern.run_until_idle()
        assert kern.n_runnable == 0
        assert kern.n_live == 0

    def test_trace_segments_do_not_overlap_per_core(self):
        eng, kern = make_kernel(BIG, seed=3)

        def child(api):
            yield Compute(us_of_work(300))
            yield Sleep(150)
            yield Compute(us_of_work(300))

        def parent(api):
            for _ in range(8):
                yield Fork(child)
            yield WaitChildren()

        kern.spawn(parent, "p")
        kern.run_until_idle()
        per_core = {}
        for seg in kern.tracer.segments:
            per_core.setdefault(seg.core, []).append((seg.start, seg.end))
        for spans in per_core.values():
            spans.sort()
            for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
                assert e1 <= s2

    def test_energy_accumulated(self):
        eng, kern = make_kernel()

        def beh(api):
            yield Compute(ms_of_work(5))

        kern.spawn(beh, "t")
        kern.run_until_idle()
        assert kern.energy.energy_joules > 0
