"""Content-addressed result cache: keys, round-trips, sweep integration."""

from __future__ import annotations

import dataclasses
import json

from repro.core.params import NestParams
from repro.experiments.cache import (ResultCache, result_from_jsonable,
                                     result_to_jsonable, spec_key)
from repro.experiments.cli import main
from repro.experiments.parallel import RunSpec, SweepExecutor, execute_spec

from test_parallel import SPECS, assert_results_identical

SPEC = SPECS[0]


class TestSpecKey:
    def test_stable(self):
        assert spec_key(SPEC) == spec_key(SPEC)
        clone = RunSpec(**{f.name: getattr(SPEC, f.name)
                           for f in dataclasses.fields(SPEC)})
        assert spec_key(clone) == spec_key(SPEC)

    def test_every_field_is_significant(self):
        variants = [
            dataclasses.replace(SPEC, seed=SPEC.seed + 1),
            dataclasses.replace(SPEC, scale=SPEC.scale / 2),
            dataclasses.replace(SPEC, scheduler="nest"),
            dataclasses.replace(SPEC, governor="performance"),
            dataclasses.replace(SPEC, machine="e78870_4s"),
            dataclasses.replace(SPEC, workload="configure-llvm_ninja"),
            dataclasses.replace(SPEC, max_us=1_000),
            dataclasses.replace(SPEC, nest_params=NestParams()),
        ]
        keys = {spec_key(v) for v in variants}
        assert len(keys) == len(variants)
        assert spec_key(SPEC) not in keys

    def test_engine_version_salts_the_key(self, monkeypatch):
        import repro.experiments.cache as cache_mod
        before = spec_key(SPEC)
        monkeypatch.setattr(cache_mod, "ENGINE_VERSION", "999-test")
        assert spec_key(SPEC) != before


class TestRoundTrip:
    def test_cached_result_equals_fresh_simulation(self, tmp_path):
        """Acceptance criterion: a hit equals the simulation it replaces,
        through an actual JSON round-trip."""
        fresh = execute_spec(SPEC)
        payload = json.loads(json.dumps(result_to_jsonable(fresh,
                                                           SPEC.machine)))
        restored = result_from_jsonable(payload)
        assert_results_identical(fresh, restored)
        # Telemetry rides along with the entry.
        assert restored.sim_wall_s == fresh.sim_wall_s
        assert restored.events_processed == fresh.events_processed

    def test_get_put_on_disk(self, tmp_path):
        cache = ResultCache(tmp_path)
        fresh = execute_spec(SPEC)
        assert cache.get_spec(SPEC) is None
        cache.put_spec(SPEC, fresh)
        hit = cache.get_spec(SPEC)
        assert hit is not None
        assert_results_identical(fresh, hit)

    def test_trace_runs_bypass_the_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = dataclasses.replace(SPEC, record_trace=True)
        assert not cache.cacheable(spec)
        cache.put_spec(spec, execute_spec(SPEC))
        assert cache.stats()["entries"] == 0
        assert cache.get_spec(spec) is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put_spec(SPEC, execute_spec(SPEC))
        key = spec_key(SPEC)
        (tmp_path / key[:2] / f"{key}.json").write_text("{not json")
        assert cache.get_spec(SPEC) is None


class TestSweepIntegration:
    def test_second_sweep_performs_zero_simulations(self, tmp_path):
        """Acceptance criterion: a warm rerun simulates nothing and still
        returns identical results."""
        cold = SweepExecutor(jobs=1, cache=ResultCache(tmp_path))
        first = cold.run(SPECS)
        assert cold.last_stats.simulated == len(SPECS)
        assert cold.last_stats.cache_hits == 0

        warm = SweepExecutor(jobs=1, cache=ResultCache(tmp_path))
        second = warm.run(SPECS)
        assert warm.last_stats.simulated == 0
        assert warm.last_stats.cache_hits == len(SPECS)
        for a, b in zip(first, second):
            assert_results_identical(a, b)

    def test_no_cache_forces_resimulation(self, tmp_path):
        seeded = SweepExecutor(jobs=1, cache=ResultCache(tmp_path))
        seeded.run(SPECS[:2])
        # An executor without a cache must re-simulate despite the entries.
        uncached = SweepExecutor(jobs=1, cache=None)
        uncached.run(SPECS[:2])
        assert uncached.last_stats.simulated == 2
        assert uncached.last_stats.cache_hits == 0

    def test_partial_hits_fill_only_misses(self, tmp_path):
        SweepExecutor(jobs=1, cache=ResultCache(tmp_path)).run(SPECS[:2])
        ex = SweepExecutor(jobs=1, cache=ResultCache(tmp_path))
        ex.run(SPECS)
        assert ex.last_stats.cache_hits == 2
        assert ex.last_stats.simulated == len(SPECS) - 2


class TestMaintenance:
    def test_stats_and_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put_spec(SPEC, execute_spec(SPEC))
        st = cache.stats()
        assert st["entries"] == 1
        assert st["bytes"] > 0
        assert cache.clear() == 1
        assert cache.stats()["entries"] == 0

    def test_cli_cache_commands(self, tmp_path, capsys):
        root = str(tmp_path / "cache")
        SweepExecutor(jobs=1, cache=ResultCache(tmp_path / "cache")) \
            .run(SPECS[:1])
        assert main(["cache", "stats", "--cache-dir", root]) == 0
        assert "1 entries" in capsys.readouterr().out
        assert main(["cache", "clear", "--cache-dir", root]) == 0
        assert "cleared 1" in capsys.readouterr().out

    def test_cli_compare_uses_cache(self, tmp_path, capsys):
        argv = ["compare", "--workload", "phoronix-libavif-avifenc-1",
                "--machine", "5218_2s", "--scale", "0.3", "--seeds", "1",
                "--jobs", "1", "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        out_cold = capsys.readouterr().out
        assert "(4 simulated, 0 cached)" in out_cold
        assert main(argv) == 0
        out_warm = capsys.readouterr().out
        assert "(0 simulated, 4 cached)" in out_warm
        # The printed table is identical whether simulated or cached.
        strip = lambda s: [ln for ln in s.splitlines()
                           if not ln.startswith("sweep:")]
        assert strip(out_cold) == strip(out_warm)
