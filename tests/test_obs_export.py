"""Exporter tests, including the golden Perfetto trace of a pinned run.

The golden scenario is hand-built (no workload RNG): a deterministic task
mix on a tiny machine under Nest-schedutil.  Its Chrome trace JSON is
pinned byte-for-byte in ``tests/data/golden_trace.json`` — regenerate with
``PYTHONPATH=src:tests python -m golden_regen`` (see tests/golden_regen.py)
after an intentional simulator or exporter change.
"""

import json
from pathlib import Path

from repro.core.nest import NestPolicy
from repro.governors.schedutil import SchedutilGovernor
from repro.hw.energy import PowerParams
from repro.hw.freqmodel import SPEED_SHIFT
from repro.hw.machines import Machine
from repro.hw.topology import Topology
from repro.hw.turbo import XEON_5218
from repro.kernel.scheduler_core import Kernel
from repro.kernel.syscalls import Compute, Fork, Sleep, WaitChildren
from repro.obs.events import (NEST_TRANSITION_KINDS, SPIN_START, SchedEvent)
from repro.obs.export import (PID_CORES, PID_FREQ, PID_NEST, chrome_trace,
                              text_summary, validate_chrome_trace)
from repro.sim.engine import Engine
from repro.sim.trace import Tracer
from repro.workloads.base import us_of_work

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_trace.json"

MACHINE = Machine(
    name="tiny6", cpu_model="Test CPU", microarchitecture="Test",
    topology=Topology(1, 3, 2), turbo=XEON_5218, pm=SPEED_SHIFT,
    power=PowerParams())


def golden_run():
    """The pinned deterministic scenario: returns (segments, events)."""
    engine = Engine(seed=1)
    events = engine.obs.attach_memory()
    tracer = Tracer(MACHINE.n_cpus, record_segments=True)
    kernel = Kernel(engine, MACHINE, NestPolicy(), SchedutilGovernor(),
                    tracer=tracer)

    def worker(api):
        yield Compute(us_of_work(400))
        yield Sleep(300)
        yield Compute(us_of_work(250))

    def parent(api):
        for _ in range(3):
            yield Fork(worker)
            yield Compute(us_of_work(150))
        yield WaitChildren()
        yield Compute(us_of_work(200))

    kernel.spawn(parent, "parent")
    kernel.run_until_idle()
    return tracer.segments, events


def golden_doc():
    segments, events = golden_run()
    return chrome_trace(segments, events, n_cpus=MACHINE.n_cpus,
                        label="golden")


def golden_json(doc) -> str:
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


class TestGoldenTrace:
    def test_matches_golden_file(self):
        """The run's exported trace is byte-identical to the pinned one."""
        assert GOLDEN_PATH.is_file(), \
            f"golden file missing; regenerate via tests/golden_regen.py"
        assert golden_json(golden_doc()) == \
            GOLDEN_PATH.read_text(encoding="utf-8").rstrip("\n")

    def test_golden_is_schema_valid(self):
        assert validate_chrome_trace(golden_doc()) == []
        assert validate_chrome_trace(
            json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))) == []

    def test_per_core_tracks_present(self):
        doc = golden_doc()
        names = {(ev["pid"], ev["args"]["name"])
                 for ev in doc["traceEvents"]
                 if ev["ph"] == "M" and ev["name"] == "thread_name"}
        for cpu in range(MACHINE.n_cpus):
            assert (PID_CORES, f"cpu {cpu}") in names

    def test_nest_transition_instants_present(self):
        instants = [ev for ev in golden_doc()["traceEvents"]
                    if ev["ph"] == "i"]
        assert instants, "expected nest-transition instant events"
        assert {ev["name"] for ev in instants} <= NEST_TRANSITION_KINDS
        assert all(ev["s"] == "t" for ev in instants)

    def test_counter_tracks_present(self):
        doc = golden_doc()
        pids = {ev["pid"] for ev in doc["traceEvents"] if ev["ph"] == "C"}
        assert PID_FREQ in pids and PID_NEST in pids

    def test_segments_become_complete_events(self):
        segments, events = golden_run()
        xs = [ev for ev in chrome_trace(segments, events)["traceEvents"]
              if ev["ph"] == "X"]
        assert len(xs) == len(segments)
        assert all(ev["dur"] >= 0 for ev in xs)


class TestChromeTrace:
    def test_infers_n_cpus_when_omitted(self):
        events = [SchedEvent(1, SPIN_START, cpu=5)]
        doc = chrome_trace([], events)
        names = {ev["args"]["name"] for ev in doc["traceEvents"]
                 if ev["ph"] == "M" and ev["name"] == "thread_name"}
        assert "cpu 5" in names

    def test_empty_trace_still_valid(self):
        assert validate_chrome_trace(chrome_trace([], [])) == []


class TestValidateChromeTrace:
    def test_rejects_non_document(self):
        assert validate_chrome_trace([]) != []
        assert validate_chrome_trace({"events": []}) != []

    def test_rejects_unknown_phase(self):
        doc = {"traceEvents": [{"ph": "Q", "pid": 0, "tid": 0, "name": "x"}]}
        assert any("phase" in p for p in validate_chrome_trace(doc))

    def test_rejects_negative_duration(self):
        doc = {"traceEvents": [{"ph": "X", "pid": 0, "tid": 0, "name": "x",
                                "ts": 1, "dur": -4}]}
        assert any("dur" in p for p in validate_chrome_trace(doc))

    def test_rejects_unknown_instant_kind(self):
        doc = {"traceEvents": [{"ph": "i", "pid": 0, "tid": 0, "ts": 0,
                                "name": "nest.teleport", "s": "t"}]}
        assert any("unknown instant" in p for p in validate_chrome_trace(doc))

    def test_rejects_non_numeric_counter_args(self):
        doc = {"traceEvents": [{"ph": "C", "pid": 0, "tid": 0, "ts": 0,
                                "name": "c", "args": {"v": "high"}}]}
        assert any("numeric" in p for p in validate_chrome_trace(doc))

    def test_rejects_missing_ts(self):
        doc = {"traceEvents": [{"ph": "X", "pid": 0, "tid": 0, "name": "x",
                                "dur": 1}]}
        assert any("ts" in p for p in validate_chrome_trace(doc))


class TestTextSummary:
    def test_summarises_golden_run(self):
        segments, events = golden_run()
        text = text_summary(segments, events)
        assert "cores used:" in text
        assert "placements:" in text
        assert "events:" in text

    def test_includes_histogram_means(self):
        metrics = {"kernel.wakeup_latency_us": {
            "type": "histogram", "edges": [1], "counts": [2, 0],
            "count": 2, "sum": 6}}
        text = text_summary([], [], metrics)
        assert "kernel.wakeup_latency_us: n=2 mean=3.0" in text
