"""Tests for the experiment harness and registry."""

import pytest

from repro.core.nest import NestPolicy
from repro.core.params import NestParams
from repro.experiments.configs import FAST, FULL, STANDARD
from repro.experiments.registry import (EXPERIMENTS, all_experiments,
                                        get_experiment)
from repro.experiments.runner import (BASELINE, STANDARD_COMBOS, compare,
                                      make_governor, make_policy,
                                      run_experiment)
from repro.governors.performance import PerformanceGovernor
from repro.governors.schedutil import SchedutilGovernor
from repro.hw.machines import ALL_MACHINES, get_machine
from repro.sched.cfs import CfsPolicy
from repro.sched.smove import SmovePolicy
from repro.workloads.configure import ConfigureWorkload

SMALL = get_machine("ryzen_4650g")


class TestFactories:
    def test_make_policy(self):
        assert isinstance(make_policy("cfs"), CfsPolicy)
        assert isinstance(make_policy("nest"), NestPolicy)
        assert isinstance(make_policy("smove"), SmovePolicy)
        assert isinstance(make_policy("CFS"), CfsPolicy)

    def test_make_policy_custom_params(self):
        p = make_policy("nest", NestParams(r_max=9))
        assert p.params.r_max == 9

    def test_make_policy_unknown(self):
        with pytest.raises(ValueError):
            make_policy("rr")

    def test_make_governor(self):
        assert isinstance(make_governor("schedutil"), SchedutilGovernor)
        assert isinstance(make_governor("sched"), SchedutilGovernor)
        assert isinstance(make_governor("perf"), PerformanceGovernor)

    def test_make_governor_unknown(self):
        with pytest.raises(ValueError):
            make_governor("ondemand")


class TestRunExperiment:
    def test_result_fields(self):
        res = run_experiment(ConfigureWorkload("gcc"), SMALL, "nest",
                             "schedutil", seed=2)
        assert res.scheduler == "Nest"
        assert res.governor == "schedutil"
        assert res.machine == SMALL.name
        assert res.workload == "configure-gcc"
        assert res.seed == 2
        assert res.makespan_us > 0
        assert res.energy_joules > 0
        assert res.underload is not None
        assert res.freq_dist is not None
        assert res.n_tasks > 0
        assert "primary_hits" in res.policy_stats

    def test_determinism(self):
        a = run_experiment(ConfigureWorkload("gcc"), SMALL, "cfs",
                           "schedutil", seed=3)
        b = run_experiment(ConfigureWorkload("gcc"), SMALL, "cfs",
                           "schedutil", seed=3)
        assert a.makespan_us == b.makespan_us
        assert a.energy_joules == pytest.approx(b.energy_joules)

    def test_trace_recording_optional(self):
        res = run_experiment(ConfigureWorkload("gcc"), SMALL, "cfs",
                             "schedutil", seed=1, record_trace=True)
        assert res.trace_segments
        assert res.extra["n_segments"] > 0

    def test_max_us_bounds_run(self):
        res = run_experiment(ConfigureWorkload("imagemagick"), SMALL,
                             "cfs", "schedutil", seed=1, max_us=10_000)
        assert res.makespan_us <= 10_000

    def test_brief_is_readable(self):
        res = run_experiment(ConfigureWorkload("gcc"), SMALL, "cfs",
                             "schedutil", seed=1)
        assert "configure-gcc" in res.brief()


class TestCompare:
    def test_compare_computes_speedups(self):
        cmp = compare(lambda: ConfigureWorkload("gcc"), SMALL,
                      combos=(("cfs", "schedutil"), ("nest", "schedutil")),
                      seeds=(1, 2))
        s = cmp.speedup_of("nest", "schedutil")
        assert isinstance(s, float)
        assert cmp.speedup_of(*BASELINE) == pytest.approx(0.0)
        assert cmp.baseline.label == "cfs-schedutil"

    def test_compare_tracks_underload_and_energy(self):
        cmp = compare(lambda: ConfigureWorkload("gcc"), SMALL,
                      combos=(("cfs", "schedutil"), ("nest", "schedutil")),
                      seeds=(1,))
        assert cmp.underload_of("cfs", "schedutil") >= 0
        assert isinstance(cmp.energy_savings_of("nest", "schedutil"), float)
        assert cmp.error_bar_of("nest", "schedutil") >= 0

    def test_standard_combos(self):
        assert BASELINE in STANDARD_COMBOS
        assert len(STANDARD_COMBOS) == 4


class TestRegistry:
    def test_all_paper_artefacts_registered(self):
        ids = set(EXPERIMENTS)
        for required in ("table1", "table2", "table3", "table4",
                         "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
                         "fig8_9", "fig10", "fig11", "fig12", "fig13",
                         "ablation_configure", "ablation_dacapo"):
            assert required in ids

    def test_every_experiment_names_a_bench(self):
        for exp in all_experiments():
            assert exp.bench.startswith("benchmarks/")
            assert exp.expected_shape

    def test_machines_exist(self):
        for exp in all_experiments():
            for mk in exp.machines:
                assert mk in ALL_MACHINES

    def test_get_experiment(self):
        assert get_experiment("fig5").artefact == "Figure 5"
        with pytest.raises(KeyError):
            get_experiment("fig99")


class TestConfigs:
    def test_fast_is_smaller_than_full(self):
        assert len(FAST.seeds) < len(FULL.seeds)
        assert FAST.workload_scale <= FULL.workload_scale

    def test_standard_covers_paper_machines(self):
        assert set(STANDARD.machines) == {"6130_2s", "6130_4s", "5218_2s",
                                          "e78870_4s"}
