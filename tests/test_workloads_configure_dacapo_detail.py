"""Deeper behavioural tests for the configure and DaCapo generators."""

import pytest

from repro.experiments.runner import run_experiment
from repro.hw.machines import get_machine
from repro.workloads.configure import CONFIGURE_PROFILES, ConfigureWorkload
from repro.workloads.dacapo import DACAPO_PROFILES, DacapoWorkload

SMALL = get_machine("ryzen_4650g")
M2S = get_machine("6130_2s")


def run(wl, sched="cfs", seed=1, machine=SMALL):
    return run_experiment(wl, machine, sched, "schedutil", seed=seed)


class TestConfigureDetail:
    def test_task_count_tracks_n_tests(self):
        res = run(ConfigureWorkload("gcc"))
        profile = CONFIGURE_PROFILES["gcc"]
        # At least one child per test; bursts and pipelines add more.
        assert res.n_tasks >= profile.n_tests + 1
        assert res.n_tasks <= profile.n_tests * 4 + 1

    def test_pipeline_children_fork_grandchildren(self):
        """Packages with pipeline_frac > 0 create depth-2 task trees."""
        res = run(ConfigureWorkload("ffmpeg"), seed=3)
        # ffmpeg has 35% pipelines over 100 tests: far more tasks than
        # tests alone would produce.
        assert res.n_tasks > CONFIGURE_PROFILES["ffmpeg"].n_tests * 1.2

    def test_nodejs_is_trivial_profile(self):
        p = CONFIGURE_PROFILES["nodejs"]
        assert p.n_tests < 20
        assert p.long_frac > 0.5
        assert p.long_ms > 30

    def test_runtimes_ordered_like_paper(self):
        """The paper's CFS-schedutil runtimes order erlang > gcc."""
        erlang = run(ConfigureWorkload("erlang", scale=0.3), machine=M2S)
        gcc = run(ConfigureWorkload("gcc", scale=0.3), machine=M2S)
        assert erlang.makespan_us > gcc.makespan_us * 2

    def test_profiles_cover_paper_packages(self):
        assert set(CONFIGURE_PROFILES) == {
            "erlang", "ffmpeg", "gcc", "gdb", "imagemagick", "linux",
            "llvm_ninja", "llvm_unix", "mplayer", "nodejs", "php"}


class TestDacapoDetail:
    def test_gc_helpers_forked(self):
        res = run(DacapoWorkload("h2", scale=0.5), machine=M2S)
        # main + 12 workers + gc coordinator + gc helpers
        assert res.n_tasks > 14

    def test_tokens_bound_concurrency(self):
        """Effective parallelism never exceeds the token count by much:
        overload stays near zero and the underload peak is bounded."""
        res = run(DacapoWorkload("h2", scale=0.5), machine=M2S)
        profile = DACAPO_PROFILES["h2"]
        assert res.underload.total_overload < 60

    def test_few_task_apps_stay_sequentialish(self):
        res = run(DacapoWorkload("fop", scale=0.5), machine=M2S)
        assert res.underload.underload_per_second < 2.0

    def test_scale_shrinks_runtime(self):
        a = run(DacapoWorkload("pmd", scale=0.25), machine=M2S, seed=2)
        b = run(DacapoWorkload("pmd", scale=0.75), machine=M2S, seed=2)
        assert b.makespan_us > a.makespan_us * 1.5

    def test_every_profile_runs_on_small_machine(self):
        for app in ("avrora", "kafka-eval", "zxing-eval", "sunflow"):
            res = run(DacapoWorkload(app, scale=0.15))
            assert res.makespan_us > 0

    def test_worker_migration_penalty_state_reset(self):
        """The shared-home cache state is per-workload-instance; two runs
        of fresh instances give identical results."""
        a = run(DacapoWorkload("h2", scale=0.3), machine=M2S, seed=9)
        b = run(DacapoWorkload("h2", scale=0.3), machine=M2S, seed=9)
        assert a.makespan_us == b.makespan_us
