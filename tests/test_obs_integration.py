"""Integration tests of the observability layer against the simulator.

The two contracts that matter most:

* **Zero overhead when disabled** — a run with no sinks attached never
  constructs a single SchedEvent, and its results are bit-identical to a
  run that never imported the obs layer (there is no such run to compare
  against, so we compare against an obs-*enabled* run instead: collecting
  events must not change any deterministic result field).
* **Always-on metrics are coherent** — the Nest placement counters obey
  the paper's accounting identity, and ride on every RunResult.
"""

import pytest

from repro.experiments.runner import run_experiment
from repro.hw.machines import get_machine
from repro.obs.log import EventLog
from repro.workloads.catalog import make_workload
from test_parallel import assert_results_identical


def _run(collect_events=False, scheduler="nest"):
    return run_experiment(
        make_workload("configure-mplayer", scale=0.3),
        get_machine("ryzen_4650g"), scheduler, "schedutil", seed=1,
        collect_events=collect_events)


class TestZeroOverheadWhenDisabled:
    def test_disabled_run_never_constructs_events(self, monkeypatch):
        """No sink attached => EventLog.emit must never be reached."""
        def boom(self, *a, **kw):  # pragma: no cover - must not run
            raise AssertionError("emit() called with no sink attached")
        monkeypatch.setattr(EventLog, "emit", boom)
        res = _run(collect_events=False)
        assert res.makespan_us > 0

    def test_collecting_events_does_not_change_results(self):
        """Instrumentation is read-only: results stay bit-identical."""
        plain = _run(collect_events=False)
        observed = _run(collect_events=True)
        # The only legitimate difference: the event count rides on extra.
        observed.extra.pop("n_events")
        assert_results_identical(plain, observed)

    def test_enabled_run_yields_events(self):
        res = _run(collect_events=True)
        assert res.extra["n_events"] == float(len(res.events))
        assert len(res.events) > 0
        assert all(ev.t >= 0 for ev in res.events)

    def test_event_timestamps_monotonic_per_emission_order(self):
        res = _run(collect_events=True)
        times = [ev.t for ev in res.events]
        assert times == sorted(times)


class TestNestMetrics:
    def test_placement_identity_holds(self):
        """attach + primary + reserve + cfs == placements (§3.3 search)."""
        res = _run()
        st = res.policy_stats
        assert (st["attachment_hits"] + st["primary_hits"] +
                st["reserve_hits"] + st["cfs_fallbacks"]) == st["placements"]
        assert st["placements"] > 0

    def test_stats_property_backwards_compatible(self):
        """Old code reads policy.stats as a plain dict of ints."""
        from repro.core.nest import STAT_KEYS, NestPolicy
        pol = NestPolicy()
        st = pol.stats
        assert isinstance(st, dict)
        assert tuple(st) == STAT_KEYS
        assert all(v == 0 for v in st.values())

    def test_check_invariants_raises_on_corruption(self):
        from repro.core.nest import NestPolicy
        pol = NestPolicy()
        pol.metrics.counter("placements").value = 5   # hits still 0
        with pytest.raises(AssertionError):
            pol.check_invariants()

    def test_metrics_ride_on_run_result(self):
        res = _run()
        assert res.metrics["nest.placements"]["type"] == "counter"
        assert res.metrics["nest.placements"]["value"] == \
            res.policy_stats["placements"]
        assert res.metrics["kernel.wakeup_latency_us"]["type"] == "histogram"
        # Every dispatch observes the histogram (forks and requeues
        # included), so it covers at least every wakeup.
        assert res.metrics["kernel.wakeup_latency_us"]["count"] >= \
            res.total_wakeups

    def test_search_len_histogram_counts_every_placement(self):
        res = _run()
        h = res.metrics["nest.search_len"]
        assert h["count"] == res.policy_stats["placements"]

    def test_cfs_run_has_kernel_metrics_only(self):
        res = _run(scheduler="cfs")
        assert "kernel.wakeup_latency_us" in res.metrics
        assert not any(k.startswith("nest.") for k in res.metrics)
