"""Generator layer: seeded, order-independent, JSON-round-trippable."""

import json

import pytest

from repro.core.params import NestParams
from repro.faults.plan import FaultConfig
from repro.hw.machines import ALL_MACHINES
from repro.verify.generate import (ABLATABLE_FEATURES, MACHINE_POOL,
                                   SCHEDULER_POOL, WORKLOAD_POOL, Scenario,
                                   ScenarioGenerator, freeze_faults,
                                   freeze_params)
from repro.workloads.catalog import workload_names


def test_same_seed_same_scenarios():
    a = ScenarioGenerator(7)
    b = ScenarioGenerator(7)
    assert [a.generate(i) for i in range(50)] == \
           [b.generate(i) for i in range(50)]


def test_different_seeds_diverge():
    a = [ScenarioGenerator(1).generate(i) for i in range(20)]
    b = [ScenarioGenerator(2).generate(i) for i in range(20)]
    assert a != b


def test_generation_is_order_independent():
    gen = ScenarioGenerator(3)
    forward = [gen.generate(i) for i in range(30)]
    backward = [gen.generate(i) for i in reversed(range(30))]
    assert forward == list(reversed(backward))
    # A fresh generator jumping straight to one index agrees too.
    assert ScenarioGenerator(3).generate(17) == forward[17]


def test_pools_reference_real_catalogue_entries():
    known = set(workload_names())
    for name, scales in WORKLOAD_POOL:
        assert name in known
        assert scales
    for key in MACHINE_POOL:
        assert key in ALL_MACHINES
    for feature in ABLATABLE_FEATURES:
        NestParams().without(feature)   # raises on unknown features


def test_generator_covers_the_interesting_space():
    gen = ScenarioGenerator(1)
    scenarios = [gen.generate(i) for i in range(200)]
    schedulers = {s.scheduler for s in scenarios}
    assert schedulers == set(SCHEDULER_POOL)
    assert any(s.nest_params is not None for s in scenarios)
    assert any(s.faults is not None for s in scenarios)
    assert any(s.max_us is not None for s in scenarios)
    assert len({s.workload for s in scenarios}) == len(WORKLOAD_POOL)


def test_scenario_json_roundtrip():
    gen = ScenarioGenerator(11)
    for i in range(40):
        sc = gen.generate(i)
        cycled = Scenario.from_dict(json.loads(json.dumps(sc.to_dict())))
        assert cycled == sc
        assert hash(cycled) == hash(sc)


def test_scenario_object_views():
    params = NestParams(r_max=2, r_impatient=1)
    faults = FaultConfig(hotplug_rate_per_s=25.0)
    sc = Scenario(workload="configure-gcc", machine="ryzen_4650g",
                  scheduler="nest", governor="schedutil", seed=5,
                  nest_params=freeze_params(params),
                  faults=freeze_faults(faults))
    assert sc.nest_params_obj() == params
    assert sc.faults_obj() == faults
    assert "params" in sc.label and "faults" in sc.label
    clean = Scenario(workload="redis", machine="5218_2s", scheduler="cfs",
                     governor="performance", seed=1)
    assert clean.nest_params_obj() is None
    assert clean.faults_obj() is None


def test_generated_fault_configs_are_enabled():
    gen = ScenarioGenerator(1)
    faulted = [s for i in range(300) if (s := gen.generate(i)).faults]
    assert faulted
    for sc in faulted:
        assert sc.faults_obj().enabled


def test_scenario_strategy_needs_hypothesis():
    pytest.importorskip("hypothesis")
    from repro.verify.generate import scenario_strategy
    strategy = scenario_strategy(base_seed=1)
    from hypothesis import given, settings

    seen = []

    @settings(max_examples=20, deadline=None)
    @given(strategy)
    def probe(scenario):
        seen.append(scenario)
        assert isinstance(scenario, Scenario)

    probe()
    assert seen
