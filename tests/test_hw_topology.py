"""Tests for the topology model."""

import pytest
from hypothesis import given, strategies as st

from repro.hw.topology import Topology


class TestCounts:
    def test_6130_2s(self):
        t = Topology(2, 16, 2)
        assert t.n_physical_cores == 32
        assert t.n_cpus == 64

    def test_e7_4s(self):
        t = Topology(4, 20, 2)
        assert t.n_cpus == 160

    def test_smt1(self):
        t = Topology(1, 8, 1)
        assert t.n_cpus == 8

    def test_invalid(self):
        with pytest.raises(ValueError):
            Topology(0, 4)
        with pytest.raises(ValueError):
            Topology(1, 4, smt=4)


class TestNumbering:
    """Linux-style: thread-0 cpus first (socket-major), then siblings."""

    def test_socket_of_first_threads(self):
        t = Topology(2, 16, 2)
        assert t.socket_of(0) == 0
        assert t.socket_of(15) == 0
        assert t.socket_of(16) == 1
        assert t.socket_of(31) == 1

    def test_socket_of_siblings(self):
        t = Topology(2, 16, 2)
        assert t.socket_of(32) == 0
        assert t.socket_of(48) == 1

    def test_sibling_pairs(self):
        t = Topology(2, 16, 2)
        assert t.sibling_of(0) == 32
        assert t.sibling_of(32) == 0
        assert t.sibling_of(17) == 49

    def test_sibling_smt1_is_self(self):
        t = Topology(1, 4, 1)
        assert t.sibling_of(2) == 2

    def test_physical_core_shared_by_siblings(self):
        t = Topology(2, 16, 2)
        assert t.physical_core_of(5) == t.physical_core_of(37) == 5

    def test_thread_of(self):
        t = Topology(2, 16, 2)
        assert t.thread_of(5) == 0
        assert t.thread_of(37) == 1

    def test_smt_siblings(self):
        t = Topology(2, 16, 2)
        assert t.smt_siblings(37) == (5, 37)

    def test_cpus_in_socket(self):
        t = Topology(2, 2, 2)
        assert t.cpus_in_socket(0) == [0, 1, 4, 5]
        assert t.cpus_in_socket(1) == [2, 3, 6, 7]

    def test_bad_cpu_rejected(self):
        t = Topology(1, 2, 2)
        with pytest.raises(ValueError):
            t.socket_of(4)
        with pytest.raises(ValueError):
            t.cpus_in_socket(1)

    def test_die_equals_socket(self):
        t = Topology(2, 16, 2)
        for cpu in t.all_cpus():
            assert t.die_of(cpu) == t.socket_of(cpu)


@given(st.integers(1, 4), st.integers(1, 20), st.sampled_from([1, 2]))
def test_partition_properties(sockets, cores, smt):
    """Property: sockets partition the cpus; sibling is an involution on
    the same physical core and socket."""
    t = Topology(sockets, cores, smt)
    seen = []
    for s in t.sockets():
        seen.extend(t.cpus_in_socket(s))
    assert sorted(seen) == t.all_cpus()
    for cpu in t.all_cpus():
        sib = t.sibling_of(cpu)
        assert t.sibling_of(sib) == cpu
        assert t.physical_core_of(sib) == t.physical_core_of(cpu)
        assert t.socket_of(sib) == t.socket_of(cpu)
