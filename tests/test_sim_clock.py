"""Tests for repro.sim.clock."""

import pytest

from repro.sim.clock import (Clock, TICK_US, US_PER_MS, US_PER_SEC,
                             sec_from_us, ticks_to_us, us_from_ms,
                             us_from_sec)


class TestConversions:
    def test_ms_to_us(self):
        assert us_from_ms(1) == 1_000

    def test_ms_to_us_fractional_rounds(self):
        assert us_from_ms(1.5) == 1_500
        assert us_from_ms(0.0004) == 0

    def test_sec_to_us(self):
        assert us_from_sec(2) == 2_000_000

    def test_us_to_sec(self):
        assert sec_from_us(1_500_000) == pytest.approx(1.5)

    def test_roundtrip(self):
        assert sec_from_us(us_from_sec(3.25)) == pytest.approx(3.25)

    def test_tick_is_4ms(self):
        # The paper's machines run at 250 Hz: one tick = 4 ms.
        assert TICK_US == 4 * US_PER_MS

    def test_ticks_to_us(self):
        assert ticks_to_us(2) == 8_000
        assert ticks_to_us(0.5) == 2_000

    def test_units_consistent(self):
        assert US_PER_SEC == 1000 * US_PER_MS


class TestClock:
    def test_starts_at_zero(self):
        assert Clock().now == 0

    def test_custom_start(self):
        assert Clock(100).now == 100

    def test_advance(self):
        c = Clock()
        c.advance_to(50)
        assert c.now == 50

    def test_advance_to_same_time_ok(self):
        c = Clock(10)
        c.advance_to(10)
        assert c.now == 10

    def test_no_time_travel(self):
        c = Clock(10)
        with pytest.raises(ValueError):
            c.advance_to(9)

    def test_now_sec(self):
        c = Clock(2_500_000)
        assert c.now_sec == pytest.approx(2.5)
