"""Shared pytest configuration for the unit/property test suite."""

from hypothesis import HealthCheck, settings

# Simulation-backed property tests legitimately take tens of milliseconds
# per example; disable the per-example deadline so slow CI machines don't
# produce flaky failures.
settings.register_profile(
    "repro",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")
