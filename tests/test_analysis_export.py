"""Tests for the JSON/CSV export helpers."""

import json

import pytest

from repro.analysis.export import (CSV_FIELDS, comparison_to_dict,
                                   comparison_to_json, result_to_dict,
                                   results_to_csv, results_to_json)
from repro.experiments.runner import compare, run_experiment
from repro.hw.machines import get_machine
from repro.workloads.configure import ConfigureWorkload

SMALL = get_machine("ryzen_4650g")


@pytest.fixture(scope="module")
def result():
    return run_experiment(ConfigureWorkload("gcc", scale=0.5), SMALL,
                          "nest", "schedutil", seed=1)


@pytest.fixture(scope="module")
def comparison():
    return compare(lambda: ConfigureWorkload("gcc", scale=0.5), SMALL,
                   combos=(("cfs", "schedutil"), ("nest", "schedutil")),
                   seeds=(1,))


class TestResultExport:
    def test_dict_has_scalars(self, result):
        d = result_to_dict(result)
        assert d["workload"] == "configure-gcc"
        assert d["scheduler"] == "Nest"
        assert d["makespan_us"] > 0
        assert d["underload_per_second"] >= 0
        assert "freq_distribution" in d

    def test_json_round_trips(self, result):
        parsed = json.loads(results_to_json([result, result]))
        assert len(parsed) == 2
        assert parsed[0]["machine"] == SMALL.name

    def test_csv_header_and_rows(self, result):
        out = results_to_csv([result])
        lines = out.strip().splitlines()
        assert lines[0].split(",") == list(CSV_FIELDS)
        assert len(lines) == 2
        assert "configure-gcc" in lines[1]

    def test_csv_empty(self):
        lines = results_to_csv([]).strip().splitlines()
        assert len(lines) == 1


class TestComparisonExport:
    def test_dict_shape(self, comparison):
        d = comparison_to_dict(comparison)
        assert d["baseline"] == "cfs-schedutil"
        assert len(d["combos"]) == 2
        nest = next(c for c in d["combos"] if c["scheduler"] == "nest")
        assert isinstance(nest["speedup_vs_baseline"], float)
        assert nest["n_runs"] == 1

    def test_json_parses(self, comparison):
        parsed = json.loads(comparison_to_json(comparison))
        assert parsed["workload"] == "configure-gcc"
