"""Property tests for the scx_nest vtime queue and mask discipline.

The ISSUE-10 battery: FIFO-within-equal-vtime, bounded vtime lag (no
starvation), and mask-transition legality under random wake/sleep
sequences — all driven by hypothesis over the standalone
:class:`GlobalVtimeQueue` / :class:`NestMasks` state machines and over
the full policy wired to a real kernel.
"""

import pytest

pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st

from repro.core.params import NestParams
from repro.governors.performance import PerformanceGovernor
from repro.hw.freqmodel import SPEED_SHIFT
from repro.hw.machines import Machine
from repro.hw.turbo import XEON_5218
from repro.hw.topology import Topology
from repro.kernel.scheduler_core import Kernel
from repro.kernel.syscalls import Compute
from repro.sched.scxnest import GlobalVtimeQueue, NestMasks, ScxNestPolicy
from repro.sim.engine import Engine
from repro.workloads.base import ms_of_work

MACHINE = Machine(name="t", cpu_model="t", microarchitecture="t",
                  topology=Topology(2, 2, 2), turbo=XEON_5218, pm=SPEED_SHIFT)
N_CPUS = MACHINE.topology.n_cpus


# ---------------------------------------------------------------------------
# GlobalVtimeQueue
# ---------------------------------------------------------------------------

@given(st.lists(st.integers(0, 9), min_size=1, max_size=40))
def test_fifo_within_equal_vtime(keys):
    """Keys pushed at identical vtime pop in exact push order."""
    q = GlobalVtimeQueue()
    for k in keys:
        q.push(k)          # nobody charged: every entry sits at vtime 0
    assert [q.pop()[0] for _ in range(len(keys))] == keys
    assert q.pop() is None


#: One queue operation: ("charge", key) advances a key's vtime by a
#: slice, ("push", key) enqueues it, ("pop",) dequeues the minimum.
_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("charge"), st.integers(0, 5)),
        st.tuples(st.just("push"), st.integers(0, 5)),
        st.tuples(st.just("pop")),
    ),
    max_size=120)


@given(_OPS)
def test_bounded_lag_and_monotonic_clock(ops):
    """No starvation: every enqueue lands within ``max_lag_us`` of the
    queue clock regardless of interleaving, the clock never rewinds,
    and pops come out in nondecreasing (vtime, seq) order."""
    q = GlobalVtimeQueue()
    last_clock = 0
    for op in ops:
        if op[0] == "charge":
            q.charge(op[1])
        elif op[0] == "push":
            vt = q.push(op[1])
            assert q.vtime_now - vt <= q.max_lag_us
            assert vt <= q.vtime_now
        else:
            before = len(q)
            entry = q.pop()
            assert (entry is None) == (before == 0)
        assert q.vtime_now >= last_clock
        last_clock = q.vtime_now


@given(st.lists(st.tuples(st.integers(0, 5), st.booleans()), max_size=60))
def test_pop_order_is_nondecreasing_vtime(plan):
    """Drain order never goes backwards in virtual time, for any mix of
    charges and pushes."""
    q = GlobalVtimeQueue()
    vtime_at_push = {}
    seq = 0
    for key, do_charge in plan:
        if do_charge:
            q.charge(key)
        vt = q.push(key, payload=seq)
        vtime_at_push[seq] = vt
        seq += 1
    drained = []
    while True:
        entry = q.pop()
        if entry is None:
            break
        drained.append(vtime_at_push[entry[1]])
    assert drained == sorted(drained)


# ---------------------------------------------------------------------------
# NestMasks
# ---------------------------------------------------------------------------

_MASK_OPS = st.lists(
    st.tuples(st.sampled_from(("promote", "expand", "demote",
                               "admit", "evict")),
              st.integers(0, 7)),
    max_size=100)


@given(_MASK_OPS, st.integers(0, 4), st.booleans())
def test_mask_invariants_hold_under_any_op_sequence(ops, r_max, reserve_on):
    """Whatever sequence of transitions is attempted — legal ones
    applied, illegal ones raising — the §3.1 invariants always hold and
    an illegal transition never corrupts state."""
    m = NestMasks(r_max=r_max, reserve_enabled=reserve_on)
    for op, cpu in ops:
        before = (set(m.primary), set(m.reserve))
        try:
            if op == "promote":
                m.promote(cpu)
            elif op == "expand":
                m.expand(cpu)
            elif op == "demote":
                m.demote(cpu)
            elif op == "admit":
                m.admit_reserve(cpu)
            else:
                m.evict(cpu)
        except ValueError:
            assert (set(m.primary), set(m.reserve)) == before
        m.check()


@given(_MASK_OPS)
def test_illegal_transitions_always_raise(ops):
    """The specific illegality conditions are enforced exactly."""
    m = NestMasks(r_max=4)
    for op, cpu in ops:
        if op == "promote" and cpu not in m.reserve:
            with pytest.raises(ValueError):
                m.promote(cpu)
        elif op == "expand" and cpu in m.primary:
            with pytest.raises(ValueError):
                m.expand(cpu)
        elif op == "demote" and cpu not in m.primary:
            with pytest.raises(ValueError):
                m.demote(cpu)
        else:
            # Apply the legal version to keep exploring the state space.
            try:
                getattr(m, {"admit": "admit_reserve"}.get(op, op))(cpu)
            except ValueError:
                pass


# ---------------------------------------------------------------------------
# Full policy under random wake/sleep sequences
# ---------------------------------------------------------------------------

#: One simulated stimulus: fork a short task from a random cpu, occupy a
#: cpu with a hog, or report an exit-idle transition.
_POLICY_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("wake"), st.integers(0, N_CPUS - 1)),
        st.tuples(st.just("fork"), st.integers(0, N_CPUS - 1)),
        st.tuples(st.just("hog"), st.integers(0, N_CPUS - 1)),
        st.tuples(st.just("exit_idle"), st.integers(0, N_CPUS - 1)),
        st.tuples(st.just("run"), st.integers(1, 3)),
    ),
    max_size=40)


@settings(max_examples=25)
@given(_POLICY_OPS, st.integers(0, 3), st.integers(0, 3))
def test_policy_masks_stay_legal_under_random_sequences(ops, r_max,
                                                        r_impatient):
    """Random wake/sleep/exit sequences against a real kernel never
    break the mask invariants or the counter identities."""
    eng = Engine(0)
    policy = ScxNestPolicy(NestParams(r_max=r_max, r_impatient=r_impatient))
    kern = Kernel(eng, MACHINE, policy, PerformanceGovernor())
    tid = [0]

    def spawn(behaviour_us):
        def body(api):
            yield Compute(behaviour_us)
        tid[0] += 1
        return kern._new_task(body, f"t{tid[0]}", None)

    for op, arg in ops:
        if op == "wake":
            t = spawn(50)
            kern.enqueue(t, policy.select_cpu_wakeup(t, waker_cpu=arg))
        elif op == "fork":
            t = spawn(50)
            kern.enqueue(t, policy.select_cpu_fork(t, parent_cpu=arg))
        elif op == "hog":
            t = spawn(ms_of_work(5))
            kern.enqueue(t, arg)
        elif op == "exit_idle":
            policy.on_exit_idle(arg)
        else:
            eng.run(until=eng.now + arg * 1_000)
        policy._masks.check()
        policy.check_invariants()
    eng.run()
    policy._masks.check()
    policy.check_invariants()
