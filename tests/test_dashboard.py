"""HTML dashboard: self-contained, well-formed, complete.

The contract under test: stdlib-only generation, every run referenced,
zero external resources (the file must render from disk forever), and a
working ``repro obs dashboard`` CLI path.
"""

from __future__ import annotations

import json
import re
from html.parser import HTMLParser

import pytest

from repro.experiments.cache import ResultCache
from repro.experiments.cli import main
from repro.experiments.parallel import RunSpec, SweepExecutor
from repro.obs.dashboard import build_dashboard
from repro.obs.history import HistoryStore
from repro.obs.telemetry.hub import TelemetryHub

SPECS = [
    RunSpec(workload="configure-gcc", machine="ryzen_4650g",
            scheduler=sched, governor="schedutil", seed=1, scale=0.3)
    for sched in ("cfs", "nest")
]

#: Tags whose open/close counts must balance for the page to be sane.
BALANCED_TAGS = ("html", "head", "body", "table", "svg", "div", "p")


class TagBalance(HTMLParser):
    def __init__(self):
        super().__init__()
        self.opened: dict = {}
        self.closed: dict = {}

    def handle_starttag(self, tag, attrs):
        self.opened[tag] = self.opened.get(tag, 0) + 1

    def handle_endtag(self, tag):
        self.closed[tag] = self.closed.get(tag, 0) + 1


def assert_well_formed(html_text: str) -> None:
    assert html_text.startswith("<!DOCTYPE html>")
    parser = TagBalance()
    parser.feed(html_text)
    parser.close()
    for tag in BALANCED_TAGS:
        assert parser.opened.get(tag, 0) == parser.closed.get(tag, 0), tag


def assert_self_contained(html_text: str) -> None:
    """No scripts, no external stylesheets/images/fonts."""
    assert "<script" not in html_text
    assert '<link' not in html_text
    assert "@import" not in html_text
    # The only allowed absolute URL is the documentation link telling
    # the reader where Perfetto traces open.
    urls = re.findall(r'(?:src|href)="(https?://[^"]+)"', html_text)
    assert all(u.startswith("https://ui.perfetto.dev") for u in urls), urls


@pytest.fixture(scope="module")
def swept(tmp_path_factory):
    """Two sweeps (simulated, then fully cached) with full telemetry."""
    tmp = tmp_path_factory.mktemp("dash")
    cache = ResultCache(root=tmp / "cache")
    hist_path = cache.root / "history.sqlite"
    for label in ("first", "second"):
        hub = TelemetryHub(stream_dir=cache.root / "telemetry",
                           history=HistoryStore(hist_path),
                           heartbeat_s=0.0, label=label)
        SweepExecutor(jobs=2, cache=cache, telemetry=hub).run(SPECS)
    return tmp


class TestBuildDashboard:
    def test_well_formed_and_self_contained(self, swept):
        html_text = build_dashboard(
            swept / "cache" / "history.sqlite", "last-1",
            stream_dir=swept / "cache" / "telemetry",
            trajectory_path="BENCH_trajectory.json")
        assert_well_formed(html_text)
        assert_self_contained(html_text)

    def test_every_run_is_referenced(self, swept):
        html_text = build_dashboard(swept / "cache" / "history.sqlite",
                                    "last-1")
        for spec in SPECS:
            assert spec.label in html_text

    def test_simulated_sweep_has_worker_timeline(self, swept):
        html_text = build_dashboard(
            swept / "cache" / "history.sqlite", "last-1",
            stream_dir=swept / "cache" / "telemetry")
        assert 'aria-label="worker timeline"' in html_text
        assert "pid " in html_text

    def test_cached_sweep_renders_without_timeline(self, swept):
        html_text = build_dashboard(
            swept / "cache" / "history.sqlite", "last",
            stream_dir=swept / "cache" / "telemetry")
        assert_well_formed(html_text)
        assert "cached" in html_text

    def test_history_sparkline_appears_with_two_sweeps(self, swept):
        html_text = build_dashboard(swept / "cache" / "history.sqlite")
        assert "sweep wall time" in html_text
        assert "<svg" in html_text

    def test_trajectory_section_reads_bench_file(self, swept):
        html_text = build_dashboard(swept / "cache" / "history.sqlite",
                                    trajectory_path="BENCH_trajectory.json")
        assert "Perf trajectory" in html_text
        assert "PR1" in html_text or "PR6" in html_text

    def test_analysis_panel_renders_derived_metrics(self, swept):
        html_text = build_dashboard(swept / "cache" / "history.sqlite",
                                    "last-1")
        assert "<h2>Analysis</h2>" in html_text
        assert "warm share" in html_text
        assert "wakeup p99" in html_text
        # The nest run's placement-tier stacked bar with its legend.
        assert "placement tiers" in html_text
        assert "attach" in html_text and "cfs" in html_text

    def test_analysis_panel_degrades_without_derived_metrics(self, tmp_path):
        # A pre-analysis-layer sweep: rows with no derived.* keys.
        with HistoryStore(tmp_path / "h.sqlite") as st:
            st.record_sweep("u1", {"n_specs": 1, "simulated": 1}, [
                {"label": "old", "outcome": "simulated", "cached": False,
                 "completed": True, "sim_wall_s": 1.0,
                 "metrics": {"kernel.wakeups": 3}}])
        html_text = build_dashboard(tmp_path / "h.sqlite")
        assert "<h2>Analysis</h2>" in html_text
        assert "no derived metrics recorded" in html_text

    def test_labels_are_escaped(self, tmp_path):
        with HistoryStore(tmp_path / "h.sqlite") as st:
            st.record_sweep("u1", {"n_specs": 1, "simulated": 1}, [
                {"label": "<img src=x onerror=alert(1)>",
                 "outcome": "simulated", "cached": False, "completed": True,
                 "sim_wall_s": 1.0, "error": "<script>evil</script>"}],
                label="<b>bold</b>")
        html_text = build_dashboard(tmp_path / "h.sqlite")
        assert "<img src=x" not in html_text
        assert "<script>" not in html_text
        assert "&lt;img" in html_text

    def test_trace_links_section(self, swept, tmp_path):
        traces = tmp_path / "traces"
        traces.mkdir()
        (traces / "run1.json").write_text("{}")
        html_text = build_dashboard(swept / "cache" / "history.sqlite",
                                    traces_dir=traces)
        assert "run1.json" in html_text and "Traces" in html_text

    def test_unknown_ref_raises(self, swept):
        with pytest.raises(KeyError):
            build_dashboard(swept / "cache" / "history.sqlite", "nope")


class TestCliDashboard:
    def test_cli_writes_dashboard(self, swept, tmp_path, capsys):
        out = tmp_path / "dash.html"
        assert main(["obs", "dashboard",
                     "--cache-dir", str(swept / "cache"),
                     "--out", str(out),
                     "--trajectory", "BENCH_trajectory.json"]) == 0
        assert "dashboard:" in capsys.readouterr().out
        html_text = out.read_text(encoding="utf-8")
        assert_well_formed(html_text)
        assert_self_contained(html_text)
        for spec in SPECS:
            assert spec.label in html_text

    def test_cli_without_history_is_an_error(self, tmp_path, capsys):
        assert main(["obs", "dashboard",
                     "--cache-dir", str(tmp_path / "void")]) == 1
        assert "no run history" in capsys.readouterr().err

    def test_cli_unknown_sweep_is_an_error(self, swept, tmp_path, capsys):
        assert main(["obs", "dashboard",
                     "--cache-dir", str(swept / "cache"),
                     "--sweep", "zzz",
                     "--out", str(tmp_path / "x.html")]) == 1
        assert "error" in capsys.readouterr().err
