"""Tests for the metrics registry: counters, gauges, histograms."""

import json

import pytest

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_starts_at_zero(self):
        assert Counter("x").value == 0

    def test_inc(self):
        c = Counter("x")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_direct_attribute_increment(self):
        """Hot paths bypass inc() and bump .value directly."""
        c = Counter("x")
        c.value += 1
        assert c.value == 1


class TestGauge:
    def test_last_write_wins(self):
        g = Gauge("depth")
        g.set(3)
        g.set(7)
        assert g.value == 7


class TestHistogram:
    def test_needs_edges(self):
        with pytest.raises(ValueError):
            Histogram("empty", ())

    def test_rejects_unsorted_edges(self):
        with pytest.raises(ValueError):
            Histogram("bad", (1, 3, 2))

    def test_rejects_duplicate_edges(self):
        with pytest.raises(ValueError):
            Histogram("bad", (1, 2, 2, 3))

    def test_value_on_edge_lands_in_that_bucket(self):
        """Edges are inclusive upper bounds."""
        h = Histogram("h", (10, 20))
        h.observe(10)
        assert h.counts == [1, 0, 0]

    def test_value_just_above_edge_moves_up(self):
        h = Histogram("h", (10, 20))
        h.observe(11)
        assert h.counts == [0, 1, 0]

    def test_overflow_bucket(self):
        h = Histogram("h", (10, 20))
        h.observe(21)
        h.observe(10_000)
        assert h.counts == [0, 0, 2]

    def test_zero_and_negative_land_in_first_bucket(self):
        h = Histogram("h", (0, 10))
        h.observe(0)
        h.observe(-5)
        assert h.counts == [2, 0, 0]

    def test_count_sum_mean(self):
        h = Histogram("h", (10,))
        for v in (1, 2, 3):
            h.observe(v)
        assert h.count == 3
        assert h.sum == 6
        assert h.mean == 2.0

    def test_mean_of_empty_is_zero(self):
        assert Histogram("h", (1,)).mean == 0.0

    def test_bucket_labels(self):
        assert Histogram("h", (1, 5)).bucket_labels() == ["<=1", "<=5", ">5"]

    def test_counts_has_overflow_slot(self):
        assert len(Histogram("h", (1, 2, 3)).counts) == 4


class TestMetricsRegistry:
    def test_factories_idempotent(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("g") is reg.gauge("g")
        assert reg.histogram("h", (1, 2)) is reg.histogram("h")

    def test_histogram_lookup_without_edges_requires_registration(self):
        with pytest.raises(KeyError):
            MetricsRegistry().histogram("missing")

    def test_counters_view(self):
        reg = MetricsRegistry()
        reg.counter("a").inc(2)
        reg.counter("b")
        assert reg.counters() == {"a": 2, "b": 0}

    def test_as_dict_shapes(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        reg.gauge("g").set(9)
        h = reg.histogram("h", (1, 10))
        h.observe(5)
        d = reg.as_dict()
        assert d["c"] == {"type": "counter", "value": 3}
        assert d["g"] == {"type": "gauge", "value": 9}
        assert d["h"] == {"type": "histogram", "edges": [1, 10],
                          "counts": [0, 1, 0], "count": 1, "sum": 5}

    def test_as_dict_prefix(self):
        reg = MetricsRegistry()
        reg.counter("hits")
        assert set(reg.as_dict("nest.")) == {"nest.hits"}

    def test_round_trip_through_json(self):
        """The cache contract: as_dict -> JSON -> from_dict is exact."""
        reg = MetricsRegistry()
        reg.counter("c").inc(7)
        reg.gauge("g").set(-2)
        h = reg.histogram("h", (1, 2, 4))
        for v in (0, 1, 2, 3, 9):
            h.observe(v)
        data = json.loads(json.dumps(reg.as_dict()))
        clone = MetricsRegistry.from_dict(data)
        assert clone.as_dict() == reg.as_dict()

    def test_from_dict_rejects_unknown_type(self):
        with pytest.raises(ValueError):
            MetricsRegistry.from_dict({"x": {"type": "meter", "value": 1}})
