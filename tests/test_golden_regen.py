"""The golden-regen script must reproduce the checked-in golden exactly.

If this fails, either the simulator/exporter changed (regenerate the
golden deliberately and review the diff) or the regen script drifted
from the pinning test's fixture — both need a human decision, never a
silent fix.
"""

import subprocess
import sys
from pathlib import Path

import golden_regen
from test_obs_analysis import ANALYSIS_GOLDEN_PATH
from test_obs_export import GOLDEN_PATH
from test_scxnest_golden import SCXNEST_GOLDEN_PATH

REPO = Path(__file__).resolve().parent.parent


def test_regenerate_matches_checked_in_golden(tmp_path):
    out = golden_regen.regenerate(tmp_path / "regen.json")
    assert out.read_bytes() == GOLDEN_PATH.read_bytes()


def test_regenerate_analysis_matches_checked_in_golden(tmp_path):
    out = golden_regen.regenerate_analysis(tmp_path / "analysis.json")
    assert out.read_bytes() == ANALYSIS_GOLDEN_PATH.read_bytes()


def test_analysis_default_path_is_the_pinned_golden():
    assert ANALYSIS_GOLDEN_PATH.exists()
    assert ANALYSIS_GOLDEN_PATH.name == "golden_analysis.json"


def test_regenerate_scxnest_matches_checked_in_golden(tmp_path):
    out = golden_regen.regenerate_scxnest(tmp_path / "scxnest.json")
    assert out.read_bytes() == SCXNEST_GOLDEN_PATH.read_bytes()


def test_scxnest_default_path_is_the_pinned_golden():
    assert golden_regen.SCXNEST_GOLDEN_PATH == SCXNEST_GOLDEN_PATH
    assert SCXNEST_GOLDEN_PATH.exists()
    assert SCXNEST_GOLDEN_PATH.name == "golden_scxnest_analysis.json"


def test_regen_script_cli_matches_golden(tmp_path):
    out = tmp_path / "cli-regen.json"
    proc = subprocess.run(
        [sys.executable, str(REPO / "tests" / "golden_regen.py"), str(out)],
        capture_output=True, text=True, check=True)
    assert str(out) in proc.stdout
    assert out.read_bytes() == GOLDEN_PATH.read_bytes()


def test_regen_default_path_is_the_pinned_golden():
    # Guard the wiring: without an argument the script would overwrite
    # exactly the file the pinning test reads.
    assert golden_regen.GOLDEN_PATH == GOLDEN_PATH
    assert GOLDEN_PATH.exists()
