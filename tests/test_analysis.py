"""Tests for the analysis helpers (stats, tables, plots)."""

import pytest
from hypothesis import given, strategies as st

from repro.analysis.plots import (render_bars, render_core_trace,
                                  render_distribution)
from repro.analysis.stats import (SPEEDUP_BANDS, band_counts,
                                  classify_speedup, mean, relative_stddev,
                                  speedup_of_means, stddev)
from repro.analysis.tables import (pct, render_band_table,
                                   render_speedup_table, render_table)
from repro.sim.trace import Segment


class TestStats:
    def test_mean(self):
        assert mean([1, 2, 3]) == 2

    def test_stddev(self):
        assert stddev([2, 2, 2]) == 0
        assert stddev([0, 2]) == 1

    def test_relative_stddev(self):
        assert relative_stddev([90, 110]) == pytest.approx(0.1)

    def test_speedup_of_means(self):
        assert speedup_of_means([100], [80]) == pytest.approx(0.25)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean([])

    @pytest.mark.parametrize("value,band", [
        (-0.5, "slower by > 20%"),
        (-0.1, "slower by (5,20]%"),
        (0.0, "same"),
        (0.04, "same"),
        (0.1, "faster by (5,20]%"),
        (0.5, "faster by > 20%"),
    ])
    def test_classify_speedup(self, value, band):
        assert classify_speedup(value) == band

    def test_band_counts_total(self):
        counts = band_counts([-0.3, 0.0, 0.0, 0.1, 0.5])
        assert sum(counts.values()) == 5
        assert counts["same"] == 2

    @given(st.floats(-0.99, 5.0))
    def test_every_speedup_lands_in_exactly_one_band(self, s):
        assert classify_speedup(s) in SPEEDUP_BANDS


class TestTables:
    def test_render_table_alignment(self):
        out = render_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            render_table(["a"], [["1", "2"]])

    def test_pct(self):
        assert pct(0.123) == "+12.3%"
        assert pct(-0.05) == "-5.0%"

    def test_speedup_table(self):
        out = render_speedup_table("t", ["w1", "w2"],
                                   {"nest": [0.1, 0.2], "cfs": [0.0, 0.0]})
        assert "w1" in out and "+10.0%" in out

    def test_band_table(self):
        out = render_band_table("t", {"nest": {"same": 3,
                                               "faster by > 20%": 1}})
        assert "nest" in out and "same" in out


class TestPlots:
    def test_render_bars(self):
        out = render_bars("title", ["a", "b"], [0.5, -0.25])
        assert "title" in out
        assert "+" in out and "-" in out

    def test_render_bars_mismatch(self):
        with pytest.raises(ValueError):
            render_bars("t", ["a"], [1.0, 2.0])

    def test_render_distribution(self):
        out = render_distribution("freq", ["lo", "hi"], [0.25, 0.75])
        assert "hi=75%" in out

    def test_render_core_trace(self):
        segs = [Segment(0, 0, 50_000, 3700, 1),
                Segment(1, 10_000, 20_000, 1000, 2)]
        out = render_core_trace(segs, 0, 100_000, [1000, 2100, 3700])
        assert "core   0" in out and "core   1" in out

    def test_render_core_trace_empty(self):
        out = render_core_trace([], 0, 1000, [1000])
        assert "no activity" in out

    def test_render_core_trace_filters_spin(self):
        segs = [Segment(0, 0, 1000, 3700, -1, spinning=True)]
        assert "no activity" in render_core_trace(segs, 0, 1000, [1000])

    def test_render_core_trace_rejects_empty_window(self):
        with pytest.raises(ValueError):
            render_core_trace([], 5, 5, [1000])
