"""The auto-applied conformance suite: every registered policy earns it.

This is the SDK's enforcement arm — the test is parametrized over
``available_policies()``, so registering a new scheduler (the one-class,
one-entry contract in sched/base.py) automatically subjects it to the
full battery in verify/conformance.py.  A policy that cannot pass does
not ship.

The suite also proves it has teeth: the deliberately broken fixture
policy must be *convicted* by the oracle, not waved through.
"""

import pytest

from repro.sched.registry import available_policies, unregister_policy
from repro.verify.conformance import (BASELINE_LABEL, BATTERY,
                                      ConformanceReport, battery_scenarios,
                                      register_broken_fixture, render_report,
                                      run_conformance)

#: The cross-interpreter hash-seed check spawns two fresh pythons and
#: re-runs the baseline scenario in each — worth doing once per policy
#: in CI (``verify conformance`` / the conformance-matrix job), but too
#: slow to repeat inside the per-policy unit test here.  Everything else
#: (battery runs, oracle, in-process determinism, cache round-trip,
#: parity/refusal) runs in full.
_FAST = dict(hashseed_check=False)


@pytest.mark.parametrize("policy", available_policies())
def test_registered_policy_passes_conformance(policy):
    report = run_conformance(policy, **_FAST)
    assert report.passed, "\n" + render_report(report)


def test_battery_covers_the_required_regimes():
    labels = [label for label, _ in BATTERY]
    assert labels == ["warm", "forky", "multi_die", "deadline", "faulted"]
    assert BASELINE_LABEL in labels
    # The fault scenario really carries a fault plan; the others do not.
    by_label = dict(BATTERY)
    assert by_label["faulted"].faults is not None
    assert all(by_label[l].faults is None for l in labels if l != "faulted")
    # Multi-die really is the two-socket box.
    assert by_label["multi_die"].machine == "5218_2s"


def test_battery_scenarios_fill_in_the_policy():
    scenarios = battery_scenarios("cfs")
    assert [sc.scheduler for _, sc in scenarios] == ["cfs"] * len(BATTERY)
    # Templates themselves stay policy-free.
    assert all(sc.scheduler == "" for _, sc in BATTERY)


def test_unknown_policy_is_rejected_up_front():
    with pytest.raises(ValueError, match="unknown"):
        run_conformance("no-such-policy")


def test_broken_fixture_is_convicted():
    """The suite's own canary: a policy emitting an out-of-vocabulary
    event kind must fail conformance via the oracle, on every battery
    scenario, while the mechanical checks (completion, determinism)
    stay green — proving the conviction is the oracle's doing."""
    register_broken_fixture()
    try:
        report = run_conformance("broken", **_FAST)
    finally:
        unregister_policy("broken")

    assert not report.passed
    oracle_checks = [c for c in report.checks if c.name == "oracle"]
    assert oracle_checks and all(not c.ok for c in oracle_checks)
    assert all("events.vocabulary" in c.detail for c in oracle_checks)
    for name in ("completes", "determinism"):
        mech = [c for c in report.checks if c.name == name]
        assert mech and all(c.ok for c in mech)


def test_broken_fixture_registration_is_temporary():
    assert "broken" not in available_policies()
    register_broken_fixture()
    try:
        assert "broken" in available_policies()
    finally:
        unregister_policy("broken")
    assert "broken" not in available_policies()


def test_render_report_formats_pass_and_fail():
    from repro.verify.conformance import ConformanceCheck
    report = ConformanceReport(policy="demo", checks=[
        ConformanceCheck("completes", "warm", True),
        ConformanceCheck("oracle", "warm", False, "events.vocabulary: boom"),
    ])
    text = render_report(report)
    assert "demo" in text and "FAIL" in text
    assert "events.vocabulary: boom" in text
    report.checks[1] = ConformanceCheck("oracle", "warm", True)
    assert "PASS" in render_report(report)
