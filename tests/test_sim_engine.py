"""Tests for the simulation engine and RNG registry."""

import pytest

from repro.sim.engine import Engine, SimulationError
from repro.sim.events import EventKind
from repro.sim.rng import RngRegistry


class TestEngine:
    def test_runs_events_in_order(self):
        eng = Engine()
        seen = []
        eng.at(10, EventKind.IO, seen.append, (1,))
        eng.at(5, EventKind.IO, seen.append, (2,))
        eng.run()
        assert seen == [2, 1]
        assert eng.now == 10

    def test_after_is_relative(self):
        eng = Engine()
        eng.after(7, EventKind.IO, lambda: eng.after(3, EventKind.IO,
                                                     lambda: None))
        eng.run()
        assert eng.now == 10

    def test_no_scheduling_into_the_past(self):
        eng = Engine()
        eng.at(10, EventKind.IO, lambda: None)
        eng.run()
        with pytest.raises(SimulationError):
            eng.at(5, EventKind.IO, lambda: None)

    def test_negative_delay_rejected(self):
        eng = Engine()
        with pytest.raises(SimulationError):
            eng.after(-1, EventKind.IO, lambda: None)

    def test_until_stops_before_later_events(self):
        eng = Engine()
        seen = []
        eng.at(5, EventKind.IO, seen.append, (1,))
        eng.at(50, EventKind.IO, seen.append, (2,))
        eng.run(until=20)
        assert seen == [1]
        assert eng.now == 20
        assert eng.stop_reason == "until"

    def test_until_resumable(self):
        eng = Engine()
        seen = []
        eng.at(5, EventKind.IO, seen.append, (1,))
        eng.at(50, EventKind.IO, seen.append, (2,))
        eng.run(until=20)
        eng.run()
        assert seen == [1, 2]

    def test_stop_from_callback(self):
        eng = Engine()
        seen = []
        eng.at(1, EventKind.IO, lambda: (seen.append(1),
                                         eng.stop("enough")))
        eng.at(2, EventKind.IO, seen.append, (2,))
        eng.run()
        assert seen == [1]
        assert eng.stop_reason == "enough"

    def test_drained_reason(self):
        eng = Engine()
        eng.run()
        assert eng.stop_reason == "drained"

    def test_cancel_through_engine(self):
        eng = Engine()
        seen = []
        ev = eng.at(5, EventKind.IO, seen.append, (1,))
        eng.cancel(ev)
        eng.run()
        assert seen == []

    def test_max_events_guard(self):
        eng = Engine()

        def forever():
            eng.after(1, EventKind.IO, forever)

        eng.after(1, EventKind.IO, forever)
        with pytest.raises(SimulationError):
            eng.run(max_events=100)

    def test_events_processed_counter(self):
        eng = Engine()
        for i in range(5):
            eng.at(i, EventKind.IO, lambda: None)
        eng.run()
        assert eng.events_processed == 5


class TestRng:
    def test_same_seed_same_stream(self):
        a = RngRegistry(42).stream("x")
        b = RngRegistry(42).stream("x")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_names_differ(self):
        reg = RngRegistry(42)
        xs = [reg.stream("x").random() for _ in range(5)]
        ys = [reg.stream("y").random() for _ in range(5)]
        assert xs != ys

    def test_different_seeds_differ(self):
        a = RngRegistry(1).stream("x").random()
        b = RngRegistry(2).stream("x").random()
        assert a != b

    def test_stream_cached(self):
        reg = RngRegistry(0)
        assert reg.stream("a") is reg.stream("a")

    def test_fork_is_independent(self):
        reg = RngRegistry(7)
        child = reg.fork("wl")
        assert child.stream("x").random() != reg.stream("x").random()

    def test_fork_deterministic(self):
        a = RngRegistry(7).fork("wl").stream("x").random()
        b = RngRegistry(7).fork("wl").stream("x").random()
        assert a == b
