"""Mutation canaries for the scx_nest comparator (ISSUE-10 satellite).

Same discipline as tests/test_verify_canary.py: each canary
monkeypatches a real scx_nest branch into a subtly wrong one — a bug a
refactor could plausibly introduce — runs the real simulator, and
asserts the *external* oracle convicts it.  Both mutants survive
``ScxNestPolicy.check_invariants`` (counters stay consistent, the masks
stay disjoint), so the conviction proves the scxnest.* oracle families
have teeth of their own.
"""

from unittest import mock

from repro.obs import events as oev
from repro.sched.scxnest import NestMasks, ScxNestPolicy
from repro.verify import Scenario, check_run, run_scenario

#: dacapo-h2 on the small box compacts and promotes continually (see
#: tests/test_scxnest.py's end-to-end counters), so both mutated
#: branches are guaranteed to execute.
CANARY_SCENARIO = Scenario(
    workload="dacapo-h2", machine="ryzen_4650g", scheduler="scxnest",
    governor="schedutil", seed=3, scale=0.1)


def _convict(scenario=CANARY_SCENARIO):
    art = run_scenario(scenario)
    # The mutants must get past the policy's own self-check: a run that
    # died inside check_invariants would prove nothing about the oracle.
    assert art.error is None, art.error
    return {v.invariant for v in check_run(art)}


def test_unmutated_baseline_is_clean():
    assert _convict() == set()


def test_oracle_catches_silent_compaction():
    # Mutation: the compaction timer demotes the core and bumps the
    # counter but forgets to emit SCXNEST_COMPACT — the event stream no
    # longer tells the truth about the mask.
    real = ScxNestPolicy._compaction_fired

    def silent(self, cpu, gen):
        obs = self._obs

        class _Gag:
            enabled = False

        self._obs = _Gag()
        try:
            real(self, cpu, gen)
        finally:
            self._obs = obs

    with mock.patch.object(ScxNestPolicy, "_compaction_fired", silent):
        names = _convict()
    assert names & {"scxnest.event_counter_match", "scxnest.mask_replay"}, \
        names


def test_oracle_catches_promotion_that_never_happens():
    # Mutation: the reserve-hit branch emits SCXNEST_PROMOTE and counts
    # the hit, but the mask transition itself is dropped — the core
    # silently stays in the reserve.
    with mock.patch.object(NestMasks, "promote",
                           lambda self, cpu: None):
        names = _convict()
    assert "scxnest.mask_replay" in names, names


def test_mutants_do_not_trip_the_generic_families():
    # The convictions above must come from the scxnest.* families —
    # accounting stays internally consistent, so a suite without the
    # replay/event invariants would wave both mutants through.
    with mock.patch.object(NestMasks, "promote",
                           lambda self, cpu: None):
        names = _convict()
    assert all(n.startswith("scxnest.") for n in names), names
