"""Invariant oracle: clean runs pass, corrupted artifacts are caught.

The corruption tests never touch the simulator — they tamper with the
*artifacts* (events, metrics, snapshot) of a real clean run and assert
the matching invariant fires.  test_verify_canary.py covers the other
direction: tampering with the scheduler and letting real artifacts
convict it.
"""

import dataclasses

import pytest

from repro.obs import events as oev
from repro.obs.events import SchedEvent
from repro.verify.execute import RunArtifacts, run_scenario
from repro.verify.generate import Scenario, ScenarioGenerator, freeze_faults
from repro.verify.oracle import (INVARIANTS, NestSnapshot, Violation,
                                 check_run)
from repro.faults.plan import FaultConfig

NEST_SCENARIO = Scenario(workload="configure-gcc", machine="ryzen_4650g",
                         scheduler="nest", governor="schedutil", seed=3,
                         scale=0.2)


@pytest.fixture(scope="module")
def nest_art():
    art = run_scenario(NEST_SCENARIO)
    assert art.error is None
    return art


def _names(violations):
    return {v.invariant for v in violations}


def test_clean_run_passes_every_invariant(nest_art):
    assert check_run(nest_art) == []


def test_clean_runs_pass_across_schedulers_and_faults():
    gen = ScenarioGenerator(99)
    checked = 0
    for i in range(25):
        art = run_scenario(gen.generate(i))
        assert check_run(art) == [], gen.generate(i).label
        checked += 1
    assert checked == 25


def test_crash_short_circuits_to_run_completed():
    bad = dataclasses.replace(NEST_SCENARIO, workload="no-such-workload")
    art = run_scenario(bad)
    assert art.error is not None
    assert _names(check_run(art)) == {"run.completed"}


def test_invariant_names_are_stable_and_unique():
    names = [name for name, _fn in INVARIANTS]
    assert len(names) == len(set(names))
    assert len(names) >= 12           # the tentpole's "about a dozen"
    assert "nest.primary_replay" in names
    assert "faults.consistency" in names


def _copy_with(art: RunArtifacts, **kw) -> RunArtifacts:
    return RunArtifacts(**{**art.__dict__, **kw})


def test_catches_clock_regression(nest_art):
    events = list(nest_art.events)
    last = events[-1]
    events.append(SchedEvent(t=last.t - 1, kind=oev.SCHED_WAKEUP,
                             cpu=0, task=1))
    broken = _copy_with(nest_art, events=events)
    assert "clock.monotonic" in _names(check_run(broken))


def test_catches_unknown_event_kind(nest_art):
    events = list(nest_art.events)
    events[0] = events[0]._replace(kind="sched.wat")
    broken = _copy_with(nest_art, events=events)
    assert "events.vocabulary" in _names(check_run(broken))


def test_catches_counter_event_divergence(nest_art):
    metrics = dict(nest_art.result.metrics)
    entry = dict(metrics["nest.placements"])
    entry["value"] += 1
    metrics["nest.placements"] = entry
    broken = _copy_with(nest_art,
                        result=dataclasses.replace(nest_art.result,
                                                   metrics=metrics))
    names = _names(check_run(broken))
    assert "nest.placement_accounting" in names
    assert "nest.event_counter_match" in names


def test_catches_phantom_promote(nest_art):
    events = list(nest_art.events)
    # Promote a cpu that is already a primary member per the replay.
    first_promo = next(e for e in events if e.kind in oev.PRIMARY_ADD_KINDS)
    idx = events.index(first_promo)
    events.insert(idx + 1, first_promo)
    broken = _copy_with(nest_art, events=events)
    names = _names(check_run(broken))
    assert "nest.primary_replay" in names


def test_catches_snapshot_mismatch(nest_art):
    snap = nest_art.nest
    wrong = NestSnapshot(primary=snap.primary | {nest_art.machine.n_cpus - 1,
                                                 0, 1, 2},
                         reserve=snap.reserve, r_max=snap.r_max)
    broken = _copy_with(nest_art, nest=wrong)
    assert "nest.primary_replay" in _names(check_run(broken))


def test_catches_reserve_overflow_and_overlap(nest_art):
    snap = nest_art.nest
    overfull = NestSnapshot(primary=snap.primary,
                            reserve=frozenset(range(snap.r_max + 1)),
                            r_max=snap.r_max)
    broken = _copy_with(nest_art, nest=overfull)
    names = _names(check_run(broken))
    assert "nest.final_state" in names

    if snap.primary:
        overlapping = NestSnapshot(primary=snap.primary,
                                   reserve=frozenset(list(snap.primary)[:1]),
                                   r_max=snap.r_max)
        broken = _copy_with(nest_art, nest=overlapping)
        assert "nest.final_state" in _names(check_run(broken))


def test_catches_double_commit(nest_art):
    events = list(nest_art.events)
    commit = next(e for e in events if e.kind in oev.COMMIT_KINDS)
    events.insert(events.index(commit), commit)
    broken = _copy_with(nest_art, events=events)
    assert "sched.wakeup_dispatch" in _names(check_run(broken))


def test_catches_latency_histogram_drift(nest_art):
    metrics = dict(nest_art.result.metrics)
    entry = dict(metrics["kernel.wakeup_latency_us"])
    entry["sum"] += 5
    metrics["kernel.wakeup_latency_us"] = entry
    broken = _copy_with(nest_art,
                        result=dataclasses.replace(nest_art.result,
                                                   metrics=metrics))
    assert "sched.latency_accounting" in _names(check_run(broken))


def test_catches_histogram_bucket_corruption(nest_art):
    metrics = dict(nest_art.result.metrics)
    entry = dict(metrics["nest.search_len"])
    entry["counts"] = list(entry["counts"])
    entry["counts"][0] += 1
    metrics["nest.search_len"] = entry
    broken = _copy_with(nest_art,
                        result=dataclasses.replace(nest_art.result,
                                                   metrics=metrics))
    assert "metrics.histograms" in _names(check_run(broken))


def test_catches_frequency_escape(nest_art):
    events = list(nest_art.events)
    events.append(SchedEvent(t=events[-1].t, kind=oev.FREQ_STEP, cpu=0,
                             value=nest_art.machine.max_turbo_mhz + 1000))
    broken = _copy_with(nest_art, events=events)
    assert "freq.sanity" in _names(check_run(broken))


def test_catches_double_spin_start(nest_art):
    events = list(nest_art.events)
    spin = next((e for e in events if e.kind == oev.SPIN_START), None)
    assert spin is not None, "nest run should warm-spin"
    events.insert(events.index(spin), spin)
    broken = _copy_with(nest_art, events=events)
    assert "spin.pairing" in _names(check_run(broken))


def test_catches_fault_count_drift():
    faulted = dataclasses.replace(
        NEST_SCENARIO, seed=17,
        faults=freeze_faults(FaultConfig(hotplug_rate_per_s=100.0,
                                         horizon_us=40_000)))
    art = run_scenario(faulted)
    assert art.error is None
    assert check_run(art) == []
    extra = dict(art.result.extra)
    extra["faults_injected"] = extra.get("faults_injected", 0.0) + 1
    broken = _copy_with(art, result=dataclasses.replace(art.result,
                                                        extra=extra))
    assert "faults.consistency" in _names(check_run(broken))


FTRT_SCENARIO = Scenario(
    workload="deadline-periodic", machine="ryzen_4650g", scheduler="ftrt",
    governor="schedutil", seed=2, scale=1.0,
    faults=freeze_faults(FaultConfig(core_failure_rate_per_s=60.0,
                                     core_failure_burst=3,
                                     core_failure_downtime_us=10_000,
                                     horizon_us=100_000)))


@pytest.fixture(scope="module")
def ftrt_art():
    art = run_scenario(FTRT_SCENARIO)
    assert art.error is None
    # The scenario must actually exercise the RT machinery, or the rt.*
    # tamper tests below would be vacuous.
    assert any(e.kind == oev.RT_BACKUP_ACTIVATE for e in art.events)
    return art


def test_ftrt_faulted_run_passes_every_invariant(ftrt_art):
    assert check_run(ftrt_art) == []


def test_catches_miss_before_any_fault(ftrt_art):
    events = [SchedEvent(t=0, kind=oev.RT_DEADLINE_MISS, task=1, value=0)] \
        + list(ftrt_art.events)
    metrics = dict(ftrt_art.result.metrics)
    old = metrics.get("kernel.rt_deadline_miss", {"type": "counter",
                                                  "value": 0})
    metrics["kernel.rt_deadline_miss"] = {"type": "counter",
                                          "value": old["value"] + 1}
    broken = _copy_with(ftrt_art, events=events,
                        result=dataclasses.replace(ftrt_art.result,
                                                   metrics=metrics))
    assert "rt.miss_causality" in _names(check_run(broken))


def test_catches_miss_in_faultless_run():
    art = run_scenario(dataclasses.replace(FTRT_SCENARIO, faults=None))
    assert art.error is None
    metrics = dict(art.result.metrics)
    metrics["kernel.rt_deadline_miss"] = {"type": "counter", "value": 1}
    broken = _copy_with(art, result=dataclasses.replace(art.result,
                                                        metrics=metrics))
    assert "rt.miss_causality" in _names(check_run(broken))


def test_catches_backup_on_primary_physical_core(ftrt_art):
    events = list(ftrt_art.events)
    idx, place = next((i, e) for i, e in enumerate(events)
                      if e.kind == oev.RT_BACKUP_PLACE and e.value >= 0)
    events[idx] = place._replace(cpu=place.value)   # same core as primary
    broken = _copy_with(ftrt_art, events=events)
    assert "rt.backup_disjoint" in _names(check_run(broken))


def test_fallback_backup_placement_not_convicted(ftrt_art):
    """value=-1 marks an admitted fallback (no committed primary core):
    the disjointness invariant deliberately lets it pass."""
    events = list(ftrt_art.events)
    idx, place = next((i, e) for i, e in enumerate(events)
                      if e.kind == oev.RT_BACKUP_PLACE and e.value >= 0)
    events[idx] = place._replace(cpu=place.value, value=-1)
    broken = _copy_with(ftrt_art, events=events)
    assert "rt.backup_disjoint" not in _names(check_run(broken))


def test_catches_unpaired_activation_event(ftrt_art):
    last = ftrt_art.events[-1]
    events = list(ftrt_art.events) + [
        SchedEvent(t=last.t, kind=oev.RT_BACKUP_ACTIVATE, cpu=0,
                   task=999, value=998)]
    broken = _copy_with(ftrt_art, events=events)
    assert "rt.activation_pairing" in _names(check_run(broken))


def test_catches_kill_outside_failure_instant(ftrt_art):
    events = list(ftrt_art.events)
    idx, kill = next((i, e) for i, e in enumerate(events)
                     if e.kind == oev.RT_KILL)
    failure_times = {e.t for e in events
                     if e.kind == oev.FAULT_CORE_FAILURE}
    # Retime the kill to an instant with no core-failure event, keeping
    # the log sorted (drop + re-insert at the front at t=0).
    events.pop(idx)
    assert 0 not in failure_times
    events.insert(0, kill._replace(t=0))
    broken = _copy_with(ftrt_art, events=events)
    assert "rt.activation_pairing" in _names(check_run(broken))


def test_violation_formatting():
    v = Violation("nest.final_state", "boom", t=42)
    assert "nest.final_state" in str(v) and "@t=42" in str(v)
    assert v.to_dict() == {"invariant": "nest.final_state",
                           "message": "boom", "t": 42}
