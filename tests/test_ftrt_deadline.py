"""FT-RT fault-tolerant deadline scheduling: the policy registry, the
primary/backup placement policy, the deadline workload family, the
fast-engine refusal, and the deadline analyzer + derived metrics.

End-to-end kill/recovery behaviour under correlated failures lives in
test_faults.py (TestCorrelatedFailureRuns); the oracle's rt.* invariants
in test_verify_oracle.py; the mutation canaries in test_verify_canary.py.
"""

import pytest

from repro.experiments.runner import run_experiment
from repro.faults import FaultConfig
from repro.governors.performance import PerformanceGovernor
from repro.hw.freqmodel import SPEED_SHIFT
from repro.hw.machines import Machine, get_machine
from repro.hw.topology import Topology
from repro.hw.turbo import XEON_5218
from repro.kernel.scheduler_core import Kernel
from repro.obs import events as oev
from repro.obs.analysis.analyzers import DeadlineAnalyzer
from repro.obs.analysis.base import AnalysisContext
from repro.obs.analysis.report import analyze_run, derived_metrics, report_text
from repro.obs.events import SchedEvent
from repro.sched.ftrt import FtrtPolicy
from repro.sched.registry import (available_policies, make_registered_policy,
                                  register_policy)
from repro.sim.engine import Engine
from repro.workloads.catalog import can_reconstruct, make_workload
from repro.workloads.deadline import DeadlineWorkload

MACHINE = Machine(name="t", cpu_model="t", microarchitecture="t",
                  topology=Topology(2, 4, 2), turbo=XEON_5218, pm=SPEED_SHIFT)

COREFAIL_DENSE = FaultConfig(core_failure_rate_per_s=60.0,
                             core_failure_burst=3,
                             core_failure_downtime_us=10_000,
                             horizon_us=100_000)


# ---------------------------------------------------------------------------
# Policy registry


class TestPolicyRegistry:
    def test_builtins_registered(self):
        assert available_policies() == ["cfs", "ftrt", "nest", "scxnest",
                                        "smove"]

    def test_instantiates_each(self):
        for name in available_policies():
            policy = make_registered_policy(name)
            assert hasattr(policy, "select_cpu_fork"), name

    def test_case_insensitive(self):
        assert type(make_registered_policy("FTRT")) is FtrtPolicy

    def test_nest_params_forwarded(self):
        from repro.core.params import NestParams
        params = NestParams(r_max=3)
        policy = make_registered_policy("nest", params)
        assert policy.params.r_max == 3

    def test_unknown_name_lists_known(self):
        with pytest.raises(ValueError, match="unknown scheduler"):
            make_registered_policy("o1-preempt")
        with pytest.raises(ValueError, match="ftrt"):
            make_registered_policy("o1-preempt")

    def test_duplicate_registration_needs_replace(self):
        factory = lambda params: FtrtPolicy()
        with pytest.raises(ValueError, match="already registered"):
            register_policy("ftrt", factory)
        # replace=True swaps the entry; restore the built-in after.
        from repro.sched.registry import _REGISTRY
        original = _REGISTRY["ftrt"]
        try:
            register_policy("ftrt", factory, replace=True)
            assert _REGISTRY["ftrt"].factory is factory
        finally:
            _REGISTRY["ftrt"] = original

    def test_runner_resolves_through_registry(self):
        from repro.experiments.runner import make_policy
        assert type(make_policy("ftrt")) is FtrtPolicy
        with pytest.raises(ValueError):
            make_policy("bogus")


# ---------------------------------------------------------------------------
# FT-RT placement policy


def ftrt_kernel():
    eng = Engine(0)
    policy = FtrtPolicy()
    kern = Kernel(eng, MACHINE, policy, PerformanceGovernor())
    return eng, kern, policy


def rt_pair(kern, primary_cpu=None):
    """A primary/backup task pair, the primary committed to a core."""
    def body(api):
        yield None

    primary = kern._new_task(body, "primary", None)
    if primary_cpu is not None:
        primary.record_core(primary_cpu)
    backup = kern._new_task(body, "backup", None)
    backup.backup_of = primary
    primary.backup = backup
    return primary, backup


class TestFtrtPlacement:
    def test_backup_lands_on_disjoint_physical_core(self):
        eng, kern, policy = ftrt_kernel()
        primary, backup = rt_pair(kern, primary_cpu=0)
        cpu = policy.select_cpu_fork(backup, parent_cpu=0)
        assert kern.pc_of[cpu] != kern.pc_of[0]
        assert policy.metrics.counters()["disjoint_ok"] == 1
        policy.check_invariants()

    def test_backup_prefers_the_other_socket(self):
        eng, kern, policy = ftrt_kernel()
        primary, backup = rt_pair(kern, primary_cpu=0)
        cpu = policy.select_cpu_fork(backup, parent_cpu=0)
        assert kern.topology.die_of(cpu) != kern.topology.die_of(0)

    def test_fallback_without_committed_primary_core(self):
        eng, kern, policy = ftrt_kernel()
        primary, backup = rt_pair(kern, primary_cpu=None)
        cpu = policy.select_cpu_fork(backup, parent_cpu=2)
        assert kern.cpu_online[cpu]
        assert policy.metrics.counters()["disjoint_fallbacks"] == 1
        policy.check_invariants()

    def test_fallback_when_only_primary_core_survives(self):
        eng, kern, policy = ftrt_kernel()
        # Leave online only cpu 0 and its SMT sibling: no disjoint core.
        sibling = kern.topology.sibling_of(0)
        for c in range(kern.topology.n_cpus):
            if c not in (0, sibling):
                kern.set_cpu_offline(c)
        primary, backup = rt_pair(kern, primary_cpu=0)
        cpu = policy.select_cpu_fork(backup, parent_cpu=0)
        assert cpu in (0, sibling)    # CFS had nothing else to offer
        assert policy.metrics.counters()["disjoint_fallbacks"] == 1

    def test_smt_sibling_of_primary_excluded(self):
        eng, kern, policy = ftrt_kernel()
        # Offline the whole second socket so the scan is confined to the
        # primary's socket — the sibling thread must still be refused.
        for c in range(kern.topology.n_cpus):
            if kern.topology.die_of(c) != kern.topology.die_of(0):
                kern.set_cpu_offline(c)
        primary, backup = rt_pair(kern, primary_cpu=0)
        cpu = policy.select_cpu_fork(backup, parent_cpu=0)
        assert cpu != kern.topology.sibling_of(0)
        assert kern.pc_of[cpu] != kern.pc_of[0]

    def test_ordinary_forks_fall_through_to_cfs(self):
        eng, kern, policy = ftrt_kernel()

        def body(api):
            yield None

        task = kern._new_task(body, "plain", None)
        policy.select_cpu_fork(task, parent_cpu=0)
        c = policy.metrics.counters()
        assert c["placements"] == 1 and c["backup_placements"] == 0

    def test_counter_imbalance_detected(self):
        eng, kern, policy = ftrt_kernel()
        policy._c_backup.value += 1
        with pytest.raises(AssertionError, match="ftrt counter"):
            policy.check_invariants()


# ---------------------------------------------------------------------------
# Deadline workloads


class TestDeadlineWorkload:
    def test_catalog_round_trip(self):
        for name in ("deadline-periodic", "deadline-sporadic"):
            wl = make_workload(name, scale=0.5)
            assert wl.name == name
            assert can_reconstruct(wl)

    def test_scale_scales_job_count(self):
        assert make_workload("deadline-periodic", scale=0.5).jobs == 16
        assert make_workload("deadline-periodic").jobs == 32

    def test_deadline_carries_slack_over_wcet(self):
        wl = DeadlineWorkload(work_us=2_000, slack=4.0)
        assert wl.deadline_us == 8_000

    def test_clean_run_meets_every_deadline(self):
        res = run_experiment(make_workload("deadline-periodic"),
                             get_machine("ryzen_4650g"), "ftrt",
                             "schedutil", seed=5)
        m = res.metrics
        assert m["kernel.rt_deadline_met"]["value"] == 32
        assert "kernel.rt_deadline_miss" not in m \
            or m["kernel.rt_deadline_miss"]["value"] == 0
        # Every backup admitted, none promoted, all retired silently.
        assert m["ftrt.backup_placements"]["value"] == 32
        assert "kernel.rt_backup_activations" not in m \
            or m["kernel.rt_backup_activations"]["value"] == 0

    def test_sporadic_variant_runs_and_differs(self):
        a = run_experiment(make_workload("deadline-sporadic"),
                           get_machine("ryzen_4650g"), "ftrt",
                           "schedutil", seed=5)
        b = run_experiment(make_workload("deadline-periodic"),
                           get_machine("ryzen_4650g"), "ftrt",
                           "schedutil", seed=5)
        assert a.metrics["kernel.rt_deadline_met"]["value"] == 32
        assert a.makespan_us != b.makespan_us

    def test_deadline_workloads_run_on_other_schedulers(self):
        """The RT protocol is policy-agnostic: Nest and CFS run the same
        pairs (without the disjointness guarantee)."""
        for sched in ("nest", "cfs"):
            res = run_experiment(make_workload("deadline-periodic"),
                                 get_machine("ryzen_4650g"), sched,
                                 "schedutil", seed=5)
            assert res.metrics["kernel.rt_deadline_met"]["value"] == 32


# ---------------------------------------------------------------------------
# Fast-engine refusal and vacuous parity


class TestFastEngineRefusal:
    def test_make_fast_policy_refuses_ftrt(self):
        from repro.sim.fastengine import make_fast_policy
        with pytest.raises(ValueError, match="no fast-engine variant"):
            make_fast_policy("ftrt")

    def test_fast_schedulers_tuple_excludes_ftrt(self):
        from repro.sim.fastengine import FAST_SCHEDULERS
        assert "ftrt" not in FAST_SCHEDULERS
        assert set(FAST_SCHEDULERS) == {"cfs", "nest", "smove"}

    def test_run_experiment_fast_engine_rejects_ftrt(self):
        with pytest.raises(ValueError, match="no fast-engine variant"):
            run_experiment(make_workload("deadline-periodic"),
                           get_machine("ryzen_4650g"), "ftrt",
                           "schedutil", seed=5, engine="fast")

    def test_engine_parity_skips_ftrt_scenarios(self):
        from repro.verify.differential import check_engine_parity
        from repro.verify.generate import Scenario
        sc = Scenario(workload="deadline-periodic", machine="ryzen_4650g",
                      scheduler="ftrt", governor="schedutil", seed=5,
                      scale=1.0)
        assert list(check_engine_parity(sc)) == []


# ---------------------------------------------------------------------------
# Deadline analyzer + derived metrics


class TestDeadlineAnalyzer:
    def feed_all(self, analyzer, events):
        for ev in events:
            analyzer.feed(ev)
        return analyzer.finish(AnalysisContext())

    def test_synthetic_accounting(self):
        a = DeadlineAnalyzer()
        report = self.feed_all(a, [
            SchedEvent(t=100, kind=oev.RT_BACKUP_PLACE, cpu=4, task=2,
                       value=0),
            SchedEvent(t=150, kind=oev.RT_BACKUP_PLACE, cpu=5, task=4,
                       value=-1),
            SchedEvent(t=200, kind=oev.RT_KILL, cpu=0, task=1),
            SchedEvent(t=200, kind=oev.RT_BACKUP_ACTIVATE, cpu=0, task=2,
                       value=1),
            SchedEvent(t=500, kind=oev.RT_DEADLINE_MET, task=1, value=900),
            SchedEvent(t=1000, kind=oev.RT_DEADLINE_MISS, task=3,
                       value=800),
        ])
        assert report["jobs"] == 2
        assert report["met"] == 1 and report["missed"] == 1
        assert report["miss_fraction"] == 0.5
        assert report["kills"] == 1 and report["activations"] == 1
        assert report["backup_placements"] == {"disjoint": 1, "fallback": 1}
        # The promoted job recovered 300µs after its activation...
        assert report["recovery"]["n"] == 1
        assert report["recovery"]["max_us"] == 300
        # ...and the missed job was 200µs past its absolute deadline.
        assert report["tardiness"]["max_us"] == 200

    def test_empty_log_reports_zero_jobs(self):
        report = self.feed_all(DeadlineAnalyzer(), [])
        assert report["jobs"] == 0
        assert report["recovery"] == {"n": 0}

    def test_real_faulted_run_report(self):
        res = run_experiment(make_workload("deadline-periodic"),
                             get_machine("ryzen_4650g"), "ftrt",
                             "schedutil", seed=2, faults=COREFAIL_DENSE,
                             collect_events=True)
        report = analyze_run(res, res.events,
                             n_cpus=get_machine("ryzen_4650g").n_cpus)
        dl = report["analyzers"]["deadlines"]
        assert dl["jobs"] == 32
        assert dl["kills"] >= dl["activations"] > 0
        assert "deadlines:" in report_text(report)


class TestDerivedDeadlineMetrics:
    def test_faulted_ftrt_run_exports_deadline_scalars(self):
        res = run_experiment(make_workload("deadline-periodic"),
                             get_machine("ryzen_4650g"), "ftrt",
                             "schedutil", seed=2, faults=COREFAIL_DENSE)
        d = derived_metrics(res.metrics)
        assert d["derived.deadline_jobs"] == 32
        assert 0.0 <= d["derived.deadline_miss_fraction"] <= 1.0
        assert d["derived.deadline_misses"] == round(
            d["derived.deadline_miss_fraction"] * 32)
        assert d["derived.deadline_activations"] > 0
        assert d["derived.deadline_kills"] >= d["derived.deadline_activations"]
        assert d["derived.deadline_recovery_p50_us"] > 0

    def test_non_rt_run_exports_no_deadline_keys(self):
        res = run_experiment(make_workload("hackbench"),
                             get_machine("ryzen_4650g"), "nest",
                             "schedutil", seed=2)
        assert not any(k.startswith("derived.deadline")
                       for k in derived_metrics(res.metrics))
