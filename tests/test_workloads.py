"""Tests for the workload generators."""

import pytest

from repro.experiments.runner import run_experiment
from repro.hw.machines import get_machine
from repro.workloads.configure import (CONFIGURE_PROFILES, ConfigureWorkload,
                                       configure_names)
from repro.workloads.dacapo import (DACAPO_PROFILES, DacapoWorkload,
                                    HIGH_UNDERLOAD_APPS, dacapo_names)
from repro.workloads.messaging import HackbenchWorkload, SchbenchWorkload
from repro.workloads.multiapp import MultiAppWorkload
from repro.workloads.nas import NAS_PROFILES, NasWorkload, nas_names
from repro.workloads.phoronix import (FIG13_PROFILES, PhoronixWorkload,
                                      fig13_names, suite_population)
from repro.workloads.servers import (apache_siege, leveldb, nginx, redis)

SMALL = get_machine("ryzen_4650g")   # 12 cpus: fast test runs
M2S = get_machine("6130_2s")


def run(wl, machine=SMALL, seed=1, **kw):
    return run_experiment(wl, machine, "cfs", "schedutil", seed=seed, **kw)


class TestConfigure:
    def test_profile_catalogue(self):
        assert len(CONFIGURE_PROFILES) == 11
        assert "llvm_ninja" in configure_names()

    def test_unknown_package_rejected(self):
        with pytest.raises(KeyError):
            ConfigureWorkload("not-a-package")

    def test_runs_to_completion(self):
        res = run(ConfigureWorkload("gcc"))
        assert res.n_tasks > 10
        assert res.makespan_us > 0

    def test_scale_reduces_tests(self):
        full = run(ConfigureWorkload("gcc", scale=1.0))
        half = run(ConfigureWorkload("gcc", scale=0.4))
        assert half.n_tasks < full.n_tasks

    def test_deterministic_structure_across_schedulers(self):
        """Same seed -> same number of tasks whatever the scheduler."""
        a = run_experiment(ConfigureWorkload("gcc"), SMALL, "cfs",
                           "schedutil", seed=7)
        b = run_experiment(ConfigureWorkload("gcc"), SMALL, "nest",
                           "schedutil", seed=7)
        assert a.n_tasks == b.n_tasks

    def test_same_seed_same_makespan(self):
        a = run(ConfigureWorkload("gdb"), seed=5)
        b = run(ConfigureWorkload("gdb"), seed=5)
        assert a.makespan_us == b.makespan_us

    def test_different_seed_different_makespan(self):
        a = run(ConfigureWorkload("gdb"), seed=5)
        b = run(ConfigureWorkload("gdb"), seed=6)
        assert a.makespan_us != b.makespan_us

    def test_mostly_sequential(self):
        """Configure runs mostly one task at a time (the paper's premise):
        underload plus 1 stays small."""
        res = run(ConfigureWorkload("gcc"), machine=M2S)
        assert res.underload.underload_per_second < 8


class TestDacapo:
    def test_profile_catalogue(self):
        assert len(DACAPO_PROFILES) == 21
        assert set(HIGH_UNDERLOAD_APPS) <= set(dacapo_names())

    def test_unknown_app_rejected(self):
        with pytest.raises(KeyError):
            DacapoWorkload("not-an-app")

    def test_few_task_apps_have_low_concurrency(self):
        for name in ("fop", "luindex", "jython"):
            assert DACAPO_PROFILES[name].few_tasks
            assert DACAPO_PROFILES[name].n_workers <= 4

    def test_h2_runs(self):
        res = run(DacapoWorkload("h2", scale=0.3), machine=M2S)
        assert res.n_tasks >= 13   # main + 12 workers (+ gc)

    def test_worker_count_machine_relative(self):
        wl = DacapoWorkload("lusearch")

        class FakeKernel:
            topology = M2S.topology

        assert wl.n_workers_on(FakeKernel()) == M2S.topology.n_cpus // 2

    def test_token_apps_make_progress(self):
        res = run(DacapoWorkload("tradebeans", scale=0.25), machine=M2S)
        assert res.makespan_us > 0


class TestNas:
    def test_profile_catalogue(self):
        assert len(NAS_PROFILES) == 9
        assert nas_names() == sorted(NAS_PROFILES)

    def test_unknown_kernel_rejected(self):
        with pytest.raises(KeyError):
            NasWorkload("zz")

    def test_one_task_per_hw_thread(self):
        res = run(NasWorkload("is", scale=0.5))
        assert res.n_tasks == SMALL.n_cpus

    def test_explicit_thread_count(self):
        res = run(NasWorkload("is", scale=0.5, n_threads=4))
        assert res.n_tasks == 4

    def test_ep_is_single_round(self):
        assert NAS_PROFILES["ep"].rounds == 1

    def test_barriers_keep_tasks_synchronised(self):
        res = run(NasWorkload("mg", scale=0.3, n_threads=6))
        assert res.makespan_us > 0
        assert res.total_wakeups > 0


class TestPhoronix:
    def test_fig13_catalogue(self):
        assert len(FIG13_PROFILES) == 27
        assert "zstd-compression-7" in fig13_names()
        assert "rodinia-5" in fig13_names()

    def test_unknown_test_rejected(self):
        with pytest.raises(KeyError):
            PhoronixWorkload("not-a-test")

    @pytest.mark.parametrize("test", ["zstd-compression-7", "rodinia-5",
                                      "oidn-1", "libgav1-4", "cassandra-1",
                                      "graphics-magick-4"])
    def test_each_kind_runs(self, test):
        res = run(PhoronixWorkload(test, scale=0.3))
        assert res.makespan_us > 0
        assert res.n_tasks > 1

    def test_population_is_seeded(self):
        a = [w.name for w in suite_population(20, seed=3)]
        b = [w.name for w in suite_population(20, seed=3)]
        assert a == b

    def test_population_size_and_mix(self):
        pop = suite_population(40, seed=1)
        assert len(pop) == 40
        kinds = {w.profile.kind for w in pop}
        assert {"steady", "barriered"} <= kinds


class TestMessagingAndServers:
    def test_hackbench_completes(self):
        res = run(HackbenchWorkload(groups=2, pairs_per_group=2, loops=30))
        assert res.n_tasks == 1 + 2 * 2 * 2

    def test_schbench_records_latencies(self):
        wl = SchbenchWorkload(message_threads=2, workers_per_thread=3,
                              requests=15)
        run(wl)
        assert wl.recorder.count == 2 * 15
        assert wl.recorder.p999() >= wl.recorder.p50()

    def test_server_records_request_latencies(self):
        wl = nginx(n_requests=60)
        run(wl)
        assert wl.recorder.count == 60

    def test_apache_siege_scales_with_concurrency(self):
        assert apache_siege(32).n_workers == 32

    def test_kv_stores(self):
        for factory in (leveldb, redis):
            res = run(factory())
            assert res.n_tasks > 1

    def test_multiapp_tracks_roots(self):
        wl = MultiAppWorkload([leveldb(), redis()])
        run(wl)
        times = wl.completion_times_us()
        assert set(times) == {"leveldb", "redis"}
        assert all(t > 0 for t in times.values())

    def test_multiapp_requires_parts(self):
        with pytest.raises(ValueError):
            MultiAppWorkload([])
