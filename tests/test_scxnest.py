"""Unit tests for the scx_nest comparator policy (sched/scxnest.py)."""

import pytest

from repro.core.params import NestParams
from repro.governors.performance import PerformanceGovernor
from repro.hw.freqmodel import SPEED_SHIFT
from repro.hw.machines import Machine
from repro.hw.topology import Topology
from repro.hw.turbo import XEON_5218
from repro.kernel.scheduler_core import Kernel
from repro.kernel.syscalls import Compute
from repro.obs import events as oev
from repro.sched.registry import (make_registered_fast_policy,
                                  make_registered_policy)
from repro.sched.scxnest import (GlobalVtimeQueue, NestMasks, ScxNestPolicy,
                                 SLICE_US)
from repro.sim.clock import TICK_US
from repro.sim.engine import Engine
from repro.verify import Scenario, check_run, run_scenario
from repro.workloads.base import ms_of_work

MACHINE = Machine(name="t", cpu_model="t", microarchitecture="t",
                  topology=Topology(2, 4, 2), turbo=XEON_5218, pm=SPEED_SHIFT)


def make(params=None):
    eng = Engine(0)
    policy = ScxNestPolicy(params or NestParams())
    kern = Kernel(eng, MACHINE, policy, PerformanceGovernor())
    return eng, kern, policy


def noop_task(kern, name="x", prev=None):
    def noop(api):
        yield Compute(1)

    t = kern._new_task(noop, name, None)
    t.prev_cpu = prev
    return t


def occupy(kern, cpu):
    def hog(api):
        yield Compute(ms_of_work(1000))

    t = kern._new_task(hog, f"hog{cpu}", None)
    kern.enqueue(t, cpu)
    return t


class TestGlobalVtimeQueue:
    def test_fifo_within_equal_vtime(self):
        q = GlobalVtimeQueue()
        for key in (7, 3, 9, 1):
            q.push(key)
        assert [q.pop()[0] for _ in range(4)] == [7, 3, 9, 1]

    def test_lower_vtime_pops_first(self):
        q = GlobalVtimeQueue()
        q.charge(1)               # key 1 ran one slice, key 2 ran two
        q.charge(2)
        q.charge(2)
        q.push(2)
        q.push(1)
        assert q.pop()[0] == 1

    def test_charge_ratchets_the_clock(self):
        q = GlobalVtimeQueue()
        v = q.charge(5)
        assert v == SLICE_US and q.vtime_now == SLICE_US
        q.charge(6)                      # key 6 starts at the clock
        assert q.vtime_now == 2 * SLICE_US
        q.charge(5, amount_us=100)       # key 5 is still behind
        assert q.vtime_now == 2 * SLICE_US   # the clock never rewinds

    def test_push_clamps_lag(self):
        q = GlobalVtimeQueue()
        q.charge(2)               # key 2 ran once, long ago
        for _ in range(50):
            q.charge(1)           # the clock races ahead
        vt = q.push(2)            # key 2's stale vtime is clamped
        assert q.vtime_now - vt == q.max_lag_us

    def test_pop_empty_is_none_and_payloads_survive(self):
        q = GlobalVtimeQueue()
        assert q.pop() is None
        q.push(4, payload="p")
        assert q.pop() == (4, "p")

    def test_weight_divides_charge(self):
        q = GlobalVtimeQueue()
        assert q.charge(1, amount_us=1000, weight=2) == 500

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            GlobalVtimeQueue(slice_us=0)
        q = GlobalVtimeQueue()
        with pytest.raises(ValueError):
            q.charge(1, weight=0)
        with pytest.raises(ValueError):
            q.charge(1, amount_us=-5)

    def test_forget_resets_a_key_to_the_clock(self):
        q = GlobalVtimeQueue()
        q.charge(1)
        q.forget(1)
        assert q.vtime_of(1) == q.vtime_now


class TestNestMasks:
    def test_promote_moves_reserve_to_primary(self):
        m = NestMasks(r_max=4)
        m.admit_reserve(2)
        m.promote(2)
        assert m.primary == {2} and m.reserve == set()

    def test_promote_requires_reserve_membership(self):
        m = NestMasks(r_max=4)
        with pytest.raises(ValueError):
            m.promote(0)

    def test_expand_rejects_existing_members(self):
        m = NestMasks(r_max=4)
        m.expand(1)
        with pytest.raises(ValueError):
            m.expand(1)

    def test_demote_parks_in_reserve_until_full(self):
        m = NestMasks(r_max=1)
        m.expand(0)
        m.expand(1)
        assert m.demote(0) is True
        assert m.demote(1) is False      # reserve full: dropped entirely
        assert m.reserve == {0} and m.primary == set()

    def test_demote_requires_primary_membership(self):
        m = NestMasks(r_max=4)
        with pytest.raises(ValueError):
            m.demote(5)

    def test_admit_reserve_respects_bound_and_membership(self):
        m = NestMasks(r_max=1)
        assert m.admit_reserve(0) is True
        assert m.admit_reserve(0) is False   # already a member
        assert m.admit_reserve(1) is False   # bound reached
        m.expand(2)
        assert m.admit_reserve(2) is False   # in primary

    def test_reserve_disabled_never_admits(self):
        m = NestMasks(r_max=4, reserve_enabled=False)
        assert m.admit_reserve(0) is False
        m.expand(1)
        assert m.demote(1) is False
        m.check()

    def test_evict_clears_both_masks(self):
        m = NestMasks(r_max=4)
        m.expand(0)
        m.admit_reserve(1)
        assert m.evict(0) and m.evict(1) and not m.evict(2)
        m.check()

    def test_check_convicts_corrupted_state(self):
        m = NestMasks(r_max=1)
        m.primary.add(0)
        m.reserve.add(0)
        with pytest.raises(AssertionError):
            m.check()


class TestSelection:
    def test_first_fork_falls_through_to_cfs_into_reserve(self):
        eng, kern, policy = make()
        cpu = policy.select_cpu_fork(noop_task(kern), parent_cpu=0)
        assert policy.metrics.counters()["cfs_fallbacks"] == 1
        assert cpu in policy.reserve

    def test_reserve_hit_promotes(self):
        eng, kern, policy = make()
        policy._masks.admit_reserve(2)
        cpu = policy.select_cpu_fork(noop_task(kern), parent_cpu=0)
        assert cpu == 2
        assert 2 in policy.primary and 2 not in policy.reserve
        assert policy.metrics.counters()["reserve_hits"] == 1

    def test_primary_searched_before_reserve(self):
        eng, kern, policy = make()
        policy._masks.expand(3)
        policy._masks.admit_reserve(2)
        cpu = policy.select_cpu_fork(noop_task(kern), parent_cpu=0)
        assert cpu == 3
        assert policy.metrics.counters()["primary_hits"] == 1

    def test_prev_cpu_preferred_inside_primary(self):
        eng, kern, policy = make()
        policy._masks.expand(1)
        policy._masks.expand(5)
        t = noop_task(kern, prev=5)
        assert policy.select_cpu_wakeup(t, waker_cpu=0) == 5

    def test_impatient_task_expands_via_cfs(self):
        eng, kern, policy = make(NestParams(r_impatient=2))
        policy._masks.expand(0)
        occupy(kern, 0)     # the only primary core is busy
        t = noop_task(kern, prev=None)
        t.impatience = 2
        cpu = policy.select_cpu_wakeup(t, waker_cpu=0)
        c = policy.metrics.counters()
        assert c["impatient_placements"] == 1 and c["cfs_fallbacks"] == 1
        assert cpu in policy.primary      # direct expansion
        assert t.impatience == 0

    def test_failed_primary_search_builds_impatience(self):
        eng, kern, policy = make()
        t = noop_task(kern)
        policy.select_cpu_wakeup(t, waker_cpu=0)   # cfs fallback
        assert t.impatience == 1

    def test_busy_pick_enters_the_global_queue(self):
        eng, kern, policy = make()
        for cpu in range(MACHINE.topology.n_cpus):
            occupy(kern, cpu)
        policy.select_cpu_fork(noop_task(kern), parent_cpu=0)
        assert policy.metrics.counters()["vtime_enqueues"] == 1
        assert len(policy._queue) == 1

    def test_self_check_passes_after_selections(self):
        eng, kern, policy = make()
        for i in range(6):
            policy.select_cpu_fork(noop_task(kern, f"t{i}"), parent_cpu=0)
        policy.check_invariants()


class TestCompactionTimer:
    def test_untouched_primary_core_is_demoted_on_fire(self):
        eng, kern, policy = make()
        policy._masks.expand(0)
        policy.on_exit_idle(0)
        c = policy.metrics.counters()
        assert c["compact_arms"] == 1
        eng.run()
        c = policy.metrics.counters()
        assert c["compactions"] == 1 and c["compact_cancels"] == 0
        assert 0 not in policy.primary and 0 in policy.reserve

    def test_reused_core_cancels_the_timer(self):
        eng, kern, policy = make()
        policy._masks.expand(0)
        policy.on_exit_idle(0)
        occupy(kern, 0)          # reused before the timer fires
        eng.run()
        c = policy.metrics.counters()
        assert c["compact_cancels"] >= 1
        # The hog ran to completion and the core idled again; the
        # re-armed timer eventually demoted it.
        assert c["compactions"] <= c["compact_arms"]

    def test_fire_delay_matches_p_remove_ticks(self):
        eng, kern, policy = make(NestParams(p_remove_ticks=3.0))
        policy._masks.expand(0)
        policy.on_exit_idle(0)
        eng.run()
        assert eng.now == 3 * TICK_US

    def test_double_arming_is_suppressed(self):
        eng, kern, policy = make()
        policy._masks.expand(0)
        policy.on_exit_idle(0)
        policy.on_exit_idle(0)
        assert policy.metrics.counters()["compact_arms"] == 1

    def test_offline_eviction_disarms_and_clears_masks(self):
        eng, kern, policy = make()
        policy._masks.expand(0)
        policy._masks.admit_reserve(1)
        policy.on_exit_idle(0)
        kern.set_cpu_offline(0)
        assert 0 not in policy.primary
        eng.run()
        c = policy.metrics.counters()
        assert c["compactions"] == 0 and c["compact_cancels"] == 0
        assert c["offline_evictions"] == 1

    def test_compaction_disabled_never_arms(self):
        eng, kern, policy = make(NestParams().without("compaction"))
        policy._masks.expand(0)
        policy.on_exit_idle(0)
        assert policy.metrics.counters()["compact_arms"] == 0


class TestVtimePull:
    def test_idle_core_pulls_the_queued_task(self):
        eng, kern, policy = make()
        occupy(kern, 0)
        waiting = noop_task(kern, "waiting")
        kern.enqueue(waiting, 0)         # queued behind the hog
        policy._queue.push(waiting.tid, (waiting, 0))
        policy._pull_fired(8)            # idle core on the other die
        assert policy.metrics.counters()["vtime_pulls"] == 1
        assert kern.rqs[0].nr_queued == 0
        assert kern.cpus[8].current is waiting or waiting.prev_cpu == 8

    def test_stale_entries_are_discarded(self):
        eng, kern, policy = make()
        occupy(kern, 0)
        waiting = noop_task(kern, "waiting")
        kern.enqueue(waiting, 0)
        policy._queue.push(waiting.tid, (waiting, 3))   # wrong cpu: stale
        policy._pull_fired(8)
        assert policy.metrics.counters()["vtime_pulls"] == 0
        assert len(policy._queue) == 0   # the stale entry was consumed

    def test_busy_core_never_pulls(self):
        eng, kern, policy = make()
        occupy(kern, 0)
        occupy(kern, 8)
        waiting = noop_task(kern, "waiting")
        kern.enqueue(waiting, 0)
        policy._queue.push(waiting.tid, (waiting, 0))
        policy._pull_fired(8)
        assert policy.metrics.counters()["vtime_pulls"] == 0
        assert len(policy._queue) == 1   # entry kept for a real idle core

    def test_pull_respects_the_min_vtime_order(self):
        eng, kern, policy = make()
        occupy(kern, 0)
        old = noop_task(kern, "old")
        new = noop_task(kern, "new")
        kern.enqueue(old, 0)
        kern.enqueue(new, 0)
        policy._queue.charge(old.tid)    # old: one slice
        policy._queue.charge(new.tid)    # new: two slices (more vtime)
        policy._queue.charge(new.tid)
        policy._queue.push(new.tid, (new, 0))
        policy._queue.push(old.tid, (old, 0))
        policy._pull_fired(8)
        assert kern.cpus[8].current is old or old.prev_cpu == 8
        assert kern.rqs[0].nr_queued == 1


class TestEndToEnd:
    SCENARIO = Scenario(workload="dacapo-h2", machine="ryzen_4650g",
                        scheduler="scxnest", governor="schedutil", seed=3,
                        scale=0.1)

    def test_reference_scenario_is_oracle_clean(self):
        art = run_scenario(self.SCENARIO)
        assert art.error is None
        assert check_run(art) == []

    def test_reference_scenario_exercises_the_machinery(self):
        art = run_scenario(self.SCENARIO)
        m = art.result.metrics
        for counter in ("scxnest.primary_hits", "scxnest.reserve_hits",
                        "scxnest.impatient_placements",
                        "scxnest.compactions", "scxnest.compact_cancels",
                        "scxnest.vtime_enqueues"):
            assert m[counter]["value"] > 0, counter

    def test_transition_events_carry_primary_size(self):
        art = run_scenario(self.SCENARIO)
        size = 0
        for ev in art.events:
            if ev.kind in oev.SCXNEST_PRIMARY_ADD_KINDS:
                size += 1
                assert ev.value == size
            elif ev.kind in oev.SCXNEST_PRIMARY_REMOVE_KINDS:
                size -= 1
                assert ev.value == size
            elif ev.kind == oev.NEST_OFFLINE_EVICT:
                size = ev.value

    def test_registry_resolution_and_declared_refusal(self):
        policy = make_registered_policy("scxnest")
        assert isinstance(policy, ScxNestPolicy)
        with pytest.raises(ValueError, match="no fast-engine variant"):
            make_registered_fast_policy("scxnest")

    def test_nest_params_override_reaches_the_policy(self):
        policy = make_registered_policy(
            "scxnest", NestParams(r_max=2, r_impatient=1))
        assert policy.params.r_max == 2
        assert policy.params.r_impatient == 1
