"""Tests for the runqueue and the scheduling-domain hierarchy."""

import pytest
from hypothesis import given, strategies as st

from repro.hw.topology import Topology
from repro.kernel.domains import DomainHierarchy
from repro.kernel.runqueue import RunQueue, SLEEPER_BONUS_US
from repro.kernel.task import Task


def mk_task(tid, vruntime=0.0):
    t = Task(tid, f"t{tid}", iter(()), None, 0)
    t.vruntime = vruntime
    return t


class TestRunQueue:
    def test_pop_smallest_vruntime(self):
        rq = RunQueue(0)
        rq.push(mk_task(1, 300))
        rq.push(mk_task(2, 100))
        rq.push(mk_task(3, 200))
        assert [rq.pop().tid for _ in range(3)] == [2, 3, 1]

    def test_fifo_on_equal_vruntime(self):
        rq = RunQueue(0)
        for tid in (1, 2, 3):
            rq.push(mk_task(tid, 50))
        assert [rq.pop().tid for _ in range(3)] == [1, 2, 3]

    def test_double_push_rejected(self):
        rq = RunQueue(0)
        t = mk_task(1)
        rq.push(t)
        with pytest.raises(RuntimeError):
            rq.push(t)

    def test_min_vruntime_advances(self):
        rq = RunQueue(0)
        rq.push(mk_task(1, 500))
        rq.pop()
        assert rq.min_vruntime == 500

    def test_sleeper_bonus_clamp(self):
        """A long sleeper re-enters near min_vruntime minus the bonus."""
        rq = RunQueue(0)
        rq.min_vruntime = 100_000
        sleeper = mk_task(1, 0.0)
        rq.push(sleeper)
        assert sleeper.vruntime == 100_000 - SLEEPER_BONUS_US

    def test_no_clamp_for_fresh_vruntime(self):
        rq = RunQueue(0)
        rq.min_vruntime = 100
        t = mk_task(1, 5_000)
        rq.push(t)
        assert t.vruntime == 5_000

    def test_remove(self):
        rq = RunQueue(0)
        a, b = mk_task(1), mk_task(2)
        rq.push(a)
        rq.push(b)
        assert rq.remove(a)
        assert not rq.remove(a)
        assert rq.pop() is b
        assert rq.pop() is None

    def test_steal_one_takes_largest_vruntime(self):
        rq = RunQueue(0)
        rq.push(mk_task(1, 10))
        rq.push(mk_task(2, 99))
        rq.push(mk_task(3, 50))
        assert rq.steal_one().tid == 2
        assert rq.nr_queued == 2

    def test_steal_from_empty(self):
        assert RunQueue(0).steal_one() is None

    def test_queued_tasks_listing(self):
        rq = RunQueue(0)
        rq.push(mk_task(1))
        rq.push(mk_task(2))
        rq.pop()
        assert [t.tid for t in rq.queued_tasks()] == [2]

    def test_peek_skips_removed(self):
        rq = RunQueue(0)
        a, b = mk_task(1, 1), mk_task(2, 2)
        rq.push(a)
        rq.push(b)
        rq.remove(a)
        assert rq.peek() is b

    @given(st.lists(st.floats(0, 1e6), min_size=1, max_size=40))
    def test_pop_order_is_sorted(self, vruntimes):
        """Property: pops are non-decreasing in effective vruntime."""
        rq = RunQueue(0)
        for i, vr in enumerate(vruntimes):
            rq.push(mk_task(i, vr))
        out = []
        while (t := rq.pop()) is not None:
            out.append(t.vruntime)
        assert out == sorted(out)
        assert len(out) == len(vruntimes)


class TestDomains:
    def test_two_socket_smt_levels(self):
        h = DomainHierarchy(Topology(2, 4, 2))
        names = [d.name for d in h.domains_of(0)]
        assert names == ["SMT", "MC", "NUMA"]

    def test_single_socket_has_no_numa(self):
        h = DomainHierarchy(Topology(1, 4, 2))
        assert [d.name for d in h.domains_of(0)] == ["SMT", "MC"]

    def test_smt1_has_no_smt_level(self):
        h = DomainHierarchy(Topology(2, 4, 1))
        assert [d.name for d in h.domains_of(0)] == ["MC", "NUMA"]

    def test_smt_domain_is_sibling_pair(self):
        h = DomainHierarchy(Topology(2, 4, 2))
        smt = h.domains_of(1)[0]
        assert smt.span == (1, 9)
        assert smt.groups == ((1,), (9,))

    def test_mc_groups_are_physical_cores(self):
        h = DomainHierarchy(Topology(1, 2, 2))
        mc = h.llc_domain(0)
        assert sorted(mc.span) == [0, 1, 2, 3]
        assert sorted(mc.groups) == [(0, 2), (1, 3)]

    def test_numa_groups_are_sockets(self):
        topo = Topology(2, 2, 2)
        h = DomainHierarchy(topo)
        numa = h.top_domain(0)
        assert numa.name == "NUMA"
        assert len(numa.groups) == 2
        assert sorted(sum(numa.groups, ())) == topo.all_cpus()

    def test_die_span(self):
        topo = Topology(2, 4, 2)
        h = DomainHierarchy(topo)
        for cpu in topo.all_cpus():
            assert set(h.die_span(cpu)) == \
                set(topo.cpus_in_socket(topo.socket_of(cpu)))

    def test_groups_partition_span(self):
        for topo in (Topology(2, 8, 2), Topology(4, 5, 2), Topology(1, 6, 1)):
            h = DomainHierarchy(topo)
            for cpu in topo.all_cpus():
                for dom in h.domains_of(cpu):
                    assert sorted(sum(dom.groups, ())) == sorted(dom.span)
                    assert cpu in dom.span
