"""Figure 5: configure-suite speedups vs CFS-schedutil.

Shapes asserted (paper §5.2): Nest-schedutil exceeds +5% on every package
except the trivial nodejs; Smove stays far below Nest on the Speed Shift
machine; on the Broadwell E7, CFS-performance rivals Nest-schedutil.
"""

from conftest import (CONFIGURE_MACHINES, CONFIGURE_SCALE, once, runs,
                      speedup_pct)

from repro.analysis.tables import pct, render_table
from repro.workloads.configure import ConfigureWorkload, configure_names

COMBOS = (("cfs", "performance"), ("nest", "schedutil"),
          ("nest", "performance"), ("smove", "schedutil"))


def test_fig5(benchmark, runs):
    def regenerate():
        data = {}
        for mk in CONFIGURE_MACHINES:
            rows = []
            for pkg in configure_names():
                base = runs.get(
                    lambda: ConfigureWorkload(pkg, scale=CONFIGURE_SCALE),
                    mk, "cfs", "schedutil")
                cells = [pkg, f"{base.makespan_sec:.3f}s"]
                for sched, gov in COMBOS:
                    res = runs.get(
                        lambda: ConfigureWorkload(pkg, scale=CONFIGURE_SCALE),
                        mk, sched, gov)
                    s = speedup_pct(base, res)
                    data[(mk, pkg, sched, gov)] = s
                    cells.append(pct(s))
                rows.append(cells)
            print("\n" + render_table(
                ["package", "CFS-sched time"] +
                ["-".join(c) for c in COMBOS], rows,
                title=f"Figure 5: configure speedups on {mk}"))
        return data

    data = once(benchmark, regenerate)

    nontrivial = [p for p in configure_names() if p != "nodejs"]
    for mk in CONFIGURE_MACHINES:
        # Nest-schedutil wins on every non-trivial package; on the Speed
        # Shift machines the win exceeds the paper's 5% threshold.  (At
        # benchmark scale the shortest packages amortise less of the slow
        # Broadwell ramp, so the per-package E7 floor is just "positive";
        # the suite average still shows the paper's large E7 gains.)
        floor = 0.05 if mk != "e78870_4s" else 0.0
        for pkg in nontrivial:
            assert data[(mk, pkg, "nest", "schedutil")] > floor, (mk, pkg)
        avg = sum(data[(mk, p, "nest", "schedutil")]
                  for p in nontrivial) / len(nontrivial)
        assert avg > (0.10 if mk != "e78870_4s" else 0.05), mk
        # nodejs is trivial: small effect.
        assert data[(mk, "nodejs", "nest", "schedutil")] < 0.15, mk

    # Smove stays far below Nest on the Speed Shift 5218 (paper: <5%
    # except llvm at 9%).
    for pkg in nontrivial:
        assert data[("5218_2s", pkg, "smove", "schedutil")] < \
            data[("5218_2s", pkg, "nest", "schedutil")], pkg

    # On the E7, CFS-performance rivals Nest-schedutil (within a factor).
    e7_nest = sum(data[("e78870_4s", p, "nest", "schedutil")]
                  for p in nontrivial) / len(nontrivial)
    e7_perf = sum(data[("e78870_4s", p, "cfs", "performance")]
                  for p in nontrivial) / len(nontrivial)
    assert e7_perf > e7_nest * 0.5
    # And Nest-performance is at least as good as CFS-performance on avg.
    e7_nest_perf = sum(data[("e78870_4s", p, "nest", "performance")]
                       for p in nontrivial) / len(nontrivial)
    assert e7_nest_perf >= e7_perf - 0.05
