"""Shared infrastructure for the per-figure benchmarks.

Each benchmark module regenerates one paper artefact (table or figure),
prints it in a paper-like text form, and asserts the *shape* the paper
claims (who wins, directions, rough factors) — not absolute numbers, since
the substrate is a simulator rather than the authors' testbed.

Simulation runs are cached at two levels: per session in memory (Figures
4-7 all consume the same configure-suite sweep) and, for configurations
expressible as a :class:`~repro.experiments.parallel.RunSpec`, in the
content-addressed on-disk cache under ``.repro-cache/`` — so re-running
the benchmark suite against an unchanged engine re-simulates nothing.
Set ``REPRO_NO_CACHE=1`` to disable the on-disk layer.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.cache import ResultCache
from repro.experiments.parallel import RunSpec
from repro.experiments.runner import run_experiment
from repro.hw.machines import get_machine
from repro.metrics.summary import RunResult
from repro.workloads.catalog import can_reconstruct

#: Machines each suite sweeps in benchmark mode (a subset of the paper's
#: four, keeping the full suite tractable; the harness supports all four).
CONFIGURE_MACHINES = ("5218_2s", "e78870_4s")
DACAPO_MACHINES = ("6130_4s",)
NAS_MACHINES = ("5218_2s", "e78870_4s")
PHORONIX_MACHINES = ("5218_2s", "e78870_4s")

#: Workload scale used by the benches (trades fidelity for wall-clock).
CONFIGURE_SCALE = 0.6
DACAPO_SCALE = 1.0
NAS_SCALE = 0.2
PHORONIX_SCALE = 0.6

SEED = 1

#: Keyword arguments the on-disk cache knows how to key.  Anything else
#: (record_trace, kernel_config...) bypasses the persistent layer.
_SPEC_KWARGS = {"nest_params", "max_us"}


class RunCache:
    """Session-wide memo of simulation runs, backed by the on-disk cache."""

    def __init__(self, persistent: ResultCache | None = None) -> None:
        self._cache: dict = {}
        self._persistent = persistent
        self.simulations = 0          # actual engine runs this session

    def _spec_for(self, wl, machine_key: str, scheduler: str, governor: str,
                  seed: int, kwargs: dict) -> RunSpec | None:
        if self._persistent is None or not set(kwargs) <= _SPEC_KWARGS:
            return None
        if not can_reconstruct(wl):
            return None
        return RunSpec(workload=wl.name, machine=machine_key,
                       scheduler=scheduler, governor=governor, seed=seed,
                       scale=getattr(wl, "scale", 1.0),
                       nest_params=kwargs.get("nest_params"),
                       max_us=kwargs.get("max_us"))

    def get(self, workload_factory, machine_key: str, scheduler: str,
            governor: str, seed: int = SEED, **kwargs) -> RunResult:
        wl = workload_factory()
        key = (wl.name, machine_key, scheduler, governor, seed,
               tuple(sorted(kwargs.items())))
        if key in self._cache:
            return self._cache[key]

        spec = self._spec_for(wl, machine_key, scheduler, governor, seed,
                              kwargs)
        res = self._persistent.get_spec(spec) if spec is not None else None
        if res is None:
            res = run_experiment(wl, get_machine(machine_key), scheduler,
                                 governor, seed=seed, **kwargs)
            self.simulations += 1
            if spec is not None:
                self._persistent.put_spec(spec, res)
        self._cache[key] = res
        return res


@pytest.fixture(scope="session")
def runs() -> RunCache:
    persistent = None
    if not os.environ.get("REPRO_NO_CACHE"):
        persistent = ResultCache()
    return RunCache(persistent)


def once(benchmark, fn):
    """Run a regeneration function exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def speedup_pct(base: RunResult, cand: RunResult) -> float:
    return base.makespan_us / cand.makespan_us - 1.0
