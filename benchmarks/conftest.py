"""Shared infrastructure for the per-figure benchmarks.

Each benchmark module regenerates one paper artefact (table or figure),
prints it in a paper-like text form, and asserts the *shape* the paper
claims (who wins, directions, rough factors) — not absolute numbers, since
the substrate is a simulator rather than the authors' testbed.

Simulation runs are cached per session and shared between benchmarks
(Figures 4-7 all consume the same configure-suite sweep).
"""

from __future__ import annotations

import pytest

from repro.experiments.runner import run_experiment
from repro.hw.machines import get_machine
from repro.metrics.summary import RunResult

#: Machines each suite sweeps in benchmark mode (a subset of the paper's
#: four, keeping the full suite tractable; the harness supports all four).
CONFIGURE_MACHINES = ("5218_2s", "e78870_4s")
DACAPO_MACHINES = ("6130_4s",)
NAS_MACHINES = ("5218_2s", "e78870_4s")
PHORONIX_MACHINES = ("5218_2s", "e78870_4s")

#: Workload scale used by the benches (trades fidelity for wall-clock).
CONFIGURE_SCALE = 0.6
DACAPO_SCALE = 1.0
NAS_SCALE = 0.2
PHORONIX_SCALE = 0.6

SEED = 1


class RunCache:
    """Session-wide memo of simulation runs."""

    def __init__(self) -> None:
        self._cache: dict = {}

    def get(self, workload_factory, machine_key: str, scheduler: str,
            governor: str, seed: int = SEED, **kwargs) -> RunResult:
        wl = workload_factory()
        key = (wl.name, machine_key, scheduler, governor, seed,
               tuple(sorted(kwargs.items())))
        if key not in self._cache:
            self._cache[key] = run_experiment(
                wl, get_machine(machine_key), scheduler, governor,
                seed=seed, **kwargs)
        return self._cache[key]


@pytest.fixture(scope="session")
def runs() -> RunCache:
    return RunCache()


def once(benchmark, fn):
    """Run a regeneration function exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def speedup_pct(base: RunResult, cand: RunResult) -> float:
    return base.makespan_us / cand.makespan_us - 1.0
