"""Figure 13: Phoronix tests with large scheduler effects.

Class shapes asserted (paper §5.5):

* zstd compression: CFS-performance and Nest-schedutil both help on the
  Speed Shift machine; on the E7 only CFS-performance does (the activity is
  too thin for Nest-schedutil);
* libavif avifenc: Nest-schedutil is *slower* (it pins ~20 threads to one
  socket at a low turbo ceiling while CFS spills over);
* saturating tests (cpuminer, oidn): everything within noise.
"""

from conftest import PHORONIX_MACHINES, PHORONIX_SCALE, once, runs, speedup_pct

from repro.analysis.tables import pct, render_table
from repro.workloads.phoronix import PhoronixWorkload, fig13_names

COMBOS = (("cfs", "performance"), ("nest", "schedutil"))


def test_fig13(benchmark, runs):
    def regenerate():
        data = {}
        for mk in PHORONIX_MACHINES:
            rows = []
            for test in fig13_names():
                base = runs.get(
                    lambda: PhoronixWorkload(test, scale=PHORONIX_SCALE),
                    mk, "cfs", "schedutil")
                cells = [test, f"{base.makespan_sec:.3f}s"]
                for sched, gov in COMBOS:
                    res = runs.get(
                        lambda: PhoronixWorkload(test, scale=PHORONIX_SCALE),
                        mk, sched, gov)
                    s = speedup_pct(base, res)
                    data[(mk, test, sched, gov)] = s
                    cells.append(pct(s))
                rows.append(cells)
            print("\n" + render_table(
                ["test", "CFS time"] + ["-".join(c) for c in COMBOS],
                rows, title=f"Figure 13: Phoronix speedups on {mk}"))
        return data

    data = once(benchmark, regenerate)

    # zstd: both fixes work on the 5218...
    for t in ("zstd-compression-7", "zstd-compression-10"):
        assert data[("5218_2s", t, "nest", "schedutil")] > 0.02, t
        assert data[("5218_2s", t, "cfs", "performance")] > 0.02, t
        # ...but on the E7 only the performance governor helps: Nest's
        # schedutil gain vanishes ("the degree of activity is still too
        # low, and the cores remain at a very low frequency").
        assert data[("e78870_4s", t, "cfs", "performance")] > \
            data[("e78870_4s", t, "nest", "schedutil")] + 0.02, t
        assert data[("e78870_4s", t, "nest", "schedutil")] < 0.05, t

    # libavif: Nest packs too hard and loses.
    assert data[("5218_2s", "libavif-avifenc-1", "nest", "schedutil")] < 0.02

    # Saturating tests are flat for Nest.
    for t in ("cpuminer-opt-6", "oidn-1", "oidn-2"):
        assert abs(data[("5218_2s", t, "nest", "schedutil")]) < 0.08, t
