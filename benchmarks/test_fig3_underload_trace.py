"""Figure 3: underload trace for LLVM configure on the 5218.

CFS shows substantial underload throughout the execution; under Nest it has
almost disappeared.
"""

from conftest import CONFIGURE_SCALE, once, runs

from repro.workloads.configure import ConfigureWorkload


def test_fig3(benchmark, runs):
    def regenerate():
        out = {}
        for scheduler in ("cfs", "nest"):
            res = runs.get(lambda: ConfigureWorkload("llvm_ninja",
                                                     scale=CONFIGURE_SCALE),
                           "5218_2s", scheduler, "schedutil")
            out[scheduler] = res
            timeline = res.underload.timeline()
            peak = max(v for _, v in timeline)
            print(f"\nFigure 3 ({scheduler}-schedutil): "
                  f"underload/s={res.underload.underload_per_second:.2f} "
                  f"peak={peak}")
            # A sparkline of the first 50 intervals.
            glyphs = " .:-=+*#%@"
            line = "".join(glyphs[min(len(glyphs) - 1, max(0, v))]
                           for _, v in timeline[:50])
            print(f"  [{line}]")
        return out

    out = once(benchmark, regenerate)
    cfs_u = out["cfs"].underload.underload_per_second
    nest_u = out["nest"].underload.underload_per_second
    # Substantial CFS underload, nearly gone under Nest.
    assert cfs_u > 1.0
    assert nest_u < cfs_u * 0.5
