"""Figure 11: DaCapo frequency distributions.

For the high-underload applications Nest shifts busy time into higher
frequency bins; for machine-saturating applications the distributions are
similar under both schedulers.
"""

from conftest import DACAPO_MACHINES, DACAPO_SCALE, once, runs

from repro.analysis.plots import render_distribution
from repro.workloads.dacapo import (DacapoWorkload, HIGH_UNDERLOAD_APPS,
                                    dacapo_names)

SHOWN = ("h2", "tradebeans", "fop", "lusearch")


def test_fig11(benchmark, runs):
    def regenerate():
        data = {}
        mk = DACAPO_MACHINES[0]
        for app in dacapo_names():
            for sched in ("cfs", "nest"):
                res = runs.get(lambda: DacapoWorkload(app,
                                                      scale=DACAPO_SCALE),
                               mk, sched, "schedutil")
                data[(app, sched)] = res.freq_dist
                if app in SHOWN:
                    fd = res.freq_dist
                    print("\n" + render_distribution(
                        f"Fig 11 {mk} {app} {sched}-schedutil",
                        fd.labels(), fd.fractions()))
        return data

    data = once(benchmark, regenerate)

    # Nest raises the mean busy frequency of every high-underload app.
    for app in HIGH_UNDERLOAD_APPS:
        assert data[(app, "nest")].mean_ghz() > \
            data[(app, "cfs")].mean_ghz() + 0.05, app

    # Saturating apps see little frequency change (no turbo headroom).
    for app in ("lusearch", "sunflow"):
        assert abs(data[(app, "nest")].mean_ghz() -
                   data[(app, "cfs")].mean_ghz()) < 0.45, app
