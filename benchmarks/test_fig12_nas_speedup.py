"""Figure 12: NAS Parallel Benchmarks speedups vs CFS-schedutil.

Shapes (paper §5.4): on the 2-socket Skylake machines CFS and Nest have
essentially the same performance (every core is active, so there is no
turbo headroom); on the E7-8870 v4 Nest provides substantial speedups on
most kernels, with cg and ep the exceptions; and "the nest does not get in
the way of highly parallel applications" — Nest never causes a large
regression.
"""

from conftest import NAS_MACHINES, NAS_SCALE, once, runs, speedup_pct

from repro.analysis.tables import pct, render_table
from repro.workloads.nas import NasWorkload, nas_names

COMBOS = (("cfs", "performance"), ("nest", "schedutil"),
          ("nest", "performance"))


def test_fig12(benchmark, runs):
    def regenerate():
        data = {}
        for mk in NAS_MACHINES:
            rows = []
            for kern in nas_names():
                base = runs.get(lambda: NasWorkload(kern, scale=NAS_SCALE),
                                mk, "cfs", "schedutil")
                cells = [f"{kern}.C", f"{base.makespan_sec:.3f}s"]
                for sched, gov in COMBOS:
                    res = runs.get(lambda: NasWorkload(kern,
                                                       scale=NAS_SCALE),
                                   mk, sched, gov)
                    s = speedup_pct(base, res)
                    data[(mk, kern, sched, gov)] = s
                    cells.append(pct(s))
                rows.append(cells)
            print("\n" + render_table(
                ["kernel", "CFS time"] + ["-".join(c) for c in COMBOS],
                rows, title=f"Figure 12: NAS speedups on {mk}"))
        return data

    data = once(benchmark, regenerate)

    # 2-socket Skylake: near parity for Nest-schedutil on every kernel.
    for kern in nas_names():
        assert abs(data[("5218_2s", kern, "nest", "schedutil")]) < 0.15, kern

    # E7: Nest-schedutil provides solid speedups on the barrier-heavy
    # kernels (the paper: 16%-80%), with ep (no barriers) flat.
    winners = [k for k in nas_names() if k not in ("cg", "ep", "is")]
    avg = sum(data[("e78870_4s", k, "nest", "schedutil")]
              for k in winners) / len(winners)
    assert avg > 0.10
    assert abs(data[("e78870_4s", "ep", "nest", "schedutil")]) < 0.10

    # Nest never causes a serious NAS regression anywhere.
    worst = min(data[(mk, k, "nest", "schedutil")]
                for mk in NAS_MACHINES for k in nas_names())
    assert worst > -0.15
