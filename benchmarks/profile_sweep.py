"""Profiling harness for the simulation engine's hot paths.

Runs a representative configure sweep (the Figure 5 shape: llvm_ninja on
the Cascade Lake 5218 under every standard combo) single-process and
reports wall time, events processed and engine throughput, optionally with
a cProfile breakdown.  This is the harness used to drive — and to keep
honest — the hot-path optimization work:

    PYTHONPATH=src python benchmarks/profile_sweep.py            # timing
    PYTHONPATH=src python benchmarks/profile_sweep.py --profile  # + cProfile
    PYTHONPATH=src python benchmarks/profile_sweep.py --phoronix # other sweep

Reference numbers on the CI container (1 cpu, Python 3.11), measured
un-profiled with ``--repeat 10`` (40 simulations):

* seed engine (PR 0):       ~3.23 s
* after the hot-path work:  ~1.87 s   (~1.7x)

Do not trust timings taken with ``--profile``: cProfile's tracing overhead
roughly doubles the wall time and distorts ratios.

The makespans/energies printed at the end are deterministic — if an
optimization changes them, it changed simulation semantics and
``ENGINE_VERSION`` must be bumped.
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import time

from repro.experiments.runner import STANDARD_COMBOS, run_experiment
from repro.hw.machines import get_machine
from repro.workloads.catalog import make_workload

#: The representative sweep: one configure workload, all standard combos.
CONFIGURE_SWEEP = [("configure-llvm_ninja", "5218_2s", s, g, 1, 0.6)
                   for s, g in STANDARD_COMBOS]

#: Alternative: a Phoronix pair on both Figure 13 machines.
PHORONIX_SWEEP = [(f"phoronix-{name}", machine, s, g, 1, 0.6)
                  for name in ("zstd-compression-10", "libavif-avifenc-1")
                  for machine in ("5218_2s", "e78870_4s")
                  for s, g in (("cfs", "schedutil"), ("nest", "schedutil"))]


def run_sweep(sweep):
    results = []
    for workload, machine, scheduler, governor, seed, scale in sweep:
        wl = make_workload(workload, scale=scale)
        results.append(run_experiment(wl, get_machine(machine), scheduler,
                                      governor, seed=seed))
    return results


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--profile", action="store_true",
                    help="print a cProfile breakdown (top 25 by cumulative)")
    ap.add_argument("--phoronix", action="store_true",
                    help="profile the Phoronix sweep instead of configure")
    ap.add_argument("--repeat", type=int, default=1,
                    help="repeat the sweep N times (steadier timing)")
    args = ap.parse_args()

    sweep = PHORONIX_SWEEP if args.phoronix else CONFIGURE_SWEEP
    profiler = cProfile.Profile() if args.profile else None

    t0 = time.perf_counter()
    if profiler:
        profiler.enable()
    for _ in range(args.repeat):
        results = run_sweep(sweep)
    if profiler:
        profiler.disable()
    wall = time.perf_counter() - t0

    events = sum(r.events_processed for r in results) * args.repeat
    print(f"sweep: {len(sweep) * args.repeat} simulations in {wall:.3f}s — "
          f"{events:,} events, {events / wall:,.0f} events/s")
    for r in results:
        print(f"  {r.workload} [{r.label}]  makespan={r.makespan_us}us  "
              f"energy={r.energy_joules:.6f}J")

    if profiler:
        stats = pstats.Stats(profiler)
        stats.sort_stats("cumulative").print_stats(25)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
