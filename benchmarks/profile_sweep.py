"""Profiling harness for the simulation engine's hot paths.

Runs a representative configure sweep (the Figure 5 shape: llvm_ninja on
the Cascade Lake 5218 under every standard combo) single-process and
reports wall time, events processed and engine throughput, optionally with
a cProfile breakdown.  This is the harness used to drive — and to keep
honest — the hot-path optimization work:

    PYTHONPATH=src python benchmarks/profile_sweep.py            # timing
    PYTHONPATH=src python benchmarks/profile_sweep.py --engine fast
    PYTHONPATH=src python benchmarks/profile_sweep.py --profile  # + cProfile
    PYTHONPATH=src python benchmarks/profile_sweep.py --phases   # phase split
    PYTHONPATH=src python benchmarks/profile_sweep.py --json out.json
    PYTHONPATH=src python benchmarks/profile_sweep.py --phoronix # other sweep
    PYTHONPATH=src python benchmarks/profile_sweep.py --obs-check # obs guard

``--json`` times *both* engines un-profiled, asserts their results are
bit-identical, and writes a machine-readable record (wall seconds,
events/s, fast/ref ratio, speedup vs the seed baseline) — the format the
perf-smoke CI job gates on and that ``BENCH_trajectory.json`` entries
are built from.  ``--min-ratio`` turns the fast/ref ratio into a hard
failure threshold.

Reference numbers on the CI container (1 cpu, Python 3.11), measured
un-profiled with ``--repeat 10`` (40 simulations):

* seed engine (PR 0):          ~3.23 s
* ref after PR-1 hot-path work: ~1.87 s  (~1.7x vs seed)
* fast engine (PR 6):           ~1.4 s   (~2.3x vs seed, ~1.3x vs ref)

The fast engine is *bit-identical* to the reference engine, which caps
how far it can go: sequence-number consumption, float accumulation order
and event interleaving must all be preserved, so the remaining cost is
the DVFS reevaluation chain itself, not interpreter overhead around it
(see DESIGN.md §"Engine backends").

Do not trust timings taken with ``--profile``: cProfile's tracing overhead
roughly doubles the wall time and distorts ratios.

The makespans/energies printed at the end are deterministic — if an
optimization changes them, it changed simulation semantics and
``ENGINE_VERSION`` must be bumped.
"""

from __future__ import annotations

import argparse
import cProfile
import json
import pstats
import subprocess
import time

from repro.experiments.runner import STANDARD_COMBOS, run_experiment
from repro.hw.machines import get_machine
from repro.workloads.catalog import make_workload

#: The representative sweep: one configure workload, all standard combos.
CONFIGURE_SWEEP = [("configure-llvm_ninja", "5218_2s", s, g, 1, 0.6)
                   for s, g in STANDARD_COMBOS]

#: Alternative: a Phoronix pair on both Figure 13 machines.
PHORONIX_SWEEP = [(f"phoronix-{name}", machine, s, g, 1, 0.6)
                  for name in ("zstd-compression-10", "libavif-avifenc-1")
                  for machine in ("5218_2s", "e78870_4s")
                  for s, g in (("cfs", "schedutil"), ("nest", "schedutil"))]

#: Seed-baseline wall seconds for the configure sweep at ``--repeat 10``
#: on the CI container; speedup-vs-seed figures are relative to this.
SEED_BASELINE_S = 3.23
SEED_BASELINE_REPEAT = 10


def run_sweep(sweep, collect_events=False, engine="ref"):
    results = []
    for workload, machine, scheduler, governor, seed, scale in sweep:
        wl = make_workload(workload, scale=scale)
        results.append(run_experiment(wl, get_machine(machine), scheduler,
                                      governor, seed=seed,
                                      collect_events=collect_events,
                                      engine=engine))
    return results


def time_sweep(sweep, repeat, engine):
    """Un-profiled wall time of ``repeat`` sweep passes, plus results."""
    t0 = time.perf_counter()
    for _ in range(repeat):
        results = run_sweep(sweep, engine=engine)
    return time.perf_counter() - t0, results


# ---------------------------------------------------------------------------
# Per-phase attribution
# ---------------------------------------------------------------------------

#: fastengine.py fuses kernel, policy and DVFS code into one module, so
#: its functions are attributed by name rather than by path.
_FAST_POLICY_FNS = ("_load_avg", "_find_idlest", "_wake_affine", "_search",
                    "select_cpu", "_usable_idle", "_maybe_move", "_idle",
                    "_demote")
_FAST_FREQ_FNS = ("_target_mhz", "_reevaluate", "_sched_request",
                  "set_thread_state", "_step", "set_thermal_cap",
                  "force_freq", "_compute_power")
_FAST_LOOP_FNS = ("run", "after", "schedule", "cancel")


def _phase_of(filename: str, funcname: str) -> str:
    """Map one profiled function to a coarse engine phase."""
    path = filename.replace("\\", "/")
    if "/sim/fastengine" in path:
        if any(funcname.startswith(p) for p in _FAST_POLICY_FNS):
            return "policy-dispatch"
        if any(funcname.startswith(p) for p in _FAST_FREQ_FNS):
            return "freq-energy"
        if funcname in _FAST_LOOP_FNS:
            return "event-loop"
        return "kernel"
    if "/sim/" in path:
        return "event-loop"
    if "/sched/" in path or "/core/" in path:
        return "policy-dispatch"
    if "/hw/" in path:
        return "freq-energy"
    if "/metrics/" in path or "/obs/" in path:
        return "metrics-flush"
    if "/kernel/" in path:
        return "kernel"
    if "/workloads/" in path:
        return "workload"
    return "other"


def phase_breakdown(sweep, repeat, engine):
    """One cProfile pass, aggregated into coarse phases by tottime.

    The phases answer "where does the time go" at the granularity that
    matters for hot-path work: the event loop itself, policy dispatch
    (placement scans), frequency/energy modelling, kernel accounting,
    and metrics/observability flushing.
    """
    profiler = cProfile.Profile()
    profiler.enable()
    for _ in range(repeat):
        run_sweep(sweep, engine=engine)
    profiler.disable()
    stats = pstats.Stats(profiler)
    phases: dict = {}
    total = 0.0
    for (filename, _lineno, funcname), row in stats.stats.items():
        tottime = row[2]
        total += tottime
        phase = _phase_of(filename, funcname)
        phases[phase] = phases.get(phase, 0.0) + tottime
    ordered = dict(sorted(phases.items(), key=lambda kv: -kv[1]))
    return {"total_profiled_s": round(total, 3),
            "phases_s": {k: round(v, 3) for k, v in ordered.items()},
            "phases_pct": {k: round(v / total * 100.0, 1)
                           for k, v in ordered.items() if total > 0}}


def print_phases(breakdown) -> None:
    print(f"per-phase breakdown (cProfile, {breakdown['total_profiled_s']}s "
          f"profiled — ratios are meaningful, absolutes are inflated):")
    for phase, secs in breakdown["phases_s"].items():
        pct = breakdown["phases_pct"].get(phase, 0.0)
        print(f"  {phase:16s} {secs:7.3f}s  {pct:5.1f}%")


# ---------------------------------------------------------------------------
# Dual-engine benchmark record (--json)
# ---------------------------------------------------------------------------

def _git_sha() -> str:
    try:
        return subprocess.run(["git", "rev-parse", "--short", "HEAD"],
                              capture_output=True, text=True, check=True,
                              timeout=10).stdout.strip()
    except Exception:
        return "unknown"


def _parity(ref_results, fast_results):
    """Bit-identity of the deterministic result surface."""
    mismatches = []
    for a, b in zip(ref_results, fast_results):
        if (a.makespan_us != b.makespan_us
                or a.energy_joules != b.energy_joules
                or a.events_processed != b.events_processed
                or a.n_tasks != b.n_tasks
                or a.metrics != b.metrics):
            mismatches.append(f"{a.workload} [{a.label}]")
    return mismatches


def benchmark_record(sweep, sweep_name, repeat, with_phases=False):
    """Time both engines, check parity, and build the JSON record."""
    ref_wall, ref_results = time_sweep(sweep, repeat, "ref")
    fast_wall, fast_results = time_sweep(sweep, repeat, "fast")
    mismatches = _parity(ref_results, fast_results)

    n_sims = len(sweep) * repeat
    events = sum(r.events_processed for r in ref_results) * repeat
    record = {
        "workload": sweep_name,
        "git_sha": _git_sha(),
        "n_simulations": n_sims,
        "repeat": repeat,
        "engines": {
            "ref": {"wall_s": round(ref_wall, 3),
                    "events_per_sec": round(events / ref_wall, 0)},
            "fast": {"wall_s": round(fast_wall, 3),
                     "events_per_sec": round(events / fast_wall, 0)},
        },
        "ratio_fast_over_ref": round(ref_wall / fast_wall, 3),
        "parity_ok": not mismatches,
        "parity_mismatches": mismatches,
    }
    if sweep is CONFIGURE_SWEEP:
        # The seed baseline exists only for the configure sweep; scale it
        # to this run's repeat count before comparing.
        seed_wall = SEED_BASELINE_S * repeat / SEED_BASELINE_REPEAT
        record["seed_baseline_s"] = round(seed_wall, 3)
        record["speedup_vs_seed"] = {
            "ref": round(seed_wall / ref_wall, 2),
            "fast": round(seed_wall / fast_wall, 2),
        }
    if with_phases:
        record["phases"] = {
            "ref": phase_breakdown(sweep, max(1, repeat // 2), "ref"),
            "fast": phase_breakdown(sweep, max(1, repeat // 2), "fast"),
        }
    return record


def obs_check(sweep, repeat: int, threshold_pct: float,
              engine: str = "ref") -> int:
    """Guard the event log's overhead contract.

    Runs the sweep with the log disabled (no sinks — the production
    configuration) and with a memory sink attached, best-of-``repeat``
    each, and fails if attaching sinks costs more than ``threshold_pct``
    of wall time.  Also asserts the disabled/enabled runs stay
    semantically identical: instrumentation must be read-only.
    """
    def best_wall(collect):
        best, results = None, None
        for _ in range(repeat):
            t0 = time.perf_counter()
            res = run_sweep(sweep, collect_events=collect, engine=engine)
            wall = time.perf_counter() - t0
            if best is None or wall < best:
                best, results = wall, res
        return best, results

    off_wall, off_res = best_wall(False)
    on_wall, on_res = best_wall(True)
    for a, b in zip(off_res, on_res):
        assert a.makespan_us == b.makespan_us, \
            f"event collection changed {a.workload} [{a.label}] semantics"
        assert a.events_processed == b.events_processed
    n_events = sum(len(r.events) for r in on_res)

    overhead_pct = (on_wall - off_wall) / off_wall * 100.0
    print(f"obs off: {off_wall:.3f}s   obs on: {on_wall:.3f}s "
          f"({n_events:,} log events)   overhead: {overhead_pct:+.1f}% "
          f"(budget {threshold_pct:.0f}%, best of {repeat})")
    if overhead_pct > threshold_pct:
        print(f"FAIL: enabled-sinks overhead {overhead_pct:.1f}% exceeds "
              f"the {threshold_pct:.0f}% budget")
        return 1
    print("OK: event-log overhead within budget")
    return 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--engine", default="ref", choices=["ref", "fast"],
                    help="simulation backend to time/profile (default: ref)")
    ap.add_argument("--profile", action="store_true",
                    help="print a cProfile breakdown (top 25 by cumulative)")
    ap.add_argument("--phases", action="store_true",
                    help="print per-phase timings (event loop vs policy "
                         "dispatch vs metrics flush) from one cProfile pass")
    ap.add_argument("--phoronix", action="store_true",
                    help="profile the Phoronix sweep instead of configure")
    ap.add_argument("--repeat", type=int, default=1,
                    help="repeat the sweep N times (steadier timing)")
    ap.add_argument("--json", default=None, metavar="PATH",
                    help="time BOTH engines un-profiled, verify parity, "
                         "and write the benchmark record here")
    ap.add_argument("--min-ratio", type=float, default=0.0,
                    help="with --json: fail unless fast/ref wall-clock "
                         "ratio reaches this value (default: report only)")
    ap.add_argument("--obs-check", action="store_true",
                    help="measure event-log on/off overhead and fail if "
                         "attaching sinks costs more than the budget")
    ap.add_argument("--obs-threshold", type=float, default=10.0,
                    help="obs-check overhead budget in percent (default 10)")
    args = ap.parse_args()

    sweep = PHORONIX_SWEEP if args.phoronix else CONFIGURE_SWEEP
    sweep_name = ("phoronix x (5218_2s,e78870_4s)" if args.phoronix
                  else "configure-llvm_ninja x STANDARD_COMBOS on 5218_2s")
    if args.obs_check:
        return obs_check(sweep, repeat=max(3, args.repeat),
                         threshold_pct=args.obs_threshold,
                         engine=args.engine)

    if args.json:
        record = benchmark_record(sweep, sweep_name, args.repeat,
                                  with_phases=args.phases)
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(record, fh, indent=2)
            fh.write("\n")
        eng = record["engines"]
        print(f"ref:  {eng['ref']['wall_s']:.3f}s   "
              f"fast: {eng['fast']['wall_s']:.3f}s   "
              f"ratio: {record['ratio_fast_over_ref']:.2f}x   "
              f"parity: {'OK' if record['parity_ok'] else 'BROKEN'}")
        if "speedup_vs_seed" in record:
            sp = record["speedup_vs_seed"]
            print(f"vs seed baseline ({record['seed_baseline_s']}s): "
                  f"ref {sp['ref']:.2f}x, fast {sp['fast']:.2f}x")
        if args.phases:
            for engine in ("ref", "fast"):
                print(f"[{engine}]")
                print_phases(record["phases"][engine])
        print(f"record: {args.json}")
        if not record["parity_ok"]:
            print("FAIL: engines disagree on "
                  + ", ".join(record["parity_mismatches"]))
            return 1
        if args.min_ratio and record["ratio_fast_over_ref"] < args.min_ratio:
            print(f"FAIL: fast/ref ratio "
                  f"{record['ratio_fast_over_ref']:.2f}x below the "
                  f"--min-ratio {args.min_ratio:.2f}x floor")
            return 1
        return 0

    if args.phases:
        breakdown = phase_breakdown(sweep, args.repeat, args.engine)
        print_phases(breakdown)
        return 0

    profiler = cProfile.Profile() if args.profile else None

    t0 = time.perf_counter()
    if profiler:
        profiler.enable()
    for _ in range(args.repeat):
        results = run_sweep(sweep, engine=args.engine)
    if profiler:
        profiler.disable()
    wall = time.perf_counter() - t0

    events = sum(r.events_processed for r in results) * args.repeat
    print(f"sweep[{args.engine}]: {len(sweep) * args.repeat} simulations "
          f"in {wall:.3f}s — {events:,} events, {events / wall:,.0f} "
          f"events/s")
    for r in results:
        print(f"  {r.workload} [{r.label}]  makespan={r.makespan_us}us  "
              f"energy={r.energy_joules:.6f}J")

    if profiler:
        stats = pstats.Stats(profiler)
        stats.sort_stats("cumulative").print_stats(25)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
