"""Profiling harness for the simulation engine's hot paths.

Runs a representative configure sweep (the Figure 5 shape: llvm_ninja on
the Cascade Lake 5218 under every standard combo) single-process and
reports wall time, events processed and engine throughput, optionally with
a cProfile breakdown.  This is the harness used to drive — and to keep
honest — the hot-path optimization work:

    PYTHONPATH=src python benchmarks/profile_sweep.py            # timing
    PYTHONPATH=src python benchmarks/profile_sweep.py --profile  # + cProfile
    PYTHONPATH=src python benchmarks/profile_sweep.py --phoronix # other sweep
    PYTHONPATH=src python benchmarks/profile_sweep.py --obs-check # obs guard

Reference numbers on the CI container (1 cpu, Python 3.11), measured
un-profiled with ``--repeat 10`` (40 simulations):

* seed engine (PR 0):       ~3.23 s
* after the hot-path work:  ~1.87 s   (~1.7x)

Do not trust timings taken with ``--profile``: cProfile's tracing overhead
roughly doubles the wall time and distorts ratios.

The makespans/energies printed at the end are deterministic — if an
optimization changes them, it changed simulation semantics and
``ENGINE_VERSION`` must be bumped.
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import time

from repro.experiments.runner import STANDARD_COMBOS, run_experiment
from repro.hw.machines import get_machine
from repro.workloads.catalog import make_workload

#: The representative sweep: one configure workload, all standard combos.
CONFIGURE_SWEEP = [("configure-llvm_ninja", "5218_2s", s, g, 1, 0.6)
                   for s, g in STANDARD_COMBOS]

#: Alternative: a Phoronix pair on both Figure 13 machines.
PHORONIX_SWEEP = [(f"phoronix-{name}", machine, s, g, 1, 0.6)
                  for name in ("zstd-compression-10", "libavif-avifenc-1")
                  for machine in ("5218_2s", "e78870_4s")
                  for s, g in (("cfs", "schedutil"), ("nest", "schedutil"))]


def run_sweep(sweep, collect_events=False):
    results = []
    for workload, machine, scheduler, governor, seed, scale in sweep:
        wl = make_workload(workload, scale=scale)
        results.append(run_experiment(wl, get_machine(machine), scheduler,
                                      governor, seed=seed,
                                      collect_events=collect_events))
    return results


def obs_check(sweep, repeat: int, threshold_pct: float) -> int:
    """Guard the event log's overhead contract.

    Runs the sweep with the log disabled (no sinks — the production
    configuration) and with a memory sink attached, best-of-``repeat``
    each, and fails if attaching sinks costs more than ``threshold_pct``
    of wall time.  Also asserts the disabled/enabled runs stay
    semantically identical: instrumentation must be read-only.
    """
    def best_wall(collect):
        best, results = None, None
        for _ in range(repeat):
            t0 = time.perf_counter()
            res = run_sweep(sweep, collect_events=collect)
            wall = time.perf_counter() - t0
            if best is None or wall < best:
                best, results = wall, res
        return best, results

    off_wall, off_res = best_wall(False)
    on_wall, on_res = best_wall(True)
    for a, b in zip(off_res, on_res):
        assert a.makespan_us == b.makespan_us, \
            f"event collection changed {a.workload} [{a.label}] semantics"
        assert a.events_processed == b.events_processed
    n_events = sum(len(r.events) for r in on_res)

    overhead_pct = (on_wall - off_wall) / off_wall * 100.0
    print(f"obs off: {off_wall:.3f}s   obs on: {on_wall:.3f}s "
          f"({n_events:,} log events)   overhead: {overhead_pct:+.1f}% "
          f"(budget {threshold_pct:.0f}%, best of {repeat})")
    if overhead_pct > threshold_pct:
        print(f"FAIL: enabled-sinks overhead {overhead_pct:.1f}% exceeds "
              f"the {threshold_pct:.0f}% budget")
        return 1
    print("OK: event-log overhead within budget")
    return 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--profile", action="store_true",
                    help="print a cProfile breakdown (top 25 by cumulative)")
    ap.add_argument("--phoronix", action="store_true",
                    help="profile the Phoronix sweep instead of configure")
    ap.add_argument("--repeat", type=int, default=1,
                    help="repeat the sweep N times (steadier timing)")
    ap.add_argument("--obs-check", action="store_true",
                    help="measure event-log on/off overhead and fail if "
                         "attaching sinks costs more than the budget")
    ap.add_argument("--obs-threshold", type=float, default=10.0,
                    help="obs-check overhead budget in percent (default 10)")
    args = ap.parse_args()

    sweep = PHORONIX_SWEEP if args.phoronix else CONFIGURE_SWEEP
    if args.obs_check:
        return obs_check(sweep, repeat=max(3, args.repeat),
                         threshold_pct=args.obs_threshold)
    profiler = cProfile.Profile() if args.profile else None

    t0 = time.perf_counter()
    if profiler:
        profiler.enable()
    for _ in range(args.repeat):
        results = run_sweep(sweep)
    if profiler:
        profiler.disable()
    wall = time.perf_counter() - t0

    events = sum(r.events_processed for r in results) * args.repeat
    print(f"sweep: {len(sweep) * args.repeat} simulations in {wall:.3f}s — "
          f"{events:,} events, {events / wall:,.0f} events/s")
    for r in results:
        print(f"  {r.workload} [{r.label}]  makespan={r.makespan_us}us  "
              f"energy={r.energy_joules:.6f}J")

    if profiler:
        stats = pstats.Stats(profiler)
        stats.sort_stats("cumulative").print_stats(25)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
