"""Section 5.6: multiple concurrent applications.

The paper pairs zstd compression with libgav1: both applications still
improve under Nest in the multi-application scenario.
"""

from conftest import once

from repro.experiments.runner import run_experiment
from repro.hw.machines import get_machine
from repro.workloads.multiapp import MultiAppWorkload
from repro.workloads.phoronix import PhoronixWorkload

MACHINE = "6130_2s"


def _pair():
    return MultiAppWorkload([PhoronixWorkload("zstd-compression-7",
                                              scale=0.5),
                             PhoronixWorkload("libgav1-4", scale=0.5)])


def test_multiapp(benchmark):
    def regenerate():
        machine = get_machine(MACHINE)
        data = {}
        for sched in ("cfs", "nest"):
            wl = _pair()
            run_experiment(wl, machine, sched, "schedutil", seed=1)
            data[sched] = wl.completion_times_us()
            for app, t in data[sched].items():
                print(f"{sched}-schedutil {app}: {t / 1000:.1f} ms")
        return data

    data = once(benchmark, regenerate)

    for app in data["cfs"]:
        delta = data["cfs"][app] / data["nest"][app] - 1
        # Neither application is badly hurt by sharing the machine under
        # Nest (the paper reports improvements for both).
        assert delta > -0.10, app
    # At least one of the pair improves under Nest.
    assert any(data["cfs"][a] / data["nest"][a] - 1 > 0.0
               for a in data["cfs"])
