"""Table 3: available turbo frequencies by active-core count."""

from conftest import once

from repro.analysis.tables import render_table
from repro.hw.turbo import E7_8870_V4, XEON_5218, XEON_6130

COLUMNS = (1, 2, 3, 4, 8, 12, 16, 20)   # representatives of the paper's
                                         # 1,2,3,4,5-8,9-12,13-16,17-20 cols


def test_table3(benchmark):
    def regenerate():
        rows = []
        for name, table in (("E7-8870 v4", E7_8870_V4),
                            ("6130", XEON_6130), ("5218", XEON_5218)):
            rows.append([name] + [f"{table.ceiling(k) / 1000:.1f}"
                                  if k <= len(table.limits) else "-"
                                  for k in COLUMNS])
        out = render_table(["CPU"] + [str(c) for c in COLUMNS], rows,
                           title="Table 3: turbo frequencies (GHz) by "
                                 "active cores on a socket")
        print("\n" + out)
        return True

    once(benchmark, regenerate)

    # Paper rows, spot-checked per column group.
    assert [E7_8870_V4.ceiling(k) for k in (1, 2, 3, 4, 8, 20)] == \
        [3000, 3000, 2800, 2700, 2600, 2600]
    assert [XEON_6130.ceiling(k) for k in (1, 3, 8, 12, 16)] == \
        [3700, 3500, 3400, 3100, 2800]
    assert [XEON_5218.ceiling(k) for k in (1, 3, 8, 12, 16)] == \
        [3900, 3700, 3600, 3100, 2800]
