"""Section 5.6: server tests on the 2-socket 6130.

Paper shapes: apache-siege-style servers get slower under Nest as the
number of concurrent users grows; nginx is comparable under both; the
key-value stores improve (leveldb +25%, redis +7%).
"""

from conftest import once

from repro.experiments.runner import run_experiment
from repro.hw.machines import get_machine
from repro.workloads.servers import apache_siege, leveldb, nginx, redis

MACHINE = "6130_2s"


def test_servers(benchmark):
    def regenerate():
        machine = get_machine(MACHINE)
        data = {}

        for conc in (8, 32, 56):
            for sched in ("cfs", "nest"):
                res = run_experiment(apache_siege(conc), machine, sched,
                                     "schedutil", seed=1)
                data[(f"siege-{conc}", sched)] = res.makespan_us
            d = data[(f"siege-{conc}", "nest")] / \
                data[(f"siege-{conc}", "cfs")] - 1
            print(f"apache-siege c={conc}: nest delta {d:+.1%}")

        for name, factory in (("nginx", nginx), ("leveldb", leveldb),
                              ("redis", redis)):
            for sched in ("cfs", "nest"):
                res = run_experiment(factory(), machine, sched,
                                     "schedutil", seed=1)
                data[(name, sched)] = res.makespan_us
            s = data[(name, "cfs")] / data[(name, "nest")] - 1
            print(f"{name}: nest speedup {s:+.1%}")
        return data

    data = once(benchmark, regenerate)

    def nest_speedup(key):
        return data[(key, "cfs")] / data[(key, "nest")] - 1

    # nginx: comparable performance.
    assert abs(nest_speedup("nginx")) < 0.08
    # Key-value stores improve under Nest.
    assert nest_speedup("leveldb") > 0.02
    assert nest_speedup("redis") > 0.0
    # apache-siege trends against Nest as concurrency grows.
    assert nest_speedup("siege-56") < nest_speedup("siege-8") + 0.05
    assert nest_speedup("siege-56") < 0.05
