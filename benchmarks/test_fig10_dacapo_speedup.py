"""Figure 10: DaCapo speedups vs CFS-schedutil on the 4-socket 6130.

Shapes (paper §5.3): results range from a small degradation to >40%
speedups; the high-underload applications (h2, tradebeans, graphchi-eval)
are Nest's biggest wins; the few-task applications stay within noise.
"""

from conftest import DACAPO_MACHINES, DACAPO_SCALE, once, runs, speedup_pct

from repro.analysis.tables import pct, render_table
from repro.workloads.dacapo import (DACAPO_PROFILES, DacapoWorkload,
                                    HIGH_UNDERLOAD_APPS, dacapo_names)

COMBOS = (("cfs", "performance"), ("nest", "schedutil"),
          ("nest", "performance"))


def test_fig10(benchmark, runs):
    def regenerate():
        data = {}
        for mk in DACAPO_MACHINES:
            rows = []
            for app in dacapo_names():
                base = runs.get(lambda: DacapoWorkload(app,
                                                       scale=DACAPO_SCALE),
                                mk, "cfs", "schedutil")
                cells = [app, f"{base.makespan_sec:.3f}s",
                         f"u:{base.underload.underload_per_second:.1f}"]
                for sched, gov in COMBOS:
                    res = runs.get(lambda: DacapoWorkload(app,
                                                          scale=DACAPO_SCALE),
                                   mk, sched, gov)
                    s = speedup_pct(base, res)
                    data[(mk, app, sched, gov)] = s
                    cells.append(pct(s))
                rows.append(cells)
            print("\n" + render_table(
                ["app", "CFS time", "underload"] +
                ["-".join(c) for c in COMBOS], rows,
                title=f"Figure 10: DaCapo speedups on {mk}"))
        return data

    data = once(benchmark, regenerate)
    mk = DACAPO_MACHINES[0]

    # The paper's headline: the high-underload apps win clearly.
    for app in HIGH_UNDERLOAD_APPS:
        assert data[(mk, app, "nest", "schedutil")] > 0.04, app

    # Few-task applications are not badly hurt (paper's worst: -6%).
    for app in dacapo_names():
        if DACAPO_PROFILES[app].few_tasks:
            assert data[(mk, app, "nest", "schedutil")] > -0.08, app

    # No application collapses under Nest (the paper's only >5%
    # degradation is fop at -6% on the E7).
    assert min(data[(mk, a, "nest", "schedutil")]
               for a in dacapo_names()) > -0.10
