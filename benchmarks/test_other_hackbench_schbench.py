"""Section 5.6: hackbench and schbench.

Hackbench is dominated by scheduling cost, and Nest adds work to core
selection: the paper reports a substantial slowdown.  Schbench's 99.9th
percentile wakeup latency shows "no clear advantage for either CFS or
Nest".
"""

from conftest import once

from repro.experiments.runner import run_experiment
from repro.hw.machines import get_machine
from repro.workloads.messaging import HackbenchWorkload, SchbenchWorkload

MACHINE = "5218_2s"


def test_hackbench_schbench(benchmark):
    def regenerate():
        machine = get_machine(MACHINE)
        data = {}
        for sched in ("cfs", "nest"):
            res = run_experiment(
                HackbenchWorkload(groups=10, pairs_per_group=5, loops=150),
                machine, sched, "schedutil", seed=1)
            data[("hackbench", sched)] = res.makespan_us
            print(f"hackbench {sched}-schedutil: "
                  f"{res.makespan_sec * 1000:.1f} ms "
                  f"({res.total_wakeups} wakeups)")

        for sched in ("cfs", "nest"):
            tails = []
            for seed in (1, 2):
                wl = SchbenchWorkload(message_threads=4,
                                      workers_per_thread=8, requests=40)
                run_experiment(wl, machine, sched, "schedutil", seed=seed)
                tails.append(wl.recorder.p999())
            data[("schbench", sched)] = sum(tails) / len(tails)
            print(f"schbench {sched}-schedutil: p99.9 = "
                  f"{data[('schbench', sched)]:.0f} us")
        return data

    data = once(benchmark, regenerate)

    # Nest is clearly slower on hackbench (the paper: 3x or worse; our
    # selection-cost model reproduces the direction).
    assert data[("hackbench", "nest")] > data[("hackbench", "cfs")] * 1.03

    # Schbench: no collapse in either direction (paper: "not a clear
    # advantage for either CFS or Nest").
    ratio = data[("schbench", "nest")] / data[("schbench", "cfs")]
    assert 0.3 < ratio < 3.0
