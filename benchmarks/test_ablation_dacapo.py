"""Section 5.3 ablation: Nest features on h2, graphchi-eval, tradebeans.

The paper: spinning has the greatest impact (10-26% degradation when
removed on the multi-socket machines); eliminating nest compaction lets h2
and graphchi spread out (~5%); the reserve nest matters little here.
"""

from conftest import once

from repro.analysis.tables import pct, render_table
from repro.core.params import NestParams
from repro.experiments.runner import run_experiment
from repro.hw.machines import get_machine
from repro.workloads.dacapo import DacapoWorkload

APPS = ("h2", "graphchi-eval", "tradebeans")
MACHINE = "6130_4s"

VARIANTS = [
    ("full Nest", NestParams()),
    ("no spin", NestParams().without("spin")),
    ("no compaction", NestParams().without("compaction")),
    ("no reserve", NestParams().without("reserve")),
    ("spin x0.5", NestParams().scaled(s_max=0.5)),
    ("spin x10", NestParams().scaled(s_max=10)),
]


def test_ablation_dacapo(benchmark):
    def regenerate():
        data = {}
        machine = get_machine(MACHINE)
        rows = []
        for name, params in VARIANTS:
            cells = [name]
            for app in APPS:
                res = run_experiment(DacapoWorkload(app), machine, "nest",
                                     "schedutil", seed=1,
                                     nest_params=params)
                data[(name, app)] = res.makespan_us
                delta = data[("full Nest", app)] / res.makespan_us - 1
                cells.append(pct(delta))
            rows.append(cells)
        print("\n" + render_table(
            ["variant"] + list(APPS), rows,
            title=f"Section 5.3 ablation on {MACHINE} "
                  "(delta vs full Nest; negative = slower)"))
        return data

    data = once(benchmark, regenerate)

    # Spinning has the greatest impact: removing it degrades the
    # high-underload apps (paper: 10-26% on this machine).
    degradations = [data[("no spin", app)] / data[("full Nest", app)] - 1
                    for app in APPS]
    assert max(degradations) > 0.05
    assert sum(1 for d in degradations if d > 0.01) >= 2

    # The reserve nest has little impact on these apps (paper: "the
    # reserve mask has little impact on h2, graphchi-eval, tradebeans").
    for app in APPS:
        assert abs(data[("no reserve", app)] /
                   data[("full Nest", app)] - 1) < 0.10, app
