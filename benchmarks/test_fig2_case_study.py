"""Figure 2: core-frequency trace of LLVM configure (Ninja) on the 5218.

The paper shows CFS dispersing the configure tasks over ~8 cores that stay
in the lower turbo range, while Nest keeps them on ~2 cores running almost
entirely at the highest frequencies.
"""

from conftest import CONFIGURE_SCALE, once, runs

from repro.analysis.plots import render_core_trace, render_distribution
from repro.experiments.runner import run_experiment
from repro.hw.machines import get_machine
from repro.workloads.configure import ConfigureWorkload

WINDOW_US = 120_000


def _trace(scheduler):
    res = run_experiment(ConfigureWorkload("llvm_ninja",
                                           scale=CONFIGURE_SCALE),
                         get_machine("5218_2s"), scheduler, "schedutil",
                         seed=1, record_trace=True)
    return res


def test_fig2(benchmark):
    def regenerate():
        out = {}
        edges = [1000, 1600, 2300, 3600, 3900]
        for scheduler in ("cfs", "nest"):
            res = _trace(scheduler)
            segs = res.trace_segments
            used = {s.core for s in segs if s.task_id >= 0 and not s.spinning}
            print(f"\n=== Figure 2 ({scheduler}-schedutil): "
                  f"{len(used)} cores used in the run")
            print(render_core_trace(segs, 0, WINDOW_US, edges, width=70,
                                    min_busy_us=1_000))
            fd = res.freq_dist
            print(render_distribution("frequency distribution",
                                      fd.labels(), fd.fractions()))
            out[scheduler] = res
        return out

    out = once(benchmark, regenerate)
    cfs, nest = out["cfs"], out["nest"]

    cfs_cores = {s.core for s in cfs.trace_segments
                 if s.task_id >= 0 and not s.spinning}
    nest_cores = {s.core for s in nest.trace_segments
                  if s.task_id >= 0 and not s.spinning}
    # Nest concentrates the work on far fewer cores...
    assert len(nest_cores) < len(cfs_cores) * 0.7
    # ...and spends most busy time in the top turbo range (paper: 91% in
    # (3.6,3.9] for Nest vs 25% for CFS).
    assert nest.freq_dist.top_bins_fraction() > 0.5
    assert nest.freq_dist.top_bins_fraction() > \
        cfs.freq_dist.top_bins_fraction() + 0.3
