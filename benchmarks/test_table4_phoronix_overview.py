"""Table 4: overview of the Phoronix multicore results.

A seeded population of multicore tests drawn from the suite's behaviour mix
is run under CFS-performance and Nest-schedutil; each test's speedup vs
CFS-schedutil is classified into the paper's five bands.  Shapes: most
tests land in the "same" band, regressions are rare, and the E7 shows more
beneficiaries for CFS-performance than the Speed Shift machine does.
"""

from conftest import once, runs, speedup_pct

from repro.analysis.stats import band_counts
from repro.analysis.tables import render_band_table
from repro.workloads.phoronix import suite_population

POPULATION = 36
MACHINES = ("5218_2s", "e78870_4s")
CONFIGS = (("cfs", "performance"), ("nest", "schedutil"))


def test_table4(benchmark, runs):
    def regenerate():
        tables = {}
        for mk in MACHINES:
            per_config = {}
            for sched, gov in CONFIGS:
                speedups = []
                for i in range(POPULATION):
                    base = runs.get(
                        lambda: suite_population(POPULATION, seed=7)[i],
                        mk, "cfs", "schedutil")
                    res = runs.get(
                        lambda: suite_population(POPULATION, seed=7)[i],
                        mk, sched, gov)
                    speedups.append(speedup_pct(base, res))
                per_config[f"{sched}-{gov}"] = band_counts(speedups)
            tables[mk] = per_config
            print("\n" + render_band_table(
                f"Table 4: Phoronix multicore overview on {mk} "
                f"({POPULATION} tests)", per_config))
        return tables

    tables = once(benchmark, regenerate)

    for mk in MACHINES:
        for config, counts in tables[mk].items():
            total = sum(counts.values())
            same = counts["same"]
            slower_big = counts["slower by > 20%"]
            # Most tests are unaffected (paper: 61-93% "same"; the E7's
            # performance governor helps a somewhat larger share of our
            # population than the paper's 36%).
            floor = 0.4 if (mk, config) == ("e78870_4s",
                                            "cfs-performance") else 0.5
            assert same >= total * floor, (mk, config)
            # Large regressions are rare (paper: 0-2 tests; our barriered
            # population is harsher on Nest because simulated barrier waits
            # block instead of busy-waiting, so the spin burns turbo
            # budget — see EXPERIMENTS.md).
            assert slower_big <= max(2, total * 0.06), (mk, config)

    # The E7 has more >5% winners under CFS-performance than the 5218
    # (paper: 36% vs 8% of tests).
    def winners(mk, config):
        c = tables[mk][config]
        return c["faster by (5,20]%"] + c["faster by > 20%"]

    assert winners("e78870_4s", "cfs-performance") >= \
        winners("5218_2s", "cfs-performance")
