"""Figure 4: underload per second for the configure suite.

Nest nearly eliminates the underload of CFS on every machine.
"""

from conftest import (CONFIGURE_MACHINES, CONFIGURE_SCALE, once, runs)

from repro.analysis.tables import render_table
from repro.workloads.configure import ConfigureWorkload, configure_names

COMBOS = (("cfs", "schedutil"), ("cfs", "performance"),
          ("nest", "schedutil"), ("nest", "performance"))


def test_fig4(benchmark, runs):
    def regenerate():
        data = {}
        for mk in CONFIGURE_MACHINES:
            rows = []
            for pkg in configure_names():
                cells = [pkg]
                for sched, gov in COMBOS:
                    res = runs.get(
                        lambda: ConfigureWorkload(pkg, scale=CONFIGURE_SCALE),
                        mk, sched, gov)
                    u = res.underload.underload_per_second
                    data[(mk, pkg, sched, gov)] = u
                    cells.append(f"{u:.2f}")
                rows.append(cells)
            print("\n" + render_table(
                ["package"] + ["-".join(c) for c in COMBOS], rows,
                title=f"Figure 4: underload per second on {mk}"))
        return data

    data = once(benchmark, regenerate)

    for mk in CONFIGURE_MACHINES:
        cfs_total = sum(data[(mk, p, "cfs", "schedutil")]
                        for p in configure_names())
        nest_total = sum(data[(mk, p, "nest", "schedutil")]
                         for p in configure_names())
        # Nest nearly eliminates underload across the suite.
        assert nest_total < cfs_total * 0.5, mk
        # The performance governor alone does NOT reduce underload.
        cfs_perf_total = sum(data[(mk, p, "cfs", "performance")]
                             for p in configure_names())
        assert cfs_perf_total > cfs_total * 0.5, mk
