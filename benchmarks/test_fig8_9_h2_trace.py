"""Figures 8-9: h2 execution traces on the 4-socket 6130.

CFS-schedutil disperses the h2 tasks over most of the cores of one socket
(and sometimes across sockets — the slow runs of Figure 9), keeping them in
the lower turbo range; Nest concentrates them on ~10 cores that reach the
high turbo bins.
"""

from conftest import once

from repro.analysis.plots import render_core_trace, render_distribution
from repro.experiments.runner import run_experiment
from repro.hw.machines import get_machine
from repro.workloads.dacapo import DacapoWorkload


def test_fig8_9(benchmark):
    def regenerate():
        out = {}
        edges = [1000, 1600, 2100, 2800, 3100, 3400, 3700]
        for scheduler in ("cfs", "nest"):
            res = run_experiment(DacapoWorkload("h2"),
                                 get_machine("6130_4s"), scheduler,
                                 "schedutil", seed=1, record_trace=True)
            segs = res.trace_segments
            used = {s.core for s in segs
                    if s.task_id >= 0 and not s.spinning}
            print(f"\n=== Figure 8 ({scheduler}-schedutil): "
                  f"{res.makespan_sec * 1000:.0f} ms, {len(used)} cores")
            print(render_core_trace(segs, 0, min(res.makespan_us, 80_000),
                                    edges, width=64, min_busy_us=2_000))
            fd = res.freq_dist
            print(render_distribution("frequency distribution",
                                      fd.labels(), fd.fractions()))
            out[scheduler] = (res, used)
        return out

    out = once(benchmark, regenerate)
    cfs_res, cfs_cores = out["cfs"]
    nest_res, nest_cores = out["nest"]

    # Nest concentrates h2 on far fewer cores than CFS.
    assert len(nest_cores) < len(cfs_cores)
    # CFS spends most busy time at or below the low turbo range while Nest
    # pushes a large share above 3.1 GHz (paper: 2/3 vs 2/3 inverted).
    assert nest_res.freq_dist.top_bins_fraction() > \
        cfs_res.freq_dist.top_bins_fraction() + 0.25
    # And the placement quality shows up as wall-clock time.
    assert nest_res.makespan_us < cfs_res.makespan_us
