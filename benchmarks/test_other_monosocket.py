"""Section 5.6: mono-socket machines (Intel 5220 and AMD Ryzen 4650G).

Paper shapes: the configure speedups persist on one socket (the number of
sockets is irrelevant when the computation fits in one), and NAS is
identical between CFS and Nest.
"""

from conftest import CONFIGURE_SCALE, once, speedup_pct

from repro.experiments.runner import run_experiment
from repro.hw.machines import get_machine
from repro.workloads.configure import ConfigureWorkload
from repro.workloads.nas import NasWorkload

MACHINES = ("5220_1s", "ryzen_4650g")


def test_monosocket(benchmark):
    def regenerate():
        data = {}
        for mk in MACHINES:
            machine = get_machine(mk)
            base = run_experiment(
                ConfigureWorkload("llvm_ninja", scale=CONFIGURE_SCALE),
                machine, "cfs", "schedutil", seed=1)
            nest = run_experiment(
                ConfigureWorkload("llvm_ninja", scale=CONFIGURE_SCALE),
                machine, "nest", "schedutil", seed=1)
            data[(mk, "configure")] = speedup_pct(base, nest)

            base = run_experiment(NasWorkload("mg", scale=0.4), machine,
                                  "cfs", "schedutil", seed=1)
            nest = run_experiment(NasWorkload("mg", scale=0.4), machine,
                                  "nest", "schedutil", seed=1)
            data[(mk, "nas")] = speedup_pct(base, nest)
            print(f"{mk}: configure nest {data[(mk, 'configure')]:+.1%}, "
                  f"nas mg nest {data[(mk, 'nas')]:+.1%}")
        return data

    data = once(benchmark, regenerate)

    for mk in MACHINES:
        # Configure speedups persist on one socket.
        assert data[(mk, "configure")] > 0.05, mk
        # NAS performance is essentially identical.
        assert abs(data[(mk, "nas")]) < 0.12, mk
