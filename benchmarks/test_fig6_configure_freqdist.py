"""Figure 6: configure-suite frequency distributions.

Under Nest the busy time shifts into the highest frequency bins; under
CFS-schedutil the tasks sit in the mid/low turbo range.
"""

from conftest import CONFIGURE_MACHINES, CONFIGURE_SCALE, once, runs

from repro.analysis.plots import render_distribution
from repro.workloads.configure import ConfigureWorkload, configure_names

SHOWN = ("erlang", "llvm_ninja", "mplayer")


def test_fig6(benchmark, runs):
    def regenerate():
        data = {}
        for mk in CONFIGURE_MACHINES:
            for pkg in configure_names():
                for sched in ("cfs", "nest"):
                    res = runs.get(
                        lambda: ConfigureWorkload(pkg, scale=CONFIGURE_SCALE),
                        mk, sched, "schedutil")
                    data[(mk, pkg, sched)] = res.freq_dist
                    if pkg in SHOWN:
                        fd = res.freq_dist
                        print("\n" + render_distribution(
                            f"Fig 6 {mk} {pkg} {sched}-schedutil",
                            fd.labels(), fd.fractions()))
        return data

    data = once(benchmark, regenerate)

    for mk in CONFIGURE_MACHINES:
        gains = 0
        for pkg in configure_names():
            cfs = data[(mk, pkg, "cfs")].mean_ghz()
            nest = data[(mk, pkg, "nest")].mean_ghz()
            if nest > cfs + 0.05:
                gains += 1
        # Nest raises the mean busy frequency on the majority of the
        # configure suite (the margin is smaller on the E7, whose whole
        # frequency range spans just 1.8 GHz).
        majority = 0.7 if mk != "e78870_4s" else 0.5
        assert gains >= len(configure_names()) * majority, mk

    # Headline case (paper Fig 2/6): llvm_ninja on the 5218 moves most
    # busy time above 3.1 GHz under Nest.
    assert data[("5218_2s", "llvm_ninja", "nest")].top_bins_fraction() > 0.5
