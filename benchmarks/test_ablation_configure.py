"""Section 5.2 ablation: Nest features/parameters on configure workloads.

The paper: on llvm_ninja and mplayer configure, removing features or
scaling parameters by 0.5/2/10 changes little — *except* removing the
reserve nest, which degrades performance by ~5% (6130/5218) to 16% (E7).
"""

from conftest import CONFIGURE_SCALE, once

from repro.analysis.tables import pct, render_table
from repro.core.params import NestParams
from repro.experiments.runner import run_experiment
from repro.hw.machines import get_machine
from repro.workloads.configure import ConfigureWorkload

PACKAGES = ("llvm_ninja", "mplayer")
MACHINE = "5218_2s"

VARIANTS = [
    ("full Nest", NestParams()),
    ("no reserve", NestParams().without("reserve")),
    ("no compaction", NestParams().without("compaction")),
    ("no impatience", NestParams().without("impatience")),
    ("no spin", NestParams().without("spin")),
    ("no attachment", NestParams().without("attachment")),
    ("no placement flag", NestParams().without("placement_flag")),
    ("P_remove x0.5", NestParams().scaled(p_remove=0.5)),
    ("P_remove x2", NestParams().scaled(p_remove=2)),
    ("P_remove x10", NestParams().scaled(p_remove=10)),
    ("R_max x2", NestParams().scaled(r_max=2)),
    ("S_max x0.5", NestParams().scaled(s_max=0.5)),
    ("S_max x10", NestParams().scaled(s_max=10)),
]


def test_ablation_configure(benchmark):
    def regenerate():
        data = {}
        machine = get_machine(MACHINE)
        rows = []
        for name, params in VARIANTS:
            cells = [name]
            for pkg in PACKAGES:
                res = run_experiment(
                    ConfigureWorkload(pkg, scale=CONFIGURE_SCALE), machine,
                    "nest", "schedutil", seed=1, nest_params=params)
                data[(name, pkg)] = res.makespan_us
                delta = data[("full Nest", pkg)] / res.makespan_us - 1
                cells.append(pct(delta))
            rows.append(cells)
        print("\n" + render_table(
            ["variant"] + list(PACKAGES), rows,
            title=f"Section 5.2 ablation on {MACHINE} "
                  "(delta vs full Nest; negative = slower)"))
        return data

    data = once(benchmark, regenerate)

    for pkg in PACKAGES:
        full = data[("full Nest", pkg)]
        # Removing the reserve nest clearly hurts (paper: ~5% on the
        # Skylake machines, 16% on the E7; our simulation shows more).
        assert data[("no reserve", pkg)] > full * 1.03, pkg
        # The remaining variations stay comparatively small.  (Deviation:
        # removing the spin costs configure more here than in the paper,
        # because simulated configure scripts block on every test while
        # real ones often keep the script core busy — see EXPERIMENTS.md.)
        for name, _ in VARIANTS:
            if name in ("full Nest", "no reserve", "no spin"):
                continue
            assert data[(name, pkg)] < full * 1.15, (name, pkg)
        assert data[("no spin", pkg)] < full * 1.30, pkg
