"""Figure 7: configure-suite CPU energy reduction vs CFS-schedutil.

The paper: Nest provides both a speedup and energy savings (up to ~19%),
because the biggest CPU-energy lever is finishing sooner.
"""

from conftest import CONFIGURE_MACHINES, CONFIGURE_SCALE, once, runs

from repro.analysis.tables import pct, render_table
from repro.workloads.configure import ConfigureWorkload, configure_names

COMBOS = (("cfs", "performance"), ("nest", "schedutil"),
          ("nest", "performance"))


def test_fig7(benchmark, runs):
    def regenerate():
        data = {}
        for mk in CONFIGURE_MACHINES:
            rows = []
            for pkg in configure_names():
                base = runs.get(
                    lambda: ConfigureWorkload(pkg, scale=CONFIGURE_SCALE),
                    mk, "cfs", "schedutil")
                cells = [pkg, f"{base.energy_joules:.1f}J"]
                for sched, gov in COMBOS:
                    res = runs.get(
                        lambda: ConfigureWorkload(pkg, scale=CONFIGURE_SCALE),
                        mk, sched, gov)
                    saving = 1.0 - res.energy_joules / base.energy_joules
                    data[(mk, pkg, sched, gov)] = saving
                    cells.append(pct(saving))
                rows.append(cells)
            print("\n" + render_table(
                ["package", "CFS-sched energy"] +
                ["-".join(c) for c in COMBOS], rows,
                title=f"Figure 7: CPU energy reduction on {mk}"))
        return data

    data = once(benchmark, regenerate)

    for mk in CONFIGURE_MACHINES:
        savings = [data[(mk, p, "nest", "schedutil")]
                   for p in configure_names() if p != "nodejs"]
        # Nest saves energy on the clear majority of packages...
        assert sum(1 for s in savings if s > 0) >= len(savings) * 0.7, mk
        # ...and the best saving is substantial (paper: up to 19%; the
        # E7's narrow frequency range caps the simulated effect lower).
        assert max(savings) > (0.08 if mk != "e78870_4s" else 0.04), mk
        # No pathological energy blowup anywhere.
        assert min(savings) > -0.15, mk
