"""Table 1: chosen values of the Nest parameters."""

from conftest import once

from repro.analysis.tables import render_table
from repro.core.params import DEFAULT_PARAMS
from repro.sim.clock import TICK_US


def test_table1(benchmark):
    def regenerate():
        p = DEFAULT_PARAMS
        rows = [
            ["P_remove", "Delay before removing an idle core from the "
             "primary nest", f"{p.p_remove_ticks:g} ticks "
             f"(= {p.p_remove_ticks * TICK_US / 1000:g} ms)"],
            ["R_max", "Maximum number of cores in the reserve nest",
             str(p.r_max)],
            ["R_impatient", "Successive placement failures tolerated before "
             "trying to expand the primary nest", str(p.r_impatient)],
            ["S_max", "Maximum spin duration",
             f"{p.s_max_ticks:g} ticks"],
        ]
        out = render_table(["Parameter", "Description", "Value"], rows,
                           title="Table 1: chosen values of the Nest "
                                 "parameters")
        print("\n" + out)
        return p

    p = once(benchmark, regenerate)
    # The paper's Table 1 values.
    assert p.p_remove_ticks == 2
    assert p.p_remove_ticks * TICK_US == 8_000     # = 8 ms
    assert p.r_max == 5
    assert p.r_impatient == 2
    assert p.s_max_ticks == 2
