"""Table 2: hardware characteristics of the evaluation machines."""

from conftest import once

from repro.analysis.tables import render_table
from repro.hw.machines import PAPER_MACHINES


def test_table2(benchmark):
    def regenerate():
        rows = []
        for m in PAPER_MACHINES.values():
            t = m.topology
            rows.append([
                m.cpu_model, m.microarchitecture,
                f"{t.n_sockets}x{t.cores_per_socket}x{t.smt} = {t.n_cpus}",
                f"{m.min_mhz / 1000:.1f} GHz",
                f"{m.nominal_mhz / 1000:.1f} GHz",
                f"{m.max_turbo_mhz / 1000:.1f} GHz",
                m.pm.name,
            ])
        out = render_table(
            ["CPU", "Microarchitecture", "# cores", "Min freq", "Max freq",
             "Max turbo", "Power management"], rows,
            title="Table 2: hardware characteristics")
        print("\n" + out)
        return list(PAPER_MACHINES.values())

    machines = once(benchmark, regenerate)
    by_model = {(m.cpu_model, m.topology.n_sockets): m for m in machines}

    e7 = by_model[("Intel Xeon E7-8870 v4", 4)]
    assert (e7.n_cpus, e7.min_mhz, e7.nominal_mhz, e7.max_turbo_mhz) == \
        (160, 1200, 2100, 3000)
    g2 = by_model[("Intel Xeon Gold 6130", 2)]
    assert (g2.n_cpus, g2.min_mhz, g2.nominal_mhz, g2.max_turbo_mhz) == \
        (64, 1000, 2100, 3700)
    g4 = by_model[("Intel Xeon Gold 6130", 4)]
    assert g4.n_cpus == 128
    c2 = by_model[("Intel Xeon Gold 5218", 2)]
    assert (c2.n_cpus, c2.nominal_mhz, c2.max_turbo_mhz) == (64, 2300, 3900)
