"""The paper's contribution: the Nest policy and its parameters."""

from .nest import NestPolicy
from .params import DEFAULT_PARAMS, NestParams

__all__ = ["NestPolicy", "NestParams", "DEFAULT_PARAMS"]
