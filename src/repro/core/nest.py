"""The Nest scheduling policy (paper §3).

Nest maintains two sets of cores:

* the **primary nest** — cores in use or recently used, searched first;
* the **reserve nest** — cores that left the primary nest or that CFS chose
  recently, bounded at ``R_max`` entries.

The search path on fork/wakeup is primary → reserve → CFS (Figure 1, red
arrows); core movement between the nests follows the blue arrows: reserve
hits are promoted, CFS picks enter the reserve, unused primary cores are
demoted when a task next trips over them (compaction), and a core whose task
exits is demoted immediately.  Impatient tasks (too many previous-core
collisions) skip the primary nest and their chosen core is promoted
directly, growing the nest.  See DESIGN.md for the mapping to the paper.
"""

from __future__ import annotations

from typing import List, Optional, Set

from ..kernel.task import Task
from ..sim.clock import TICK_US
from .params import DEFAULT_PARAMS, NestParams
from ..sched.base import SelectionPolicy
from ..sched.cfs import CfsPolicy, _rotate


class NestPolicy(SelectionPolicy):
    """Nest placement wrapping CFS (most of the paper's patch sits in front
    of CFS's core-selection function, §7)."""

    #: Nest adds a block of code to core selection (§3.4/§5.6), so its
    #: per-selection cost is higher than stock CFS.
    selection_cost_us = 3

    def __init__(self, params: NestParams = DEFAULT_PARAMS) -> None:
        super().__init__()
        self.params = params
        self.primary: Set[int] = set()
        self.reserve: Set[int] = set()
        self.home_cpu: Optional[int] = None
        self._cfs = CfsPolicy()
        # Statistics (exposed for tests and the ablation benches).
        self.stats = {
            "primary_hits": 0, "reserve_hits": 0, "cfs_fallbacks": 0,
            "attachment_hits": 0, "compactions": 0, "exit_demotions": 0,
            "impatient_placements": 0,
        }

    def on_bind(self) -> None:
        self._cfs.kernel = self.kernel
        self._cfs.check_pending_default = self.params.placement_flag

    @property
    def name(self) -> str:
        return "Nest"

    # ------------------------------------------------------------------
    # Selection entry points
    # ------------------------------------------------------------------

    def select_cpu_fork(self, task: Task, parent_cpu: int) -> int:
        if self.home_cpu is None:
            # The paper starts reserve searches from the core on which the
            # system call that enabled Nest ran.
            self.home_cpu = parent_cpu
        return self._select(task, start=parent_cpu, is_fork=True)

    def select_cpu_wakeup(self, task: Task, waker_cpu: int) -> int:
        start = task.prev_cpu if task.prev_cpu is not None else waker_cpu
        if self.home_cpu is None:
            self.home_cpu = waker_cpu
        if self.params.impatience_enabled and task.prev_cpu is not None:
            if self._idle(task.prev_cpu):
                task.impatience = 0
            else:
                task.impatience += 1
        return self._select(task, start=start, is_fork=False,
                            waker_cpu=waker_cpu)

    # ------------------------------------------------------------------
    # The §3 search
    # ------------------------------------------------------------------

    def _select(self, task: Task, start: int, is_fork: bool,
                waker_cpu: Optional[int] = None) -> int:
        p = self.params

        # §3.3: the first choice is always the attached core, if it is in
        # the primary nest and idle — even if it is compaction-eligible.
        if p.attachment_enabled and not is_fork:
            ac = task.attached_core
            if ac is not None and ac in self.primary and self._idle(ac):
                self.stats["attachment_hits"] += 1
                task.impatience = 0
                return ac

        impatient = (p.impatience_enabled
                     and task.impatience >= p.r_impatient and not is_fork)

        if not impatient:
            cpu = self._search_primary(start, task, is_fork)
            if cpu is not None:
                self.stats["primary_hits"] += 1
                return cpu

        if p.reserve_enabled:
            cpu = self._search_reserve(start)
            if cpu is not None:
                self.reserve.discard(cpu)
                self.primary.add(cpu)
                self.stats["reserve_hits"] += 1
                if impatient:
                    self.stats["impatient_placements"] += 1
                    task.impatience = 0
                return cpu

        # Fall back on CFS (with Nest's §3.4 wakeup work conservation).
        self.stats["cfs_fallbacks"] += 1
        if is_fork:
            cpu = self._cfs.select_cpu_fork(task, start)
        else:
            target = self._cfs._wake_affine(
                task, start, waker_cpu if waker_cpu is not None else start)
            cpu = self._cfs.select_idle_sibling(
                target,
                all_dies=p.wakeup_work_conservation,
                check_pending=p.placement_flag)

        if impatient:
            # §3.1: the chosen core joins the primary nest directly, to
            # expand it, and the impatience counter resets.
            self.reserve.discard(cpu)
            self.primary.add(cpu)
            self.stats["impatient_placements"] += 1
            task.impatience = 0
        elif cpu not in self.primary and cpu not in self.reserve:
            if p.reserve_enabled and len(self.reserve) < p.r_max:
                self.reserve.add(cpu)
            # else: reserve full -> the core joins no nest (§3.1).
        return cpu

    def _search_primary(self, start: int, task: Task,
                        is_fork: bool) -> Optional[int]:
        """Idle-core search over the primary nest, same-die first, with
        compaction of stale cores encountered along the way (§3.1)."""
        if not self.primary:
            return None
        p = self.params
        kernel = self.kernel
        topo = kernel.topology
        now = kernel.engine.now
        stale_cutoff_us = int(p.p_remove_ticks * TICK_US)

        start_die = topo.die_of(start)
        same_die = [c for c in self.primary if topo.die_of(c) == start_die]
        other = [c for c in self.primary if topo.die_of(c) != start_die]
        candidates = list(_rotate(tuple(same_die), start)) + sorted(other)

        prefer = []
        if p.prev_core_first and not is_fork and task.prev_cpu is not None \
                and task.prev_cpu in self.primary:
            prefer = [task.prev_cpu]

        for cpu in prefer + candidates:
            if not self._idle(cpu):
                continue
            if p.compaction_enabled and cpu not in prefer:
                idle_for = now - kernel.cpu_last_used(cpu)
                if idle_for >= stale_cutoff_us:
                    # §3.1: a task tried to use a stale core -> demote it.
                    self._demote(cpu)
                    continue
            return cpu
        return None

    def _search_reserve(self, start: int) -> Optional[int]:
        """Idle-core search over the reserve nest, same-die-as-start first,
        scanning from the fixed home core to limit dispersal (§3.1)."""
        if not self.reserve:
            return None
        topo = self.kernel.topology
        home = self.home_cpu if self.home_cpu is not None else start
        start_die = topo.die_of(start)
        same_die = [c for c in self.reserve if topo.die_of(c) == start_die]
        other = [c for c in self.reserve if topo.die_of(c) != start_die]
        for cpu in list(_rotate(tuple(same_die), home)) \
                + list(_rotate(tuple(other), home)):
            if self._idle(cpu):
                return cpu
        return None

    # ------------------------------------------------------------------
    # Nest maintenance hooks
    # ------------------------------------------------------------------

    def on_enqueue(self, task: Task, cpu: int) -> None:
        """Any cpu that actually receives work is useful: keep nest state
        consistent if the balancer moved a task onto an unnested core."""

    def on_exit_idle(self, cpu: int) -> None:
        """§3.1: a task terminated and left the core idle — the core is no
        longer considered useful and is demoted immediately."""
        if cpu in self.primary and self.kernel.cpu_is_idle(cpu):
            self._demote(cpu)
            self.stats["exit_demotions"] += 1

    def _demote(self, cpu: int) -> None:
        self.primary.discard(cpu)
        if self.params.reserve_enabled and len(self.reserve) < self.params.r_max:
            self.reserve.add(cpu)
        self.stats["compactions"] += 1

    def spin_ticks(self) -> float:
        return self.params.s_max_ticks if self.params.spin_enabled else 0.0

    # ------------------------------------------------------------------

    def _idle(self, cpu: int) -> bool:
        """Idle and not targeted by an in-flight placement (§3.4 flag)."""
        if not self.kernel.cpu_is_idle(cpu):
            return False
        if self.params.placement_flag \
                and self.kernel.rqs[cpu].placement_pending > 0:
            return False
        return True

    def nest_sizes(self) -> tuple[int, int]:
        return len(self.primary), len(self.reserve)
