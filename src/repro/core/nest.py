"""The Nest scheduling policy (paper §3).

Nest maintains two sets of cores:

* the **primary nest** — cores in use or recently used, searched first;
* the **reserve nest** — cores that left the primary nest or that CFS chose
  recently, bounded at ``R_max`` entries.

The search path on fork/wakeup is primary → reserve → CFS (Figure 1, red
arrows); core movement between the nests follows the blue arrows: reserve
hits are promoted, CFS picks enter the reserve, unused primary cores are
demoted when a task next trips over them (compaction), and a core whose task
exits is demoted immediately.  Impatient tasks (too many previous-core
collisions) skip the primary nest and their chosen core is promoted
directly, growing the nest.  See DESIGN.md for the mapping to the paper.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..kernel.task import Task
from ..obs import events as oev
from ..obs.log import EventLog
from ..obs.metrics import MetricsRegistry
from ..sim.clock import TICK_US
from .params import DEFAULT_PARAMS, NestParams
from ..sched.base import SelectionPolicy
from ..sched.cfs import CfsPolicy, _rotate

#: Keys of the legacy ``stats`` dict, preserved by the compat property.
STAT_KEYS = (
    "primary_hits", "reserve_hits", "cfs_fallbacks", "attachment_hits",
    "compactions", "exit_demotions", "impatient_placements", "placements",
)

#: Bucket edges for the placement-search-length histogram (cores examined
#: before a placement was decided) and the primary-nest-size histogram.
SEARCH_LEN_EDGES = (0, 1, 2, 4, 8, 16, 32, 64, 128)
NEST_SIZE_EDGES = (0, 1, 2, 4, 8, 16, 32, 64, 128)


class NestPolicy(SelectionPolicy):
    """Nest placement wrapping CFS (most of the paper's patch sits in front
    of CFS's core-selection function, §7)."""

    #: Nest adds a block of code to core selection (§3.4/§5.6), so its
    #: per-selection cost is higher than stock CFS.
    selection_cost_us = 3

    def __init__(self, params: NestParams = DEFAULT_PARAMS) -> None:
        super().__init__()
        self.params = params
        self.primary: Set[int] = set()
        self.reserve: Set[int] = set()
        self.home_cpu: Optional[int] = None
        self._cfs = CfsPolicy()
        # Placement statistics live in a metrics registry (obs/metrics.py);
        # the hot path increments counter objects directly.  The legacy
        # ``stats`` dict is still available as a property view.
        self.metrics = MetricsRegistry()
        m = self.metrics
        self._c_primary = m.counter("primary_hits")
        self._c_reserve = m.counter("reserve_hits")
        self._c_cfs = m.counter("cfs_fallbacks")
        self._c_attach = m.counter("attachment_hits")
        self._c_compact = m.counter("compactions")
        self._c_exit = m.counter("exit_demotions")
        self._c_impatient = m.counter("impatient_placements")
        self._c_placements = m.counter("placements")
        self._h_search = m.histogram("search_len", SEARCH_LEN_EDGES)
        self._h_size = m.histogram("primary_size", NEST_SIZE_EDGES)
        # Replaced with the engine's log on bind; a detached placeholder
        # lets unbound policies (unit tests) run with events disabled.
        self._obs = EventLog()

    def on_bind(self) -> None:
        self._cfs.kernel = self.kernel
        self._cfs.check_pending_default = self.params.placement_flag
        self._obs = self.kernel.engine.obs

    @property
    def stats(self) -> Dict[str, int]:
        """Legacy view of the placement counters (read-only snapshot)."""
        counters = self.metrics.counters()
        return {k: counters[k] for k in STAT_KEYS}

    def check_invariants(self) -> None:
        """Every placement is claimed by exactly one search tier."""
        c = self.metrics.counters()
        hits = (c["attachment_hits"] + c["primary_hits"]
                + c["reserve_hits"] + c["cfs_fallbacks"])
        if hits != c["placements"]:
            raise AssertionError(
                f"nest counter inconsistency: attachment({c['attachment_hits']})"
                f" + primary({c['primary_hits']}) + reserve({c['reserve_hits']})"
                f" + cfs({c['cfs_fallbacks']}) = {hits}"
                f" != placements({c['placements']})")

    @property
    def name(self) -> str:
        return "Nest"

    # ------------------------------------------------------------------
    # Selection entry points
    # ------------------------------------------------------------------

    def select_cpu_fork(self, task: Task, parent_cpu: int) -> int:
        if self.home_cpu is None:
            # The paper starts reserve searches from the core on which the
            # system call that enabled Nest ran.
            self.home_cpu = parent_cpu
        return self._select(task, start=parent_cpu, is_fork=True)

    def select_cpu_wakeup(self, task: Task, waker_cpu: int) -> int:
        start = task.prev_cpu if task.prev_cpu is not None else waker_cpu
        if self.home_cpu is None:
            self.home_cpu = waker_cpu
        if self.params.impatience_enabled and task.prev_cpu is not None:
            if self._idle(task.prev_cpu):
                task.impatience = 0
            else:
                task.impatience += 1
        return self._select(task, start=start, is_fork=False,
                            waker_cpu=waker_cpu)

    # ------------------------------------------------------------------
    # The §3 search
    # ------------------------------------------------------------------

    def _select(self, task: Task, start: int, is_fork: bool,
                waker_cpu: Optional[int] = None) -> int:
        p = self.params
        self._c_placements.value += 1
        obs = self._obs
        examined = 0

        # §3.3: the first choice is always the attached core, if it is in
        # the primary nest and idle — even if it is compaction-eligible.
        if p.attachment_enabled and not is_fork:
            ac = task.attached_core
            if ac is not None and ac in self.primary and self._idle(ac):
                self._c_attach.value += 1
                task.impatience = 0
                self._finish_placement(0)
                if obs.enabled:
                    obs.emit(self.kernel.engine.now, oev.PLACE_ATTACH,
                             cpu=ac, task=task.tid)
                return ac

        impatient = (p.impatience_enabled
                     and task.impatience >= p.r_impatient and not is_fork)

        if not impatient:
            cpu, n = self._search_primary(start, task, is_fork)
            examined += n
            if cpu is not None:
                self._c_primary.value += 1
                self._finish_placement(examined)
                if obs.enabled:
                    obs.emit(self.kernel.engine.now, oev.PLACE_PRIMARY,
                             cpu=cpu, task=task.tid, value=examined)
                return cpu

        if p.reserve_enabled:
            cpu, n = self._search_reserve(start)
            examined += n
            if cpu is not None:
                self.reserve.discard(cpu)
                self.primary.add(cpu)
                self._c_reserve.value += 1
                if impatient:
                    self._c_impatient.value += 1
                    task.impatience = 0
                self._finish_placement(examined)
                if obs.enabled:
                    now = self.kernel.engine.now
                    kind = oev.PLACE_IMPATIENT if impatient \
                        else oev.PLACE_RESERVE
                    obs.emit(now, kind, cpu=cpu, task=task.tid, value=examined)
                    obs.emit(now, oev.NEST_PROMOTE, cpu=cpu, task=task.tid,
                             value=len(self.primary))
                return cpu

        # Fall back on CFS (with Nest's §3.4 wakeup work conservation).
        self._c_cfs.value += 1
        if is_fork:
            cpu = self._cfs.select_cpu_fork(task, start)
        else:
            target = self._cfs._wake_affine(
                task, start, waker_cpu if waker_cpu is not None else start)
            cpu = self._cfs.select_idle_sibling(
                target,
                all_dies=p.wakeup_work_conservation,
                check_pending=p.placement_flag)

        if impatient:
            # §3.1: the chosen core joins the primary nest directly, to
            # expand it, and the impatience counter resets.
            self.reserve.discard(cpu)
            self.primary.add(cpu)
            self._c_impatient.value += 1
            task.impatience = 0
            if obs.enabled:
                now = self.kernel.engine.now
                obs.emit(now, oev.PLACE_IMPATIENT, cpu=cpu, task=task.tid,
                         value=examined)
                obs.emit(now, oev.NEST_EXPAND, cpu=cpu, task=task.tid,
                         value=len(self.primary))
        elif cpu not in self.primary and cpu not in self.reserve:
            if p.reserve_enabled and len(self.reserve) < p.r_max:
                self.reserve.add(cpu)
            # else: reserve full -> the core joins no nest (§3.1).
        if obs.enabled and not impatient:
            obs.emit(self.kernel.engine.now, oev.PLACE_CFS, cpu=cpu,
                     task=task.tid, value=examined)
        self._finish_placement(examined)
        return cpu

    def _finish_placement(self, examined: int) -> None:
        """Per-placement metric observations (search effort, nest size)."""
        self._h_search.observe(examined)
        self._h_size.observe(len(self.primary))

    def _search_primary(self, start: int, task: Task,
                        is_fork: bool) -> tuple[Optional[int], int]:
        """Idle-core search over the primary nest, same-die first, with
        compaction of stale cores encountered along the way (§3.1).
        Returns (chosen cpu or None, candidates examined)."""
        if not self.primary:
            return None, 0
        p = self.params
        kernel = self.kernel
        topo = kernel.topology
        now = kernel.engine.now
        stale_cutoff_us = int(p.p_remove_ticks * TICK_US)

        start_die = topo.die_of(start)
        same_die = [c for c in self.primary if topo.die_of(c) == start_die]
        other = [c for c in self.primary if topo.die_of(c) != start_die]
        candidates = list(_rotate(tuple(same_die), start)) + sorted(other)

        prefer = []
        if p.prev_core_first and not is_fork and task.prev_cpu is not None \
                and task.prev_cpu in self.primary:
            prefer = [task.prev_cpu]

        examined = 0
        for cpu in prefer + candidates:
            examined += 1
            if not self._idle(cpu):
                continue
            if p.compaction_enabled and cpu not in prefer:
                idle_for = now - kernel.cpu_last_used(cpu)
                if idle_for >= stale_cutoff_us:
                    # §3.1: a task tried to use a stale core -> demote it.
                    self._demote(cpu)
                    continue
            return cpu, examined
        return None, examined

    def _search_reserve(self, start: int) -> tuple[Optional[int], int]:
        """Idle-core search over the reserve nest, same-die-as-start first,
        scanning from the fixed home core to limit dispersal (§3.1).
        Returns (chosen cpu or None, candidates examined)."""
        if not self.reserve:
            return None, 0
        topo = self.kernel.topology
        home = self.home_cpu if self.home_cpu is not None else start
        start_die = topo.die_of(start)
        same_die = [c for c in self.reserve if topo.die_of(c) == start_die]
        other = [c for c in self.reserve if topo.die_of(c) != start_die]
        examined = 0
        for cpu in list(_rotate(tuple(same_die), home)) \
                + list(_rotate(tuple(other), home)):
            examined += 1
            if self._idle(cpu):
                return cpu, examined
        return None, examined

    # ------------------------------------------------------------------
    # Nest maintenance hooks
    # ------------------------------------------------------------------

    def on_enqueue(self, task: Task, cpu: int) -> None:
        """Any cpu that actually receives work is useful: keep nest state
        consistent if the balancer moved a task onto an unnested core."""

    def on_exit_idle(self, cpu: int) -> None:
        """§3.1: a task terminated and left the core idle — the core is no
        longer considered useful and is demoted immediately."""
        if cpu in self.primary and self.kernel.cpu_is_idle(cpu):
            self._demote(cpu, kind=oev.NEST_EXIT_DEMOTE)
            self._c_exit.value += 1

    def on_cpu_offline(self, cpu: int) -> None:
        """Nest repair for a hotplug fault: a vanished core must leave both
        nests immediately, or the primary/reserve searches would keep
        tripping over it.  The eviction is not a compaction — it does not
        touch the placement counters, so the accounting invariant is
        unaffected.  (The kernel scrubs task attachment histories.)"""
        evicted = False
        if cpu in self.primary:
            self.primary.discard(cpu)
            evicted = True
        if cpu in self.reserve:
            self.reserve.discard(cpu)
            evicted = True
        if self.home_cpu == cpu:
            # Reserve scans re-anchor on the next placement's cpu.
            self.home_cpu = None
        if evicted:
            # Lazily created so fault-free runs keep an identical metrics
            # dict (and identical cached results).
            self.metrics.counter("offline_evictions").value += 1
            obs = self._obs
            if obs.enabled:
                obs.emit(self.kernel.engine.now, oev.NEST_OFFLINE_EVICT,
                         cpu=cpu, value=len(self.primary))

    def select_cpu_offline_migration(self, task: Task,
                                     offline_cpu: int) -> Optional[int]:
        """Re-place a task orphaned by a hotplug fault through the normal
        nest search, so the move is counted like any other placement and
        the orphan lands back inside the (repaired) nest when possible."""
        return self._select(task, start=offline_cpu, is_fork=False,
                            waker_cpu=offline_cpu)

    def _demote(self, cpu: int, kind: str = oev.NEST_COMPACT) -> None:
        self.primary.discard(cpu)
        if self.params.reserve_enabled and len(self.reserve) < self.params.r_max:
            self.reserve.add(cpu)
        self._c_compact.value += 1
        obs = self._obs
        if obs.enabled:
            obs.emit(self.kernel.engine.now, kind, cpu=cpu,
                     value=len(self.primary))

    def spin_ticks(self) -> float:
        return self.params.s_max_ticks if self.params.spin_enabled else 0.0

    # ------------------------------------------------------------------

    def _idle(self, cpu: int) -> bool:
        """Idle and not targeted by an in-flight placement (§3.4 flag)."""
        if not self.kernel.cpu_is_idle(cpu):
            return False
        if self.params.placement_flag \
                and self.kernel.rqs[cpu].placement_pending > 0:
            return False
        return True

    def nest_sizes(self) -> tuple[int, int]:
        return len(self.primary), len(self.reserve)
