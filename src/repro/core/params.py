"""Nest parameters (paper Table 1) and feature toggles for the ablations."""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class NestParams:
    """Table 1 values, plus per-feature switches used by §5.2/§5.3 ablations.

    The paper's ablation study multiplies each threshold by 0.5, 2 or 10 and
    removes features one at a time; :meth:`scaled` and the ``*_enabled``
    flags support exactly that.
    """

    #: Ticks before an unused primary-nest core becomes eligible for nest
    #: compaction (Table 1: 2 ticks = 8 ms).
    p_remove_ticks: float = 2.0

    #: Maximum number of cores in the reserve nest (Table 1: 5).
    r_max: int = 5

    #: Successive previous-core placement failures tolerated before a task
    #: turns impatient and the primary nest is expanded (Table 1: 2).
    r_impatient: int = 2

    #: Maximum idle-loop spin duration in ticks (Table 1: 2 ticks = 8 ms).
    s_max_ticks: float = 2.0

    # ---- feature switches (all on in the paper's full system) -------------
    reserve_enabled: bool = True          # §3.1 reserve nest
    compaction_enabled: bool = True       # §3.1 nest compaction
    impatience_enabled: bool = True       # §3.1 impatient tasks
    spin_enabled: bool = True             # §3.2 warm-core spinning
    attachment_enabled: bool = True       # §3.3 task->core attachment
    prev_core_first: bool = True          # §3.3 favour the previous core
    wakeup_work_conservation: bool = True  # §3.4 all-die wakeup search
    placement_flag: bool = True           # §3.4 compare-and-swap flag

    def __post_init__(self) -> None:
        if self.p_remove_ticks < 0 or self.s_max_ticks < 0:
            raise ValueError("negative tick thresholds")
        if self.r_max < 0 or self.r_impatient < 0:
            raise ValueError("negative counters")

    def scaled(self, *, p_remove: float = 1.0, r_max: float = 1.0,
               r_impatient: float = 1.0, s_max: float = 1.0) -> "NestParams":
        """Multiply chosen parameters, as in the §5.2 sensitivity study."""
        return replace(
            self,
            p_remove_ticks=self.p_remove_ticks * p_remove,
            r_max=max(0, round(self.r_max * r_max)),
            r_impatient=max(0, round(self.r_impatient * r_impatient)),
            s_max_ticks=self.s_max_ticks * s_max,
        )

    def without(self, feature: str) -> "NestParams":
        """Disable one named feature (ablation helper).

        Accepts either the bare feature name (``"reserve"``, ``"spin"``,
        ``"wakeup_work_conservation"``...) or the full flag name.
        """
        for flag in (f"{feature}_enabled", feature):
            if hasattr(self, flag) and isinstance(getattr(self, flag), bool):
                return replace(self, **{flag: False})
        raise ValueError(f"unknown feature {feature!r}")


#: The configuration evaluated in the paper.
DEFAULT_PARAMS = NestParams()
