"""Actions that task behaviours can yield, plus synchronisation objects.

A task behaviour is a Python generator.  It yields *action* objects; the
kernel interprets each action and resumes the generator when the action
completes.  ``Fork`` resumes the generator with the child :class:`Task` as
the value of the ``yield`` expression; ``Recv`` resumes with the received
message.

Example::

    def worker(api):
        yield Compute(cycles=5_000_000)     # 5 ms at 1 GHz
        yield Sleep(us=100)
        yield Compute(cycles=1_000_000)

    def parent(api):
        children = []
        for _ in range(4):
            child = yield Fork(worker, name="worker")
            children.append(child)
        yield WaitChildren()
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional


@dataclass(frozen=True)
class Compute:
    """Run on the CPU for ``cycles`` cycles (1000 cycles = 1 µs at 1 GHz)."""

    cycles: float

    def __post_init__(self) -> None:
        if self.cycles < 0:
            raise ValueError("negative compute")


@dataclass(frozen=True)
class Sleep:
    """Block for a fixed duration (timer/IO wait)."""

    us: int

    def __post_init__(self) -> None:
        if self.us < 0:
            raise ValueError("negative sleep")


#: Message the kernel deposits in an RT activation channel when it
#: promotes a cold backup after its primary copy was destroyed.
RT_GO = "rt-go"
#: Message a primary sends on normal completion to retire its backup.
RT_CANCEL = "rt-cancel"


@dataclass(frozen=True)
class RtSpec:
    """Real-time attributes attached to a :class:`Fork`.

    ``deadline_us`` is relative to the fork time; the kernel converts it
    to an absolute deadline on the child.  A *backup* copy names its
    ``primary`` task and the activation ``channel`` the backup blocks on:
    the kernel wires the two copies together and, if the primary is
    destroyed by a core failure, deposits :data:`RT_GO` in the channel to
    promote the backup.
    """

    deadline_us: int
    wcet_cycles: float
    primary: Any = None
    channel: Any = None

    def __post_init__(self) -> None:
        if self.deadline_us <= 0:
            raise ValueError("non-positive deadline")
        if self.wcet_cycles < 0:
            raise ValueError("negative WCET")
        if self.primary is not None and self.channel is None:
            raise ValueError("a backup copy needs an activation channel")


@dataclass(frozen=True)
class Fork:
    """Create a child task running ``behaviour``; yields the child Task."""

    behaviour: Callable[..., Any]
    name: str = "child"
    args: tuple = ()
    rt: Optional[RtSpec] = None


@dataclass(frozen=True)
class WaitChildren:
    """Block until every live child of this task has exited."""


@dataclass(frozen=True)
class WaitTask:
    """Block until a specific task exits."""

    task: Any


@dataclass(frozen=True)
class BarrierWait:
    """Block on a barrier until all parties have arrived."""

    barrier: "Barrier"


@dataclass(frozen=True)
class Send:
    """Deposit a message into a channel, waking one blocked receiver."""

    channel: "Channel"
    message: Any = None


@dataclass(frozen=True)
class Recv:
    """Receive a message from a channel, blocking if empty."""

    channel: "Channel"


@dataclass(frozen=True)
class Yield:
    """Voluntarily release the CPU while staying runnable."""


@dataclass(frozen=True)
class Exit:
    """Terminate the task immediately."""


class Barrier:
    """An N-party reusable barrier.

    The last arriver releases all waiters and continues; the released tasks
    go through normal wakeup placement.
    """

    __slots__ = ("parties", "waiting", "generation")

    def __init__(self, parties: int) -> None:
        if parties < 1:
            raise ValueError("barrier needs at least one party")
        self.parties = parties
        self.waiting: List[Any] = []      # blocked Task objects
        self.generation = 0

    @property
    def n_waiting(self) -> int:
        return len(self.waiting)

    def arrive(self, task: Any) -> Optional[List[Any]]:
        """Register arrival.  Returns the tasks to wake if this completes
        the barrier (the arriver itself is not in the list), else None."""
        if len(self.waiting) + 1 >= self.parties:
            woken = self.waiting
            self.waiting = []
            self.generation += 1
            return woken
        self.waiting.append(task)
        return None


class Channel:
    """An unbounded FIFO message queue with blocking receivers."""

    __slots__ = ("messages", "receivers", "name")

    def __init__(self, name: str = "chan") -> None:
        self.name = name
        self.messages: List[Any] = []
        self.receivers: List[Any] = []    # blocked Task objects, FIFO

    def put(self, message: Any) -> Optional[Any]:
        """Deposit a message.  Returns a receiver task to wake, or None."""
        self.messages.append(message)
        if self.receivers:
            return self.receivers.pop(0)
        return None

    def try_get(self) -> tuple[bool, Any]:
        """Non-blocking receive: (True, msg) or (False, None)."""
        if self.messages:
            return True, self.messages.pop(0)
        return False, None
