"""Per-CPU runqueue.

Ordering follows CFS: the runnable task with the smallest virtual runtime
runs next.  A binary heap keyed on (vruntime, enqueue sequence) replaces the
kernel's red-black tree; removal of arbitrary tasks (for load-balancer
migration) is by lazy invalidation.

The runqueue also carries the signals the placement heuristics read:

* ``busy_avg`` — a PELT average of "this CPU was running something", used by
  schedutil for its frequency request and by CFS's fork path as the "recent
  load" that makes it disfavour recently-used idle cores (§2.1);
* ``blocked_load`` — decaying load contributed by tasks that blocked while
  attached here, which keeps a core looking loaded briefly after its task
  sleeps (the effect that makes CFS scatter forks to long-idle cores);
* ``placement_pending`` — the flag Nest checks with compare-and-swap to
  prevent two concurrent placements choosing the same core (§3.4).
"""

from __future__ import annotations

import heapq
from typing import List, Optional

from .pelt import PELT_MAX, PeltAvg, decay_factor
from .task import Task, TaskState

#: Vruntime credit granted to waking sleepers (Linux's sleeper fairness:
#: half the scheduling latency), letting them preempt long-running tasks.
SLEEPER_BONUS_US = 9_000


class RunQueue:
    """Runnable tasks waiting on one hardware thread."""

    __slots__ = ("cpu", "_heap", "_seq", "_queued", "nr_queued",
                 "min_vruntime", "busy_avg", "blocked_load",
                 "placement_pending", "last_busy_us", "nr_switches",
                 "currently_busy")

    def __init__(self, cpu: int, now: int = 0) -> None:
        self.cpu = cpu
        self._heap: List[tuple[float, int, Task]] = []
        self._seq = 0
        self._queued: set[int] = set()        # tids currently queued
        #: ``len(self._queued)``, maintained eagerly — the placement paths
        #: read it for every candidate cpu, so it must be an attribute.
        self.nr_queued = 0
        self.min_vruntime = 0.0
        self.busy_avg = PeltAvg(now)
        self.blocked_load = PeltAvg(now)
        self.placement_pending = 0    # count of in-flight placements (§3.4)
        self.last_busy_us = 0                 # when the cpu last ran a task
        self.nr_switches = 0
        self.currently_busy = False           # maintained by the kernel

    # ---- queue operations ----------------------------------------------

    def __len__(self) -> int:
        return self.nr_queued

    def push(self, task: Task) -> None:
        if task.tid in self._queued:
            raise RuntimeError(f"{task} already queued on cpu {self.cpu}")
        # CFS clamps a re-entering task's vruntime near min_vruntime so a
        # long sleep does not turn into unbounded credit, but grants a
        # bounded sleeper bonus so wakers can preempt CPU hogs.
        task.vruntime = max(task.vruntime, self.min_vruntime - SLEEPER_BONUS_US)
        heapq.heappush(self._heap, (task.vruntime, self._seq, task))
        self._seq += 1
        self._queued.add(task.tid)
        self.nr_queued += 1

    def pop(self) -> Optional[Task]:
        """Remove and return the leftmost (smallest-vruntime) task."""
        heap = self._heap
        while heap:
            vr, _, task = heapq.heappop(heap)
            if task.tid in self._queued:
                self._queued.discard(task.tid)
                self.nr_queued -= 1
                self.min_vruntime = max(self.min_vruntime, vr)
                return task
        return None

    def peek(self) -> Optional[Task]:
        heap = self._heap
        while heap:
            _, _, task = heap[0]
            if task.tid in self._queued:
                return task
            heapq.heappop(heap)
        return None

    def remove(self, task: Task) -> bool:
        """Remove a specific queued task (load-balancer migration)."""
        if task.tid in self._queued:
            self._queued.discard(task.tid)
            self.nr_queued -= 1
            return True
        return False

    def steal_one(self) -> Optional[Task]:
        """Remove the task best suited for migration (largest vruntime,
        i.e. the one that has waited the least benefit from staying)."""
        candidates = [(vr, seq, t) for vr, seq, t in self._heap
                      if t.tid in self._queued]
        if not candidates:
            return None
        vr, _, task = max(candidates, key=lambda x: (x[0], x[1]))
        self._queued.discard(task.tid)
        self.nr_queued -= 1
        return task

    def queued_tasks(self) -> List[Task]:
        return [t for _, _, t in self._heap if t.tid in self._queued]

    # ---- placement signals ------------------------------------------------

    def load_avg(self, now: int) -> float:
        """Recent-load signal used by CFS fork placement: how busy this CPU
        has been, plus the decaying load of recently blocked tasks.

        This is :meth:`PeltAvg.peek` inlined twice — placement scans call it
        for every candidate cpu and the method-call overhead dominated.
        """
        busy = self.busy_avg
        v = busy.value
        delta = now - busy.last_update_us
        if delta > 0:
            if self.currently_busy:
                y = decay_factor(delta)
                v = v * y + PELT_MAX * (1.0 - y)
            elif v != 0.0:
                v = v * decay_factor(delta)
        blocked = self.blocked_load
        bv = blocked.value
        if bv != 0.0:
            delta = now - blocked.last_update_us
            if delta > 0:
                bv = bv * decay_factor(delta)
        return v + bv

    def util(self, now: int) -> float:
        """Utilisation signal used by schedutil (0..1024)."""
        busy = self.busy_avg
        v = busy.value
        delta = now - busy.last_update_us
        if delta <= 0:
            return v
        if self.currently_busy:
            y = decay_factor(delta)
            return v * y + PELT_MAX * (1.0 - y)
        if v == 0.0:
            return 0.0
        return v * decay_factor(delta)
