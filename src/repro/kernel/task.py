"""Task objects and lifecycle state."""

from __future__ import annotations

import enum
from typing import Any, Generator, List, Optional, Set

from .pelt import PeltAvg


class TaskState(enum.Enum):
    NEW = "new"            # created, not yet enqueued
    RUNNABLE = "runnable"  # on a runqueue, waiting for the CPU
    RUNNING = "running"    # currently on a CPU
    SLEEPING = "sleeping"  # blocked on a timer (Sleep)
    BLOCKED = "blocked"    # blocked on a child, barrier or channel
    EXITED = "exited"


class BlockReason(enum.Enum):
    NONE = "none"
    TIMER = "timer"
    CHILDREN = "children"
    TASK = "task"
    BARRIER = "barrier"
    CHANNEL = "channel"


class Task:
    """A schedulable task driving a behaviour generator.

    The previous-core history (size 2, §3.3 of the paper) and the impatience
    counter (§3.1) live here because they are per-task Nest state; they are
    maintained by the Nest policy and ignored by CFS.
    """

    __slots__ = (
        "tid", "name", "generator", "parent", "children",
        "state", "block_reason", "cpu", "prev_cpu", "core_history",
        "impatience", "remaining_cycles", "vruntime", "pelt",
        "run_start_us", "run_freq_mhz", "last_ran_us", "enqueued_us",
        "completion_event", "sleep_event", "created_us", "exited_us",
        "exec_start_us", "total_cycles", "total_runtime_us", "n_migrations",
        "n_wakeups", "wakeup_latency_us", "resume_value", "waited_by",
        "waiting_for", "util_est",
        "deadline_us", "wcet_cycles", "backup", "backup_of", "rt_channel",
        "rt_activated_us", "rt_killed", "rt_accounted",
    )

    def __init__(
        self,
        tid: int,
        name: str,
        generator: Generator[Any, Any, None],
        parent: Optional["Task"],
        now: int,
    ) -> None:
        self.tid = tid
        self.name = name
        self.generator = generator
        self.parent = parent
        self.children: Set["Task"] = set()
        if parent is not None:
            parent.children.add(self)

        self.state = TaskState.NEW
        self.block_reason = BlockReason.NONE
        self.cpu: Optional[int] = None           # CPU while RUNNING
        self.prev_cpu: Optional[int] = None      # last CPU it ran on
        self.core_history: List[Optional[int]] = [None, None]  # Nest §3.3
        self.impatience = 0                       # Nest §3.1

        self.remaining_cycles = 0.0               # of the current Compute
        self.vruntime = 0.0
        # New tasks start at half utilisation, as Linux's
        # init_entity_runnable_average does: a fresh fork immediately makes
        # schedutil request a mid-range frequency.
        self.pelt = PeltAvg(now, value=512.0)
        self.util_est = 512.0                     # snapshot at last dequeue

        self.run_start_us: Optional[int] = None   # start of current stint
        self.run_freq_mhz = 0                     # freq pricing the stint
        self.last_ran_us = now
        self.enqueued_us: Optional[int] = None

        self.completion_event = None              # engine Event handles
        self.sleep_event = None

        self.created_us = now
        self.exited_us: Optional[int] = None
        self.exec_start_us: Optional[int] = None

        # Statistics.
        self.total_cycles = 0.0
        self.total_runtime_us = 0
        self.n_migrations = 0
        self.n_wakeups = 0
        self.wakeup_latency_us = 0

        self.resume_value: Any = None             # sent into the generator
        self.waited_by: Optional["Task"] = None   # a parent in WaitTask
        self.waiting_for: Optional["Task"] = None

        # Real-time job state (fault-tolerant scheduling; see DESIGN.md §10).
        # ``deadline_us`` is an *absolute* deadline; a task with one set is
        # an RT copy.  A primary copy points at its cold backup via
        # ``backup`` and holds the activation channel; the backup points
        # back via ``backup_of``.
        self.deadline_us: Optional[int] = None
        self.wcet_cycles = 0.0
        self.backup: Optional["Task"] = None
        self.backup_of: Optional["Task"] = None
        self.rt_channel: Any = None
        self.rt_activated_us: Optional[int] = None  # backup promotion time
        self.rt_killed = False                    # destroyed by a core failure
        self.rt_accounted = False                 # job outcome recorded

    # ---- Nest helpers (§3.3 attachment) ----------------------------------

    def record_core(self, cpu: int) -> None:
        """Push ``cpu`` into the 2-deep previous-core history."""
        self.core_history[1] = self.core_history[0]
        self.core_history[0] = cpu

    @property
    def attached_core(self) -> Optional[int]:
        """The core the task is attached to, if the last two runs agree."""
        a, b = self.core_history
        if a is not None and a == b:
            return a
        return None

    # ---- predicates --------------------------------------------------------

    @property
    def alive(self) -> bool:
        return self.state is not TaskState.EXITED

    @property
    def live_children(self) -> List["Task"]:
        return [c for c in self.children if c.alive]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Task({self.tid}:{self.name} {self.state.value} cpu={self.cpu})"
