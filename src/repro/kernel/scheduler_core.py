"""The simulated kernel: context switching, ticks, placement, idle loop.

This module plays the role of ``kernel/sched/core.c`` plus the mechanical
parts of ``fair.c``: running tasks, accounting virtual runtime, handling
ticks, driving behaviour generators, and dispatching fork/wakeup placements
to the selection policy (CFS, Nest or Smove).  Everything frequency-related
is delegated to :class:`repro.hw.freqmodel.FreqModel`; everything
policy-related to :class:`repro.sched.base.SelectionPolicy`.

Key modelling choices (see DESIGN.md):

* Work is measured in cycles with 1000 cycles = 1 µs at 1 GHz, so a core at
  ``f`` MHz retires ``f`` cycles per µs.  Frequency transitions re-price the
  running task's completion event — the mechanism through which placement
  decisions change wall-clock time.
* A placement is two steps, selection then enqueue, separated by a small
  delay (``placement_delay_us``).  During the window the target runqueue is
  marked ``placement_pending``.  Policies that implement the paper's §3.4
  compare-and-swap flag skip pending cores; CFS does not, so simultaneous
  placements can collide and overload a core, exactly as in the paper.
* When a task blocks, the policy may request that the idle loop *spin* for a
  few ticks to keep the core warm (§3.2).  The spin stops early if the
  sibling hyperthread becomes busy or a task is placed on the core.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from ..hw.energy import EnergyMeter
from ..hw.freqmodel import FreqModel
from ..hw.machines import Machine
from ..obs import events as oev
from ..obs.metrics import MetricsRegistry
from ..sim.clock import TICK_US
from ..sim.engine import Engine, SimulationError
from ..sim.events import EventKind
from ..sim.trace import Tracer
from .domains import DomainHierarchy
from .runqueue import RunQueue
from .syscalls import (RT_GO, BarrierWait, Compute, Exit, Fork, Recv, RtSpec,
                       Send, Sleep, WaitChildren, WaitTask, Yield)
from .task import BlockReason, Task, TaskState

#: Bucket edges of the backup recovery-latency histogram (promotion of a
#: cold backup to its exit, in µs).
RT_RECOVERY_EDGES = (50, 100, 200, 500, 1_000, 2_000, 5_000,
                     10_000, 20_000, 50_000)


@dataclass(frozen=True)
class KernelConfig:
    """Tunables of the kernel model (Linux-flavoured defaults)."""

    context_switch_us: int = 3        # direct cost of a context switch
    placement_delay_us: int = 2       # selection -> enqueue window (§3.4)
    #: Throughput of each hyperthread when both threads of a physical core
    #: are running tasks (they share the core's execution units).  A
    #: spinning idle loop does not contend.
    smt_contention_factor: float = 0.62
    sched_latency_us: int = 18_000    # CFS scheduling period
    min_granularity_us: int = 2_250   # minimum timeslice
    wakeup_granularity_us: int = 1_000  # wakeup preemption threshold
    newidle_balance: bool = True      # pull work when a cpu goes idle
    periodic_balance_us: int = 64_000  # periodic load-balance interval
    idle_wake_cost_us: int = 8        # extra latency waking a deep-idle cpu


class TaskAPI:
    """Read-only handle passed to behaviour generators."""

    __slots__ = ("kernel", "task")

    def __init__(self, kernel: "Kernel", task: Task) -> None:
        self.kernel = kernel
        self.task = task

    @property
    def now(self) -> int:
        return self.kernel.engine.now

    def rng(self, name: str):
        return self.kernel.engine.rng.stream(f"task:{name}")


class _CpuState:
    """Per-hardware-thread scheduler state."""

    __slots__ = ("current", "tick_event", "spinning", "spin_event",
                 "stint_start", "vr_last_update")

    def __init__(self) -> None:
        self.current: Optional[Task] = None
        self.tick_event = None
        self.spinning = False
        self.spin_event = None
        self.stint_start = 0
        self.vr_last_update = 0


class Kernel:
    """The simulated OS scheduler core."""

    def __init__(
        self,
        engine: Engine,
        machine: Machine,
        policy: "Any",                 # sched.base.SelectionPolicy
        governor: "Any",               # governors.base.Governor
        config: Optional[KernelConfig] = None,
        tracer: Optional[Tracer] = None,
        energy: Optional[EnergyMeter] = None,
    ) -> None:
        self.engine = engine
        self.machine = machine
        self.topology = machine.topology
        self.config = config or KernelConfig()
        self.policy = policy
        self.governor = governor

        n = self.topology.n_cpus
        self.rqs: List[RunQueue] = [self._make_runqueue(cpu, engine.now)
                                    for cpu in range(n)]
        self.cpus: List[_CpuState] = [_CpuState() for _ in range(n)]
        self.domains = DomainHierarchy(self.topology)
        # Flattened topology maps for the per-event hot paths (the topology
        # is immutable, so these never go stale).
        self.sibling_of = tuple(self.topology.sibling_of(c) for c in range(n))
        self.pc_of = tuple(self.topology.physical_core_of(c) for c in range(n))
        self.smt_siblings_of = tuple(self.topology.smt_siblings(c)
                                     for c in range(n))

        self.tracer = tracer or Tracer(n)
        self.energy = energy or EnergyMeter(self.topology)
        #: Structured-event log (shared with every component via the
        #: engine) and the kernel's always-on metrics registry.
        self.obs = engine.obs
        self.metrics = MetricsRegistry()
        self._h_wakeup_latency = self.metrics.histogram(
            "wakeup_latency_us",
            (1, 2, 5, 10, 20, 50, 100, 200, 500, 1_000, 2_000, 5_000))
        self.freq = self._make_freqmodel(engine, machine, governor)
        self.freq.add_listener(self._on_core_freq_change)

        self.tasks: Dict[int, Task] = {}
        self._next_tid = 1
        self.n_live = 0
        self.n_runnable = 0           # RUNNABLE + RUNNING
        self.stop_when_idle = True

        #: Hotplug state (faults/): placements, idle searches and balancing
        #: all skip offline hardware threads.  Fault metrics counters are
        #: created lazily so clean runs keep a bit-identical metrics dict.
        self.cpu_online: List[bool] = [True] * n
        #: Optional seeded tick perturbation installed by the fault
        #: injector: a callable returning a per-tick offset in µs.
        self.tick_jitter: Optional[Callable[[], int]] = None

        #: Observers notified on runnable-count changes: fn(now, count).
        self.runnable_observers: List[Callable[[int, int], None]] = []

        #: RT (deadline) metrics, created lazily at the first RT fork so
        #: runs without RT tasks keep a bit-identical metrics dict.
        self._rt_c_met = None
        self._rt_c_miss = None
        self._rt_c_activations = None
        self._rt_c_kills = None
        self._rt_h_recovery = None

        governor.bind(self)
        policy.bind(self)

        self._balancer_started = False

    # ---- construction hooks (the fast engine substitutes SoA-backed
    # variants; see repro.sim.fastengine) --------------------------------

    def _make_runqueue(self, cpu: int, now: int) -> RunQueue:
        return RunQueue(cpu, now)

    def _make_freqmodel(self, engine: Engine, machine: Machine,
                        governor: "Any") -> FreqModel:
        return FreqModel(engine, self.topology, machine.turbo,
                         machine.pm, governor)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def spawn(self, behaviour: Callable[..., Any], name: str = "task",
              on_cpu: int = 0, args: tuple = ()) -> Task:
        """Create a root task (e.g. a shell starting a program).

        The task is placed through the policy's fork path, as if forked from
        ``on_cpu``.
        """
        task = self._new_task(behaviour, name, parent=None, args=args)
        self._place_fork(task, parent_cpu=on_cpu)
        return task

    def run_until_idle(self, max_us: Optional[int] = None) -> int:
        """Convenience: run the engine until every task has exited."""
        if not self._balancer_started and self.config.periodic_balance_us > 0:
            self._balancer_started = True
            self.engine.after(self.config.periodic_balance_us,
                              EventKind.BALANCE, self._periodic_balance)
        end = self.engine.run(until=max_us)
        self.tracer.flush(self.engine.now)
        self.energy.advance(self.engine.now)
        return end

    def nr_running(self, cpu: int) -> int:
        """Tasks on the cpu (running + queued)."""
        rq = self.rqs[cpu]
        return rq.nr_queued + (1 if self.cpus[cpu].current is not None else 0)

    def cpu_is_idle(self, cpu: int) -> bool:
        """No task running or queued (a spinning idle loop still counts
        as idle for placement purposes).  An offline cpu is never idle:
        it cannot accept work."""
        return (self.cpu_online[cpu]
                and self.cpus[cpu].current is None
                and self.rqs[cpu].nr_queued == 0)

    def cpu_last_used(self, cpu: int) -> int:
        """Time the cpu last ran a task (now, if currently busy)."""
        if self.cpus[cpu].current is not None:
            return self.engine.now
        return self.rqs[cpu].last_busy_us

    # ------------------------------------------------------------------
    # Hotplug and straggler faults (driven by faults.FaultInjector)
    # ------------------------------------------------------------------

    def least_loaded_online(self, near: int) -> int:
        """Deterministic fallback target: the least loaded online cpu,
        preferring the die of ``near`` (ties break towards low cpu ids)."""
        for span in (self.domains.die_span(near), range(self.topology.n_cpus)):
            best, best_key = None, None
            for c in span:
                if not self.cpu_online[c]:
                    continue
                key = (self.nr_running(c), c)
                if best_key is None or key < best_key:
                    best, best_key = c, key
            if best is not None:
                return best
        raise SimulationError("no online cpus left")

    def set_cpu_offline(self, cpu: int) -> None:
        """Hotplug ``cpu`` out: drain its runqueue, migrate the running
        task, scrub attachment history and let the policy repair itself.

        Mirrors the shape of Linux's ``sched_cpu_deactivate``: the cpu
        stops being a placement target first, then its tasks are pushed
        away.  Orphans are re-placed through the policy (so Nest routes
        them through its nest search and its counters stay consistent) or,
        if the policy abstains, onto the least loaded online cpu.
        """
        if not self.cpu_online[cpu]:
            return
        if sum(self.cpu_online) <= 1:
            raise SimulationError("cannot offline the last online cpu")
        now = self.engine.now
        self.cpu_online[cpu] = False
        cs = self.cpus[cpu]
        if cs.spinning:
            self._stop_spin(cpu)
        self._stop_tick(cpu)

        orphans: List[Task] = []
        curr = cs.current
        if curr is not None:
            self._stop_running(cpu, curr)
            curr.state = TaskState.RUNNABLE
            curr.enqueued_us = now
            orphans.append(curr)
        rq = self.rqs[cpu]
        while True:
            task = rq.pop()
            if task is None:
                break
            orphans.append(task)

        # Forget the dead cpu in every live task's attachment history so
        # orphaned (and merely attached) tasks re-attach to wherever they
        # land next rather than chasing a vanished core (§3.3 under faults).
        for task in self.tasks.values():
            if task.alive:
                hist = task.core_history
                for slot in range(len(hist)):
                    if hist[slot] == cpu:
                        hist[slot] = None

        self.policy.on_cpu_offline(cpu)
        if self.obs.enabled:
            self.obs.emit(now, oev.FAULT_CPU_OFFLINE, cpu=cpu,
                          value=len(orphans))
        if orphans:
            c_orphans = self.metrics.counter("fault_orphan_migrations")
            for task in orphans:
                dst = self.policy.select_cpu_offline_migration(task, cpu)
                if dst is None or not self.cpu_online[dst]:
                    dst = self.least_loaded_online(cpu)
                c_orphans.value += 1
                self._migrate_queued(task, cpu, dst)

    def set_cpu_online(self, cpu: int) -> None:
        """Bring a hotplugged cpu back.  It returns cold: its runqueue's
        ``last_busy_us`` is untouched, so the deep-idle wake cost applies
        to the first task placed there."""
        if self.cpu_online[cpu]:
            return
        self.cpu_online[cpu] = True
        self.policy.on_cpu_online(cpu)
        if self.obs.enabled:
            self.obs.emit(self.engine.now, oev.FAULT_CPU_ONLINE, cpu=cpu)

    def slow_running_task(self, cpu: int, factor: float) -> bool:
        """Straggler fault: inflate the remaining work of the task running
        on ``cpu`` by ``factor``.  Returns False (nothing to slow) if the
        cpu has no priced compute slice in flight."""
        task = self.cpus[cpu].current
        if task is None or task.completion_event is None or factor <= 1.0:
            return False
        now = self.engine.now
        # Bank what has already executed at the old pace, then stretch
        # only the unexecuted remainder.
        elapsed = now - task.run_start_us
        consumed = elapsed * task.run_freq_mhz
        executed = min(task.remaining_cycles, consumed)
        task.remaining_cycles -= executed
        task.total_cycles += executed
        task.remaining_cycles *= factor
        self.engine.cancel(task.completion_event)
        self._price_completion(cpu, task)
        return True

    # ------------------------------------------------------------------
    # Real-time primary/backup re-execution (fault-tolerant scheduling)
    #
    # These helpers are shared verbatim with the fast engine: they only
    # call methods that are themselves mirrored (``_exit_task``,
    # ``_place_wakeup``, ``_runnable_delta``), so both engines take the
    # identical event-and-metric path.  See DESIGN.md §10.
    # ------------------------------------------------------------------

    def _apply_rt_spec(self, task: Task, rt: RtSpec) -> None:
        """Stamp a forked child with its RT attributes and, for a backup
        copy, wire it to its primary and the activation channel."""
        if self._rt_c_met is None:
            m = self.metrics
            self._rt_c_met = m.counter("rt_deadline_met")
            self._rt_c_miss = m.counter("rt_deadline_miss")
            self._rt_c_activations = m.counter("rt_backup_activations")
            self._rt_c_kills = m.counter("rt_kills")
            self._rt_h_recovery = m.histogram("rt_recovery_latency_us",
                                              RT_RECOVERY_EDGES)
        task.wcet_cycles = float(rt.wcet_cycles)
        primary = rt.primary
        if primary is None:
            task.deadline_us = self.engine.now + rt.deadline_us
        else:
            # The backup shares its primary's absolute deadline: both
            # copies belong to one job released at the primary's fork.
            task.deadline_us = (primary.deadline_us
                                if primary.deadline_us is not None
                                else self.engine.now + rt.deadline_us)
            task.backup_of = primary
            primary.backup = task
            primary.rt_channel = rt.channel

    def rt_fail_cpu(self, cpu: int) -> int:
        """Fail-stop semantics of a core-failure fault: destroy every RT
        task copy resident on ``cpu`` (running or queued) before the cpu
        is hotplugged out.  Non-RT tasks survive and are migrated by the
        hotplug path; in-flight placements are redirected when they land.
        Returns the number of copies destroyed."""
        rq = self.rqs[cpu]
        seen = set()
        queued: List[Task] = []
        for item in rq._heap:
            t = item[2]
            if t.tid in rq._queued and t.tid not in seen \
                    and t.deadline_us is not None:
                seen.add(t.tid)
                queued.append(t)
        queued.sort(key=lambda t: t.tid)
        victims: List[Task] = []
        curr = self.cpus[cpu].current
        if curr is not None and curr.deadline_us is not None:
            victims.append(curr)
        victims.extend(queued)
        for task in victims:
            self._rt_kill(task, cpu)
        return len(victims)

    def _rt_kill(self, task: Task, cpu: int) -> None:
        """Destroy one RT copy abruptly (no further execution)."""
        task.rt_killed = True
        self._rt_c_kills.value += 1
        if self.obs.enabled:
            self.obs.emit(self.engine.now, oev.RT_KILL, cpu=cpu,
                          task=task.tid)
        if task.cpu is None:
            # Queued (RUNNABLE) on the failing core: dequeue it first;
            # _exit_task only detaches RUNNING tasks.
            self.rqs[cpu].remove(task)
            self._runnable_delta(-1)
        self._exit_task(task)
        self._rt_handle_death(task, cpu)

    def _rt_handle_death(self, victim: Task, cpu: int) -> None:
        """Recovery after a kill: promote the cold backup, or account a
        deadline miss when no copy is left."""
        now = self.engine.now
        if victim.backup_of is not None:
            primary = victim.backup_of
            if victim.rt_activated_us is not None:
                # The promoted (sole remaining) copy died: the job is lost.
                self._rt_account(primary, met=False)
            # A cold backup died; the primary still runs and accounts for
            # the job itself (its own death re-checks the backup's state).
            return
        backup = victim.backup
        if backup is not None and backup.state is not TaskState.EXITED \
                and backup.rt_activated_us is None:
            backup.rt_activated_us = now
            self._rt_c_activations.value += 1
            if self.obs.enabled:
                self.obs.emit(now, oev.RT_BACKUP_ACTIVATE, cpu=cpu,
                              task=backup.tid, value=victim.tid)
            chan = victim.rt_channel
            receiver = chan.put(RT_GO)
            if receiver is not None:
                ok, msg = chan.try_get()
                if not ok:  # pragma: no cover - put guarantees a message
                    raise SimulationError("rt channel lost a message")
                receiver.resume_value = msg
                self._place_wakeup(receiver, cpu)
            # else: the backup has not reached its Recv yet; it finds the
            # activation message as soon as it does.
            return
        # No live backup to promote: the job is lost at kill time.
        self._rt_account(victim, met=False)

    def _rt_on_exit(self, task: Task) -> None:
        """Deadline accounting at a normal (non-killed) RT task exit."""
        now = self.engine.now
        if task.backup_of is not None:
            if task.rt_activated_us is not None:
                # A promoted backup finished the job.
                self._rt_account(task.backup_of,
                                 met=now <= task.deadline_us,
                                 recovery_us=now - task.rt_activated_us)
            # A cancelled (never-activated) backup retires silently.
            return
        self._rt_account(task, met=now <= task.deadline_us)

    def _rt_account(self, primary: Task, met: bool,
                    recovery_us: Optional[int] = None) -> None:
        """Record one job outcome exactly once (keyed on the primary)."""
        if primary.rt_accounted:
            return
        primary.rt_accounted = True
        now = self.engine.now
        if met:
            self._rt_c_met.value += 1
            if self.obs.enabled:
                self.obs.emit(now, oev.RT_DEADLINE_MET, task=primary.tid,
                              value=primary.deadline_us)
        else:
            self._rt_c_miss.value += 1
            if self.obs.enabled:
                self.obs.emit(now, oev.RT_DEADLINE_MISS, task=primary.tid,
                              value=primary.deadline_us)
        if recovery_us is not None:
            self._rt_h_recovery.observe(recovery_us)

    # ------------------------------------------------------------------
    # Task creation / fork
    # ------------------------------------------------------------------

    def _new_task(self, behaviour: Callable[..., Any], name: str,
                  parent: Optional[Task], args: tuple = ()) -> Task:
        tid = self._next_tid
        self._next_tid += 1
        task = Task(tid, name, None, parent, self.engine.now)
        api = TaskAPI(self, task)
        task.generator = behaviour(api, *args)
        self.tasks[tid] = task
        self.n_live += 1
        return task

    def _place_fork(self, task: Task, parent_cpu: int) -> None:
        cpu = self.policy.select_cpu_fork(task, parent_cpu)
        self._commit_placement(task, cpu, EventKind.FORK)

    def _place_wakeup(self, task: Task, waker_cpu: int) -> None:
        task.n_wakeups += 1
        cpu = self.policy.select_cpu_wakeup(task, waker_cpu)
        self._commit_placement(task, cpu, EventKind.WAKEUP)

    def _commit_placement(self, task: Task, cpu: int, kind: EventKind) -> None:
        """Two-step placement: mark pending, enqueue after a small delay."""
        if not self.cpu_online[cpu]:
            # The policy proposed a dead cpu (e.g. a stale fallback hint
            # while a hotplug fault is in flight): redirect deterministically.
            cpu = self.least_loaded_online(cpu)
            self.metrics.counter("fault_placement_redirects").value += 1
        rq = self.rqs[cpu]
        rq.placement_pending += 1
        task.record_core(cpu)
        if self.obs.enabled:
            self.obs.emit(self.engine.now,
                          oev.SCHED_FORK if kind is EventKind.FORK
                          else oev.SCHED_WAKEUP, cpu=cpu, task=task.tid)
        # The enqueue becomes visible a couple of µs after selection (the
        # §3.4 race window); the cost of waking an idle core out of its
        # C-state is charged to the task's first compute slice instead.
        delay = self.config.placement_delay_us + self.policy.selection_cost_us
        self.engine.after(delay, kind, self._enqueue_placed, (task, cpu))

    def _enqueue_placed(self, task: Task, cpu: int) -> None:
        self.rqs[cpu].placement_pending -= 1
        if task.state is TaskState.EXITED:
            # Destroyed by a core failure while the placement was in
            # flight: the enqueue lands on a corpse and is dropped.
            return
        if not self.cpu_online[cpu]:
            # The cpu was hotplugged out inside the §3.4 placement window:
            # land the task on the least loaded online cpu instead.
            cpu = self.least_loaded_online(cpu)
            task.record_core(cpu)
            self.metrics.counter("fault_placement_redirects").value += 1
        self.enqueue(task, cpu)

    # ------------------------------------------------------------------
    # Enqueue / preemption
    # ------------------------------------------------------------------

    def enqueue(self, task: Task, cpu: int) -> None:
        """Make ``task`` runnable on ``cpu`` and resolve preemption."""
        now = self.engine.now
        if task.state in (TaskState.RUNNING, TaskState.RUNNABLE):
            raise SimulationError(f"enqueue of already-runnable {task}")
        if task.prev_cpu is not None and task.prev_cpu != cpu:
            task.n_migrations += 1
        task.state = TaskState.RUNNABLE
        task.block_reason = BlockReason.NONE
        task.enqueued_us = now
        task.pelt.update(now, False)   # decay utilisation over the block
        self._runnable_delta(+1)

        cs = self.cpus[cpu]
        if cs.spinning:
            self._stop_spin(cpu)
        if cs.current is not None:
            self._account_current(cpu)   # freshen min_vruntime for the clamp
        rq = self.rqs[cpu]
        rq.push(task)
        self.policy.on_enqueue(task, cpu)
        if cs.current is None:
            self._schedule(cpu)
        else:
            self._maybe_preempt(cpu, task)

    def _maybe_preempt(self, cpu: int, new_task: Task) -> None:
        cs = self.cpus[cpu]
        curr = cs.current
        if curr is None:
            return
        if curr.vruntime - new_task.vruntime > self.config.wakeup_granularity_us:
            self._preempt_current(cpu)

    def _preempt_current(self, cpu: int) -> None:
        """Put the running task back on the queue and schedule anew."""
        cs = self.cpus[cpu]
        curr = cs.current
        if curr is None:
            return
        if self.obs.enabled:
            self.obs.emit(self.engine.now, oev.SCHED_PREEMPT, cpu=cpu,
                          task=curr.tid)
        self._stop_running(cpu, curr)
        curr.state = TaskState.RUNNABLE
        curr.enqueued_us = self.engine.now
        self.rqs[cpu].push(curr)
        self._schedule(cpu)

    # ------------------------------------------------------------------
    # The dispatcher
    # ------------------------------------------------------------------

    def _schedule(self, cpu: int, after_block: bool = False) -> None:
        """Pick the next task for ``cpu`` or enter the idle path."""
        cs = self.cpus[cpu]
        if cs.current is not None:
            raise SimulationError(f"_schedule with current on cpu {cpu}")
        rq = self.rqs[cpu]
        while True:
            task = rq.pop()
            if task is None and self.config.newidle_balance:
                task = self._newidle_pull(cpu)
            if task is None:
                self._enter_idle(cpu, after_block)
                return
            if self._run_task(cpu, task):
                return
            # The task blocked or exited instantly; try the next one.

    def _run_task(self, cpu: int, task: Task) -> bool:
        """Install ``task`` on ``cpu``.  Returns False if it immediately
        blocked or exited (the cpu is then still free)."""
        now = self.engine.now
        cs = self.cpus[cpu]
        rq = self.rqs[cpu]
        # A core sitting in a deep idle state pays an exit latency before it
        # can run anything; a spinning or just-vacated core does not.
        deep_idle = (not cs.spinning
                     and now - rq.last_busy_us > self.config.idle_wake_cost_us)
        if cs.spinning:
            self._stop_spin(cpu)

        task.state = TaskState.RUNNING
        task.cpu = cpu
        if task.enqueued_us is not None:
            latency = now - task.enqueued_us
            task.wakeup_latency_us += latency
            task.enqueued_us = None
            self._h_wakeup_latency.observe(latency)
            if self.obs.enabled:
                self.obs.emit(now, oev.SCHED_DISPATCH, cpu=cpu,
                              task=task.tid, value=latency)
        if task.exec_start_us is None:
            task.exec_start_us = now
        cs.current = task
        cs.stint_start = now
        cs.vr_last_update = now
        rq.nr_switches += 1

        self._set_thread_activity(cpu, busy=True)
        self.tracer.begin(cpu, now, self.freq.freq_mhz(cpu), task.tid)
        self._start_tick(cpu)

        # Drive the behaviour until it needs CPU time or leaves the CPU.
        switch_cost = self.config.context_switch_us
        if deep_idle:
            switch_cost += self.config.idle_wake_cost_us
        while True:
            if task.remaining_cycles > 0:
                self._price_completion(cpu, task, extra_us=switch_cost)
                return True
            outcome = self._advance(task)
            if outcome == "compute":
                continue
            if outcome == "yield":
                self._stop_running(cpu, task)
                task.state = TaskState.RUNNABLE
                task.enqueued_us = now
                rq.push(task)
                return False
            # blocked or exited: _advance already detached it from the cpu.
            return False

    def _effective_rate(self, cpu: int) -> float:
        """Cycles retired per µs on ``cpu``: frequency in MHz, scaled down
        when the sibling hyperthread is also running a task."""
        rate = float(self.freq.freq_mhz(cpu))
        sib = self.sibling_of[cpu]
        if sib != cpu and self.cpus[sib].current is not None:
            rate *= self.config.smt_contention_factor
        return rate

    def _price_completion(self, cpu: int, task: Task, extra_us: int = 0) -> None:
        """Schedule the completion event of the current compute slice."""
        now = self.engine.now
        rate = self._effective_rate(cpu)
        if rate <= 0:
            raise SimulationError("zero frequency")
        task.run_start_us = now
        task.run_freq_mhz = rate
        remaining_us = task.remaining_cycles / rate
        delay = max(1, int(remaining_us + 0.999999)) + extra_us
        task.completion_event = self.engine.after(
            delay, EventKind.COMPLETION, self._on_completion, (task,))

    def _reprice_running(self, cpu: int) -> None:
        """Re-price the running task after a rate change (frequency step or
        sibling contention change), banking the cycles already executed."""
        task = self.cpus[cpu].current
        if task is None or task.completion_event is None:
            return
        now = self.engine.now
        elapsed = now - task.run_start_us
        consumed = elapsed * task.run_freq_mhz
        executed = min(task.remaining_cycles, consumed)
        task.remaining_cycles -= executed
        task.total_cycles += executed
        self.engine.cancel(task.completion_event)
        self._price_completion(cpu, task)

    def _on_completion(self, task: Task) -> None:
        """The current compute slice finished."""
        cpu = task.cpu
        if cpu is None or task.state is not TaskState.RUNNING:
            raise SimulationError(f"completion for non-running {task}")
        task.completion_event = None
        now = self.engine.now
        task.total_cycles += task.remaining_cycles
        task.remaining_cycles = 0.0
        self._account_current(cpu)

        cs = self.cpus[cpu]
        while True:
            outcome = self._advance(task)
            if outcome == "compute":
                self._price_completion(cpu, task)
                return
            if outcome == "yield":
                self._stop_running(cpu, task)
                task.state = TaskState.RUNNABLE
                task.enqueued_us = now
                self.rqs[cpu].push(task)
                self._schedule(cpu)
                return
            if outcome == "blocked":
                self._schedule(cpu, after_block=True)
                return
            if outcome == "exited":
                self._schedule(cpu, after_block=False)
                self.policy.on_exit_idle(cpu)
                return
            raise SimulationError(f"unknown outcome {outcome}")

    # ------------------------------------------------------------------
    # Behaviour interpretation
    # ------------------------------------------------------------------

    def _advance(self, task: Task) -> str:
        """Resume the generator; returns 'compute', 'blocked', 'yield' or
        'exited'.  The task must be RUNNING on task.cpu."""
        while True:
            try:
                action = task.generator.send(task.resume_value)
            except StopIteration:
                self._exit_task(task)
                return "exited"
            task.resume_value = None

            if isinstance(action, Compute):
                if action.cycles <= 0:
                    continue
                task.remaining_cycles = float(action.cycles)
                return "compute"

            if isinstance(action, Fork):
                child = self._new_task(action.behaviour, action.name,
                                       parent=task, args=action.args)
                if action.rt is not None:
                    self._apply_rt_spec(child, action.rt)
                self._place_fork(child, parent_cpu=task.cpu)
                task.resume_value = child
                continue

            if isinstance(action, Sleep):
                if action.us <= 0:
                    continue
                self._block(task, BlockReason.TIMER)
                task.sleep_event = self.engine.after(
                    action.us, EventKind.IO, self._timer_wake, (task,))
                return "blocked"

            if isinstance(action, WaitChildren):
                if task.live_children:
                    self._block(task, BlockReason.CHILDREN)
                    return "blocked"
                continue

            if isinstance(action, WaitTask):
                target: Task = action.task
                if target.alive:
                    target.waited_by = task
                    task.waiting_for = target
                    self._block(task, BlockReason.TASK)
                    return "blocked"
                continue

            if isinstance(action, BarrierWait):
                woken = action.barrier.arrive(task)
                if woken is None:
                    self._block(task, BlockReason.BARRIER)
                    return "blocked"
                waker_cpu = task.cpu
                for t in woken:
                    self._place_wakeup(t, waker_cpu)
                continue

            if isinstance(action, Send):
                receiver = action.channel.put(action.message)
                if receiver is not None:
                    ok, msg = action.channel.try_get()
                    if not ok:  # pragma: no cover - put guarantees a message
                        raise SimulationError("channel lost a message")
                    receiver.resume_value = msg
                    self._place_wakeup(receiver, task.cpu)
                continue

            if isinstance(action, Recv):
                ok, msg = action.channel.try_get()
                if ok:
                    task.resume_value = msg
                    continue
                action.channel.receivers.append(task)
                self._block(task, BlockReason.CHANNEL)
                return "blocked"

            if isinstance(action, Yield):
                return "yield"

            if isinstance(action, Exit):
                self._exit_task(task)
                return "exited"

            raise SimulationError(f"unknown action {action!r}")

    # ------------------------------------------------------------------
    # Blocking, waking, exiting
    # ------------------------------------------------------------------

    def _block(self, task: Task, reason: BlockReason) -> None:
        """Detach the RUNNING task from its cpu and mark it blocked."""
        cpu = task.cpu
        if cpu is None:
            raise SimulationError(f"block of off-cpu {task}")
        self._stop_running(cpu, task)
        task.util_est = task.pelt.value     # util_est snapshot at dequeue
        task.state = (TaskState.SLEEPING if reason is BlockReason.TIMER
                      else TaskState.BLOCKED)
        task.block_reason = reason
        self._runnable_delta(-1)
        # Leave a decaying footprint of this task's load on the runqueue
        # (Linux keeps blocked load in the rq averages).
        self.rqs[cpu].blocked_load.update(self.engine.now, False)
        self.rqs[cpu].blocked_load.add(task.pelt.value * 0.5)

    def _timer_wake(self, task: Task) -> None:
        task.sleep_event = None
        if task.state is not TaskState.SLEEPING:
            return
        # Timer wakeups are initiated by the interrupt on the previous cpu.
        waker = task.prev_cpu if task.prev_cpu is not None else 0
        self._place_wakeup(task, waker)

    def _exit_task(self, task: Task) -> None:
        cpu = task.cpu
        if cpu is not None:
            self._stop_running(cpu, task)
            self._runnable_delta(-1)
        task.state = TaskState.EXITED
        task.exited_us = self.engine.now
        self.n_live -= 1
        if task.deadline_us is not None and not task.rt_killed:
            self._rt_on_exit(task)

        parent = task.parent
        if parent is not None and parent.state is TaskState.BLOCKED:
            if (parent.block_reason is BlockReason.CHILDREN
                    and not parent.live_children):
                self._place_wakeup(parent, cpu if cpu is not None else 0)
        waiter = task.waited_by
        if waiter is not None and waiter.state is TaskState.BLOCKED \
                and waiter.block_reason is BlockReason.TASK \
                and waiter.waiting_for is task:
            waiter.waiting_for = None
            self._place_wakeup(waiter, cpu if cpu is not None else 0)

        if self.n_live == 0 and self.stop_when_idle:
            self.engine.stop("workload-complete")

    def _stop_running(self, cpu: int, task: Task) -> None:
        """Common bookkeeping to take the RUNNING task off the cpu."""
        now = self.engine.now
        cs = self.cpus[cpu]
        if cs.current is not task:
            raise SimulationError(f"{task} is not current on cpu {cpu}")
        self._account_current(cpu)
        if task.completion_event is not None:
            # Bank the cycles already executed in this stint.
            elapsed = now - task.run_start_us
            consumed = elapsed * task.run_freq_mhz
            executed = min(task.remaining_cycles, consumed)
            task.remaining_cycles -= executed
            task.total_cycles += executed
            self.engine.cancel(task.completion_event)
            task.completion_event = None
        task.total_runtime_us += now - cs.stint_start
        task.prev_cpu = cpu
        task.cpu = None
        task.last_ran_us = now
        cs.current = None
        self._set_thread_activity(cpu, busy=False)
        self.tracer.end(cpu, now)
        self.rqs[cpu].last_busy_us = now
        # The tick stays armed: it self-cancels at the next firing if the
        # cpu is still idle (periodic ticks, not per-stint ones).

    def _account_current(self, cpu: int) -> None:
        """Charge vruntime and PELT for the running task up to now."""
        cs = self.cpus[cpu]
        curr = cs.current
        now = self.engine.now
        if curr is None:
            return
        delta = now - cs.vr_last_update
        if delta > 0:
            curr.vruntime += delta     # all weights equal (nice 0)
            cs.vr_last_update = now
            rq = self.rqs[cpu]
            rq.min_vruntime = max(rq.min_vruntime, curr.vruntime)
        curr.pelt.update(now, True)

    def _runnable_delta(self, delta: int) -> None:
        self.n_runnable += delta
        now = self.engine.now
        for fn in self.runnable_observers:
            fn(now, self.n_runnable)

    # ------------------------------------------------------------------
    # Idle path and warm-core spinning (§3.2)
    # ------------------------------------------------------------------

    def _enter_idle(self, cpu: int, after_block: bool) -> None:
        cs = self.cpus[cpu]
        spin_ticks = float(self.policy.spin_ticks()) if after_block else 0.0
        if spin_ticks > 0:
            sib = self.sibling_of[cpu]
            sib_busy = sib != cpu and self.cpus[sib].current is not None
            if not sib_busy:
                cs.spinning = True
                if self.obs.enabled:
                    self.obs.emit(self.engine.now, oev.SPIN_START, cpu=cpu)
                self._set_thread_activity(cpu, busy=False, spinning=True)
                self.tracer.begin(cpu, self.engine.now,
                                  self.freq.freq_mhz(cpu), -1, spinning=True)
                cs.spin_event = self.engine.after(
                    int(round(spin_ticks * TICK_US)), EventKind.SPIN_STOP,
                    self._spin_timeout, (cpu,))
                return
        self._set_thread_activity(cpu, busy=False)

    def _spin_timeout(self, cpu: int) -> None:
        cs = self.cpus[cpu]
        cs.spin_event = None
        if cs.spinning:
            self._stop_spin(cpu)

    def _stop_spin(self, cpu: int) -> None:
        cs = self.cpus[cpu]
        if not cs.spinning:
            return
        cs.spinning = False
        if cs.spin_event is not None:
            self.engine.cancel(cs.spin_event)
            cs.spin_event = None
        if self.obs.enabled:
            self.obs.emit(self.engine.now, oev.SPIN_STOP, cpu=cpu)
        self.tracer.end(cpu, self.engine.now)
        self._set_thread_activity(cpu, busy=False)

    # ------------------------------------------------------------------
    # Activity, frequency, energy plumbing
    # ------------------------------------------------------------------

    def _set_thread_activity(self, cpu: int, busy: bool,
                             spinning: bool = False) -> None:
        now = self.engine.now
        rq = self.rqs[cpu]
        rq.busy_avg.update(now, rq.currently_busy)
        rq.currently_busy = busy
        self.freq.set_thread_state(cpu, busy, spinning)
        pc = self.pc_of[cpu]
        self.energy.set_core_active(pc, self.freq.core_is_active(pc), now)
        self.governor.on_activity_change(cpu)
        self.freq.notify_request_change(cpu)
        # The paper's spin stops as soon as the hyperthread gets a task,
        # and the sibling's execution rate changes with this thread's state.
        sib = self.sibling_of[cpu]
        if sib != cpu:
            if busy and self.cpus[sib].spinning:
                self._stop_spin(sib)
            self._reprice_running(sib)

    def _on_core_freq_change(self, physical_core: int, mhz: int) -> None:
        now = self.engine.now
        self.energy.set_core_freq(physical_core, mhz, now)
        if self.obs.enabled:
            self.obs.emit(now, oev.FREQ_STEP, cpu=physical_core, value=mhz)
        for cpu in self.smt_siblings_of[physical_core]:
            self.tracer.freq_change(cpu, now, mhz)
            self._reprice_running(cpu)

    # ------------------------------------------------------------------
    # Ticks
    # ------------------------------------------------------------------

    def _tick_period(self) -> int:
        """Nominal tick period, perturbed by the fault injector's seeded
        jitter when armed (always >= 1 µs)."""
        if self.tick_jitter is None:
            return TICK_US
        return max(1, TICK_US + self.tick_jitter())

    def _start_tick(self, cpu: int) -> None:
        cs = self.cpus[cpu]
        if cs.tick_event is None:
            cs.tick_event = self.engine.after(
                self._tick_period(), EventKind.TICK, self._tick, (cpu,))

    def _stop_tick(self, cpu: int) -> None:
        """Cancel a pending tick (used by tests; the normal path lets the
        tick die by itself when it fires on an idle cpu)."""
        cs = self.cpus[cpu]
        if cs.tick_event is not None:
            self.engine.cancel(cs.tick_event)
            cs.tick_event = None

    def _tick(self, cpu: int) -> None:
        cs = self.cpus[cpu]
        cs.tick_event = None
        curr = cs.current
        if curr is None:
            return
        self._account_current(cpu)
        self.governor.on_tick(cpu)
        self.freq.notify_request_change(cpu)
        self.policy.on_tick(cpu, self.freq.freq_mhz(cpu))

        rq = self.rqs[cpu]
        if rq.nr_queued > 0:
            # Linux's nohz idle-balance kick: a busy tick with waiting
            # tasks prods an idle cpu on the same die to pull.
            self._nohz_kick(cpu)
            nr = rq.nr_queued + 1
            slice_us = max(self.config.sched_latency_us // nr,
                           self.config.min_granularity_us)
            ran = self.engine.now - cs.stint_start
            if ran >= slice_us:
                self._preempt_current(cpu)
                if self.cpus[cpu].current is not None:
                    self._start_tick(cpu)
                return
        cs.tick_event = self.engine.after(
            self._tick_period(), EventKind.TICK, self._tick, (cpu,))

    def _nohz_kick(self, busy_cpu: int) -> None:
        if not self.config.newidle_balance:
            return
        for c in self.domains.die_span(busy_cpu):
            if c != busy_cpu and self.cpu_is_idle(c) \
                    and not self.rqs[c].placement_pending:
                self.engine.after(1, EventKind.BALANCE,
                                  self._idle_pull, (c,))
                return

    def _idle_pull(self, cpu: int) -> None:
        """An idle cpu answering a nohz kick: steal queued work."""
        if not self.cpu_is_idle(cpu):
            return
        task = self._newidle_pull(cpu)
        if task is None:
            return
        while not self._run_task(cpu, task):
            task = self.rqs[cpu].pop() or self._newidle_pull(cpu)
            if task is None:
                self._enter_idle(cpu, after_block=False)
                return

    # ------------------------------------------------------------------
    # Load balancing
    # ------------------------------------------------------------------

    def _newidle_pull(self, cpu: int) -> Optional[Task]:
        """Newly-idle balance: steal a queued task from the busiest rq on
        the same die (CFS's newidle balance rarely crosses the LLC)."""
        die = self.domains.die_span(cpu)
        best, best_n = None, 0
        for other in die:
            if other == cpu:
                continue
            n = self.rqs[other].nr_queued
            if n > best_n:
                best, best_n = other, n
        if best is None or best_n < 1:
            return None
        task = self.rqs[best].steal_one()
        if task is None:
            return None
        task.n_migrations += 1
        if self.obs.enabled:
            self.obs.emit(self.engine.now, oev.SCHED_MIGRATE, cpu=cpu,
                          task=task.tid, value=best)
        return task

    def _periodic_balance(self) -> None:
        """Machine-wide periodic balance: move queued tasks from overloaded
        cpus to idle ones, intra-die first."""
        moved = 0
        for span in ([self.domains.die_span(c * self.topology.cores_per_socket)
                      for c in range(self.topology.n_sockets)]
                     + [tuple(range(self.topology.n_cpus))]):
            moved += self._balance_span(span)
        self.engine.after(self.config.periodic_balance_us,
                          EventKind.BALANCE, self._periodic_balance)

    def _balance_span(self, span) -> int:
        idle = [c for c in span if self.cpu_is_idle(c)
                and not self.rqs[c].placement_pending]
        if not idle:
            return 0
        loaded = sorted((c for c in span if self.rqs[c].nr_queued > 0),
                        key=lambda c: -self.rqs[c].nr_queued)
        moved = 0
        for src in loaded:
            if not idle:
                break
            while self.rqs[src].nr_queued > 0 and idle:
                dst = idle.pop(0)
                task = self.rqs[src].steal_one()
                if task is None:
                    break
                self._migrate_queued(task, src, dst)
                moved += 1
        return moved

    def _migrate_queued(self, task: Task, src: int, dst: int) -> None:
        """Move a queued (RUNNABLE) task from ``src`` to ``dst``."""
        task.prev_cpu = src
        task.n_migrations += 1
        if self.obs.enabled:
            self.obs.emit(self.engine.now, oev.SCHED_MIGRATE, cpu=dst,
                          task=task.tid, value=src)
        cs = self.cpus[dst]
        if cs.spinning:
            self._stop_spin(dst)
        if cs.current is not None:
            self._account_current(dst)
        self.rqs[dst].push(task)
        self.policy.on_enqueue(task, dst)
        if cs.current is None:
            self._schedule(dst)
        else:
            self._maybe_preempt(dst, task)
