"""Linux-style scheduling domains built from the machine topology.

Each CPU is associated with a stack of domains, lowest to highest:

* **SMT** — the hardware threads of its physical core (only on SMT2 machines);
* **MC** (the paper's "die") — every CPU sharing the last-level cache, i.e.
  the socket on all modelled machines;
* **NUMA** — every CPU in the machine (only on multi-socket machines).

Each domain has *groups*: one per child-domain unit.  The CFS fork path walks
down from the highest domain, picking the idlest group at each level (§2.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..hw.topology import Topology


@dataclass(frozen=True)
class Domain:
    """One scheduling domain seen from a particular CPU."""

    name: str                      # "SMT", "MC" or "NUMA"
    level: int                     # 0 = lowest
    span: Tuple[int, ...]          # all CPUs in the domain
    groups: Tuple[Tuple[int, ...], ...]  # partition of span


class DomainHierarchy:
    """Per-CPU domain stacks for one machine."""

    def __init__(self, topology: Topology) -> None:
        self.topology = topology
        self._per_cpu: Dict[int, List[Domain]] = {}
        self._build()

    def _build(self) -> None:
        topo = self.topology
        socket_spans = {s: tuple(sorted(topo.cpus_in_socket(s)))
                        for s in topo.sockets()}
        machine_span = tuple(range(topo.n_cpus))

        for cpu in range(topo.n_cpus):
            stack: List[Domain] = []
            level = 0

            if topo.smt == 2:
                smt_span = tuple(sorted(topo.smt_siblings(cpu)))
                stack.append(Domain(
                    name="SMT", level=level, span=smt_span,
                    groups=tuple((c,) for c in smt_span)))
                level += 1

            socket = topo.socket_of(cpu)
            mc_span = socket_spans[socket]
            if topo.smt == 2:
                mc_groups = tuple(
                    tuple(sorted(topo.smt_siblings(c)))
                    for c in mc_span if topo.thread_of(c) == 0)
            else:
                mc_groups = tuple((c,) for c in mc_span)
            stack.append(Domain(
                name="MC", level=level, span=mc_span, groups=mc_groups))
            level += 1

            if topo.n_sockets > 1:
                numa_groups = tuple(socket_spans[s] for s in topo.sockets())
                stack.append(Domain(
                    name="NUMA", level=level, span=machine_span,
                    groups=numa_groups))

            self._per_cpu[cpu] = stack

    def domains_of(self, cpu: int) -> List[Domain]:
        """Domain stack for ``cpu``, lowest level first."""
        return self._per_cpu[cpu]

    def top_domain(self, cpu: int) -> Domain:
        return self._per_cpu[cpu][-1]

    def llc_domain(self, cpu: int) -> Domain:
        """The die-level (last-level-cache) domain of ``cpu``."""
        for dom in self._per_cpu[cpu]:
            if dom.name == "MC":
                return dom
        raise RuntimeError("no MC domain")  # pragma: no cover

    def die_span(self, cpu: int) -> Tuple[int, ...]:
        return self.llc_domain(cpu).span
