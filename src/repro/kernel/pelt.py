"""PELT-style decaying load/utilisation averages.

Linux's Per-Entity Load Tracking sums geometric series with a 32 ms
half-life.  We use the continuous-time closed form of the same recurrence:
over an interval of length ``d`` in which the entity was running the whole
time, the average converges toward the maximum as::

    avg' = avg * y^d + MAX * (1 - y^d),        y^(32ms) = 1/2

and decays as ``avg' = avg * y^d`` while not running.  This keeps the two
properties the paper's analysis relies on: a core that has been busy recently
has high load/utilisation that decays slowly (so CFS disfavours it at fork
time and schedutil requests a high frequency), and a freshly-started task has
*low* utilisation (so schedutil starts it slow on a cold core).
"""

from __future__ import annotations

import math

#: Magnitude used by Linux for a fully-utilised entity.
PELT_MAX = 1024

#: Half-life of the decaying average, in microseconds (Linux: 32 ms).
HALFLIFE_US = 32_000

_LN2_OVER_HL = math.log(2.0) / HALFLIFE_US

#: Memo of delta -> y^delta.  Simulation deltas repeat heavily (tick
#: periods, ramp intervals, slice lengths), so the exp() is computed once
#: per distinct delta.  Bounded so pathological workloads cannot leak.
_DECAY_CACHE: dict = {}
_DECAY_CACHE_MAX = 1 << 16
_exp = math.exp


def decay_factor(delta_us: int) -> float:
    """The factor y^delta by which an average decays over ``delta_us``."""
    if delta_us <= 0:
        return 1.0
    y = _DECAY_CACHE.get(delta_us)
    if y is None:
        if len(_DECAY_CACHE) >= _DECAY_CACHE_MAX:
            _DECAY_CACHE.clear()
        y = _exp(-_LN2_OVER_HL * delta_us)
        _DECAY_CACHE[delta_us] = y
    return y


class PeltAvg:
    """A single decaying average in [0, PELT_MAX].

    Updated lazily: callers invoke :meth:`update` with the current time and
    whether the entity was running *since the last update*.
    """

    __slots__ = ("value", "last_update_us")

    def __init__(self, now: int = 0, value: float = 0.0) -> None:
        self.value = value
        self.last_update_us = now

    def update(self, now: int, running: bool) -> float:
        """Advance the average to ``now``; returns the new value.

        Decay is lazy: a zero average stays zero without touching the
        decay table (the common case for long-idle cores).
        """
        delta = now - self.last_update_us
        if delta > 0:
            if running:
                y = decay_factor(delta)
                self.value = self.value * y + PELT_MAX * (1.0 - y)
            elif self.value != 0.0:
                self.value = self.value * decay_factor(delta)
            self.last_update_us = now
        return self.value

    def peek(self, now: int, running: bool = False) -> float:
        """Value the average would have at ``now`` without mutating."""
        delta = now - self.last_update_us
        if delta <= 0:
            return self.value
        if running:
            y = decay_factor(delta)
            return self.value * y + PELT_MAX * (1.0 - y)
        if self.value == 0.0:
            return 0.0
        return self.value * decay_factor(delta)

    def add(self, amount: float) -> None:
        """Add a contribution (e.g. blocked load of a departing task)."""
        self.value = min(PELT_MAX, self.value + amount)

    def remove(self, amount: float) -> None:
        """Remove a contribution, clamping at zero."""
        self.value = max(0.0, self.value - amount)
