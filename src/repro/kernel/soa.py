"""Struct-of-arrays state tables for the simulation hot paths.

The reference engine keeps its state on objects (``Task``, ``RunQueue``,
``_CpuState``, ``_CoreState``): idiomatic, debuggable, and the bit-identity
baseline.  The fast engine (:mod:`repro.sim.fastengine`) keeps the *hot*
scalar fields in the flat, preallocated, integer-indexed columns defined
here, so its placement scans and accounting loops do ``col[cpu]`` — one
C-level list index — instead of ``kernel.rqs[cpu].attr`` attribute chains.

Both engines implement the narrow :class:`EngineState` protocol:

* the fast kernel's tables (:class:`SoAState`) are *live* — every fused
  hot-path method dual-writes the object attribute (so shared, unfused
  code keeps working) and the column (so fused readers see fresh values);
* the reference kernel materialises a :class:`RefStateView` on demand —
  a snapshot built from its objects, used by parity tests and debugging,
  never on the reference hot path.

Adding a field to the SoA tables (see DESIGN.md §"Engine backends"):

1. add the column to :class:`SoAState.__init__` (preallocated, one slot
   per cpu / physical core, or a growable per-task list seeded for tid 0);
2. add it to :class:`EngineState`'s documented columns and to
   :meth:`RefStateView.capture` so both engines stay protocol-complete;
3. dual-write it from every fused method that mutates the corresponding
   object attribute — the dual-engine fuzz gate (``verify fuzz``) convicts
   a forgotten write as a parity divergence.

The optional numpy layer (:class:`NumpyState`) mirrors nothing eagerly:
it vectorises *whole-span scans* (idle-cpu searches over synthetic
many-core topologies) by building masks from the authoritative list
columns, and only when the span is wide enough to amortise array
construction (``NUMPY_SPAN_CUTOFF``).  On the paper's 48–88-thread
machines the stdlib loops win; the numpy path is aimed at the roadmap's
128–512-core synthetic topologies.  All vectorised scans are over
integer/boolean columns only — float comparisons stay scalar so results
are bit-identical with and without numpy.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Protocol, Tuple, runtime_checkable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .scheduler_core import Kernel

try:  # Optional acceleration; everything below works without it.
    import numpy as _np
except Exception:  # pragma: no cover - exercised on numpy-less installs
    _np = None

#: Spans narrower than this are scanned with plain loops even under
#: :class:`NumpyState` — mask construction costs more than it saves.
NUMPY_SPAN_CUTOFF = 64


def numpy_available() -> bool:
    """True when the optional numpy acceleration layer can be used."""
    return _np is not None


@runtime_checkable
class EngineState(Protocol):
    """The narrow table protocol both simulation backends implement.

    Per-hardware-thread columns (length ``n_cpus``):

    * ``nr_queued``   — tasks queued on the runqueue (``RunQueue.nr_queued``)
    * ``running``     — 1 when a task is installed (``_CpuState.current``)
    * ``pending``     — in-flight §3.4 placements (``placement_pending``)
    * ``online``      — 1 unless hotplugged out (``Kernel.cpu_online``)
    * ``last_busy``   — when the cpu last ran a task (``last_busy_us``)
    * ``busy_now``    — 1 while a task is running (``currently_busy``)
    * ``busy_val``/``busy_ts``       — the runqueue busy PELT average
    * ``blocked_val``/``blocked_ts`` — the runqueue blocked-load average

    Per-physical-core columns (length ``n_physical_cores``):

    * ``core_mhz``    — current DVFS frequency of the core

    Per-task columns (index = tid; slot 0 unused, grown by ``add_task``):

    * ``t_vruntime``  — CFS virtual runtime
    * ``t_pelt_val``/``t_pelt_ts`` — the task's PELT utilisation average
    * ``t_remaining`` — unexecuted cycles of the current compute slice
    """

    n_cpus: int
    n_physical_cores: int

    nr_queued: List[int]
    running: List[int]
    pending: List[int]
    online: List[int]
    last_busy: List[int]
    busy_now: List[int]
    busy_val: List[float]
    busy_ts: List[int]
    blocked_val: List[float]
    blocked_ts: List[int]

    core_mhz: List[int]

    t_vruntime: List[float]
    t_pelt_val: List[float]
    t_pelt_ts: List[int]
    t_remaining: List[float]

    def add_task(self, now: int) -> int:
        """Append one task row; returns its tid (row index)."""
        ...  # pragma: no cover - protocol

    def first_idle(self, order: Tuple[int, ...], check_pending: bool,
                   limit: Optional[int] = None) -> int:
        """First cpu in ``order`` that is online, idle and (optionally)
        free of pending placements; -1 if none within ``limit``."""
        ...  # pragma: no cover - protocol


class SoAState:
    """Preallocated struct-of-arrays state (stdlib lists of scalars).

    Plain Python lists beat both ``array.array`` and numpy arrays for the
    single-element reads that dominate the fast engine: a list hands back
    its cached int/float objects, while typed arrays must box a fresh
    object per read.  The layout is still struct-of-arrays — each field is
    one flat column indexed by cpu/core/tid — which is what makes the
    fused scans cache-friendly and index-addressed.
    """

    __slots__ = (
        "n_cpus", "n_physical_cores",
        "nr_queued", "running", "pending", "online", "last_busy",
        "busy_now", "busy_val", "busy_ts", "blocked_val", "blocked_ts",
        "core_mhz",
        "t_vruntime", "t_pelt_val", "t_pelt_ts", "t_remaining",
    )

    def __init__(self, n_cpus: int, n_physical_cores: int,
                 now: int = 0, min_mhz: int = 0) -> None:
        self.n_cpus = n_cpus
        self.n_physical_cores = n_physical_cores

        self.nr_queued = [0] * n_cpus
        self.running = [0] * n_cpus
        self.pending = [0] * n_cpus
        self.online = [1] * n_cpus
        self.last_busy = [0] * n_cpus
        self.busy_now = [0] * n_cpus
        self.busy_val = [0.0] * n_cpus
        self.busy_ts = [now] * n_cpus
        self.blocked_val = [0.0] * n_cpus
        self.blocked_ts = [now] * n_cpus

        self.core_mhz = [min_mhz] * n_physical_cores

        # Per-task columns: slot 0 is a sentinel so tid == row index.
        self.t_vruntime = [0.0]
        self.t_pelt_val = [0.0]
        self.t_pelt_ts = [0]
        self.t_remaining = [0.0]

    def add_task(self, now: int) -> int:
        """Append one task row (tids are dense and start at 1)."""
        tid = len(self.t_vruntime)
        self.t_vruntime.append(0.0)
        # Linux's init_entity_runnable_average: forks start at half util.
        self.t_pelt_val.append(512.0)
        self.t_pelt_ts.append(now)
        self.t_remaining.append(0.0)
        return tid

    def first_idle(self, order: Tuple[int, ...], check_pending: bool,
                   limit: Optional[int] = None) -> int:
        online = self.online
        running = self.running
        nrq = self.nr_queued
        pend = self.pending
        n = len(order) if limit is None else min(limit, len(order))
        for i in range(n):
            c = order[i]
            if online[c] and not running[c] and not nrq[c] \
                    and not (check_pending and pend[c]):
                return c
        return -1


class NumpyState(SoAState):
    """SoA tables with numpy-vectorised wide scans.

    The authoritative columns stay plain lists (dual-written by the fused
    kernel exactly as for :class:`SoAState`); numpy enters only for scans
    over spans of at least :data:`NUMPY_SPAN_CUTOFF` cpus, where a
    fromiter + boolean-mask pass beats the Python loop.  Only integer
    columns are vectorised, so the selected cpu — first match in scan
    order — is identical to the loop's choice, bit for bit.
    """

    __slots__ = ()

    def first_idle(self, order: Tuple[int, ...], check_pending: bool,
                   limit: Optional[int] = None) -> int:
        n = len(order) if limit is None else min(limit, len(order))
        if n < NUMPY_SPAN_CUTOFF:
            return SoAState.first_idle(self, order, check_pending, limit)
        idx = _np.fromiter(order[:n], dtype=_np.intp, count=n)
        online = _np.fromiter(self.online, dtype=_np.int8,
                              count=self.n_cpus)[idx]
        busy = _np.fromiter(self.running, dtype=_np.int8,
                            count=self.n_cpus)[idx]
        queued = _np.fromiter(self.nr_queued, dtype=_np.int64,
                              count=self.n_cpus)[idx]
        mask = (online != 0) & (busy == 0) & (queued == 0)
        if check_pending:
            pend = _np.fromiter(self.pending, dtype=_np.int64,
                                count=self.n_cpus)[idx]
            mask &= pend == 0
        hits = _np.flatnonzero(mask)
        if hits.size == 0:
            return -1
        return int(idx[hits[0]])


class RefStateView(SoAState):
    """The reference engine's :class:`EngineState` implementation.

    A snapshot materialised from the object graph (``RunQueue``,
    ``_CpuState``, ``Task``, ``FreqModel``) — used by parity tests to
    compare both engines' views of the world and by debugging tooling.
    Never used on the reference hot path, so it carries no upkeep cost.
    """

    __slots__ = ()

    @classmethod
    def capture(cls, kernel: "Kernel") -> "RefStateView":
        topo = kernel.topology
        view = cls(topo.n_cpus, topo.n_physical_cores, now=0,
                   min_mhz=kernel.machine.min_mhz)
        for cpu in range(topo.n_cpus):
            rq = kernel.rqs[cpu]
            cs = kernel.cpus[cpu]
            view.nr_queued[cpu] = rq.nr_queued
            view.running[cpu] = 0 if cs.current is None else 1
            view.pending[cpu] = rq.placement_pending
            view.online[cpu] = 1 if kernel.cpu_online[cpu] else 0
            view.last_busy[cpu] = rq.last_busy_us
            view.busy_now[cpu] = 1 if rq.currently_busy else 0
            view.busy_val[cpu] = rq.busy_avg.value
            view.busy_ts[cpu] = rq.busy_avg.last_update_us
            view.blocked_val[cpu] = rq.blocked_load.value
            view.blocked_ts[cpu] = rq.blocked_load.last_update_us
        for pc in range(topo.n_physical_cores):
            view.core_mhz[pc] = kernel.freq.core_freq_mhz(pc)
        for tid in sorted(kernel.tasks):
            row = view.add_task(0)
            assert row == tid, "task rows must be dense and tid-indexed"
            task = kernel.tasks[tid]
            view.t_vruntime[tid] = task.vruntime
            view.t_pelt_val[tid] = task.pelt.value
            view.t_pelt_ts[tid] = task.pelt.last_update_us
            view.t_remaining[tid] = task.remaining_cycles
        return view


def make_state(n_cpus: int, n_physical_cores: int, now: int = 0,
               min_mhz: int = 0, use_numpy: Optional[bool] = None) -> SoAState:
    """Build the fast engine's live state tables.

    ``use_numpy=None`` auto-selects: numpy when importable, stdlib
    otherwise.  Requesting numpy explicitly without numpy installed is an
    error — callers that want the friendly fallback pass ``None`` and
    print their own notice (see ``repro.experiments.runner``).
    """
    if use_numpy is None:
        use_numpy = numpy_available()
    if use_numpy and _np is None:
        raise RuntimeError("numpy acceleration requested but numpy is "
                           "not installed (pip install 'repro[fast]')")
    cls = NumpyState if use_numpy else SoAState
    return cls(n_cpus, n_physical_cores, now=now, min_mhz=min_mhz)
