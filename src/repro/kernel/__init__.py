"""OS kernel substrate: tasks, runqueues, domains, the scheduler core."""

from .domains import Domain, DomainHierarchy
from .pelt import HALFLIFE_US, PELT_MAX, PeltAvg, decay_factor
from .runqueue import RunQueue, SLEEPER_BONUS_US
from .scheduler_core import Kernel, KernelConfig, TaskAPI
from .syscalls import (Barrier, BarrierWait, Channel, Compute, Exit, Fork,
                       Recv, Send, Sleep, WaitChildren, WaitTask, Yield)
from .task import BlockReason, Task, TaskState

__all__ = [
    "Domain", "DomainHierarchy",
    "PeltAvg", "PELT_MAX", "HALFLIFE_US", "decay_factor",
    "RunQueue", "SLEEPER_BONUS_US",
    "Kernel", "KernelConfig", "TaskAPI",
    "Barrier", "BarrierWait", "Channel", "Compute", "Exit", "Fork",
    "Recv", "Send", "Sleep", "WaitChildren", "WaitTask", "Yield",
    "BlockReason", "Task", "TaskState",
]
