"""Seeded fault injection ("chaos") for simulated runs.

The paper's model assumes a stable machine: cores never disappear,
frequencies follow the turbo model, every run completes.  This package
drops that assumption *deterministically*: a :class:`FaultConfig` plus the
run's seed derive a :class:`FaultPlan` (the exact times, targets and
parameters of every fault) from the simulation's named RNG streams, and a
:class:`FaultInjector` replays the plan through the engine's event queue.
The same seed and the same config therefore always produce a bit-identical
:class:`~repro.metrics.summary.RunResult` — chaos you can put in a result
cache and diff.

Fault families (see DESIGN.md, "Fault model"):

* **Core hotplug** — a hardware thread goes offline for a while: its
  runqueue is drained, the running task is migrated, the Nest policy
  repairs its nests (offline eviction, attachment scrubbing).
* **Thermal capping** — a physical core's frequency is clamped below the
  turbo model's ceiling for a while, as firmware does under thermal
  pressure.
* **Timer-tick jitter** — scheduler ticks fire early or late by a bounded,
  seeded offset, perturbing preemption and tick-driven governors.
* **Stragglers** — a running task's remaining work is inflated by a
  factor, modelling interference invisible to the scheduler.
"""

from .plan import (FAULT_PROFILES, FaultConfig, FaultPlan, FaultSpec,
                   fault_profile)
from .injector import FaultInjector

__all__ = [
    "FAULT_PROFILES", "FaultConfig", "FaultPlan", "FaultSpec",
    "FaultInjector", "fault_profile",
]
