"""Replays a :class:`~repro.faults.plan.FaultPlan` against a kernel.

The injector is the only piece of the chaos subsystem with side effects:
it schedules one engine event per planned fault (priority class CONTROL,
so faults at time *t* apply after the scheduler's own work at *t*) and
translates each :class:`FaultSpec` into the matching kernel / frequency
model operation.  Guard rails keep plans safe on any machine: a hotplug
fault never takes the online cpu count below ``min_online_cpus``, and a
straggler targeting an idle cpu is skipped rather than retargeted (both
are counted, so a run reports what was skipped).

All bookkeeping lands in the kernel's metrics registry under ``fault_*``
and in the structured event log under ``fault.*``, so faulted runs are
observable through the existing obs pipeline.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..obs import events as oev
from ..sim.events import EventKind
from .plan import (KIND_CORE_FAILURE, KIND_CPU_OFFLINE, KIND_STRAGGLER,
                   KIND_THERMAL_CAP, FaultConfig, FaultPlan, FaultSpec)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..kernel.scheduler_core import Kernel


class FaultInjector:
    """Binds a fault plan to one kernel and schedules its application."""

    def __init__(self, kernel: "Kernel", plan: FaultPlan,
                 config: FaultConfig) -> None:
        self.kernel = kernel
        self.plan = plan
        self.config = config
        m = kernel.metrics
        self._c_offline = m.counter("fault_cpu_offline")
        self._c_online = m.counter("fault_cpu_online")
        self._c_offline_skipped = m.counter("fault_offline_skipped")
        self._c_thermal = m.counter("fault_thermal_caps")
        self._c_straggler = m.counter("fault_stragglers")
        self._c_straggler_skipped = m.counter("fault_straggler_skipped")
        self._c_corefail = m.counter("fault_core_failures")
        self._c_corefail_skipped = m.counter("fault_core_failure_skipped")
        #: Generation counter per physical core so an overlapping thermal
        #: cap extends rather than truncates (a stale clear is a no-op).
        self._thermal_gen = [0] * kernel.topology.n_physical_cores

    # ------------------------------------------------------------------

    def install(self) -> int:
        """Schedule every planned fault; returns how many were scheduled."""
        engine = self.kernel.engine
        for spec in self.plan.specs:
            engine.at(spec.at_us, EventKind.CONTROL, self._apply, (spec,))
        if self.plan.tick_jitter_us > 0:
            self._arm_tick_jitter()
        return len(self.plan.specs)

    # ------------------------------------------------------------------

    def _apply(self, spec: FaultSpec) -> None:
        if spec.kind == KIND_CPU_OFFLINE:
            self._apply_hotplug(spec)
        elif spec.kind == KIND_THERMAL_CAP:
            self._apply_thermal(spec)
        elif spec.kind == KIND_STRAGGLER:
            self._apply_straggler(spec)
        elif spec.kind == KIND_CORE_FAILURE:
            self._apply_core_failure(spec)
        else:  # pragma: no cover - plan generation owns the vocabulary
            raise ValueError(f"unknown fault kind {spec.kind!r}")

    def _apply_hotplug(self, spec: FaultSpec) -> None:
        kernel = self.kernel
        cpu = spec.target
        online = sum(kernel.cpu_online)
        if not kernel.cpu_online[cpu] \
                or online <= self.config.min_online_cpus:
            self._c_offline_skipped.value += 1
            return
        self._c_offline.value += 1
        kernel.set_cpu_offline(cpu)
        kernel.engine.after(max(1, spec.duration_us), EventKind.CONTROL,
                            self._bring_online, (cpu,))

    def _bring_online(self, cpu: int) -> None:
        if not self.kernel.cpu_online[cpu]:
            self._c_online.value += 1
            self.kernel.set_cpu_online(cpu)

    def _apply_thermal(self, spec: FaultSpec) -> None:
        kernel = self.kernel
        pc = spec.target
        self._c_thermal.value += 1
        self._thermal_gen[pc] += 1
        kernel.freq.set_thermal_cap(pc, spec.value)
        if kernel.obs.enabled:
            kernel.obs.emit(kernel.engine.now, oev.FAULT_THERMAL_CAP,
                            cpu=pc, value=spec.value)
        kernel.engine.after(max(1, spec.duration_us), EventKind.CONTROL,
                            self._clear_thermal, (pc, self._thermal_gen[pc]))

    def _clear_thermal(self, pc: int, gen: int) -> None:
        if self._thermal_gen[pc] != gen:
            return    # a newer cap superseded this one
        kernel = self.kernel
        kernel.freq.set_thermal_cap(pc, None)
        if kernel.obs.enabled:
            kernel.obs.emit(kernel.engine.now, oev.FAULT_THERMAL_CLEAR,
                            cpu=pc)

    def _apply_core_failure(self, spec: FaultSpec) -> None:
        """Fail-stop failure: resident RT copies die, the thread goes cold.

        Unlike a hotplug (which migrates everything off), a core failure
        first *destroys* deadline-carrying task copies on the thread —
        that is what the primary/backup machinery exists to survive — and
        only then offlines it, migrating whatever non-RT work remains.
        """
        kernel = self.kernel
        cpu = spec.target
        online = sum(kernel.cpu_online)
        if not kernel.cpu_online[cpu] \
                or online <= self.config.min_online_cpus:
            self._c_corefail_skipped.value += 1
            return
        self._c_corefail.value += 1
        killed = kernel.rt_fail_cpu(cpu)
        kernel.set_cpu_offline(cpu)
        if kernel.obs.enabled:
            kernel.obs.emit(kernel.engine.now, oev.FAULT_CORE_FAILURE,
                            cpu=cpu, value=killed)
        kernel.engine.after(max(1, spec.duration_us), EventKind.CONTROL,
                            self._bring_online, (cpu,))

    def _apply_straggler(self, spec: FaultSpec) -> None:
        kernel = self.kernel
        factor = spec.value / 100.0
        if kernel.slow_running_task(spec.target, factor):
            self._c_straggler.value += 1
            if kernel.obs.enabled:
                kernel.obs.emit(kernel.engine.now, oev.FAULT_STRAGGLER,
                                cpu=spec.target,
                                task=kernel.cpus[spec.target].current.tid,
                                value=spec.value)
        else:
            self._c_straggler_skipped.value += 1

    # ------------------------------------------------------------------

    def _arm_tick_jitter(self) -> None:
        kernel = self.kernel
        jitter = self.plan.tick_jitter_us
        rng = kernel.engine.rng.stream(self.plan.jitter_seed_name)
        # Keep perturbed periods strictly positive whatever the config.
        from ..sim.clock import TICK_US
        lo = -min(jitter, TICK_US - 1)

        def draw() -> int:
            return rng.randint(lo, jitter)

        kernel.tick_jitter = draw
        if kernel.obs.enabled:
            kernel.obs.emit(0, oev.FAULT_JITTER_ON, value=jitter)
