"""Fault configuration and deterministic plan generation.

A :class:`FaultConfig` is a frozen, picklable description of *how much*
chaos to inject (rates, durations, magnitudes).  It rides on a
:class:`~repro.experiments.parallel.RunSpec` and is mixed into the result
cache's content address, so a faulted run never collides with a clean one.

A :class:`FaultPlan` is the expansion of a config into concrete
:class:`FaultSpec` records — *when*, *where*, *what* — drawn from the
run's :class:`~repro.sim.rng.RngRegistry` streams.  Streams are named per
fault family (``faults:hotplug`` etc.), so enabling one family never
perturbs the draw sequence of another, and the whole plan is a pure
function of (base seed, config, machine shape).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

from ..sim.rng import RngRegistry

#: Fault kinds carried by FaultSpec.kind.
KIND_CPU_OFFLINE = "cpu_offline"
KIND_THERMAL_CAP = "thermal_cap"
KIND_STRAGGLER = "straggler"
KIND_CORE_FAILURE = "core_failure"


@dataclass(frozen=True)
class FaultConfig:
    """Tunables of the chaos subsystem (all families off by default).

    Rates are events per simulated second over ``[0, horizon_us)``; the
    event *count* of each family is ``round(rate * horizon_s)``, so it is
    deterministic and independent of the run's actual makespan.
    """

    #: Core hotplug: hardware threads taken offline, then brought back.
    hotplug_rate_per_s: float = 0.0
    hotplug_downtime_us: int = 80_000
    #: Never offline below this many online hardware threads.
    min_online_cpus: int = 2

    #: Thermal capping of physical cores.
    thermal_rate_per_s: float = 0.0
    thermal_duration_us: int = 150_000
    #: Cap as a fraction of the machine's nominal frequency.
    thermal_cap_ratio: float = 0.6

    #: Timer-tick jitter: each tick period is perturbed by a seeded offset
    #: drawn uniformly from [-tick_jitter_us, +tick_jitter_us].
    tick_jitter_us: int = 0

    #: Stragglers: a running task's remaining work is multiplied.
    straggler_rate_per_s: float = 0.0
    straggler_factor: float = 4.0

    #: Correlated core failures: each event is a *burst* of fail-stop
    #: failures of hardware threads drawn from one socket (threads fail
    #: together because they share a power rail / cooling domain).  RT
    #: task copies resident on a failed thread are destroyed, not
    #: migrated; the thread comes back cold after the downtime.
    core_failure_rate_per_s: float = 0.0
    #: Hardware threads failed per correlated burst.
    core_failure_burst: int = 2
    #: k-of-n failure budget: total thread failures the plan may contain
    #: (0 = unlimited).
    core_failure_budget: int = 0
    core_failure_downtime_us: int = 120_000

    #: Faults are generated within [1, horizon_us].
    horizon_us: int = 2_000_000

    def __post_init__(self) -> None:
        if self.horizon_us <= 0:
            raise ValueError("horizon_us must be positive")
        if self.straggler_factor < 1.0:
            raise ValueError("straggler_factor must be >= 1.0")
        if not 0.0 < self.thermal_cap_ratio <= 1.0:
            raise ValueError("thermal_cap_ratio must be in (0, 1]")
        if self.min_online_cpus < 1:
            raise ValueError("min_online_cpus must be >= 1")
        if self.core_failure_burst < 1:
            raise ValueError("core_failure_burst must be >= 1")
        if self.core_failure_budget < 0:
            raise ValueError("core_failure_budget must be >= 0")
        if self.core_failure_downtime_us < 0:
            raise ValueError("core_failure_downtime_us must be >= 0")

    @property
    def enabled(self) -> bool:
        """True when any fault family is switched on."""
        return (self.hotplug_rate_per_s > 0.0
                or self.thermal_rate_per_s > 0.0
                or self.tick_jitter_us > 0
                or self.straggler_rate_per_s > 0.0
                or self.core_failure_rate_per_s > 0.0)

    def as_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)


#: Named profiles the CLI exposes via ``--faults``.
FAULT_PROFILES: Dict[str, FaultConfig] = {
    "none": FaultConfig(),
    "hotplug": FaultConfig(hotplug_rate_per_s=4.0),
    "thermal": FaultConfig(thermal_rate_per_s=4.0),
    "jitter": FaultConfig(tick_jitter_us=200),
    "stragglers": FaultConfig(straggler_rate_per_s=6.0),
    "chaos": FaultConfig(hotplug_rate_per_s=3.0, thermal_rate_per_s=3.0,
                         tick_jitter_us=150, straggler_rate_per_s=4.0),
    # Correlated same-socket core-failure families (fault-tolerant RT).
    "corefail": FaultConfig(core_failure_rate_per_s=3.0,
                            core_failure_burst=2,
                            core_failure_budget=8),
    "corefail-burst": FaultConfig(core_failure_rate_per_s=2.0,
                                  core_failure_burst=4,
                                  core_failure_budget=12,
                                  core_failure_downtime_us=200_000),
}


def fault_profile(name: str) -> FaultConfig:
    try:
        return FAULT_PROFILES[name]
    except KeyError:
        raise KeyError(f"unknown fault profile {name!r}; "
                       f"known: {sorted(FAULT_PROFILES)}") from None


@dataclass(frozen=True)
class FaultSpec:
    """One concrete fault: apply ``kind`` at ``at_us`` to ``target``.

    ``target`` is a hardware thread for ``cpu_offline``, ``straggler``
    and ``core_failure``, a physical core for ``thermal_cap``.
    ``duration_us`` is the downtime (hotplug, core failure) or cap
    duration (thermal); ``value`` carries the cap in MHz or the
    straggler factor scaled by 100.
    """

    at_us: int
    kind: str
    target: int
    duration_us: int = 0
    value: int = 0


class FaultPlan:
    """An ordered, deterministic list of faults plus the jitter setting."""

    def __init__(self, specs: List[FaultSpec], tick_jitter_us: int = 0,
                 jitter_seed_name: str = "faults:jitter") -> None:
        self.specs = sorted(specs, key=lambda s: (s.at_us, s.kind, s.target))
        self.tick_jitter_us = tick_jitter_us
        self.jitter_seed_name = jitter_seed_name

    def __len__(self) -> int:
        return len(self.specs)

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for s in self.specs:
            out[s.kind] = out.get(s.kind, 0) + 1
        return out

    def describe(self) -> str:
        parts = [f"{k}={n}" for k, n in sorted(self.counts().items())]
        if self.tick_jitter_us:
            parts.append(f"tick_jitter=±{self.tick_jitter_us}µs")
        return "faults: " + (", ".join(parts) if parts else "none")

    # ------------------------------------------------------------------

    @classmethod
    def generate(cls, config: FaultConfig, n_cpus: int,
                 n_physical_cores: int, nominal_mhz: int, min_mhz: int,
                 rng: RngRegistry, n_sockets: int = 1) -> "FaultPlan":
        """Expand ``config`` into concrete faults for one machine shape.

        Every family draws from its own named stream, in a fixed order
        (times first, then targets), so the expansion is reproducible and
        families are independent.  ``n_sockets`` shapes the correlated
        core-failure bursts (all targets of one burst share a socket).
        """
        horizon = config.horizon_us
        specs: List[FaultSpec] = []

        n_hotplug = _count(config.hotplug_rate_per_s, horizon)
        if n_hotplug:
            s = rng.stream("faults:hotplug")
            times = sorted(s.randrange(1, horizon + 1)
                           for _ in range(n_hotplug))
            for t in times:
                specs.append(FaultSpec(
                    at_us=t, kind=KIND_CPU_OFFLINE,
                    target=s.randrange(n_cpus),
                    duration_us=config.hotplug_downtime_us))

        n_thermal = _count(config.thermal_rate_per_s, horizon)
        if n_thermal:
            s = rng.stream("faults:thermal")
            cap = max(min_mhz, int(nominal_mhz * config.thermal_cap_ratio))
            times = sorted(s.randrange(1, horizon + 1)
                           for _ in range(n_thermal))
            for t in times:
                specs.append(FaultSpec(
                    at_us=t, kind=KIND_THERMAL_CAP,
                    target=s.randrange(n_physical_cores),
                    duration_us=config.thermal_duration_us, value=cap))

        n_straggler = _count(config.straggler_rate_per_s, horizon)
        if n_straggler:
            s = rng.stream("faults:straggler")
            times = sorted(s.randrange(1, horizon + 1)
                           for _ in range(n_straggler))
            for t in times:
                specs.append(FaultSpec(
                    at_us=t, kind=KIND_STRAGGLER,
                    target=s.randrange(n_cpus),
                    value=int(config.straggler_factor * 100)))

        n_bursts = _count(config.core_failure_rate_per_s, horizon)
        if n_bursts:
            s = rng.stream("faults:corefail")
            times = sorted(s.randrange(1, horizon + 1)
                           for _ in range(n_bursts))
            sockets = max(1, n_sockets)
            socket_size = max(1, n_cpus // sockets)
            budget = config.core_failure_budget
            used = 0
            for t in times:
                if budget and used >= budget:
                    break
                k = min(config.core_failure_burst, socket_size)
                if budget:
                    k = min(k, budget - used)
                socket = s.randrange(sockets)
                base = socket * socket_size
                cpus = s.sample(range(base, base + socket_size), k)
                for c in sorted(cpus):
                    specs.append(FaultSpec(
                        at_us=t, kind=KIND_CORE_FAILURE, target=c,
                        duration_us=config.core_failure_downtime_us))
                used += k

        return cls(specs, tick_jitter_us=config.tick_jitter_us)


def _count(rate_per_s: float, horizon_us: int) -> int:
    return max(0, round(rate_per_s * horizon_us / 1_000_000))
