"""Reproduction of "OS Scheduling with Nest" (EuroSys 2022).

A discrete-event simulator of Linux task scheduling with a DVFS/turbo
frequency model, implementing CFS, the paper's Nest policy, and the Smove
baseline, plus the workloads and harness to regenerate the paper's
evaluation.  Entry points:

    from repro import run_experiment, compare, get_machine
    from repro.workloads.configure import ConfigureWorkload

    result = run_experiment(ConfigureWorkload("llvm_ninja"),
                            get_machine("5218_2s"),
                            scheduler="nest", governor="schedutil")
    print(result.brief())
"""

from .core.nest import NestPolicy
from .core.params import DEFAULT_PARAMS, NestParams
from .experiments.runner import (compare, make_governor, make_policy,
                                 run_experiment)
from .governors import PerformanceGovernor, SchedutilGovernor
from .hw.machines import ALL_MACHINES, Machine, PAPER_MACHINES, get_machine
from .kernel.scheduler_core import Kernel, KernelConfig
from .metrics.summary import RunResult, speedup
from .sched.cfs import CfsPolicy
from .sched.smove import SmovePolicy
from .sim.engine import Engine

__version__ = "1.0.0"

__all__ = [
    "NestPolicy", "NestParams", "DEFAULT_PARAMS",
    "compare", "run_experiment", "make_policy", "make_governor",
    "PerformanceGovernor", "SchedutilGovernor",
    "Machine", "get_machine", "ALL_MACHINES", "PAPER_MACHINES",
    "Kernel", "KernelConfig", "RunResult", "speedup",
    "CfsPolicy", "SmovePolicy", "Engine",
    "__version__",
]
