"""Self-contained HTML dashboard for sweeps, history and the perf trajectory.

``repro obs dashboard`` renders one static HTML file — stdlib only,
every byte inline (CSS and the few SVG charts are generated here in
Python), no server, no external scripts or fonts — so the artifact can
be archived from CI, attached to a PR, or opened from disk years later
and still work.

Sections, each fed by one observability layer:

* **Sweep summary** — tiles and a stacked outcome bar from the sweep's
  history row (:class:`~repro.obs.history.HistoryStore`);
* **Runs table** — per-run wall-time bars, outcome chips, makespan /
  energy / peak-RSS columns, attempts;
* **Worker timeline** — an SVG Gantt strip per worker pid, drawn from
  the sweep's telemetry JSONL stream (``run_start``/``run_end``
  records), with heartbeat ticks;
* **History sparklines** — wall time and events/s across the archived
  sweeps, plus engine wall times across ``BENCH_trajectory.json``
  entries (the PR-over-PR perf trajectory);
* **Trace links** — relative links to Perfetto traces when a trace
  directory is supplied.

Everything user-controlled goes through :func:`html.escape`; the
builder never embeds raw strings from specs, labels or errors.
"""

from __future__ import annotations

import html
import json
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from .history import HistoryStore

__all__ = ["build_dashboard", "render_dashboard"]

#: Outcome -> chip/bar color.  Keep in sync with the legend row.
OUTCOME_COLORS = {
    "simulated": "#2f9e44",
    "retried": "#e8930c",
    "cached": "#1971c2",
    "checkpoint": "#7048e8",
    "skipped": "#e03131",
    "pending": "#868e96",
}

_CSS = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2rem auto; max-width: 70rem; color: #212529; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 2rem; }
.tiles { display: flex; flex-wrap: wrap; gap: .6rem; }
.tile { border: 1px solid #dee2e6; border-radius: .4rem;
        padding: .5rem .8rem; min-width: 7rem; }
.tile .v { font-size: 1.3rem; font-weight: 600; }
.tile .k { font-size: .75rem; color: #868e96; text-transform: uppercase; }
table { border-collapse: collapse; width: 100%; font-size: .85rem; }
th, td { text-align: left; padding: .3rem .5rem;
         border-bottom: 1px solid #e9ecef; }
th { color: #868e96; font-weight: 600; }
.chip { display: inline-block; padding: .05rem .5rem; border-radius: 1rem;
        color: #fff; font-size: .75rem; }
.bar { background: #e9ecef; border-radius: .2rem; height: .8rem;
       position: relative; min-width: 8rem; }
.bar span { display: block; height: 100%; border-radius: .2rem; }
.muted { color: #868e96; }
.warn { color: #e03131; font-weight: 600; }
svg text { font-family: inherit; }
footer { margin-top: 3rem; font-size: .75rem; color: #868e96; }
"""


def _esc(value: Any) -> str:
    return html.escape(str(value), quote=True)


def _tile(key: str, value: Any) -> str:
    return (f'<div class="tile"><div class="v">{_esc(value)}</div>'
            f'<div class="k">{_esc(key)}</div></div>')


def _outcome_chip(outcome: str) -> str:
    color = OUTCOME_COLORS.get(outcome, "#868e96")
    return f'<span class="chip" style="background:{color}">{_esc(outcome)}</span>'


def _stacked_bar(counts: Dict[str, int]) -> str:
    total = sum(counts.values())
    if total <= 0:
        return '<div class="muted">no runs</div>'
    spans = []
    for outcome, color in OUTCOME_COLORS.items():
        n = counts.get(outcome, 0)
        if not n:
            continue
        pct = n / total * 100.0
        spans.append(f'<span title="{_esc(outcome)}: {n}" style="display:'
                     f'inline-block;width:{pct:.2f}%;height:100%;'
                     f'background:{color}"></span>')
    legend = " ".join(f'{_outcome_chip(o)} {n}'
                      for o, n in counts.items() if n)
    return (f'<div class="bar" style="height:1rem">{"".join(spans)}</div>'
            f'<p>{legend}</p>')


def _wall_bar(wall: Optional[float], max_wall: float, outcome: str) -> str:
    if wall is None:
        return '<span class="muted">—</span>'
    pct = 100.0 * wall / max_wall if max_wall > 0 else 0.0
    color = OUTCOME_COLORS.get(outcome, "#868e96")
    return (f'<div class="bar" title="{wall:.3f}s">'
            f'<span style="width:{max(pct, 1.0):.1f}%;'
            f'background:{color}"></span></div>')


def _sparkline(values: Sequence[float], width: int = 220, height: int = 40,
               color: str = "#1971c2", label: str = "") -> str:
    """An inline SVG sparkline (no JS, no external assets)."""
    pts = [v for v in values if v is not None]
    if len(pts) < 2:
        return '<span class="muted">not enough data</span>'
    lo, hi = min(pts), max(pts)
    span = (hi - lo) or 1.0
    step = (width - 10) / (len(pts) - 1)
    coords = []
    for i, v in enumerate(pts):
        x = 5 + i * step
        y = 5 + (height - 10) * (1.0 - (v - lo) / span)
        coords.append(f"{x:.1f},{y:.1f}")
    last_x, last_y = coords[-1].split(",")
    return (f'<svg width="{width}" height="{height}" role="img" '
            f'aria-label="{_esc(label)}">'
            f'<polyline fill="none" stroke="{color}" stroke-width="1.5" '
            f'points="{" ".join(coords)}"/>'
            f'<circle cx="{last_x}" cy="{last_y}" r="2.5" fill="{color}"/>'
            f'</svg>')


# ---------------------------------------------------------------------------
# Worker timeline (SVG Gantt from the telemetry stream)
# ---------------------------------------------------------------------------

def _timeline_svg(records: List[Dict[str, Any]]) -> str:
    """Per-pid activity strips from run_start/run_end/hb records."""
    starts: Dict[tuple, float] = {}
    spans: List[tuple] = []           # (pid, run, t0, t1, ok)
    beats: List[tuple] = []           # (pid, ts)
    t_min = t_max = None
    for rec in records:
        ts = rec.get("ts")
        if not isinstance(ts, (int, float)):
            continue
        t_min = ts if t_min is None else min(t_min, ts)
        t_max = ts if t_max is None else max(t_max, ts)
        kind, pid, run = rec.get("t"), rec.get("pid"), rec.get("run")
        if kind == "run_start":
            starts[(pid, run)] = ts
        elif kind in ("run_end", "run_error") and (pid, run) in starts:
            spans.append((pid, run, starts.pop((pid, run)), ts,
                          kind == "run_end"))
        elif kind == "hb" and pid is not None:
            beats.append((pid, ts))
    # A run cut off by an interrupt has a start and no end: draw it to
    # the end of the stream so the interruption is visible.
    for (pid, run), t0 in starts.items():
        if t_max is not None:
            spans.append((pid, run, t0, t_max, False))
    if not spans or t_min is None or t_max <= t_min:
        return ('<p class="muted">no worker activity recorded '
                '(fully cached sweep, or telemetry stream missing)</p>')
    pids = sorted({pid for pid, *_ in spans})
    width, row_h, left = 900, 26, 70
    height = row_h * len(pids) + 30
    scale = (width - left - 10) / (t_max - t_min)
    parts = [f'<svg width="{width}" height="{height}" role="img" '
             f'aria-label="worker timeline">']
    for row, pid in enumerate(pids):
        y = 10 + row * row_h
        parts.append(f'<text x="2" y="{y + 13}" font-size="11" '
                     f'fill="#868e96">pid {_esc(pid)}</text>')
        for s_pid, run, t0, t1, ok in spans:
            if s_pid != pid:
                continue
            x = left + (t0 - t_min) * scale
            w = max((t1 - t0) * scale, 2.0)
            color = "#2f9e44" if ok else "#e03131"
            parts.append(
                f'<rect x="{x:.1f}" y="{y}" width="{w:.1f}" '
                f'height="{row_h - 8}" rx="2" fill="{color}" '
                f'opacity="0.8"><title>{_esc(run)} '
                f'({t1 - t0:.2f}s)</title></rect>')
        for b_pid, ts in beats:
            if b_pid != pid:
                continue
            x = left + (ts - t_min) * scale
            parts.append(f'<rect x="{x:.1f}" y="{y + row_h - 7}" width="1" '
                         f'height="4" fill="#1971c2"/>')
    axis_y = height - 14
    parts.append(f'<text x="{left}" y="{axis_y + 10}" font-size="10" '
                 f'fill="#868e96">0s</text>')
    parts.append(f'<text x="{width - 50}" y="{axis_y + 10}" font-size="10" '
                 f'fill="#868e96">{t_max - t_min:.1f}s</text>')
    parts.append('</svg>')
    return "".join(parts)


# ---------------------------------------------------------------------------
# Dashboard assembly
# ---------------------------------------------------------------------------

def _summary_section(sweep: Dict[str, Any],
                     runs: List[Dict[str, Any]]) -> str:
    stats = json.loads(sweep.get("stats_json") or "{}")
    when = time.strftime("%Y-%m-%d %H:%M:%S",
                         time.localtime(sweep.get("ts", 0)))
    tiles = [
        _tile("runs", sweep.get("n_specs", 0)),
        _tile("simulated", sweep.get("simulated", 0)),
        _tile("cached", sweep.get("cache_hits", 0)),
        _tile("wall", f"{sweep.get('wall_s', 0.0):.2f}s"),
        _tile("events", f"{sweep.get('events', 0):,}"),
        _tile("events/s", f"{stats.get('events_per_sec', 0.0):,.0f}"),
        _tile("workers", sweep.get("workers", 0)),
    ]
    badges = []
    for key in ("retried", "timeouts", "skipped"):
        if sweep.get(key):
            badges.append(f'<span class="warn">{sweep[key]} {key}</span>')
    if sweep.get("degraded"):
        badges.append('<span class="warn">degraded to serial</span>')
    if sweep.get("interrupted"):
        badges.append('<span class="warn">INTERRUPTED</span>')
    counts: Dict[str, int] = {}
    for run in runs:
        counts[run["outcome"]] = counts.get(run["outcome"], 0) + 1
    head = (f'<p class="muted">sweep <code>{_esc(sweep.get("uid"))}</code>'
            f' — {_esc(when)} — git <code>{_esc(sweep.get("git_sha"))}</code>'
            + (f' — {_esc(sweep.get("label"))}' if sweep.get("label")
               else "") + '</p>')
    return (head + f'<div class="tiles">{"".join(tiles)}</div>'
            + (f'<p>{" · ".join(badges)}</p>' if badges else "")
            + "<h2>Outcomes</h2>" + _stacked_bar(counts))


def _runs_section(runs: List[Dict[str, Any]]) -> str:
    if not runs:
        return '<p class="muted">no runs recorded</p>'
    max_wall = max((r.get("sim_wall_s") or 0.0) for r in runs) or 1.0
    rows = []
    for run in runs:
        wall = run.get("sim_wall_s")
        rss = run.get("rss_peak_kb")
        makespan = run.get("makespan_us")
        energy = run.get("energy_j")
        rows.append(
            "<tr>"
            f'<td><code>{_esc(run["label"])}</code></td>'
            f"<td>{_outcome_chip(run['outcome'])}</td>"
            f"<td>{_wall_bar(wall, max_wall, run['outcome'])}</td>"
            f'<td>{f"{wall:.3f}s" if wall is not None else "—"}</td>'
            f'<td>{makespan if makespan is not None else "—"}</td>'
            f'<td>{f"{energy:.3f}" if energy is not None else "—"}</td>'
            f'<td>{f"{rss:,} KiB" if rss else "—"}</td>'
            f'<td>{run.get("attempts", 0)}</td>'
            f'<td class="muted">{_esc(run.get("error") or "")}</td>'
            "</tr>")
    return ('<table><thead><tr><th>run</th><th>outcome</th>'
            '<th>wall time</th><th></th><th>makespan (µs)</th>'
            '<th>energy (J)</th><th>peak RSS</th><th>att</th><th></th>'
            '</tr></thead><tbody>' + "".join(rows) + "</tbody></table>")


#: Placement tier -> stacked-bar color (analysis panel).
TIER_COLORS = (
    ("share_attach", "#2f9e44"),
    ("share_primary", "#1971c2"),
    ("share_reserve", "#7048e8"),
    ("share_impatient", "#e8930c"),
    ("share_cfs", "#e03131"),
)


def _tier_bar(metrics: Dict[str, Any]) -> str:
    """A stacked placement-tier share bar from a run's derived metrics."""
    spans = []
    for name, color in TIER_COLORS:
        share = metrics.get(f"derived.{name}")
        if not share:
            continue
        spans.append(f'<span title="{_esc(name[6:])}: {share:.1%}" '
                     f'style="display:inline-block;width:{share * 100:.2f}%;'
                     f'height:100%;background:{color}"></span>')
    if not spans:
        return '<span class="muted">—</span>'
    return f'<div class="bar" style="height:.8rem">{"".join(spans)}</div>'


def _analysis_section(runs: List[Dict[str, Any]]) -> str:
    """Derived paper metrics per run (trace-analysis layer).

    Fed by the ``derived.*`` scalars the sweep parent computes from each
    run's metrics registry; sweeps archived before the analysis layer
    have no derived keys and fall back to the muted notice.
    """
    rows = []
    for run in runs:
        m = run.get("metrics") or {}
        if not any(k.startswith("derived.") for k in m):
            continue
        p50 = m.get("derived.wakeup_p50_us")
        p99 = m.get("derived.wakeup_p99_us")
        warm = m.get("derived.warm_share")
        jobs = m.get("derived.deadline_jobs")
        if jobs:
            missed = m.get("derived.deadline_misses", 0)
            deadline = f"{jobs - missed:g}/{jobs:g}"
            activations = m.get("derived.deadline_activations")
            if activations:
                deadline += f" ({activations:g} promo)"
        else:
            deadline = "—"
        rows.append(
            "<tr>"
            f'<td><code>{_esc(run["label"])}</code></td>'
            f'<td>{f"≤{p50:g}" if p50 is not None else "—"}</td>'
            f'<td>{f"≤{p99:g}" if p99 is not None else "—"}</td>'
            f'<td>{f"{warm:.1%}" if warm is not None else "—"}</td>'
            f"<td>{_tier_bar(m)}</td>"
            f"<td>{deadline}</td>"
            "</tr>")
    if not rows:
        return ('<p class="muted">no derived metrics recorded '
                '(sweep predates the trace-analysis layer)</p>')
    legend = " ".join(
        f'<span class="chip" style="background:{color}">'
        f'{_esc(name[6:])}</span>' for name, color in TIER_COLORS)
    return ('<table><thead><tr><th>run</th><th>wakeup p50 (µs)</th>'
            '<th>wakeup p99 (µs)</th><th>warm share</th>'
            '<th>placement tiers</th><th>deadlines met</th>'
            '</tr></thead><tbody>'
            + "".join(rows) + "</tbody></table>"
            + f"<p>{legend}</p>")


def _history_section(store: HistoryStore, limit: int = 30) -> str:
    sweeps = list(reversed(store.sweeps(limit=limit)))
    if len(sweeps) < 2:
        return '<p class="muted">fewer than two archived sweeps</p>'
    walls = [s.get("wall_s") for s in sweeps]
    eps = [json.loads(s.get("stats_json") or "{}").get("events_per_sec")
           for s in sweeps]
    return (f'<p>sweep wall time (last {len(sweeps)}): '
            f'{_sparkline(walls, label="sweep wall seconds")} '
            f'<span class="muted">{walls[0]:.2f}s → {walls[-1]:.2f}s</span>'
            f'</p><p>events/s: '
            f'{_sparkline(eps, color="#2f9e44", label="events per second")}'
            f'</p>')


def _trajectory_section(trajectory_path: Optional[Path]) -> str:
    if trajectory_path is None or not Path(trajectory_path).exists():
        return '<p class="muted">no trajectory file</p>'
    try:
        doc = json.loads(Path(trajectory_path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return '<p class="muted">trajectory file unreadable</p>'
    entries = doc.get("entries", [])
    by_engine: Dict[str, List[tuple]] = {}
    for e in entries:
        by_engine.setdefault(e.get("engine", "?"), []).append(
            (e.get("pr", 0), e.get("wall_s")))
    parts = []
    colors = {"ref": "#1971c2", "fast": "#2f9e44", "ref-seed": "#868e96"}
    for engine in sorted(by_engine):
        series = sorted(by_engine[engine])
        walls = [w for _, w in series if w is not None]
        prs = ", ".join(f"PR{pr}: {w}s" for pr, w in series)
        parts.append(
            f'<p><b>{_esc(engine)}</b> wall seconds across PRs: '
            f'{_sparkline(walls, color=colors.get(engine, "#7048e8"), label=f"{engine} wall trajectory")} '
            f'<span class="muted">{_esc(prs)}</span></p>')
    return "".join(parts) or '<p class="muted">no trajectory entries</p>'


def _traces_section(traces_dir: Optional[Path]) -> str:
    if traces_dir is None:
        return ""
    traces_dir = Path(traces_dir)
    if not traces_dir.is_dir():
        return ""
    links = []
    for path in sorted(traces_dir.glob("*.json")) + \
            sorted(traces_dir.glob("*.pftrace")):
        links.append(f'<li><a href="{_esc(path.as_posix())}">'
                     f'{_esc(path.name)}</a></li>')
    if not links:
        return ""
    return ("<h2>Traces</h2><p>Open in "
            "<a href=\"https://ui.perfetto.dev\">ui.perfetto.dev</a>:</p>"
            f"<ul>{''.join(links)}</ul>")


def build_dashboard(history_path: Path,
                    sweep_ref: str = "last",
                    stream_dir: Optional[Path] = None,
                    trajectory_path: Optional[Path] = None,
                    traces_dir: Optional[Path] = None) -> str:
    """The dashboard HTML for one archived sweep (raises KeyError if the
    ref matches nothing)."""
    with HistoryStore(Path(history_path)) as store:
        sweep = store.resolve(sweep_ref)
        runs = store.runs_of(sweep["id"])
        history_html = _history_section(store)
    records: List[Dict[str, Any]] = []
    if stream_dir is not None:
        stream = Path(stream_dir) / f"{sweep['uid']}.jsonl"
        if stream.exists():
            from .telemetry.hub import load_stream
            records = load_stream(stream)
    return render_dashboard(sweep, runs, records, history_html,
                            trajectory_path, traces_dir)


def render_dashboard(sweep: Dict[str, Any], runs: List[Dict[str, Any]],
                     records: List[Dict[str, Any]], history_html: str,
                     trajectory_path: Optional[Path] = None,
                     traces_dir: Optional[Path] = None) -> str:
    """Assemble the final single-file HTML from pre-fetched pieces."""
    generated = time.strftime("%Y-%m-%d %H:%M:%S")
    return f"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>repro sweep dashboard — {_esc(sweep.get('uid'))}</title>
<style>{_CSS}</style>
</head>
<body>
<h1>Sweep dashboard</h1>
{_summary_section(sweep, runs)}
<h2>Runs</h2>
{_runs_section(runs)}
<h2>Analysis</h2>
{_analysis_section(runs)}
<h2>Worker timeline</h2>
{_timeline_svg(records)}
<h2>History</h2>
{history_html}
<h2>Perf trajectory</h2>
{_trajectory_section(trajectory_path)}
{_traces_section(traces_dir)}
<footer>generated {_esc(generated)} by <code>repro obs dashboard</code>
— self-contained: no external scripts, styles or fonts.</footer>
</body>
</html>
"""
