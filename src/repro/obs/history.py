"""Persistent run history: every finished sweep, queryable and diffable.

The telemetry JSONL streams (``obs/telemetry``) answer "what is this
sweep doing *right now*"; this module answers "how does it compare to
every sweep that came before".  A :class:`HistoryStore` is a single
sqlite file (usually ``<cache>/history.sqlite``) that
:meth:`~repro.obs.telemetry.hub.TelemetryHub.close_sweep` appends to:
one row per sweep (stats, git sha, wall time, hardening counters) and
one row per run (spec key, engine, outcome, wall time, makespan,
energy, peak RSS, scalar metrics).

On top of the store sit the regression gates:

* :meth:`HistoryStore.diff` compares two sweeps run-by-run (matched on
  ``spec_key``) and flags wall-time regressions beyond a relative
  tolerance and *any* drift in deterministic outputs (makespan, energy,
  metrics — those must be bit-stable unless ``ENGINE_VERSION`` moved);
  ``repro history diff <ref>`` exits non-zero when a gate fires.
* :func:`trajectory_entries` converts a ``profile_sweep.py --json``
  benchmark record into ``BENCH_trajectory.json`` entries, so the perf
  trajectory is *generated* from measurements instead of hand-written.

Schema versioning: the sqlite ``user_version`` pragma tracks the schema
generation; :data:`MIGRATIONS` is an ordered list whose *i*-th entry
upgrades version *i* to *i+1*.  Opening a store applies any pending
migrations inside one transaction, so old history files keep working
across PRs (a new column arrives as a migration, never as a breaking
re-create).
"""

from __future__ import annotations

import json
import sqlite3
import subprocess
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

__all__ = ["HistoryStore", "HistoryDiff", "Regression",
           "trajectory_entries", "append_trajectory", "git_sha"]


def git_sha() -> str:
    """Short sha of the working tree's HEAD ('unknown' outside a repo)."""
    try:
        return subprocess.run(["git", "rev-parse", "--short", "HEAD"],
                              capture_output=True, text=True, check=True,
                              timeout=10).stdout.strip()
    except Exception:
        return "unknown"


# ---------------------------------------------------------------------------
# Schema + migrations
# ---------------------------------------------------------------------------

def _migrate_to_v1(con: sqlite3.Connection) -> None:
    """v0 (empty file) -> v1: the initial sweeps/runs schema."""
    con.execute("""
        CREATE TABLE sweeps (
            id          INTEGER PRIMARY KEY AUTOINCREMENT,
            uid         TEXT UNIQUE NOT NULL,
            ts          REAL NOT NULL,
            label       TEXT,
            git_sha     TEXT,
            interrupted INTEGER NOT NULL DEFAULT 0,
            n_specs     INTEGER NOT NULL DEFAULT 0,
            simulated   INTEGER NOT NULL DEFAULT 0,
            cache_hits  INTEGER NOT NULL DEFAULT 0,
            retried     INTEGER NOT NULL DEFAULT 0,
            timeouts    INTEGER NOT NULL DEFAULT 0,
            skipped     INTEGER NOT NULL DEFAULT 0,
            degraded    INTEGER NOT NULL DEFAULT 0,
            workers     INTEGER NOT NULL DEFAULT 0,
            wall_s      REAL NOT NULL DEFAULT 0,
            events      INTEGER NOT NULL DEFAULT 0,
            stats_json  TEXT NOT NULL DEFAULT '{}'
        )""")
    con.execute("""
        CREATE TABLE runs (
            id          INTEGER PRIMARY KEY AUTOINCREMENT,
            sweep_id    INTEGER NOT NULL REFERENCES sweeps(id)
                        ON DELETE CASCADE,
            label       TEXT NOT NULL,
            spec_key    TEXT,
            engine      TEXT,
            seed        INTEGER,
            outcome     TEXT NOT NULL,
            cached      INTEGER NOT NULL DEFAULT 0,
            completed   INTEGER NOT NULL DEFAULT 0,
            attempts    INTEGER NOT NULL DEFAULT 0,
            sim_wall_s  REAL,
            events      INTEGER,
            makespan_us INTEGER,
            energy_j    REAL,
            rss_peak_kb INTEGER,
            metrics_json TEXT,
            error       TEXT
        )""")
    con.execute("CREATE INDEX idx_runs_sweep ON runs(sweep_id)")
    con.execute("CREATE INDEX idx_runs_spec ON runs(spec_key)")


#: Ordered migrations; entry *i* upgrades ``user_version`` i -> i+1.
#: Append, never edit: old history files replay the whole chain.
MIGRATIONS = [_migrate_to_v1]

SCHEMA_VERSION = len(MIGRATIONS)


@dataclass
class Regression:
    """One gate violation found by :meth:`HistoryStore.diff`."""

    kind: str          # "wall" | "metric" | "missing" | "outcome"
    label: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.kind}] {self.label}: {self.detail}"


@dataclass
class HistoryDiff:
    """The result of comparing a sweep against a baseline sweep."""

    current: Dict[str, Any]
    baseline: Dict[str, Any]
    regressions: List[Regression] = field(default_factory=list)
    improvements: List[str] = field(default_factory=list)
    #: Per-run "what moved most" summaries (``diff(attribute=True)``).
    attributions: List[str] = field(default_factory=list)
    compared: int = 0

    @property
    def has_regressions(self) -> bool:
        return bool(self.regressions)

    def render(self) -> str:
        lines = [f"history diff: sweep #{self.current['id']} "
                 f"({self.current['uid']}) vs baseline #{self.baseline['id']} "
                 f"({self.baseline['uid']}) — {self.compared} run(s) compared"]
        for reg in self.regressions:
            lines.append(f"  REGRESSION {reg}")
        for imp in self.improvements:
            lines.append(f"  improved   {imp}")
        if not self.regressions:
            lines.append("  no regressions")
        for attr in self.attributions:
            lines.append(f"  {attr}")
        return "\n".join(lines)


class HistoryStore:
    """Sqlite-backed archive of completed sweeps and their runs."""

    def __init__(self, path: Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._con = sqlite3.connect(str(self.path))
        self._con.row_factory = sqlite3.Row
        self._migrate()

    def close(self) -> None:
        self._con.close()

    def __enter__(self) -> "HistoryStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _migrate(self) -> None:
        version = self._con.execute("PRAGMA user_version").fetchone()[0]
        if version > SCHEMA_VERSION:
            raise RuntimeError(
                f"history file {self.path} is schema v{version}, newer than "
                f"this code's v{SCHEMA_VERSION} — refusing to touch it")
        while version < SCHEMA_VERSION:
            with self._con:
                MIGRATIONS[version](self._con)
                version += 1
                self._con.execute(f"PRAGMA user_version = {version}")

    @property
    def schema_version(self) -> int:
        return self._con.execute("PRAGMA user_version").fetchone()[0]

    # -- writing ---------------------------------------------------------

    def record_sweep(self, uid: str, stats: Dict[str, Any],
                     runs: Sequence[Dict[str, Any]],
                     label: Optional[str] = None,
                     interrupted: bool = False,
                     sha: Optional[str] = None,
                     ts: Optional[float] = None) -> int:
        """Archive one finished sweep; returns its integer history id."""
        with self._con:
            cur = self._con.execute(
                """INSERT INTO sweeps (uid, ts, label, git_sha, interrupted,
                       n_specs, simulated, cache_hits, retried, timeouts,
                       skipped, degraded, workers, wall_s, events, stats_json)
                   VALUES (?,?,?,?,?,?,?,?,?,?,?,?,?,?,?,?)""",
                (uid, ts if ts is not None else time.time(), label,
                 sha if sha is not None else git_sha(),
                 int(bool(interrupted)),
                 int(stats.get("n_specs", 0)),
                 int(stats.get("simulated", 0)),
                 int(stats.get("cache_hits", 0)),
                 int(stats.get("retried", 0)),
                 int(stats.get("timeouts", 0)),
                 int(stats.get("skipped", 0)),
                 int(bool(stats.get("degraded", False))),
                 int(stats.get("workers", 0)),
                 float(stats.get("wall_s", 0.0)),
                 int(stats.get("events", 0)),
                 json.dumps(stats, sort_keys=True)))
            sweep_id = cur.lastrowid
            self._con.executemany(
                """INSERT INTO runs (sweep_id, label, spec_key, engine, seed,
                       outcome, cached, completed, attempts, sim_wall_s,
                       events, makespan_us, energy_j, rss_peak_kb,
                       metrics_json, error)
                   VALUES (?,?,?,?,?,?,?,?,?,?,?,?,?,?,?,?)""",
                [(sweep_id, r.get("label", "?"), r.get("spec_key"),
                  r.get("engine"), r.get("seed"), r.get("outcome", "?"),
                  int(bool(r.get("cached", False))),
                  int(bool(r.get("completed", False))),
                  int(r.get("attempts", 0)), r.get("sim_wall_s"),
                  r.get("events_processed"), r.get("makespan_us"),
                  r.get("energy_j"), r.get("rss_peak_kb"),
                  json.dumps(r["metrics"], sort_keys=True)
                  if r.get("metrics") else None,
                  r.get("error")) for r in runs])
        return int(sweep_id)

    # -- reading ---------------------------------------------------------

    def sweeps(self, limit: int = 20) -> List[Dict[str, Any]]:
        """The most recent sweeps, newest first."""
        rows = self._con.execute(
            "SELECT * FROM sweeps ORDER BY id DESC LIMIT ?",
            (int(limit),)).fetchall()
        return [dict(r) for r in rows]

    def runs_of(self, sweep_id: int) -> List[Dict[str, Any]]:
        rows = self._con.execute(
            "SELECT * FROM runs WHERE sweep_id = ? ORDER BY id",
            (int(sweep_id),)).fetchall()
        out = []
        for row in rows:
            d = dict(row)
            d["metrics"] = (json.loads(d.pop("metrics_json"))
                            if d.get("metrics_json") else {})
            out.append(d)
        return out

    def resolve(self, ref: str) -> Dict[str, Any]:
        """A sweep row from a reference: ``last``, ``last-N``, an integer
        history id, or a (prefix of a) sweep uid."""
        ref = str(ref).strip()
        row = None
        if ref == "last" or ref.startswith("last-"):
            back = 0 if ref == "last" else int(ref.split("-", 1)[1])
            rows = self._con.execute(
                "SELECT * FROM sweeps ORDER BY id DESC LIMIT 1 OFFSET ?",
                (back,)).fetchall()
            row = rows[0] if rows else None
        elif ref.isdigit():
            row = self._con.execute("SELECT * FROM sweeps WHERE id = ?",
                                    (int(ref),)).fetchone()
        if row is None:
            row = self._con.execute(
                "SELECT * FROM sweeps WHERE uid LIKE ? ORDER BY id DESC",
                (ref + "%",)).fetchone()
        if row is None:
            raise KeyError(f"no sweep matches {ref!r}")
        return dict(row)

    # -- regression gate -------------------------------------------------

    def diff(self, current_ref: str = "last", baseline_ref: str = "last-1",
             wall_tol: float = 0.5, metric_tol: float = 0.0,
             attribute: bool = False, top_moves: int = 3) -> HistoryDiff:
        """Compare two archived sweeps run-by-run.

        Runs are matched on ``spec_key`` (falling back to label).  A run
        that *simulated* on both sides gates on wall time:
        ``current > baseline * (1 + wall_tol)`` is a regression (cached
        hits are skipped — they replay the producing run's wall time).
        Deterministic outputs (makespan, energy, scalar metrics — which
        since the analysis layer include the ``derived.*`` paper
        metrics) gate at ``metric_tol`` relative drift **whenever both
        sides completed**, cached or not: those must not move unless the
        engine version did.

        ``attribute=True`` additionally ranks, per matched run, the
        ``top_moves`` metrics that moved most relative to the baseline
        (the history-level cross-run attribution; ``repro obs analyze
        --baseline`` gives the deeper per-tier latency attribution).
        """
        cur = self.resolve(current_ref)
        base = self.resolve(baseline_ref)
        diff = HistoryDiff(current=cur, baseline=base)
        base_runs = {(r["spec_key"] or r["label"]): r
                     for r in self.runs_of(base["id"])}
        for run in self.runs_of(cur["id"]):
            key = run["spec_key"] or run["label"]
            other = base_runs.get(key)
            if other is None:
                continue   # spec not in baseline: nothing to gate against
            diff.compared += 1
            label = run["label"]
            if run["outcome"] in ("skipped", "pending"):
                if other["completed"]:
                    diff.regressions.append(Regression(
                        "outcome", label,
                        f"{other['outcome']} in baseline, now "
                        f"{run['outcome']}"))
                continue
            if (not run["cached"] and not other["cached"]
                    and run["sim_wall_s"] and other["sim_wall_s"]):
                ratio = run["sim_wall_s"] / other["sim_wall_s"]
                if ratio > 1.0 + wall_tol:
                    diff.regressions.append(Regression(
                        "wall", label,
                        f"{other['sim_wall_s']:.3f}s -> "
                        f"{run['sim_wall_s']:.3f}s ({ratio:.2f}x, "
                        f"tolerance {1.0 + wall_tol:.2f}x)"))
                elif ratio < 1.0 - wall_tol:
                    diff.improvements.append(
                        f"{label}: {other['sim_wall_s']:.3f}s -> "
                        f"{run['sim_wall_s']:.3f}s ({ratio:.2f}x)")
            if run["completed"] and other["completed"]:
                self._gate_metrics(diff, label, run, other, metric_tol)
                if attribute:
                    self._attribute(diff, label, run, other, top_moves)
        return diff

    @staticmethod
    def _attribute(diff: HistoryDiff, label: str, run: Dict[str, Any],
                   other: Dict[str, Any], top_moves: int) -> None:
        """Rank which metrics moved most between two matched runs."""
        from .analysis.diff import rank_moves

        def flat(r: Dict[str, Any]) -> Dict[str, float]:
            out = {k: v for k, v in (r.get("metrics") or {}).items()
                   if isinstance(v, (int, float))}
            for scalar in ("makespan_us", "energy_j"):
                if r.get(scalar) is not None:
                    out[scalar] = r[scalar]
            return out

        moves = rank_moves(flat(run), flat(other), top=top_moves)
        if not moves:
            diff.attributions.append(f"{label}: no metric moved")
            return
        detail = "; ".join(m.render() for m in moves)
        diff.attributions.append(f"{label}: moved most — {detail}")

    @staticmethod
    def _gate_metrics(diff: HistoryDiff, label: str, run: Dict[str, Any],
                      other: Dict[str, Any], tol: float) -> None:
        scalars = [("makespan_us", run.get("makespan_us"),
                    other.get("makespan_us")),
                   ("energy_j", run.get("energy_j"), other.get("energy_j")),
                   ("events", run.get("events"), other.get("events"))]
        cur_m, base_m = run.get("metrics") or {}, other.get("metrics") or {}
        for name in sorted(cur_m.keys() & base_m.keys()):
            scalars.append((name, cur_m[name], base_m[name]))
        for name, a, b in scalars:
            if a is None or b is None:
                continue
            if b == 0:
                drift = 0.0 if a == 0 else float("inf")
            else:
                drift = abs(a - b) / abs(b)
            if drift > tol:
                diff.regressions.append(Regression(
                    "metric", label, f"{name}: {b} -> {a} "
                    f"(drift {drift:.2%}, tolerance {tol:.2%})"))


# ---------------------------------------------------------------------------
# BENCH_trajectory.json generation
# ---------------------------------------------------------------------------

def trajectory_entries(record: Dict[str, Any], pr: int,
                       host: str = "dev-container") -> List[Dict[str, Any]]:
    """``BENCH_trajectory.json`` entries from a ``--json`` benchmark record.

    One entry per engine timed by ``profile_sweep.py --json`` — the same
    schema the hand-written PR-1/PR-6 entries follow, now generated from
    the measurement itself (satellite of PR-7): ``repro history
    export-trajectory --record perf.json --pr N --append
    BENCH_trajectory.json``.
    """
    entries = []
    speedups = record.get("speedup_vs_seed", {})
    for engine, numbers in record.get("engines", {}).items():
        entry = {
            "pr": pr,
            "git_sha": record.get("git_sha", "unknown"),
            "engine": engine,
            "workload": record.get("workload", "unknown"),
            "wall_s": numbers["wall_s"],
            "speedup_vs_seed": speedups.get(engine),
            "host": host,
        }
        if engine == "fast" and "ratio_fast_over_ref" in record:
            entry["ratio_fast_over_ref"] = record["ratio_fast_over_ref"]
        entries.append(entry)
    return entries


def append_trajectory(path: Path, entries: List[Dict[str, Any]]) -> int:
    """Merge entries into the trajectory file; returns how many were added.

    Idempotent per (pr, engine, git_sha): re-exporting the same
    measurement replaces the previous entry instead of duplicating it.
    """
    path = Path(path)
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    existing = doc.setdefault("entries", [])
    added = 0
    for entry in entries:
        key = (entry["pr"], entry["engine"], entry["git_sha"])
        existing[:] = [e for e in existing
                       if (e.get("pr"), e.get("engine"),
                           e.get("git_sha")) != key]
        existing.append(entry)
        added += 1
    existing.sort(key=lambda e: (e.get("pr", 0), e.get("engine", "")))
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")
    return added
