"""Unified observability layer.

Four pieces, designed to cost nothing when nobody is looking:

* :mod:`repro.obs.events` — the typed, timestamped record vocabulary: one
  :class:`~repro.obs.events.SchedEvent` per scheduler decision (placement,
  nest transition, wakeup, preemption, DVFS step, spin start/stop).
* :mod:`repro.obs.log` — the :class:`~repro.obs.log.EventLog` hub the
  simulator emits into.  Hot paths guard every emission with
  ``if obs.enabled:``, so a run with no sinks attached allocates no event
  objects and pays one attribute read per potential emission.
* :mod:`repro.obs.metrics` — the :class:`~repro.obs.metrics.MetricsRegistry`
  of named counters, gauges and fixed-bucket histograms.  Always on (it
  replaced the ad-hoc ``NestPolicy.stats`` dict) and serialized into
  :class:`~repro.metrics.summary.RunResult` and the result cache.
* :mod:`repro.obs.export` — exporters: Perfetto/Chrome ``trace_event``
  JSON (open it at https://ui.perfetto.dev), a JSONL event dump, and the
  plain-text summary behind ``repro trace``.
"""

from .events import EVENT_KINDS, SchedEvent
from .log import EventLog
from .metrics import Counter, Gauge, Histogram, MetricsRegistry

__all__ = [
    "EVENT_KINDS",
    "SchedEvent",
    "EventLog",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]
