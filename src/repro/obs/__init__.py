"""Unified observability layer.

Designed to cost nothing when nobody is looking.  Per-run pieces:

* :mod:`repro.obs.events` — the typed, timestamped record vocabulary: one
  :class:`~repro.obs.events.SchedEvent` per scheduler decision (placement,
  nest transition, wakeup, preemption, DVFS step, spin start/stop).
* :mod:`repro.obs.log` — the :class:`~repro.obs.log.EventLog` hub the
  simulator emits into.  Hot paths guard every emission with
  ``if obs.enabled:``, so a run with no sinks attached allocates no event
  objects and pays one attribute read per potential emission.
* :mod:`repro.obs.metrics` — the :class:`~repro.obs.metrics.MetricsRegistry`
  of named counters, gauges and fixed-bucket histograms.  Always on (it
  replaced the ad-hoc ``NestPolicy.stats`` dict) and serialized into
  :class:`~repro.metrics.summary.RunResult` and the result cache.
* :mod:`repro.obs.export` — exporters: Perfetto/Chrome ``trace_event``
  JSON (open it at https://ui.perfetto.dev), a JSONL event dump, and the
  plain-text summary behind ``repro trace``.

Sweep-level pieces (see DESIGN.md §8):

* :mod:`repro.obs.telemetry` — live worker→parent record streaming
  (heartbeats, per-run summaries) over a multiprocessing queue, with a
  crash-safe JSONL stream and live/plain progress views (``--progress``).
* :mod:`repro.obs.history` — sqlite-backed run-history store behind the
  ``repro history`` CLI: every completed sweep is recorded, ``history
  diff`` gates wall-time and metric regressions, ``export-trajectory``
  generates ``BENCH_trajectory.json`` entries.
* :mod:`repro.obs.dashboard` — ``repro obs dashboard``: a self-contained
  static HTML rendering of a sweep plus its history (stdlib only, inline
  CSS/SVG, no scripts).
"""

from .events import EVENT_KINDS, SchedEvent
from .log import EventLog
from .metrics import Counter, Gauge, Histogram, MetricsRegistry

__all__ = [
    "EVENT_KINDS",
    "SchedEvent",
    "EventLog",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]
