"""The structured scheduler-event vocabulary.

Every decision the paper's figures reason about becomes one typed,
timestamped record: which search tier placed a task (§3.1/§3.3), when the
nest grew or was compacted, when a core started or stopped the warm-core
spin (§3.2), when the hardware stepped a core's frequency (§2.3), and the
generic kernel happenings (wakeups, forks, preemptions, migrations) that
give the rest context.

A :class:`SchedEvent` is a ``NamedTuple`` on purpose: construction is one
C-level allocation, there is no ``__dict__``, and it unpacks positionally
in sinks — the event log stays cheap even for event-per-placement rates.
"""

from __future__ import annotations

from typing import NamedTuple


class SchedEvent(NamedTuple):
    """One timestamped scheduler event.

    ``cpu`` and ``task`` are ``-1`` when not applicable; ``value`` carries
    the kind-specific payload (frequency in MHz for ``freq.*``, primary-nest
    size after the transition for ``nest.*``, source cpu for migrations,
    wakeup latency in µs for ``sched.dispatch``).
    """

    t: int          # simulated time, µs
    kind: str       # one of EVENT_KINDS
    cpu: int = -1
    task: int = -1
    value: int = 0


# --- placement decisions: which tier of the §3 search chose the core -----
PLACE_ATTACH = "place.attach"          # §3.3 attached-core hit
PLACE_PRIMARY = "place.primary"        # primary-nest hit
PLACE_RESERVE = "place.reserve"        # reserve-nest hit (promotes the core)
PLACE_IMPATIENT = "place.impatient"    # §3.1 impatient expansion via CFS
PLACE_CFS = "place.cfs"                # fell through to CFS

# --- nest membership transitions (Figure 1's blue arrows) ----------------
NEST_PROMOTE = "nest.promote"          # reserve -> primary
NEST_EXPAND = "nest.expand"            # impatient: CFS pick -> primary
NEST_COMPACT = "nest.compact"          # stale primary core demoted (§3.1)
NEST_EXIT_DEMOTE = "nest.exit_demote"  # task exit demoted its core (§3.1)

# --- kernel-level happenings ---------------------------------------------
SCHED_FORK = "sched.fork"              # fork placement committed
SCHED_WAKEUP = "sched.wakeup"          # wakeup placement committed
SCHED_DISPATCH = "sched.dispatch"      # task started running (value=latency)
SCHED_PREEMPT = "sched.preempt"        # running task preempted
SCHED_MIGRATE = "sched.migrate"        # queued task moved (value=source cpu)

# --- warm-core spinning (§3.2) -------------------------------------------
SPIN_START = "spin.start"
SPIN_STOP = "spin.stop"

# --- DVFS (§2.3) ---------------------------------------------------------
FREQ_STEP = "freq.step"                # hardware stepped a physical core
FREQ_REQUEST = "freq.request"          # schedutil computed a request

# --- injected faults (faults/) -------------------------------------------
FAULT_CPU_OFFLINE = "fault.cpu_offline"    # hardware thread hotplugged out
FAULT_CPU_ONLINE = "fault.cpu_online"      # hardware thread came back
FAULT_THERMAL_CAP = "fault.thermal_cap"    # core capped (value=cap MHz)
FAULT_THERMAL_CLEAR = "fault.thermal_clear"  # cap lifted
FAULT_STRAGGLER = "fault.straggler"        # running task slowed (value=%)
FAULT_JITTER_ON = "fault.jitter_on"        # tick jitter armed (value=max µs)
FAULT_CORE_FAILURE = "fault.core_failure"  # fail-stop core failure
                                           # (value=RT copies destroyed)

# --- fault-tolerant RT scheduling (DESIGN.md §10) -------------------------
RT_BACKUP_PLACE = "rt.backup_place"      # FT-RT committed a backup's core
                                         # (value=primary cpu, -1 fallback)
RT_BACKUP_ACTIVATE = "rt.backup_activate"  # cold backup promoted
                                           # (value=dead primary's tid)
RT_KILL = "rt.kill"                      # RT copy destroyed by core failure
RT_DEADLINE_MET = "rt.deadline_met"      # job finished by its deadline
RT_DEADLINE_MISS = "rt.deadline_miss"    # job lost or finished late
                                         # (value=absolute deadline µs)

# --- nest repair under faults --------------------------------------------
NEST_OFFLINE_EVICT = "nest.offline_evict"  # offline core evicted from nests

# --- scx_nest comparator (sched/scxnest.py; DESIGN.md §11) ---------------
# Mask transitions mirror the nest.* contract: ``value`` is the primary
# mask size *after* the transition, and together with NEST_OFFLINE_EVICT
# they are exhaustive over primary-mask mutations (oracle replay).
SCXNEST_PROMOTE = "scxnest.promote"        # reserve -> primary (warm hit)
SCXNEST_EXPAND = "scxnest.expand"          # impatient: CFS pick -> primary
SCXNEST_COMPACT = "scxnest.compact"        # compaction timer fired: demoted
SCXNEST_COMPACT_ARM = "scxnest.compact_arm"      # per-core timer armed
SCXNEST_COMPACT_CANCEL = "scxnest.compact_cancel"  # core reused: timer void
SCXNEST_VTIME_PULL = "scxnest.vtime_pull"  # idle core pulled the min-vtime
                                           # queued task (value=source cpu)

#: Every kind the log may carry, for exporters and schema validation.
EVENT_KINDS = frozenset({
    PLACE_ATTACH, PLACE_PRIMARY, PLACE_RESERVE, PLACE_IMPATIENT, PLACE_CFS,
    NEST_PROMOTE, NEST_EXPAND, NEST_COMPACT, NEST_EXIT_DEMOTE,
    NEST_OFFLINE_EVICT,
    SCXNEST_PROMOTE, SCXNEST_EXPAND, SCXNEST_COMPACT, SCXNEST_COMPACT_ARM,
    SCXNEST_COMPACT_CANCEL, SCXNEST_VTIME_PULL,
    SCHED_FORK, SCHED_WAKEUP, SCHED_DISPATCH, SCHED_PREEMPT, SCHED_MIGRATE,
    SPIN_START, SPIN_STOP,
    FREQ_STEP, FREQ_REQUEST,
    FAULT_CPU_OFFLINE, FAULT_CPU_ONLINE, FAULT_THERMAL_CAP,
    FAULT_THERMAL_CLEAR, FAULT_STRAGGLER, FAULT_JITTER_ON,
    FAULT_CORE_FAILURE,
    RT_BACKUP_PLACE, RT_BACKUP_ACTIVATE, RT_KILL,
    RT_DEADLINE_MET, RT_DEADLINE_MISS,
})

#: The nest-membership transitions, exported as Perfetto instant events.
NEST_TRANSITION_KINDS = frozenset({
    NEST_PROMOTE, NEST_EXPAND, NEST_COMPACT, NEST_EXIT_DEMOTE,
    NEST_OFFLINE_EVICT,
})

#: Fault injections, exported as Perfetto instant events as well.
FAULT_KINDS = frozenset({
    FAULT_CPU_OFFLINE, FAULT_CPU_ONLINE, FAULT_THERMAL_CAP,
    FAULT_THERMAL_CLEAR, FAULT_STRAGGLER, FAULT_JITTER_ON,
    FAULT_CORE_FAILURE,
})

#: RT (deadline-scheduling) kinds, for exporters and summaries.
RT_KINDS = frozenset({
    RT_BACKUP_PLACE, RT_BACKUP_ACTIVATE, RT_KILL,
    RT_DEADLINE_MET, RT_DEADLINE_MISS,
})

#: Placement-decision kinds, in presentation order for summaries.
PLACEMENT_KINDS = (
    PLACE_ATTACH, PLACE_PRIMARY, PLACE_RESERVE, PLACE_IMPATIENT, PLACE_CFS,
)

#: Transitions that add the event's cpu to the primary nest / remove it.
#: Together with ``NEST_OFFLINE_EVICT`` (which may also evict a
#: reserve-only core) these are *exhaustive*: every mutation of the
#: primary set emits exactly one of them, which is what lets the
#: verification oracle (repro.verify.oracle) replay primary membership
#: from the event log alone.
PRIMARY_ADD_KINDS = frozenset({NEST_PROMOTE, NEST_EXPAND})
PRIMARY_REMOVE_KINDS = frozenset({NEST_COMPACT, NEST_EXIT_DEMOTE})

#: Placement commit kinds (the kernel accepted the policy's choice and
#: recorded the core in the task's §3.3 attachment history).
COMMIT_KINDS = frozenset({SCHED_FORK, SCHED_WAKEUP})

#: scx_nest primary-mask transitions (same exhaustiveness contract as the
#: PRIMARY_*_KINDS above, for the ``scxnest.mask_replay`` oracle check).
SCXNEST_PRIMARY_ADD_KINDS = frozenset({SCXNEST_PROMOTE, SCXNEST_EXPAND})
SCXNEST_PRIMARY_REMOVE_KINDS = frozenset({SCXNEST_COMPACT})
SCXNEST_TRANSITION_KINDS = frozenset({
    SCXNEST_PROMOTE, SCXNEST_EXPAND, SCXNEST_COMPACT,
})

#: Short tier names of the placement kinds, in presentation order
#: (``place.attach`` -> ``attach`` ...).  Analysis reports key latency
#: breakdowns on these.
PLACEMENT_TIERS = tuple(k.split(".", 1)[1] for k in PLACEMENT_KINDS)

#: Tier label for dispatches with no preceding ``place.*`` event — pure
#: CFS runs emit none (the CFS scheduler is not instrumented with
#: placement tiers), so their latency lands here.
UNATTRIBUTED_TIER = "unattributed"


def placement_tier(kind: str) -> "str | None":
    """The short tier name of a placement kind (``None`` otherwise)."""
    if kind in PLACEMENT_KINDS:
        return kind.split(".", 1)[1]
    return None


def event_to_dict(ev: SchedEvent) -> dict:
    """The JSONL-dump representation of one event (stable field names)."""
    return {"t": ev.t, "kind": ev.kind, "cpu": ev.cpu,
            "task": ev.task, "value": ev.value}


def event_from_dict(d: dict) -> SchedEvent:
    """Rebuild a :class:`SchedEvent` from its JSONL-dump representation."""
    return SchedEvent(t=int(d["t"]), kind=str(d["kind"]),
                      cpu=int(d.get("cpu", -1)), task=int(d.get("task", -1)),
                      value=int(d.get("value", 0)))
