"""The event-log hub the simulator emits into.

The contract with the hot paths is strict, to protect the engine's
throughput (the PR-1 optimization work):

* Emission sites *must* guard with ``if obs.enabled:`` before calling
  :meth:`EventLog.emit`.  A disabled log therefore costs one attribute
  read and a branch per site, and **allocates nothing** — no
  :class:`~repro.obs.events.SchedEvent` is ever constructed.
* ``enabled`` flips to True only when a sink is attached, never manually.

Sinks are plain callables receiving the :class:`SchedEvent`; the common
one is the list sink from :meth:`EventLog.attach_memory`.
"""

from __future__ import annotations

from typing import Callable, List

from .events import SchedEvent

#: Subscriber signature: called once per emitted event.
EventSink = Callable[[SchedEvent], None]


class EventLog:
    """Dispatches structured scheduler events to attached sinks."""

    __slots__ = ("enabled", "_sinks")

    def __init__(self) -> None:
        self.enabled = False
        self._sinks: List[EventSink] = []

    def attach(self, sink: EventSink) -> None:
        """Register a sink; enables the log."""
        self._sinks.append(sink)
        self.enabled = True

    def attach_memory(self) -> List[SchedEvent]:
        """Attach a list sink and return the list it fills."""
        events: List[SchedEvent] = []
        self.attach(events.append)
        return events

    def detach_all(self) -> None:
        """Remove every sink; the log goes back to costing nothing."""
        self._sinks.clear()
        self.enabled = False

    def emit(self, t: int, kind: str, cpu: int = -1, task: int = -1,
             value: int = 0) -> None:
        """Dispatch one event.  Callers must have checked ``enabled``."""
        ev = SchedEvent(t, kind, cpu, task, value)
        for sink in self._sinks:
            sink(ev)
