"""The analyzer protocol: single-pass, composable, deterministic.

An :class:`Analyzer` consumes a run's structured event log once, event
by event, and finishes into a JSON-serializable report fragment.  The
driver (:func:`run_analyzers`) feeds every analyzer from the same single
pass over the log, so analyzing a million-event run costs one iteration
regardless of how many analyzers are registered.

The determinism contract (DESIGN.md §9): a report is a pure function of
the event log plus the :class:`AnalysisContext` — no wall-clock reads,
no host information, no iteration over unordered containers without
sorting.  Because the two engines emit bit-identical event logs, the
same report is byte-identical across ``--engine ref`` and ``fast``,
which the golden files and the parity tests pin.

Analyzers are strictly post-hoc: nothing here is imported by the engine
or kernel hot paths, and event collection itself is the pre-existing
``collect_events`` memory sink.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence

from ..events import SchedEvent

#: Bump when a report's meaning changes (additions are free); the
#: envelope carries it so archived reports stay interpretable.
ANALYSIS_VERSION = 1

#: Default warm window: a core counts as warm for a dispatch when it was
#: last active at most this many simulated microseconds earlier (about
#: one scheduling tick on the modeled machines).
DEFAULT_WARM_WINDOW_US = 1000


@dataclass
class AnalysisContext:
    """Everything an analyzer may consult besides the event stream.

    Only run-describing, deterministic inputs belong here — never wall
    time, engine choice or host facts (see the determinism contract).
    """

    makespan_us: int = 0
    n_cpus: int = 0
    metrics: Dict[str, Any] = field(default_factory=dict)
    #: Tracer segments when the run recorded them (``record_trace``);
    #: the occupancy analyzer degrades gracefully without them.
    segments: Optional[Sequence[Any]] = None
    warm_window_us: int = DEFAULT_WARM_WINDOW_US


class Analyzer:
    """One single-pass reduction over the event log.

    Subclasses set ``name`` (the report key), accumulate state in
    :meth:`feed` and produce a JSON-ready dict in :meth:`finish`.
    """

    name: str = "?"

    def feed(self, ev: SchedEvent) -> None:
        raise NotImplementedError

    def finish(self, ctx: AnalysisContext) -> Dict[str, Any]:
        raise NotImplementedError


def default_analyzers() -> List[Analyzer]:
    """Fresh instances of the seven standard analyzers."""
    from .analyzers import (DeadlineAnalyzer, FreqRampAnalyzer,
                            LatencyTierAnalyzer, NestDynamicsAnalyzer,
                            OccupancyAnalyzer, SpinEconomicsAnalyzer,
                            WarmCoreAnalyzer)
    return [LatencyTierAnalyzer(), WarmCoreAnalyzer(),
            NestDynamicsAnalyzer(), FreqRampAnalyzer(),
            OccupancyAnalyzer(), SpinEconomicsAnalyzer(),
            DeadlineAnalyzer()]


def run_analyzers(events: Iterable[SchedEvent], ctx: AnalysisContext,
                  analyzers: Optional[Sequence[Analyzer]] = None,
                  ) -> Dict[str, Dict[str, Any]]:
    """Feed every analyzer from one pass over ``events``.

    Returns ``{analyzer.name: report}`` with names sorted, so the
    serialized output is stable however the analyzers were listed.
    """
    active = list(analyzers) if analyzers is not None else default_analyzers()
    names = [a.name for a in active]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate analyzer names: {sorted(names)}")
    for ev in events:
        for a in active:
            a.feed(ev)
    return {a.name: a.finish(ctx) for a in sorted(active,
                                                  key=lambda a: a.name)}
