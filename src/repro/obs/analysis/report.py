"""Report assembly: run → analyzer reports → canonical JSON and digests.

:func:`analyze_run` replays a run's event log through the standard
analyzers and wraps their reports in a run-describing envelope.  The
envelope deliberately excludes anything non-deterministic (wall time,
host, engine backend): the serialized report is byte-identical across
repeat runs and across the ``ref``/``fast`` engines, which is what lets
the reference reports live as golden files.

:func:`derived_metrics` is the sweep-side sibling: a pure function of a
run's *serialized metrics registry* (no event log needed) computing the
paper-level scalars — wakeup-latency percentiles, placement-tier shares,
the warm share — that ride into history rows and are gated by ``repro
history diff`` exactly like raw counters.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, List, Optional, Sequence

from ...metrics.quantiles import histogram_quantile
from ..events import SchedEvent
from .base import (ANALYSIS_VERSION, AnalysisContext, Analyzer,
                   DEFAULT_WARM_WINDOW_US, run_analyzers)

#: History/diff prefix of every derived scalar.
DERIVED_PREFIX = "derived."

#: Wakeup-latency percentiles exported as derived metrics.
_WAKEUP_PERCENTILES = (50, 90, 99)

#: Placement-tier counters -> derived share names.
_TIER_COUNTERS = (
    ("nest.attachment_hits", "share_attach"),
    ("nest.primary_hits", "share_primary"),
    ("nest.reserve_hits", "share_reserve"),
    ("nest.impatient_placements", "share_impatient"),
    ("nest.cfs_fallbacks", "share_cfs"),
)


def analyze_run(result: Any, events: Sequence[SchedEvent], *,
                n_cpus: int = 0,
                segments: Optional[Sequence[Any]] = None,
                warm_window_us: int = DEFAULT_WARM_WINDOW_US,
                analyzers: Optional[Sequence[Analyzer]] = None,
                ) -> Dict[str, Any]:
    """The full analysis report of one run.

    ``result`` is a :class:`~repro.metrics.summary.RunResult` (or
    ``None`` when analyzing a bare JSONL event dump — the envelope then
    carries placeholders).  ``segments`` are tracer segments when the
    run recorded them.
    """
    ctx = AnalysisContext(
        makespan_us=getattr(result, "makespan_us", 0) if result else (
            max((ev.t for ev in events), default=0)),
        n_cpus=n_cpus,
        metrics=dict(getattr(result, "metrics", None) or {}),
        segments=segments,
        warm_window_us=warm_window_us)
    run_info: Dict[str, Any] = {"n_events": len(events)}
    if result is not None:
        run_info.update({
            "workload": result.workload, "machine": result.machine,
            "scheduler": result.scheduler, "governor": result.governor,
            "seed": result.seed, "makespan_us": result.makespan_us,
            "energy_j": round(result.energy_joules, 6),
        })
    return {
        "analysis_version": ANALYSIS_VERSION,
        "run": run_info,
        "analyzers": run_analyzers(events, ctx, analyzers),
    }


def report_json(report: Dict[str, Any]) -> str:
    """Canonical serialization (what golden files pin byte-for-byte)."""
    return json.dumps(report, sort_keys=True, indent=2) + "\n"


def report_text(report: Dict[str, Any]) -> str:
    """Human-readable digest of a report (the non-``--json`` output)."""
    lines: List[str] = []
    run = report.get("run", {})
    if "workload" in run:
        lines.append(f"{run['workload']} on {run.get('machine', '?')} "
                     f"[{run.get('scheduler', '?')}-"
                     f"{run.get('governor', '?')}] seed={run.get('seed')}")
        lines.append(f"  makespan={run.get('makespan_us', 0):,}µs  "
                     f"energy={run.get('energy_j', 0.0):.1f}J  "
                     f"{run.get('n_events', 0):,} events analyzed")
    a = report.get("analyzers", {})
    lat = a.get("latency_tiers", {})
    overall = lat.get("overall", {})
    if overall.get("n"):
        lines.append(f"latency: {overall['n']} dispatches  "
                     f"p50={overall.get('p50_us')}µs  "
                     f"p99={overall.get('p99_us')}µs  "
                     f"max={overall.get('max_us')}µs")
        for tier, s in sorted(lat.get("tiers", {}).items()):
            lines.append(f"  {tier:12s} n={s['n']:<6} "
                         f"p50={s.get('p50_us')}µs  p99={s.get('p99_us')}µs")
    warm = a.get("warm_cores", {})
    if warm.get("dispatches"):
        lines.append(f"warm cores: {warm['warm']}/{warm['dispatches']} "
                     f"dispatches warm ({warm['warm_fraction']:.1%}, "
                     f"window {warm['window_us']}µs)")
    nest = a.get("nest_dynamics", {})
    if nest.get("transitions"):
        size = nest.get("primary_size", {})
        lines.append(f"nest: {nest['transitions']} transitions "
                     f"({nest['churn_per_s']:.1f}/s), primary size "
                     f"min={size.get('min')} max={size.get('max')} "
                     f"final={size.get('final')} "
                     f"mean={size.get('time_weighted_mean')}")
    freq = a.get("freq_ramps", {})
    if freq.get("steps"):
        ttp = freq.get("time_to_peak_us")
        lines.append(f"freq: {freq['up_steps']} up-steps over "
                     f"{freq['cores_stepped']} cores"
                     + (f", peak {freq.get('peak_mhz')}MHz reached at "
                        f"{ttp:,}µs" if ttp is not None else ""))
    occ = a.get("occupancy", {})
    if occ:
        lines.append(f"occupancy[{occ.get('source')}]: "
                     f"{occ.get('cores_used')} of {occ.get('n_cpus')} "
                     f"cores used"
                     + (f", mean utilization "
                        f"{occ['mean_utilization']:.1%}"
                        if "mean_utilization" in occ else ""))
    spin = a.get("spin_economics", {})
    if spin.get("spins"):
        lines.append(f"spin: {spin['spins']} spins, {spin['spin_us']:,}µs "
                     f"burned, {spin['absorbed_wakeups']} wakeups absorbed "
                     f"({spin['absorbed_fraction_of_spins']:.1%} of spins, "
                     f"{spin['spin_us_per_absorbed']:.0f}µs each)")
    dl = a.get("deadlines", {})
    if dl.get("jobs"):
        line = (f"deadlines: {dl['met']}/{dl['jobs']} met "
                f"({dl['miss_fraction']:.1%} missed), "
                f"{dl['kills']} RT kills, "
                f"{dl['activations']} backup activations")
        recov = dl.get("recovery", {})
        if recov.get("n"):
            line += (f", recovery p50={recov.get('p50_us')}µs "
                     f"max={recov.get('max_us')}µs")
        lines.append(line)
    return "\n".join(lines)


def analysis_digest(report: Dict[str, Any]) -> Dict[str, Any]:
    """A compact, self-describing digest of a report.

    Embedded in fuzz repro files so a ``tests/repros/`` entry records
    what the failing run *looked like* without carrying the full report;
    ``sha256`` fingerprints the canonical JSON.
    """
    sha = hashlib.sha256(
        json.dumps(report, sort_keys=True,
                   separators=(",", ":")).encode()).hexdigest()
    a = report.get("analyzers", {})
    summary: Dict[str, Any] = {}
    overall = a.get("latency_tiers", {}).get("overall", {})
    for key in ("n", "p50_us", "p99_us"):
        if key in overall:
            summary[f"latency_{key}"] = overall[key]
    warm = a.get("warm_cores", {})
    if warm:
        summary["warm_fraction"] = warm.get("warm_fraction")
    spin = a.get("spin_economics", {})
    if spin:
        summary["absorbed_wakeups"] = spin.get("absorbed_wakeups")
    nest = a.get("nest_dynamics", {})
    if nest:
        summary["nest_transitions"] = nest.get("transitions")
    dl = a.get("deadlines", {})
    if dl.get("jobs"):
        summary["deadline_jobs"] = dl.get("jobs")
        summary["deadline_missed"] = dl.get("missed")
    return {"analysis_version": report.get("analysis_version"),
            "sha256": sha, "summary": summary}


def derived_metrics(metrics: Dict[str, Any]) -> Dict[str, float]:
    """Paper-level scalars derived from a serialized metrics registry.

    Pure and post-hoc: computed by the sweep parent from the already
    serialized registry, never in the simulation.  Keys carry the
    ``derived.`` prefix so history's metric gate treats them exactly
    like raw counters (old history rows without them are skipped by the
    gate's key intersection).
    """
    out: Dict[str, float] = {}
    hist = metrics.get("kernel.wakeup_latency_us")
    if isinstance(hist, dict) and hist.get("type") == "histogram":
        for p in _WAKEUP_PERCENTILES:
            q = histogram_quantile(hist["edges"], hist["counts"], p)
            if q is not None:
                out[f"{DERIVED_PREFIX}wakeup_p{p}_us"] = q
    def counter(name: str) -> Optional[int]:
        entry = metrics.get(name)
        if isinstance(entry, dict) and entry.get("type") == "counter":
            return entry["value"]
        return None
    placements = counter("nest.placements")
    if placements:
        warm_hits = 0
        for name, derived in _TIER_COUNTERS:
            v = counter(name)
            if v is None:
                continue
            out[DERIVED_PREFIX + derived] = round(v / placements, 6)
            if derived in ("share_attach", "share_primary",
                           "share_reserve"):
                warm_hits += v
        out[DERIVED_PREFIX + "warm_share"] = round(warm_hits / placements, 6)
    met = counter("kernel.rt_deadline_met")
    missed = counter("kernel.rt_deadline_miss")
    jobs = (met or 0) + (missed or 0)
    if jobs:
        out[DERIVED_PREFIX + "deadline_jobs"] = jobs
        out[DERIVED_PREFIX + "deadline_misses"] = missed or 0
        out[DERIVED_PREFIX + "deadline_miss_fraction"] = round(
            (missed or 0) / jobs, 6)
        out[DERIVED_PREFIX + "deadline_activations"] = counter(
            "kernel.rt_backup_activations") or 0
        out[DERIVED_PREFIX + "deadline_kills"] = counter(
            "kernel.rt_kills") or 0
        recov = metrics.get("kernel.rt_recovery_latency_us")
        if isinstance(recov, dict) and recov.get("type") == "histogram" \
                and recov.get("count"):
            for p in (50, 99):
                q = histogram_quantile(recov["edges"], recov["counts"], p)
                if q is not None:
                    out[f"{DERIVED_PREFIX}deadline_recovery_p{p}_us"] = q
    return out
