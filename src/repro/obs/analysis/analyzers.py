"""The seven standard analyzers: the paper's claims, computed from events.

Each one is a small single-pass state machine over the structured event
log (see :mod:`repro.obs.events` for the vocabulary and emission-order
guarantees the analyzers rely on):

* ``latency_tiers`` — wakeup→dispatch latency percentiles split by the
  §3 placement tier that chose the core (``sched.dispatch`` carries the
  latency; the task's most recent ``place.*`` event names the tier).
* ``warm_cores`` — the paper's central claim: what fraction of
  dispatches landed on a core that was active within a configurable
  warm window.
* ``nest_dynamics`` — primary-nest size timeline, churn rate and the
  §3.1 compaction/expansion cadence from the ``nest.*`` transitions.
* ``freq_ramps`` — §2.3: up-steps per core, time until each core (and
  the run) first reached its peak frequency, and wall-time residency
  per DVFS state (busy-time residency lives in ``metrics/freqdist``).
* ``occupancy`` — per-core gantt summary (busy/spin/idle) from tracer
  segments when recorded, degrading to dispatch counts otherwise.
* ``spin_economics`` — §3.2: time burned spinning vs wakeups the spin
  absorbed (the kernel stops the spin and dispatches at the same
  timestamp, which is how absorption is detected).
* ``deadlines`` — fault-tolerant RT (DESIGN.md §10): deadline outcomes,
  RT kills, backup activations and promotion→completion recovery
  latency, from the ``rt.*`` event family.

Everything rounds through :func:`_ratio` so reports serialize to stable
decimals; all iteration over accumulated dicts is sorted.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set

from ...metrics.quantiles import percentile
from ..events import (FREQ_STEP, PLACEMENT_KINDS, PLACEMENT_TIERS,
                      RT_BACKUP_ACTIVATE, RT_BACKUP_PLACE, RT_DEADLINE_MET,
                      RT_DEADLINE_MISS, RT_KILL, SCHED_DISPATCH,
                      SCHED_PREEMPT, SPIN_START, SPIN_STOP,
                      UNATTRIBUTED_TIER, SchedEvent, placement_tier)
from .base import Analyzer, AnalysisContext

#: Percentiles every latency summary reports.
LATENCY_PERCENTILES = (50, 90, 99)


def _ratio(num: float, den: float, digits: int = 6) -> float:
    """A rounded fraction (0.0 when the denominator is empty)."""
    return round(num / den, digits) if den else 0.0


def _latency_summary(samples: List[int]) -> Dict[str, Any]:
    out: Dict[str, Any] = {"n": len(samples)}
    if samples:
        out["mean_us"] = round(sum(samples) / len(samples), 3)
        out["max_us"] = max(samples)
        for p in LATENCY_PERCENTILES:
            out[f"p{p}_us"] = percentile(samples, p)
    return out


class LatencyTierAnalyzer(Analyzer):
    """Wakeup→dispatch latency, attributed to the placing search tier."""

    name = "latency_tiers"

    def __init__(self, top_tasks: int = 5) -> None:
        self._tier_of_task: Dict[int, str] = {}
        self._by_tier: Dict[str, List[int]] = {}
        self._overall: List[int] = []
        # task -> [dispatches, total latency, max latency]
        self._per_task: Dict[int, List[int]] = {}
        self._top_tasks = top_tasks

    def feed(self, ev: SchedEvent) -> None:
        if ev.kind in PLACEMENT_KINDS:
            self._tier_of_task[ev.task] = placement_tier(ev.kind)
        elif ev.kind == SCHED_DISPATCH:
            tier = self._tier_of_task.get(ev.task, UNATTRIBUTED_TIER)
            self._by_tier.setdefault(tier, []).append(ev.value)
            self._overall.append(ev.value)
            acc = self._per_task.setdefault(ev.task, [0, 0, 0])
            acc[0] += 1
            acc[1] += ev.value
            acc[2] = max(acc[2], ev.value)

    def finish(self, ctx: AnalysisContext) -> Dict[str, Any]:
        tiers = {}
        for tier in PLACEMENT_TIERS + (UNATTRIBUTED_TIER,):
            samples = self._by_tier.get(tier)
            if samples:
                tiers[tier] = _latency_summary(samples)
        ranked = sorted(self._per_task.items(),
                        key=lambda kv: (-kv[1][1], kv[0]))
        top = [{"task": task, "dispatches": n, "total_us": total,
                "max_us": peak}
               for task, (n, total, peak) in ranked[:self._top_tasks]]
        return {"overall": _latency_summary(self._overall),
                "tiers": tiers, "top_tasks": top}


class WarmCoreAnalyzer(Analyzer):
    """Fraction of dispatches landing on a recently-active (warm) core."""

    name = "warm_cores"

    #: Event kinds that prove the core was just active (spinning counts:
    #: §3.2 keeps the core awake at high frequency on purpose).
    _ACTIVITY = frozenset({SCHED_DISPATCH, SCHED_PREEMPT,
                           SPIN_START, SPIN_STOP})

    def __init__(self) -> None:
        self._last_active: Dict[int, int] = {}
        self._tier_of_task: Dict[int, str] = {}
        self._pending: List[tuple] = []   # (tier, age_us or None)

    def feed(self, ev: SchedEvent) -> None:
        if ev.kind in PLACEMENT_KINDS:
            self._tier_of_task[ev.task] = placement_tier(ev.kind)
            return
        if ev.kind == SCHED_DISPATCH:
            tier = self._tier_of_task.get(ev.task, UNATTRIBUTED_TIER)
            seen = self._last_active.get(ev.cpu)
            self._pending.append(
                (tier, None if seen is None else ev.t - seen))
        if ev.kind in self._ACTIVITY and ev.cpu >= 0:
            self._last_active[ev.cpu] = ev.t

    def finish(self, ctx: AnalysisContext) -> Dict[str, Any]:
        window = ctx.warm_window_us
        total = warm = 0
        per_tier: Dict[str, List[int]] = {}
        for tier, age in self._pending:
            acc = per_tier.setdefault(tier, [0, 0])
            acc[0] += 1
            total += 1
            if age is not None and age <= window:
                acc[1] += 1
                warm += 1
        tiers = {tier: {"dispatches": n, "warm": w,
                        "warm_fraction": _ratio(w, n)}
                 for tier, (n, w) in sorted(per_tier.items())}
        return {"window_us": window, "dispatches": total, "warm": warm,
                "warm_fraction": _ratio(warm, total), "tiers": tiers}


class NestDynamicsAnalyzer(Analyzer):
    """Primary-nest size over time, churn and transition cadence."""

    name = "nest_dynamics"

    def __init__(self, timeline_points: int = 64) -> None:
        self._counts: Dict[str, int] = {}
        self._sizes: List[tuple] = []      # (t, primary size after)
        self._last_by_kind: Dict[str, int] = {}
        self._gaps: Dict[str, List[int]] = {}
        self._timeline_points = timeline_points

    def feed(self, ev: SchedEvent) -> None:
        if not ev.kind.startswith("nest."):
            return
        self._counts[ev.kind] = self._counts.get(ev.kind, 0) + 1
        self._sizes.append((ev.t, ev.value))
        prev = self._last_by_kind.get(ev.kind)
        if prev is not None:
            self._gaps.setdefault(ev.kind, []).append(ev.t - prev)
        self._last_by_kind[ev.kind] = ev.t

    def finish(self, ctx: AnalysisContext) -> Dict[str, Any]:
        n = len(self._sizes)
        out: Dict[str, Any] = {
            "transitions": n,
            "by_kind": dict(sorted(self._counts.items())),
            "churn_per_s": _ratio(n * 1_000_000, ctx.makespan_us, 3),
        }
        if self._sizes:
            values = [s for _, s in self._sizes]
            # Time-weighted mean of the size step function (size 0 until
            # the first transition — the nest starts empty).
            weighted = 0
            prev_t, prev_size = 0, 0
            for t, size in self._sizes:
                weighted += prev_size * (t - prev_t)
                prev_t, prev_size = t, size
            if ctx.makespan_us > prev_t:
                weighted += prev_size * (ctx.makespan_us - prev_t)
            out["primary_size"] = {
                "min": min(values), "max": max(values),
                "final": values[-1],
                "time_weighted_mean": _ratio(weighted,
                                             max(ctx.makespan_us, prev_t), 3),
            }
            pts = self._sizes
            if len(pts) > self._timeline_points:
                step = len(pts) / self._timeline_points
                pts = [pts[int(i * step)]
                       for i in range(self._timeline_points)]
                pts.append(self._sizes[-1])
            out["timeline"] = [[t, size] for t, size in pts]
        cadence = {}
        for kind, gaps in sorted(self._gaps.items()):
            cadence[kind] = {"n_gaps": len(gaps),
                             "mean_gap_us": round(sum(gaps) / len(gaps), 1)}
        out["cadence"] = cadence
        return out


class FreqRampAnalyzer(Analyzer):
    """DVFS ramps: up-steps, time to peak, wall-time state residency."""

    name = "freq_ramps"

    def __init__(self) -> None:
        self._freq: Dict[int, int] = {}       # core -> current MHz
        self._since: Dict[int, int] = {}      # core -> t of last step
        self._residency: Dict[int, int] = {}  # MHz -> accumulated µs
        self._up_steps = 0
        self._down_steps = 0
        self._steps = 0
        self._core_peak: Dict[int, tuple] = {}   # core -> (peak MHz, first t)

    def feed(self, ev: SchedEvent) -> None:
        if ev.kind != FREQ_STEP:
            return
        core, mhz = ev.cpu, ev.value
        self._steps += 1
        prev = self._freq.get(core)
        if prev is not None:
            self._residency[prev] = (self._residency.get(prev, 0)
                                     + ev.t - self._since[core])
            if mhz > prev:
                self._up_steps += 1
            elif mhz < prev:
                self._down_steps += 1
        self._freq[core] = mhz
        self._since[core] = ev.t
        peak = self._core_peak.get(core)
        if peak is None or mhz > peak[0]:
            self._core_peak[core] = (mhz, ev.t)

    def finish(self, ctx: AnalysisContext) -> Dict[str, Any]:
        # Close every core's final residency interval at makespan.
        residency = dict(self._residency)
        for core, mhz in self._freq.items():
            tail = max(ctx.makespan_us - self._since[core], 0)
            residency[mhz] = residency.get(mhz, 0) + tail
        total_us = sum(residency.values())
        states = [{"mhz": mhz, "us": us, "fraction": _ratio(us, total_us)}
                  for mhz, us in sorted(residency.items())]
        out: Dict[str, Any] = {
            "steps": self._steps, "up_steps": self._up_steps,
            "down_steps": self._down_steps,
            "cores_stepped": len(self._freq),
            "residency_basis": "wall",   # freqdist weights by busy time
            "residency": states,
        }
        if self._core_peak:
            peak_mhz = max(mhz for mhz, _ in self._core_peak.values())
            out["peak_mhz"] = peak_mhz
            out["time_to_peak_us"] = min(
                t for mhz, t in self._core_peak.values() if mhz == peak_mhz)
            own_peaks = [t for _, t in self._core_peak.values()]
            out["core_time_to_own_peak_us"] = {
                "mean": round(sum(own_peaks) / len(own_peaks), 1),
                "max": max(own_peaks),
            }
        return out


class OccupancyAnalyzer(Analyzer):
    """Per-core gantt summary: busy/spin time and task spread."""

    name = "occupancy"

    def __init__(self, top_cores: int = 8) -> None:
        self._dispatches: Dict[int, int] = {}
        self._tasks: Dict[int, Set[int]] = {}
        self._top_cores = top_cores

    def feed(self, ev: SchedEvent) -> None:
        if ev.kind == SCHED_DISPATCH:
            self._dispatches[ev.cpu] = self._dispatches.get(ev.cpu, 0) + 1
            self._tasks.setdefault(ev.cpu, set()).add(ev.task)

    def finish(self, ctx: AnalysisContext) -> Dict[str, Any]:
        if ctx.segments:
            return self._from_segments(ctx)
        ranked = sorted(self._dispatches.items(),
                        key=lambda kv: (-kv[1], kv[0]))
        cores = [{"cpu": cpu, "dispatches": n,
                  "distinct_tasks": len(self._tasks[cpu])}
                 for cpu, n in ranked[:self._top_cores]]
        return {"source": "events", "cores_used": len(self._dispatches),
                "n_cpus": ctx.n_cpus, "top_cores": cores}

    def _from_segments(self, ctx: AnalysisContext) -> Dict[str, Any]:
        busy: Dict[int, int] = {}
        spin: Dict[int, int] = {}
        for seg in ctx.segments:
            if seg.spinning:
                spin[seg.core] = spin.get(seg.core, 0) + seg.duration
            elif seg.task_id >= 0:
                busy[seg.core] = busy.get(seg.core, 0) + seg.duration
        used = sorted(set(busy) | set(spin))
        span = ctx.makespan_us or 1
        ranked = sorted(used, key=lambda c: (-(busy.get(c, 0)
                                               + spin.get(c, 0)), c))
        cores = [{"cpu": c, "busy_us": busy.get(c, 0),
                  "spin_us": spin.get(c, 0),
                  "utilization": _ratio(busy.get(c, 0), span),
                  "dispatches": self._dispatches.get(c, 0)}
                 for c in ranked[:self._top_cores]]
        total_busy = sum(busy.values())
        total_spin = sum(spin.values())
        return {"source": "segments", "cores_used": len(used),
                "n_cpus": ctx.n_cpus,
                "busy_us": total_busy, "spin_us": total_spin,
                "idle_us": max(span * (ctx.n_cpus or len(used))
                               - total_busy - total_spin, 0),
                "mean_utilization": _ratio(total_busy,
                                           span * (ctx.n_cpus or 1)),
                "top_cores": cores}


class DeadlineAnalyzer(Analyzer):
    """Fault-tolerant RT outcomes from the ``rt.*`` event family.

    ``rt.deadline_met``/``miss`` carry the *primary's* tid;
    ``rt.backup_activate`` carries the backup's tid with the dead
    primary's tid in ``value``, which is how a promotion is matched to
    the job outcome it eventually produces (the recovery latency).
    Misses additionally yield tardiness: the accounting time minus the
    absolute deadline the event carries in ``value``.
    """

    name = "deadlines"

    def __init__(self) -> None:
        self._met = 0
        self._missed = 0
        self._kills = 0
        self._activations = 0
        self._places_disjoint = 0
        self._places_fallback = 0
        self._activated_at: Dict[int, int] = {}   # primary tid -> t
        self._recovery: List[int] = []
        self._tardiness: List[int] = []

    def feed(self, ev: SchedEvent) -> None:
        if ev.kind == RT_DEADLINE_MET:
            self._met += 1
            self._close_recovery(ev)
        elif ev.kind == RT_DEADLINE_MISS:
            self._missed += 1
            self._close_recovery(ev)
            if ev.t > ev.value:
                self._tardiness.append(ev.t - ev.value)
        elif ev.kind == RT_KILL:
            self._kills += 1
        elif ev.kind == RT_BACKUP_ACTIVATE:
            self._activations += 1
            self._activated_at[ev.value] = ev.t
        elif ev.kind == RT_BACKUP_PLACE:
            if ev.value >= 0:
                self._places_disjoint += 1
            else:
                self._places_fallback += 1

    def _close_recovery(self, ev: SchedEvent) -> None:
        started = self._activated_at.pop(ev.task, None)
        if started is not None:
            self._recovery.append(ev.t - started)

    def finish(self, ctx: AnalysisContext) -> Dict[str, Any]:
        jobs = self._met + self._missed
        return {
            "jobs": jobs,
            "met": self._met,
            "missed": self._missed,
            "miss_fraction": _ratio(self._missed, jobs),
            "kills": self._kills,
            "activations": self._activations,
            "backup_placements": {"disjoint": self._places_disjoint,
                                  "fallback": self._places_fallback},
            "recovery": _latency_summary(self._recovery),
            "tardiness": _latency_summary(self._tardiness),
        }


class SpinEconomicsAnalyzer(Analyzer):
    """§3.2 spin economics: time burned spinning vs wakeups absorbed."""

    name = "spin_economics"

    def __init__(self) -> None:
        self._open: Dict[int, int] = {}       # cpu -> spin start t
        self._stopped_at: Dict[int, int] = {}  # cpu -> t of last spin.stop
        self._spins = 0
        self._spin_us = 0
        self._absorbed = 0
        self._dispatches = 0

    def feed(self, ev: SchedEvent) -> None:
        if ev.kind == SPIN_START:
            self._open[ev.cpu] = ev.t
        elif ev.kind == SPIN_STOP:
            start = self._open.pop(ev.cpu, None)
            if start is not None:
                self._spins += 1
                self._spin_us += ev.t - start
                self._stopped_at[ev.cpu] = ev.t
        elif ev.kind == SCHED_DISPATCH:
            self._dispatches += 1
            # A wakeup absorbed by the spin: the kernel stops the spin
            # and dispatches at the same timestamp (spin.stop precedes
            # sched.dispatch in the log).
            if (ev.cpu in self._open
                    or self._stopped_at.get(ev.cpu) == ev.t):
                self._absorbed += 1

    def finish(self, ctx: AnalysisContext) -> Dict[str, Any]:
        return {
            "spins": self._spins,
            "unfinished_spins": len(self._open),
            "spin_us": self._spin_us,
            "mean_spin_us": _ratio(self._spin_us, self._spins, 1),
            "dispatches": self._dispatches,
            "absorbed_wakeups": self._absorbed,
            "absorbed_fraction_of_spins": _ratio(self._absorbed,
                                                 self._spins),
            "absorbed_fraction_of_dispatches": _ratio(self._absorbed,
                                                      self._dispatches),
            "spin_us_per_absorbed": _ratio(self._spin_us, self._absorbed, 1),
        }
