"""Event-log querying: filter by kind/cpu/task/time, render as a table.

The ``repro obs query`` backend.  Filtering is a pure generator over the
event sequence, so querying composes with any event source (a live run,
a JSONL dump).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from ..events import SchedEvent


@dataclass(frozen=True)
class EventFilter:
    """Which events a query keeps (``None`` = no constraint).

    ``kinds`` entries match exactly (``sched.dispatch``) or as a
    dot-terminated prefix group (``place`` matches every ``place.*``).
    """

    kinds: Tuple[str, ...] = ()
    cpu: Optional[int] = None
    task: Optional[int] = None
    since_us: Optional[int] = None
    until_us: Optional[int] = None

    def matches(self, ev: SchedEvent) -> bool:
        if self.kinds and not any(
                ev.kind == k or ev.kind.startswith(k + ".")
                for k in self.kinds):
            return False
        if self.cpu is not None and ev.cpu != self.cpu:
            return False
        if self.task is not None and ev.task != self.task:
            return False
        if self.since_us is not None and ev.t < self.since_us:
            return False
        if self.until_us is not None and ev.t > self.until_us:
            return False
        return True


def filter_events(events: Iterable[SchedEvent],
                  flt: EventFilter) -> Iterator[SchedEvent]:
    return (ev for ev in events if flt.matches(ev))


def render_events_table(events: Sequence[SchedEvent],
                        total: Optional[int] = None) -> str:
    """A plain aligned table of events (the non-``--json`` output)."""
    lines: List[str] = [f"{'t(µs)':>12}  {'kind':20} {'cpu':>5} "
                        f"{'task':>6} {'value':>8}"]
    for ev in events:
        cpu = str(ev.cpu) if ev.cpu >= 0 else "-"
        task = str(ev.task) if ev.task >= 0 else "-"
        lines.append(f"{ev.t:>12,}  {ev.kind:20} {cpu:>5} "
                     f"{task:>6} {ev.value:>8}")
    shown = len(events)
    if total is not None and total > shown:
        lines.append(f"... {total - shown} more matching event(s) "
                     f"(raise --limit)")
    return "\n".join(lines)
