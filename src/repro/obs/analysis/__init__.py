"""Trace analysis: derived paper metrics from a run's event log.

A streaming analyzer framework (DESIGN.md §9): a run's structured event
log — live from ``collect_events``, or re-read from a JSONL dump — is
replayed once through composable single-pass analyzers, each producing
a deterministic, JSON-serializable report fragment.  Strictly post-hoc:
nothing here runs during simulation.

* :mod:`~repro.obs.analysis.base` — the :class:`Analyzer` protocol,
  :class:`AnalysisContext` and the single-pass driver.
* :mod:`~repro.obs.analysis.analyzers` — the six standard analyzers
  (latency tiers, warm cores, nest dynamics, freq ramps, occupancy,
  spin economics).
* :mod:`~repro.obs.analysis.report` — report assembly, canonical JSON,
  repro digests, and the ``derived.*`` scalars history rows carry.
* :mod:`~repro.obs.analysis.diff` — cross-run attribution ("run A is
  slower than run B because…").
* :mod:`~repro.obs.analysis.query` — event filtering for
  ``repro obs query``.
"""

from .base import (ANALYSIS_VERSION, AnalysisContext, Analyzer,
                   DEFAULT_WARM_WINDOW_US, default_analyzers, run_analyzers)
from .diff import (MetricMove, diff_reports, flatten_numeric, rank_moves,
                   render_attribution)
from .query import EventFilter, filter_events, render_events_table
from .report import (analysis_digest, analyze_run, derived_metrics,
                     report_json, report_text)

__all__ = [
    "ANALYSIS_VERSION", "AnalysisContext", "Analyzer",
    "DEFAULT_WARM_WINDOW_US", "default_analyzers", "run_analyzers",
    "MetricMove", "diff_reports", "flatten_numeric", "rank_moves",
    "render_attribution",
    "EventFilter", "filter_events", "render_events_table",
    "analysis_digest", "analyze_run", "derived_metrics", "report_json",
    "report_text",
]
