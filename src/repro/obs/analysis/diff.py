"""Cross-run diff attribution: which derived metrics moved, ranked.

Two entry points share the ranking core:

* :func:`rank_moves` — compare two flat ``{name: number}`` maps (e.g.
  history rows' scalar+derived metrics) and rank by relative movement.
* :func:`diff_reports` — compare two full analysis reports (from
  :func:`~repro.obs.analysis.report.analyze_run`), adding the per-tier
  latency deltas the flat maps cannot carry, and render the
  human-readable "run A is slower than run B because…" attribution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

#: Movements below this relative threshold are noise, not attribution.
MIN_REL_MOVE = 1e-9


@dataclass(frozen=True)
class MetricMove:
    """One metric's movement between a baseline and a current run."""

    name: str
    base: float
    cur: float

    @property
    def delta(self) -> float:
        return self.cur - self.base

    @property
    def rel(self) -> float:
        """Relative movement; against a zero baseline the absolute delta
        is used so new activity still ranks."""
        if self.base:
            return abs(self.delta) / abs(self.base)
        return abs(self.delta)

    def render(self) -> str:
        if self.base:
            pct = self.delta / abs(self.base) * 100.0
            return f"{self.name}: {self.base:g} -> {self.cur:g} ({pct:+.1f}%)"
        return f"{self.name}: {self.base:g} -> {self.cur:g}"


def flatten_numeric(obj: Any, prefix: str = "") -> Dict[str, float]:
    """Flatten nested dicts to ``{dotted.path: number}`` (lists skipped:
    timelines and top-N tables are not comparable metric scalars)."""
    out: Dict[str, float] = {}
    if isinstance(obj, dict):
        for key in sorted(obj):
            path = f"{prefix}.{key}" if prefix else str(key)
            out.update(flatten_numeric(obj[key], path))
    elif isinstance(obj, bool):
        pass
    elif isinstance(obj, (int, float)):
        out[prefix] = float(obj)
    return out


def rank_moves(cur: Dict[str, float], base: Dict[str, float],
               top: Optional[int] = None) -> List[MetricMove]:
    """The metrics both sides carry, ranked by relative movement."""
    moves = [MetricMove(name, float(base[name]), float(cur[name]))
             for name in sorted(cur.keys() & base.keys())]
    moves = [m for m in moves if m.rel > MIN_REL_MOVE]
    moves.sort(key=lambda m: (-m.rel, m.name))
    return moves[:top] if top else moves


def _tier_latency_deltas(cur_report: Dict[str, Any],
                         base_report: Dict[str, Any]) -> List[Dict[str, Any]]:
    cur_tiers = cur_report.get("analyzers", {}) \
        .get("latency_tiers", {}).get("tiers", {})
    base_tiers = base_report.get("analyzers", {}) \
        .get("latency_tiers", {}).get("tiers", {})
    rows = []
    for tier in sorted(set(cur_tiers) | set(base_tiers)):
        c, b = cur_tiers.get(tier, {}), base_tiers.get(tier, {})
        row: Dict[str, Any] = {"tier": tier,
                               "dispatches": [b.get("n", 0), c.get("n", 0)]}
        for p in ("p50_us", "p99_us"):
            if p in c and p in b:
                row[p] = [b[p], c[p], c[p] - b[p]]
        rows.append(row)
    return rows


def diff_reports(cur_report: Dict[str, Any], base_report: Dict[str, Any],
                 top: int = 3) -> Dict[str, Any]:
    """Attribution document comparing two analysis reports.

    ``moves`` ranks every shared numeric metric (relative movement,
    most-moved first, at least the top ``top`` reported prominently);
    ``tier_latency`` carries the per-tier wakeup-latency deltas.
    """
    cur_flat = flatten_numeric(cur_report.get("analyzers", {}))
    base_flat = flatten_numeric(base_report.get("analyzers", {}))
    moves = rank_moves(cur_flat, base_flat)
    cur_span = cur_report.get("run", {}).get("makespan_us")
    base_span = base_report.get("run", {}).get("makespan_us")
    doc: Dict[str, Any] = {
        "makespan_us": [base_span, cur_span],
        "compared_metrics": len(cur_flat.keys() & base_flat.keys()),
        "top": top,
        "moves": [{"name": m.name, "base": m.base, "cur": m.cur,
                   "rel": round(m.rel, 6)} for m in moves[:max(top, 3) * 4]],
        "tier_latency": _tier_latency_deltas(cur_report, base_report),
    }
    return doc


def render_attribution(diff: Dict[str, Any],
                       cur_label: str = "current run",
                       base_label: str = "baseline run") -> str:
    """The human-readable "A is slower than B because…" report."""
    lines: List[str] = []
    base_span, cur_span = diff.get("makespan_us", [None, None])
    if cur_span is not None and base_span:
        ratio = cur_span / base_span
        if ratio > 1.0005:
            verdict = f"{cur_label} is {ratio:.2f}x slower than {base_label}"
        elif ratio < 0.9995:
            verdict = f"{cur_label} is {1 / ratio:.2f}x faster than {base_label}"
        else:
            verdict = f"{cur_label} and {base_label} have equal makespan"
        lines.append(f"{verdict} "
                     f"(makespan {base_span:,} -> {cur_span:,} µs).")
    else:
        lines.append(f"{cur_label} vs {base_label}:")
    moves = diff.get("moves", [])
    top = diff.get("top", 3)
    if moves:
        lines.append(f"top moved metrics "
                     f"(of {diff.get('compared_metrics', 0)} compared):")
        for m in moves[:top]:
            lines.append("  " + MetricMove(m["name"], m["base"],
                                           m["cur"]).render())
    else:
        lines.append("no shared metric moved — the runs look identical.")
    tier_rows = [r for r in diff.get("tier_latency", []) if "p99_us" in r]
    if tier_rows:
        lines.append("per-tier wakeup latency (p50/p99, µs):")
        for row in tier_rows:
            p50 = row.get("p50_us")
            p99 = row["p99_us"]
            b_n, c_n = row["dispatches"]
            p50_txt = (f"p50 {p50[0]} -> {p50[1]} ({p50[2]:+d})  "
                       if p50 else "")
            lines.append(f"  {row['tier']:12s} {p50_txt}"
                         f"p99 {p99[0]} -> {p99[1]} ({p99[2]:+d})  "
                         f"[{b_n} -> {c_n} dispatches]")
    return "\n".join(lines)
