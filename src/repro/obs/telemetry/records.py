"""The sweep-telemetry record vocabulary.

Every record is a flat JSON-able dict with three envelope fields —
``"v"`` (schema version), ``"t"`` (record kind) and ``"ts"`` (wall-clock
epoch seconds at emission) — plus the kind's payload.  Records flow from
sweep workers over a multiprocessing queue into the parent's
:class:`~repro.obs.telemetry.hub.TelemetryHub`, which appends them to a
crash-safe JSONL stream; the dashboard and the live progress views are
both consumers of this one vocabulary.

Kinds
-----

``sweep_start``  parent   sweep id, spec count, worker count
``run_start``    worker   a spec began executing (phase ``build``)
``hb``           worker   periodic in-run heartbeat: sim-time progress,
                          events processed, wall seconds, peak RSS
``run_end``      worker   a simulation finished: wall/events/makespan,
                          peak RSS and GC deltas, faults applied
``run_error``    worker   a simulation raised (the error's repr)
``run_done``     parent   sweep bookkeeping for one completed spec:
                          outcome (cached/simulated/retried/skipped),
                          done/total counters, attempts
``sweep_end``    parent   final :class:`SweepStats` image, interrupted flag

Workers and the parent interleave on the same queue, so consumers must
tolerate out-of-order pairs (a parent ``run_done`` can overtake the
worker's ``run_end`` for the same run).  Unknown kinds and unknown extra
fields must be ignored by readers: the schema grows by addition only,
and ``SCHEMA_VERSION`` is bumped when a field changes meaning.
"""

from __future__ import annotations

import json
import time
from typing import Any, Dict, Iterator, Optional, TextIO

#: Bump when an existing field changes meaning (additions are free).
SCHEMA_VERSION = 1

#: Every record kind this schema version emits.
RECORD_KINDS = frozenset({
    "sweep_start", "run_start", "hb", "run_end", "run_error",
    "run_done", "sweep_end",
})

#: Fields every record carries.
ENVELOPE_FIELDS = ("v", "t", "ts")

#: Required payload fields per kind (readers may rely on these existing).
REQUIRED_FIELDS: Dict[str, tuple] = {
    "sweep_start": ("sweep", "n_specs", "jobs"),
    "run_start": ("run", "pid"),
    "hb": ("run", "pid", "sim_us", "events", "wall_s"),
    "run_end": ("run", "pid", "wall_s", "events", "makespan_us"),
    "run_error": ("run", "error"),
    "run_done": ("run", "outcome", "done", "total"),
    "sweep_end": ("sweep", "stats", "interrupted"),
}


def make_record(kind: str, ts: Optional[float] = None,
                **fields: Any) -> Dict[str, Any]:
    """Build one telemetry record (envelope + payload)."""
    if kind not in RECORD_KINDS:
        raise ValueError(f"unknown telemetry record kind {kind!r}")
    rec: Dict[str, Any] = {"v": SCHEMA_VERSION, "t": kind,
                           "ts": time.time() if ts is None else ts}
    rec.update(fields)
    return rec


def validate_record(rec: Dict[str, Any]) -> list:
    """Schema problems of one record (empty list = valid)."""
    problems = []
    for f in ENVELOPE_FIELDS:
        if f not in rec:
            problems.append(f"missing envelope field {f!r}")
    kind = rec.get("t")
    if kind not in RECORD_KINDS:
        problems.append(f"unknown kind {kind!r}")
        return problems
    for f in REQUIRED_FIELDS[kind]:
        if f not in rec:
            problems.append(f"{kind}: missing field {f!r}")
    return problems


def write_record(fh: TextIO, rec: Dict[str, Any]) -> None:
    """Append one record as a JSONL line (caller owns flushing policy)."""
    fh.write(json.dumps(rec, separators=(",", ":"), sort_keys=True))
    fh.write("\n")


def read_stream(fh: TextIO) -> Iterator[Dict[str, Any]]:
    """Yield records from a JSONL telemetry stream.

    Tolerates the crash-truncation the writer permits: a torn final line
    (or any undecodable line) is skipped rather than raised, so a stream
    left behind by an interrupted sweep is still fully readable.
    """
    for line in fh:
        line = line.strip()
        if not line:
            continue
        try:
            rec = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(rec, dict):
            yield rec
