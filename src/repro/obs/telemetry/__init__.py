"""Sweep-level telemetry: live worker streaming and crash-safe JSONL.

PR 2 made a single *run* observable; this package makes the *sweep* the
observable unit.  Workers stream structured records (heartbeats, per-run
summaries with peak RSS and GC deltas) over a multiprocessing queue to a
:class:`~repro.obs.telemetry.hub.TelemetryHub` in the parent, which

* appends every record to a crash-safe JSONL stream
  (``<cache>/telemetry/<sweep>.jsonl``) so an interrupted sweep leaves a
  readable trail,
* renders a live progress view (:class:`~repro.obs.telemetry.view.LiveView`
  per-worker block on TTYs, :class:`~repro.obs.telemetry.view.PlainView`
  one-line-per-run fallback for CI logs), and
* hands the finished sweep to the run-history store
  (:mod:`repro.obs.history`) that feeds ``repro history diff`` and the
  HTML dashboard (:mod:`repro.obs.dashboard`).

Telemetry is strictly an observer: a sweep with telemetry enabled is
bit-identical to one without (enforced by ``tests/test_telemetry.py``).
"""

from .hub import (TelemetryHub, WorkerTelemetry, gc_totals, init_worker,
                  load_stream, rss_peak_kb, worker_telemetry)
from .records import (RECORD_KINDS, SCHEMA_VERSION, make_record, read_stream,
                      validate_record)
from .view import LiveView, PlainView, ProgressView, make_view

__all__ = [
    "TelemetryHub", "WorkerTelemetry", "init_worker", "worker_telemetry",
    "rss_peak_kb", "gc_totals", "load_stream",
    "RECORD_KINDS", "SCHEMA_VERSION", "make_record", "read_stream",
    "validate_record",
    "LiveView", "PlainView", "ProgressView", "make_view",
]
