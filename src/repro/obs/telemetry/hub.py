"""Live sweep telemetry: worker emitters and the parent-side hub.

The flow, end to end::

    pool worker                           parent process
    -----------                           --------------
    execute_spec()                        TelemetryHub.open_sweep()
      WorkerTelemetry.run_start()   --+     spawns the drain thread
      heartbeats from the tracer    --+-->  mp.Queue --> drain thread:
      WorkerTelemetry.run_end()     --+       * append to <sweep>.jsonl
                                              * feed the progress view
    (parent also emits run_done/           TelemetryHub.close_sweep()
     sweep_start/sweep_end records            flush + fsync, stop thread,
     into the same queue)                     record the sweep in history

Worker emitters are installed by the pool initializer
(:func:`init_worker`); the queue crosses the process boundary through
the ``ProcessPoolExecutor``'s worker-spawn path, so no manager process
is needed.  Everything is **best-effort and read-only**: a full queue, a
dead pipe or an unwritable stream directory degrades telemetry to
silence, never the sweep — and emitters only *observe* engine state
(no RNG draws, no event-queue writes), so a telemetry-on sweep is
bit-identical to a telemetry-off sweep (enforced by
``tests/test_telemetry.py``).

Crash safety of the JSONL stream: records are appended one line at a
time and the file handle is flushed after every record, so an
interrupted sweep (SIGKILL included) loses at most the final,
possibly-torn line — which :func:`~repro.obs.telemetry.records.read_stream`
skips on read.  The handle is fsynced on open and close.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
import threading
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional

from .records import make_record, read_stream, write_record

__all__ = [
    "TelemetryHub", "WorkerTelemetry", "init_worker", "worker_telemetry",
    "rss_peak_kb", "gc_totals", "load_stream",
]

try:
    import resource as _resource
except ImportError:  # pragma: no cover - non-POSIX
    _resource = None


def rss_peak_kb() -> int:
    """This process's peak resident set size, in KiB (0 if unknown).

    ``ru_maxrss`` is a process-lifetime high-water mark: in a pool worker
    that has executed several runs it is the peak *so far*, not the peak
    of the current run alone.
    """
    if _resource is None:
        return 0
    peak = _resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - reported in bytes
        peak //= 1024
    return int(peak)


def gc_totals() -> tuple:
    """(collections, objects collected) summed over all GC generations."""
    import gc
    stats = gc.get_stats()
    return (sum(s.get("collections", 0) for s in stats),
            sum(s.get("collected", 0) for s in stats))


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------

class WorkerTelemetry:
    """Per-process emitter of run telemetry records.

    Lives as a module global inside each pool worker (installed by
    :func:`init_worker`) and in the parent for serial/degraded rounds.
    ``send`` is any callable accepting one record dict (normally
    ``queue.put``); the first send failure silences the emitter for the
    rest of the process lifetime.
    """

    def __init__(self, send: Callable[[Dict[str, Any]], None],
                 heartbeat_s: float = 0.5) -> None:
        self._send: Optional[Callable] = send
        self.heartbeat_s = heartbeat_s
        self._run: Optional[str] = None
        self._t0 = 0.0
        self._last_hb = 0.0

    def emit(self, rec: Dict[str, Any]) -> None:
        send = self._send
        if send is None:
            return
        try:
            send(rec)
        except Exception:
            self._send = None   # dead pipe: telemetry off, sweep unharmed

    # -- run lifecycle ---------------------------------------------------

    def run_start(self, label: str) -> None:
        self._run = label
        self._t0 = self._last_hb = time.monotonic()
        self.emit(make_record("run_start", run=label, pid=os.getpid(),
                              phase="build"))

    def heartbeat_sink(self, engine: Any) -> Callable:
        """A tracer segment sink that emits wall-clock-gated heartbeats.

        Piggybacks on the tracer's segment callbacks (which fire on every
        task/frequency transition, telemetry or not) so no extra engine
        events are scheduled: the simulation is observed, never steered.
        """
        def sink(core: int, start: int, end: int, freq_mhz: int,
                 task_id: int, spinning: bool) -> None:
            now = time.monotonic()
            if now - self._last_hb < self.heartbeat_s:
                return
            self._last_hb = now
            self.emit(make_record(
                "hb", run=self._run, pid=os.getpid(), phase="sim",
                sim_us=end, events=engine.events_processed,
                wall_s=round(now - self._t0, 3),
                rss_peak_kb=rss_peak_kb()))
        return sink

    def run_end(self, result: Any) -> None:
        self.emit(make_record(
            "run_end", run=self._run, pid=os.getpid(),
            wall_s=round(time.monotonic() - self._t0, 3),
            events=result.events_processed,
            makespan_us=result.makespan_us,
            rss_peak_kb=result.rss_peak_kb,
            gc_collections=result.gc_collections,
            gc_collected=result.gc_collected,
            faults=int(result.extra.get("faults_injected", 0))))
        self._run = None

    def run_error(self, label: str, exc: BaseException) -> None:
        self.emit(make_record("run_error", run=label, pid=os.getpid(),
                              error=repr(exc)))
        self._run = None


#: The process-local emitter (None = telemetry off in this process).
_worker: Optional[WorkerTelemetry] = None


def init_worker(queue: Any, heartbeat_s: float) -> None:
    """Pool-worker initializer: install this process's emitter."""
    global _worker
    _worker = WorkerTelemetry(queue.put, heartbeat_s)


def worker_telemetry() -> Optional[WorkerTelemetry]:
    """The installed emitter of the current process, if any."""
    return _worker


def _install_local(emitter: Optional[WorkerTelemetry]) -> Optional[WorkerTelemetry]:
    """Swap the process-local emitter (parent-side serial rounds)."""
    global _worker
    prev, _worker = _worker, emitter
    return prev


# ---------------------------------------------------------------------------
# Parent side
# ---------------------------------------------------------------------------

#: Parent-enqueued sentinel that stops the drain thread.
_STOP = {"t": "__stop__"}


class TelemetryHub:
    """Parent-side collector: drains the queue, streams JSONL, renders.

    Construct one per sweep *configuration* and hand it to
    :class:`~repro.experiments.parallel.SweepExecutor`; the executor
    drives ``open_sweep`` / ``run_done`` / ``close_sweep``.  All three
    sinks are optional:

    * ``stream_dir`` — directory for the crash-safe ``<sweep>.jsonl``
      record stream (usually ``<cache>/telemetry/``);
    * ``view`` — a :class:`~repro.obs.telemetry.view.ProgressView`;
    * ``history`` — a :class:`~repro.obs.history.HistoryStore` that
      receives the finished sweep (and its runs) on ``close_sweep``.
    """

    def __init__(self, stream_dir: Optional[Path] = None,
                 view: Optional[Any] = None,
                 history: Optional[Any] = None,
                 heartbeat_s: float = 0.5,
                 label: Optional[str] = None) -> None:
        self.stream_dir = Path(stream_dir) if stream_dir else None
        self.view = view
        self.history = history
        self.heartbeat_s = heartbeat_s
        self.label = label
        self.sweep_id: Optional[str] = None
        self.stream_path: Optional[Path] = None
        self.records_handled = 0
        self._queue: Optional[Any] = None
        self._thread: Optional[threading.Thread] = None
        self._fh = None
        self._prev_local: Optional[WorkerTelemetry] = None

    # -- executor API ----------------------------------------------------

    def open_sweep(self, n_specs: int, jobs: int) -> str:
        """Start the drain thread and announce the sweep; returns its id."""
        self.sweep_id = (time.strftime("%Y%m%d-%H%M%S")
                         + f"-{os.urandom(3).hex()}")
        self.records_handled = 0
        self._queue = multiprocessing.get_context().Queue()
        if self.stream_dir is not None:
            try:
                self.stream_dir.mkdir(parents=True, exist_ok=True)
                self.stream_path = self.stream_dir / f"{self.sweep_id}.jsonl"
                self._fh = open(self.stream_path, "a", encoding="utf-8")
            except OSError:
                self.stream_path = None
                self._fh = None
        self._thread = threading.Thread(target=self._drain,
                                        name="telemetry-drain", daemon=True)
        self._thread.start()
        self.emit(make_record("sweep_start", sweep=self.sweep_id,
                              n_specs=n_specs, jobs=jobs, label=self.label))
        # Serial/degraded rounds execute specs in this process; give them
        # the same emitter a pool worker would have.
        self._prev_local = _install_local(
            WorkerTelemetry(self._queue.put, self.heartbeat_s))
        return self.sweep_id

    def pool_init(self) -> tuple:
        """(initializer, initargs) to pass to ``ProcessPoolExecutor``."""
        return init_worker, (self._queue, self.heartbeat_s)

    def emit(self, rec: Dict[str, Any]) -> None:
        """Parent-side record injection (same queue the workers use)."""
        q = self._queue
        if q is None:
            return
        try:
            q.put(rec)
        except Exception:
            pass

    def run_done(self, label: str, outcome: str, done: int, total: int,
                 result: Optional[Any] = None, attempts: int = 0) -> None:
        fields: Dict[str, Any] = dict(run=label, outcome=outcome, done=done,
                                      total=total, attempts=attempts)
        if result is not None:
            fields.update(wall_s=result.sim_wall_s,
                          events=result.events_processed,
                          makespan_us=result.makespan_us)
        self.emit(make_record("run_done", **fields))

    def close_sweep(self, stats: Optional[Dict[str, Any]] = None,
                    runs: Optional[List[Dict[str, Any]]] = None,
                    interrupted: bool = False) -> None:
        """Emit the final record, stop the drain, persist to history."""
        if self._queue is None:
            return
        _install_local(self._prev_local)
        self._prev_local = None
        self.emit(make_record("sweep_end", sweep=self.sweep_id,
                              stats=stats or {}, interrupted=interrupted))
        self.emit(_STOP)
        thread, self._thread = self._thread, None
        if thread is not None:
            thread.join(timeout=10.0)
        queue, self._queue = self._queue, None
        try:
            queue.close()
        except Exception:
            pass
        if self._fh is not None:
            try:
                self._fh.flush()
                os.fsync(self._fh.fileno())
                self._fh.close()
            except (OSError, ValueError):
                pass
            self._fh = None
        if self.view is not None:
            self.view.close()
        if self.history is not None and stats is not None:
            try:
                self.history.record_sweep(self.sweep_id, stats, runs or [],
                                          label=self.label,
                                          interrupted=interrupted)
            except Exception:
                pass   # history is a sink, never a failure mode

    # -- drain thread ----------------------------------------------------

    def _drain(self) -> None:
        queue = self._queue
        while True:
            try:
                rec = queue.get(timeout=0.25)
            except Exception:
                # Timeout, or a worker died mid-put and tore the pipe.
                if self._queue is None:
                    return     # close_sweep gave up on us
                continue
            if not isinstance(rec, dict):
                continue
            if rec.get("t") == "__stop__":
                return
            self._handle(rec)

    def _handle(self, rec: Dict[str, Any]) -> None:
        self.records_handled += 1
        if self._fh is not None:
            try:
                write_record(self._fh, rec)
                self._fh.flush()
            except (OSError, ValueError):
                self._fh = None   # stream gone; keep the sweep alive
        if self.view is not None:
            try:
                self.view.handle(rec)
            except Exception:
                self.view = None  # a broken renderer must not kill runs


def load_stream(path: Path) -> List[Dict[str, Any]]:
    """All records of one JSONL telemetry stream (torn tail tolerated)."""
    with open(path, encoding="utf-8") as fh:
        return list(read_stream(fh))
