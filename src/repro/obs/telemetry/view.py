"""Progress views over the telemetry record stream.

Two renderers, one interface: the :class:`TelemetryHub` feeds every
record to ``view.handle(record)`` from its drain thread and calls
``view.close()`` when the sweep ends.

* :class:`LiveView` — a redrawn multi-line block for interactive
  terminals: a header with done/total, throughput, ETA and cache
  counters, then one line per busy worker showing the run it is
  simulating, its sim-time progress and wall seconds.
* :class:`PlainView` — the non-TTY/CI fallback (``--progress=plain``):
  one terminal-width-clipped line per *completed* run plus a final
  summary line.  This is the old ``stderr_progress`` behaviour grown a
  width clamp and a closing summary.

Both render to ``stderr`` by default and never touch ``stdout`` (result
tables stay machine-diffable).
"""

from __future__ import annotations

import shutil
import sys
import time
from typing import Any, Dict, Optional, TextIO


def _term_width(stream: TextIO) -> int:
    try:
        if stream.isatty():
            return shutil.get_terminal_size().columns
    except (ValueError, OSError):
        pass
    return 100


def _fmt_eta(seconds: float) -> str:
    if seconds < 0 or seconds != seconds:  # negative or NaN
        return "?"
    seconds = int(seconds)
    if seconds >= 3600:
        return f"{seconds // 3600}h{(seconds % 3600) // 60:02d}m"
    if seconds >= 60:
        return f"{seconds // 60}m{seconds % 60:02d}s"
    return f"{seconds}s"


class ProgressView:
    """Base class: counts completions, leaves rendering to subclasses."""

    def __init__(self, stream: Optional[TextIO] = None) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.total = 0
        self.done = 0
        self.cached = 0
        self.t0 = time.monotonic()

    # -- record ingestion ------------------------------------------------

    def handle(self, rec: Dict[str, Any]) -> None:
        kind = rec.get("t")
        if kind == "sweep_start":
            self.total = int(rec.get("n_specs", 0))
            self.t0 = time.monotonic()
            self.on_sweep_start(rec)
        elif kind == "run_done":
            self.done = int(rec.get("done", self.done + 1))
            self.total = max(self.total, int(rec.get("total", self.total)))
            if rec.get("outcome") in ("cached", "checkpoint"):
                self.cached += 1
            self.on_run_done(rec)
        elif kind == "sweep_end":
            self.on_sweep_end(rec)
        else:
            self.on_other(rec)

    # -- subclass hooks --------------------------------------------------

    def on_sweep_start(self, rec: Dict[str, Any]) -> None: ...

    def on_run_done(self, rec: Dict[str, Any]) -> None: ...

    def on_sweep_end(self, rec: Dict[str, Any]) -> None: ...

    def on_other(self, rec: Dict[str, Any]) -> None: ...

    def close(self) -> None: ...

    # -- shared formatting -----------------------------------------------

    def _rate_eta(self) -> str:
        elapsed = max(time.monotonic() - self.t0, 1e-6)
        rate = self.done / elapsed
        left = self.total - self.done
        eta = _fmt_eta(left / rate) if rate > 0 else "?"
        return f"{rate:.1f} runs/s, ETA {eta}"


class PlainView(ProgressView):
    """One line per completed run; safe for CI logs and pipes."""

    def on_run_done(self, rec: Dict[str, Any]) -> None:
        outcome = rec.get("outcome", "?")
        src = ("cache " if outcome in ("cached", "checkpoint")
               else f"{rec.get('wall_s', 0.0):5.2f}s")
        line = (f"[{self.done}/{self.total}] {src}  "
                f"{rec.get('run', '?')}")
        width = _term_width(self.stream)
        self.stream.write(line[:width - 1] + "\n")
        self.stream.flush()

    def on_sweep_end(self, rec: Dict[str, Any]) -> None:
        st = rec.get("stats", {})
        wall = st.get("wall_s", time.monotonic() - self.t0)
        line = (f"done: {self.done}/{self.total} runs in {wall:.2f}s "
                f"({st.get('simulated', self.done - self.cached)} simulated, "
                f"{st.get('cache_hits', self.cached)} cached)")
        if rec.get("interrupted"):
            line += "  INTERRUPTED"
        self.stream.write(line + "\n")
        self.stream.flush()


class LiveView(ProgressView):
    """Redrawn per-worker block for interactive terminals.

    Renders at most ``fps`` times a second (heartbeats can be chatty) and
    repaints in place with ANSI cursor movement; ``close`` leaves the
    final frame on screen followed by a newline.
    """

    def __init__(self, stream: Optional[TextIO] = None,
                 fps: float = 10.0) -> None:
        super().__init__(stream)
        self._min_dt = 1.0 / max(fps, 0.1)
        self._last_draw = 0.0
        self._lines_drawn = 0
        self._drew = False
        #: pid -> latest run_start/hb payload for the run in flight.
        self._workers: Dict[int, Dict[str, Any]] = {}

    # -- ingestion -------------------------------------------------------

    def on_sweep_start(self, rec: Dict[str, Any]) -> None:
        self._draw(force=True)

    def on_other(self, rec: Dict[str, Any]) -> None:
        kind = rec.get("t")
        if kind in ("run_start", "hb"):
            self._workers[int(rec.get("pid", 0))] = rec
        elif kind in ("run_end", "run_error"):
            self._workers.pop(int(rec.get("pid", 0)), None)
        self._draw()

    def on_run_done(self, rec: Dict[str, Any]) -> None:
        self._draw()

    def on_sweep_end(self, rec: Dict[str, Any]) -> None:
        self._workers.clear()
        self._draw(force=True)

    def close(self) -> None:
        self._draw(force=True)
        if self._drew:
            # Terminate the final frame (its last line ends on "\r") so
            # whatever prints next starts on a fresh line.
            self.stream.write("\n")
            self.stream.flush()
            self._lines_drawn = 0
            self._drew = False

    # -- rendering -------------------------------------------------------

    def _draw(self, force: bool = False) -> None:
        now = time.monotonic()
        if not force and now - self._last_draw < self._min_dt:
            return
        self._last_draw = now
        width = _term_width(self.stream)
        pct = (100 * self.done // self.total) if self.total else 0
        lines = [f"sweep {self.done}/{self.total} ({pct}%)  "
                 f"{self._rate_eta()}  cache {self.cached} hit(s)"]
        for pid in sorted(self._workers):
            rec = self._workers[pid]
            if rec.get("t") == "hb":
                detail = (f"sim {rec.get('sim_us', 0) / 1e6:.3f}s "
                          f"{rec.get('events', 0):,} ev "
                          f"{rec.get('wall_s', 0.0):.1f}s")
            else:
                detail = rec.get("phase", "build")
            lines.append(f"  w{pid} {rec.get('run', '?')}  {detail}")
        out = self.stream
        if self._lines_drawn:
            out.write(f"\x1b[{self._lines_drawn}F")  # up to first line
        for i, line in enumerate(lines):
            out.write("\x1b[2K" + line[:width - 1])
            out.write("\n" if i < len(lines) - 1 else "\r")
        # A shrinking block must blank the lines it no longer uses.
        extra = self._lines_drawn - (len(lines) - 1)
        for _ in range(max(0, extra)):
            out.write("\n\x1b[2K")
        for _ in range(max(0, extra)):
            out.write("\x1b[F")
        self._lines_drawn = len(lines) - 1
        self._drew = True
        out.flush()


def make_view(mode: str,
              stream: Optional[TextIO] = None) -> Optional[ProgressView]:
    """Map a ``--progress`` mode to a view instance (``None`` = silent).

    ``auto`` picks :class:`LiveView` on a TTY and :class:`PlainView`
    otherwise, so ``--progress`` does the right thing both interactively
    and inside CI logs.
    """
    stream = stream if stream is not None else sys.stderr
    if mode in (None, "", "none", "off"):
        return None
    if mode == "auto":
        try:
            tty = stream.isatty()
        except (ValueError, OSError):
            tty = False
        mode = "live" if tty else "plain"
    if mode == "live":
        return LiveView(stream)
    if mode == "plain":
        return PlainView(stream)
    raise ValueError(f"unknown progress mode {mode!r} "
                     f"(expected auto, live, plain or none)")
