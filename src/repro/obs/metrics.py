"""Named counters, gauges and fixed-bucket histograms.

The registry replaces ad-hoc stats dicts (``NestPolicy.stats`` was the
canonical offender) with typed instruments that serialize into
:class:`~repro.metrics.summary.RunResult` and the on-disk result cache.

Everything here is *always on* — instruments are incremented by the
simulator whether or not anyone is watching — so the implementations are
deliberately minimal: a counter increment is two attribute loads and an
integer add (``c.value += 1``), and a histogram observation is one
``bisect`` call into a pre-sorted edge tuple.  All state is integers, so a
registry round-trips exactly through JSON (the result cache relies on
this for bit-identical cached results).
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Dict, List, Optional, Sequence, Tuple


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """A point-in-time integer value (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def set(self, v: int) -> None:
        self.value = v


class Histogram:
    """Fixed-bucket histogram over integer observations.

    ``edges`` are inclusive upper bounds; an observation lands in the first
    bucket whose edge is >= the value, and values above the last edge land
    in the implicit overflow bucket, so ``counts`` has ``len(edges) + 1``
    entries.  The running ``sum`` and ``count`` allow mean computation
    without re-walking buckets.
    """

    __slots__ = ("name", "edges", "counts", "count", "sum")

    def __init__(self, name: str, edges: Sequence[int]) -> None:
        if not edges:
            raise ValueError(f"histogram {name!r} needs at least one edge")
        ordered = tuple(edges)
        if list(ordered) != sorted(set(ordered)):
            raise ValueError(
                f"histogram {name!r} edges must be strictly increasing")
        self.name = name
        self.edges: Tuple[int, ...] = ordered
        self.counts: List[int] = [0] * (len(ordered) + 1)
        self.count = 0
        self.sum = 0

    def observe(self, v: int) -> None:
        self.counts[bisect_left(self.edges, v)] += 1
        self.count += 1
        self.sum += v

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, p: float) -> Optional[int]:
        """Nearest-rank quantile as a bucket upper edge.

        Shares rank math with :func:`repro.metrics.quantiles.percentile`
        (a property test pins the agreement).  ``None`` when the
        histogram is empty or the rank falls in the overflow bucket.
        """
        from ..metrics.quantiles import histogram_quantile
        return histogram_quantile(self.edges, self.counts, p)

    def bucket_labels(self) -> List[str]:
        labels = [f"<={e}" for e in self.edges]
        labels.append(f">{self.edges[-1]}")
        return labels


class MetricsRegistry:
    """A flat namespace of instruments, created on first use."""

    __slots__ = ("_counters", "_gauges", "_histograms")

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- instrument factories (idempotent per name) ----------------------

    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge(name)
        return g

    def histogram(self, name: str,
                  edges: Optional[Sequence[int]] = None) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            if edges is None:
                raise KeyError(f"histogram {name!r} not yet registered")
            h = self._histograms[name] = Histogram(name, edges)
        return h

    # -- views -----------------------------------------------------------

    def counters(self) -> Dict[str, int]:
        return {name: c.value for name, c in self._counters.items()}

    def as_dict(self, prefix: str = "") -> Dict[str, Any]:
        """Serialize every instrument to JSON-ready primitives."""
        out: Dict[str, Any] = {}
        for name, c in self._counters.items():
            out[prefix + name] = {"type": "counter", "value": c.value}
        for name, g in self._gauges.items():
            out[prefix + name] = {"type": "gauge", "value": g.value}
        for name, h in self._histograms.items():
            out[prefix + name] = {
                "type": "histogram",
                "edges": list(h.edges),
                "counts": list(h.counts),
                "count": h.count,
                "sum": h.sum,
            }
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "MetricsRegistry":
        """Rebuild a registry equal (instrument by instrument) to
        the one ``as_dict`` serialized."""
        reg = cls()
        for name, entry in data.items():
            kind = entry["type"]
            if kind == "counter":
                reg.counter(name).value = entry["value"]
            elif kind == "gauge":
                reg.gauge(name).value = entry["value"]
            elif kind == "histogram":
                h = reg.histogram(name, entry["edges"])
                h.counts = list(entry["counts"])
                h.count = entry["count"]
                h.sum = entry["sum"]
            else:
                raise ValueError(f"unknown instrument type {kind!r}")
        return reg
