"""Exporters: Perfetto/Chrome trace JSON, JSONL event dumps, text summary.

The Chrome ``trace_event`` format (the JSON flavour Perfetto's
https://ui.perfetto.dev loads directly) renders the paper's Figure-2/8/9
story interactively: one track per hardware thread showing task and spin
segments, counter tracks for per-core frequency and primary-nest size, and
instant events marking every nest transition.  Timestamps are already in
microseconds — the trace_event native unit — so simulated times pass
through unscaled.

``validate_chrome_trace`` is the schema check CI runs against the exported
artifact; it is hand-rolled (no jsonschema dependency in the container).
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Sequence, TextIO

from ..sim.trace import Segment
from .events import (EVENT_KINDS, FAULT_KINDS, FREQ_STEP,
                     NEST_TRANSITION_KINDS, PLACEMENT_KINDS, SPIN_START,
                     SchedEvent, event_from_dict, event_to_dict)

#: pid of each synthetic "process" (Perfetto process-track grouping).
PID_CORES = 0
PID_FREQ = 1
PID_NEST = 2


def chrome_trace(
    segments: Sequence[Segment],
    events: Sequence[SchedEvent] = (),
    n_cpus: Optional[int] = None,
    label: str = "nest-repro",
) -> Dict[str, Any]:
    """Build a Chrome trace_event document from a run's raw telemetry.

    ``segments`` come from a :class:`~repro.sim.trace.Tracer` with
    ``record_segments=True``; ``events`` from an attached
    :class:`~repro.obs.log.EventLog` memory sink.  The output is fully
    deterministic for a deterministic run (stable ordering, sorted keys on
    serialisation) — the golden-file test pins it.
    """
    if n_cpus is None:
        n_cpus = 1 + max(
            [s.core for s in segments] + [e.cpu for e in events if e.cpu >= 0],
            default=0)
    out: List[Dict[str, Any]] = []

    out.append({"ph": "M", "pid": PID_CORES, "tid": 0,
                "name": "process_name", "args": {"name": f"{label}: cores"}})
    for cpu in range(n_cpus):
        out.append({"ph": "M", "pid": PID_CORES, "tid": cpu,
                    "name": "thread_name", "args": {"name": f"cpu {cpu}"}})
        out.append({"ph": "M", "pid": PID_CORES, "tid": cpu,
                    "name": "thread_sort_index", "args": {"sort_index": cpu}})
    out.append({"ph": "M", "pid": PID_FREQ, "tid": 0, "name": "process_name",
                "args": {"name": f"{label}: frequency (MHz)"}})
    out.append({"ph": "M", "pid": PID_NEST, "tid": 0, "name": "process_name",
                "args": {"name": f"{label}: nest"}})

    for seg in sorted(segments, key=lambda s: (s.core, s.start, s.end)):
        name = "spin" if seg.spinning else f"task {seg.task_id}"
        out.append({
            "ph": "X", "pid": PID_CORES, "tid": seg.core,
            "ts": seg.start, "dur": seg.end - seg.start, "name": name,
            "args": {"freq_mhz": seg.freq_mhz, "task": seg.task_id,
                     "spinning": seg.spinning},
        })

    for ev in events:
        if ev.kind == FREQ_STEP:
            out.append({
                "ph": "C", "pid": PID_FREQ, "tid": 0, "ts": ev.t,
                "name": f"core {ev.cpu} MHz", "args": {"mhz": ev.value},
            })
        elif ev.kind in NEST_TRANSITION_KINDS:
            out.append({
                "ph": "i", "pid": PID_CORES,
                "tid": ev.cpu if ev.cpu >= 0 else 0,
                "ts": ev.t, "s": "t", "name": ev.kind,
                "args": {"task": ev.task, "primary_size": ev.value},
            })
            out.append({
                "ph": "C", "pid": PID_NEST, "tid": 0, "ts": ev.t,
                "name": "primary nest size", "args": {"cores": ev.value},
            })
        elif ev.kind in FAULT_KINDS:
            out.append({
                "ph": "i", "pid": PID_CORES,
                "tid": ev.cpu if ev.cpu >= 0 else 0,
                "ts": ev.t, "s": "t", "name": ev.kind,
                "args": {"task": ev.task, "value": ev.value},
            })

    return {"traceEvents": out, "displayTimeUnit": "ms",
            "otherData": {"producer": label}}


def write_chrome_trace(path: str, segments: Sequence[Segment],
                       events: Sequence[SchedEvent] = (),
                       n_cpus: Optional[int] = None,
                       label: str = "nest-repro") -> None:
    doc = chrome_trace(segments, events, n_cpus=n_cpus, label=label)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, sort_keys=True, separators=(",", ":"))


def validate_chrome_trace(doc: Any) -> List[str]:
    """Schema check of a trace document; returns problems (empty = valid)."""
    problems: List[str] = []
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        return ["document is not an object with a 'traceEvents' array"]
    evs = doc["traceEvents"]
    if not isinstance(evs, list):
        return ["'traceEvents' is not an array"]
    for i, ev in enumerate(evs):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in ("X", "C", "i", "M"):
            problems.append(f"{where}: unknown phase {ph!r}")
            continue
        for key in ("pid", "tid", "name"):
            if key not in ev:
                problems.append(f"{where}: missing {key!r}")
        if ph in ("X", "C", "i") and not isinstance(ev.get("ts"), int):
            problems.append(f"{where}: ts must be an integer timestamp")
        if ph == "X":
            if not isinstance(ev.get("dur"), int) or ev.get("dur", -1) < 0:
                problems.append(f"{where}: X event needs a non-negative dur")
        if ph == "C":
            args = ev.get("args")
            if not isinstance(args, dict) or not args or not all(
                    isinstance(v, (int, float)) for v in args.values()):
                problems.append(f"{where}: C event args must be numeric")
        if ph == "i":
            if ev.get("s") not in ("t", "p", "g"):
                problems.append(f"{where}: instant scope must be t/p/g")
            if ev.get("name") not in EVENT_KINDS:
                problems.append(f"{where}: unknown instant {ev.get('name')!r}")
    return problems


# ---------------------------------------------------------------------------
# JSONL event dump
# ---------------------------------------------------------------------------

def events_to_jsonl(events: Iterable[SchedEvent], fh: TextIO) -> int:
    """Write one JSON object per event; returns the number written."""
    n = 0
    for ev in events:
        fh.write(json.dumps(event_to_dict(ev),
                            sort_keys=True, separators=(",", ":")))
        fh.write("\n")
        n += 1
    return n


def events_from_jsonl(fh: TextIO) -> List[SchedEvent]:
    """Read a JSONL event dump back into :class:`SchedEvent` records.

    Unlike the crash-tolerant telemetry reader, an event dump is written
    atomically by :func:`events_to_jsonl`, so a malformed line means the
    file is not an event dump — raise with the line number rather than
    silently analyzing half a log.
    """
    out: List[SchedEvent] = []
    for lineno, line in enumerate(fh, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            rec = json.loads(line)
            out.append(event_from_dict(rec))
        except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
            raise ValueError(
                f"line {lineno}: not an event record ({exc})") from None
    return out


# ---------------------------------------------------------------------------
# Plain-text summary (the `repro trace` output)
# ---------------------------------------------------------------------------

def text_summary(
    segments: Sequence[Segment],
    events: Sequence[SchedEvent] = (),
    metrics: Optional[Dict[str, Any]] = None,
    top_cores: int = 12,
) -> str:
    """Human-readable digest of a traced run."""
    lines: List[str] = []

    per_core: Dict[int, List[int]] = {}   # cpu -> [busy_us, spin_us, mhz*us]
    for seg in segments:
        acc = per_core.setdefault(seg.core, [0, 0, 0])
        if seg.spinning:
            acc[1] += seg.duration
        elif seg.task_id >= 0:
            acc[0] += seg.duration
            acc[2] += seg.freq_mhz * seg.duration
    lines.append(f"cores used: {len(per_core)}  "
                 f"(showing busiest {min(top_cores, len(per_core))})")
    ranked = sorted(per_core.items(), key=lambda kv: -(kv[1][0] + kv[1][1]))
    for cpu, (busy, spin, mhz_us) in ranked[:top_cores]:
        mean_mhz = mhz_us / busy if busy else 0
        lines.append(f"  cpu {cpu:3d}: busy {busy:>10,}us  "
                     f"spin {spin:>8,}us  mean {mean_mhz:5.0f} MHz")

    if events:
        by_kind: Dict[str, int] = {}
        for ev in events:
            by_kind[ev.kind] = by_kind.get(ev.kind, 0) + 1
        placements = [(k, by_kind.get(k, 0)) for k in PLACEMENT_KINDS
                      if by_kind.get(k, 0)]
        if placements:
            lines.append("placements: " + "  ".join(
                f"{k.split('.', 1)[1]}={n}" for k, n in placements))
        transitions = [(k, by_kind.get(k, 0))
                       for k in sorted(NEST_TRANSITION_KINDS)
                       if by_kind.get(k, 0)]
        if transitions:
            lines.append("nest transitions: " + "  ".join(
                f"{k.split('.', 1)[1]}={n}" for k, n in transitions))
        spins = by_kind.get(SPIN_START, 0)
        if spins:
            lines.append(f"warm-core spins: {spins}")
        faults = [(k, by_kind.get(k, 0)) for k in sorted(FAULT_KINDS)
                  if by_kind.get(k, 0)]
        if faults:
            lines.append("faults: " + "  ".join(
                f"{k.split('.', 1)[1]}={n}" for k, n in faults))
        lines.append(f"events: {len(events)} total over "
                     f"{len(by_kind)} kinds")

    for name, entry in sorted((metrics or {}).items()):
        if entry.get("type") != "histogram" or not entry.get("count"):
            continue
        mean = entry["sum"] / entry["count"]
        lines.append(f"{name}: n={entry['count']} mean={mean:.1f}")
    return "\n".join(lines)
