"""Interface between the kernel and a core-selection policy."""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover
    from ..kernel.scheduler_core import Kernel
    from ..kernel.task import Task


class SelectionPolicy:
    """Chooses a CPU for a forking or waking task.

    Subclasses implement the two selection paths; the remaining hooks have
    no-op defaults.  A policy instance is bound to exactly one kernel.
    """

    #: CPU time consumed by one run of the selection code.  Nest adds code
    #: to core selection (the paper measures this through hackbench's
    #: instruction-cache misses, §5.6), so its value is larger.
    selection_cost_us: int = 1

    def __init__(self) -> None:
        self.kernel: Optional["Kernel"] = None

    def bind(self, kernel: "Kernel") -> None:
        if self.kernel is not None:
            raise RuntimeError("policy already bound to a kernel")
        self.kernel = kernel
        self.on_bind()

    def on_bind(self) -> None:
        """Hook called once the kernel reference is available."""

    # ---- required selection paths ----------------------------------------

    def select_cpu_fork(self, task: "Task", parent_cpu: int) -> int:
        raise NotImplementedError

    def select_cpu_wakeup(self, task: "Task", waker_cpu: int) -> int:
        raise NotImplementedError

    # ---- optional hooks ------------------------------------------------

    def spin_ticks(self) -> float:
        """Ticks the idle loop should spin after a task blocks (§3.2)."""
        return 0.0

    def on_tick(self, cpu: int, freq_mhz: int) -> None:
        """Scheduler tick on a busy cpu (Smove samples frequencies here)."""

    def on_enqueue(self, task: "Task", cpu: int) -> None:
        """A task was enqueued on ``cpu`` (placement or migration)."""

    def on_exit_idle(self, cpu: int) -> None:
        """A task exited and ``cpu`` may now be idle."""

    def on_cpu_offline(self, cpu: int) -> None:
        """``cpu`` was hotplugged out (faults/): drop any per-cpu state.

        The kernel has already drained the cpu's runqueue when this fires;
        policies must stop proposing the cpu until :meth:`on_cpu_online`."""

    def on_cpu_online(self, cpu: int) -> None:
        """``cpu`` came back online after a hotplug fault."""

    def select_cpu_offline_migration(self, task: "Task",
                                     offline_cpu: int) -> Optional[int]:
        """Choose a new cpu for a task orphaned by a hotplug fault.

        Returning ``None`` (the default) lets the kernel pick the least
        loaded online cpu; policies with placement state (Nest) route the
        orphan through their normal search so counters stay consistent."""
        return None

    def check_invariants(self) -> None:
        """Verify internal counter consistency after a run (no-op default).

        Policies that keep placement statistics assert here that the
        counters add up (e.g. Nest: tier hits == total placements); the
        experiment runner calls this once per completed simulation."""

    @property
    def name(self) -> str:
        return type(self).__name__
