"""Interface between the kernel and a core-selection policy.

This module is the author-facing half of the policy SDK (the other half
is :mod:`repro.sched.registry`).  A new scheduler is one subclass of
:class:`SelectionPolicy` plus one ``register_policy`` call; everything
else — CLI exposure, fuzzing, the invariant oracle, the conformance
suite — derives from the registry entry.  See README "Writing a new
scheduler" and DESIGN.md §11 for the walkthrough.

The contract a policy must honour:

**Lifecycle.**  A policy instance is constructed unbound (no kernel),
bound exactly once via :meth:`bind` (which stores ``self.kernel`` and
calls :meth:`on_bind`), used for one simulation, then discarded.  All
per-run state must be reset by constructing a fresh instance — the
registry factory is called once per run, so instance attributes are the
right place for run state.  Never cache anything across instances in
class or module globals.

**Determinism.**  A policy must be a pure function of the simulation
state it observes.  Concretely: no wall-clock reads, no ``random``
module (draw from the engine's seeded streams via
``self.kernel.engine.rng`` if randomness is needed), and no iteration
over unordered containers where the order can leak into a decision —
sort, or keep insertion-ordered structures.  The conformance suite runs
every policy twice and under two ``PYTHONHASHSEED`` values and requires
bit-identical results and event streams.

**Event-emission obligations.**  Observability is opt-in per run: guard
every emit with ``if self._obs.enabled:`` (bind-time pattern: replace a
detached placeholder ``EventLog()`` with ``self.kernel.engine.obs`` in
:meth:`on_bind`, as Nest/FT-RT/scx_nest do).  Every kind emitted must be
a member of ``repro.obs.events.EVENT_KINDS`` — the oracle's
``events.vocabulary`` invariant convicts unknown kinds.  If the policy
keeps counters that mirror events (it should), the mirror must be exact:
the oracle families (``nest.*``, ``scxnest.*``, ``rt.*``) cross-check
counters against the event stream, and the registry entry's
``invariant_groups`` declares which family applies.  Behaviour must not
change with observability on/off — events and counters are read-only
taps, never control flow.

**Self-check protocol.**  :meth:`check_invariants` is called by the
experiment runner after every completed simulation.  Raise
``AssertionError`` with a message naming the inconsistent counters when
internal accounting does not add up (e.g. Nest: tier hits must equal
total placements).  The self-check guards the policy's own bookkeeping;
the external oracle guards its observable behaviour — mutation canaries
deliberately construct bugs that pass the former and are caught by the
latter, so do not treat a passing self-check as correctness.

**Metrics convention.**  Keep counters/histograms in a
``repro.obs.metrics.MetricsRegistry`` exposed as ``self.metrics``; the
runner serializes it onto the result under the ``{name.lower()}.``
prefix.  Create fault-path-only counters lazily so fault-free runs keep
an identical metrics dict (and identical cached results).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover
    from ..kernel.scheduler_core import Kernel
    from ..kernel.task import Task


class SelectionPolicy:
    """Chooses a CPU for a forking or waking task.

    Subclasses implement the two selection paths; the remaining hooks have
    no-op defaults.  A policy instance is bound to exactly one kernel.
    """

    #: CPU time consumed by one run of the selection code.  Nest adds code
    #: to core selection (the paper measures this through hackbench's
    #: instruction-cache misses, §5.6), so its value is larger.
    selection_cost_us: int = 1

    def __init__(self) -> None:
        self.kernel: Optional["Kernel"] = None

    def bind(self, kernel: "Kernel") -> None:
        if self.kernel is not None:
            raise RuntimeError("policy already bound to a kernel")
        self.kernel = kernel
        self.on_bind()

    def on_bind(self) -> None:
        """Hook called once the kernel reference is available."""

    # ---- required selection paths ----------------------------------------

    def select_cpu_fork(self, task: "Task", parent_cpu: int) -> int:
        """Choose the cpu for a newly forked ``task``.

        Must return an **online** cpu id synchronously; the kernel then
        runs the two-step commit (the §3.4 ``placement_pending`` window)
        and emits the ``sched.fork`` commit event itself."""
        raise NotImplementedError

    def select_cpu_wakeup(self, task: "Task", waker_cpu: int) -> int:
        """Choose the cpu for a waking ``task`` (same obligations as
        :meth:`select_cpu_fork`; the commit event is ``sched.wakeup``)."""
        raise NotImplementedError

    # ---- optional hooks ------------------------------------------------

    def spin_ticks(self) -> float:
        """Ticks the idle loop should spin after a task blocks (§3.2)."""
        return 0.0

    def on_tick(self, cpu: int, freq_mhz: int) -> None:
        """Scheduler tick on a busy cpu (Smove samples frequencies here)."""

    def on_enqueue(self, task: "Task", cpu: int) -> None:
        """A task was enqueued on ``cpu`` (placement or migration)."""

    def on_exit_idle(self, cpu: int) -> None:
        """A task exited and ``cpu`` may now be idle."""

    def on_cpu_offline(self, cpu: int) -> None:
        """``cpu`` was hotplugged out (faults/): drop any per-cpu state.

        The kernel has already drained the cpu's runqueue when this fires;
        policies must stop proposing the cpu until :meth:`on_cpu_online`."""

    def on_cpu_online(self, cpu: int) -> None:
        """``cpu`` came back online after a hotplug fault."""

    def select_cpu_offline_migration(self, task: "Task",
                                     offline_cpu: int) -> Optional[int]:
        """Choose a new cpu for a task orphaned by a hotplug fault.

        Returning ``None`` (the default) lets the kernel pick the least
        loaded online cpu; policies with placement state (Nest) route the
        orphan through their normal search so counters stay consistent."""
        return None

    def check_invariants(self) -> None:
        """Verify internal counter consistency after a run (no-op default).

        Policies that keep placement statistics assert here that the
        counters add up (e.g. Nest: tier hits == total placements); the
        experiment runner calls this once per completed simulation."""

    @property
    def name(self) -> str:
        return type(self).__name__
