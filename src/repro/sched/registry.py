"""Name → selection-policy registry: the policy SDK's single source of truth.

Extracted from the ad-hoc ``if name == ...`` chains so that every layer
(experiment runner, CLI, fuzzer, conformance suite, tests) resolves
scheduler names through one table, and new policies plug in with a
one-line registration instead of edits in three places.

Each entry is a :class:`PolicyInfo` carrying, beyond the factory itself,
the metadata the rest of the system derives its behaviour from:

* ``description`` — one line for ``repro list`` and the docs;
* ``fast_factory`` — the bit-identical fast-engine variant, or ``None``
  for a *declared refusal*: ``make_registered_fast_policy`` then raises
  the standard "no fast-engine variant" error, the differential harness
  skips parity for the policy, and the conformance suite asserts the
  refusal is explicit rather than a crash;
* ``invariant_groups`` — which policy-specific oracle families
  (``nest.*``, ``scxnest.*``, ``rt.*``) apply to runs of this policy;
  the oracle gates those checks through :func:`invariant_groups_of`;
* ``uses_nest_params`` / ``default_params`` — whether the factory
  consumes a :class:`~repro.core.params.NestParams` override and what it
  defaults to;
* ``fuzz_weight`` — how many slots the policy occupies in the fuzz
  generator's scheduler pool (:func:`fuzz_scheduler_pool`).

Factories are lazy: each imports its policy module only when invoked, so
registering the built-ins does not pull ``core.nest`` (which itself
imports this package) at import time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (TYPE_CHECKING, Any, Callable, Dict, FrozenSet, List,
                    Optional, Tuple)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.params import NestParams
    from .base import SelectionPolicy

#: A factory takes the (possibly None) NestParams override and returns a
#: fresh policy instance.  Policies that take no parameters ignore it.
PolicyFactory = Callable[["Optional[NestParams]"], "SelectionPolicy"]


@dataclass(frozen=True)
class PolicyInfo:
    """One registry entry: the factory plus the SDK metadata."""

    name: str
    factory: PolicyFactory
    description: str = ""
    #: Fast-engine variant factory; ``None`` means the policy runs on the
    #: reference engine only (a declared, tested refusal — not a crash).
    fast_factory: Optional[PolicyFactory] = None
    #: Policy-specific oracle invariant families that apply to this
    #: policy's runs (generic families always apply).
    invariant_groups: FrozenSet[str] = field(default_factory=frozenset)
    #: Whether the factory consumes the NestParams override.
    uses_nest_params: bool = False
    #: Lazy default parameter object (None for parameterless policies).
    default_params: Optional[Callable[[], Any]] = None
    #: Slots in the fuzz generator's scheduler pool (0 = never fuzzed;
    #: the drift test forbids 0 for registered built-ins).
    fuzz_weight: int = 1

    @property
    def fast(self) -> bool:
        """True when a bit-identical fast-engine variant exists."""
        return self.fast_factory is not None


_REGISTRY: Dict[str, PolicyInfo] = {}


def register_policy(name: str, factory: PolicyFactory, *,
                    description: str = "",
                    fast_factory: Optional[PolicyFactory] = None,
                    invariant_groups: Tuple[str, ...] = (),
                    uses_nest_params: bool = False,
                    default_params: Optional[Callable[[], Any]] = None,
                    fuzz_weight: int = 1,
                    replace: bool = False) -> PolicyInfo:
    """Register ``factory`` under the (case-insensitive) short ``name``.

    Returns the stored :class:`PolicyInfo` so callers (tests, plug-ins)
    can inspect exactly what was recorded.
    """
    key = name.lower()
    if not replace and key in _REGISTRY:
        raise ValueError(f"policy {key!r} already registered")
    info = PolicyInfo(name=key, factory=factory, description=description,
                      fast_factory=fast_factory,
                      invariant_groups=frozenset(invariant_groups),
                      uses_nest_params=uses_nest_params,
                      default_params=default_params,
                      fuzz_weight=fuzz_weight)
    _REGISTRY[key] = info
    return info


def unregister_policy(name: str) -> None:
    """Remove a registered policy (test fixtures and plug-in teardown)."""
    _REGISTRY.pop(name.lower(), None)


def available_policies() -> List[str]:
    """The registered short names, sorted."""
    return sorted(_REGISTRY)


def policy_info(name: str) -> PolicyInfo:
    """The full registry entry for ``name``."""
    key = name.lower()
    try:
        return _REGISTRY[key]
    except KeyError:
        raise ValueError(f"unknown scheduler {name!r}; "
                         f"known: {available_policies()}") from None


def iter_policy_infos() -> List[PolicyInfo]:
    """Every registry entry, sorted by name."""
    return [_REGISTRY[k] for k in available_policies()]


def make_registered_policy(name: str,
                           nest_params: "Optional[NestParams]" = None
                           ) -> "SelectionPolicy":
    """Instantiate a registered policy by short name."""
    return policy_info(name).factory(nest_params)


def make_registered_fast_policy(name: str,
                                nest_params: "Optional[NestParams]" = None
                                ) -> "SelectionPolicy":
    """Instantiate the fast-engine variant of a registered policy.

    Policies without one refuse with a stable, tested error message —
    the registry's *declared refusal* contract.
    """
    info = policy_info(name)
    if info.fast_factory is None:
        raise ValueError(
            f"scheduler {info.name!r} has no fast-engine variant; run it "
            f"on the reference engine (--engine ref)")
    return info.fast_factory(nest_params)


def fast_scheduler_names() -> Tuple[str, ...]:
    """Names with a bit-identical fast-engine variant, sorted."""
    return tuple(n for n in available_policies() if _REGISTRY[n].fast)


def fuzz_scheduler_pool() -> Tuple[str, ...]:
    """The fuzz generator's weighted scheduler pool, derived from the
    registry: each name appears ``fuzz_weight`` times, in sorted-name
    order so the pool (and therefore the seeded scenario stream) is
    independent of registration order."""
    pool: List[str] = []
    for name in available_policies():
        pool.extend([name] * _REGISTRY[name].fuzz_weight)
    return tuple(pool)


def invariant_groups_of(name: str) -> FrozenSet[str]:
    """The policy-specific oracle families for ``name`` (empty when the
    name is unknown, so the oracle degrades to generic checks only)."""
    info = _REGISTRY.get(name.lower())
    return info.invariant_groups if info is not None else frozenset()


# ---------------------------------------------------------------------------
# Built-in policies.


def _nest_defaults() -> Any:
    from ..core.params import DEFAULT_PARAMS
    return DEFAULT_PARAMS


def _make_cfs(params: "Optional[NestParams]") -> "SelectionPolicy":
    from .cfs import CfsPolicy
    return CfsPolicy()


def _make_fast_cfs(params: "Optional[NestParams]") -> "SelectionPolicy":
    from ..sim.fastengine import FastCfsPolicy
    return FastCfsPolicy()


def _make_nest(params: "Optional[NestParams]") -> "SelectionPolicy":
    from ..core.nest import NestPolicy
    return NestPolicy(params or _nest_defaults())


def _make_fast_nest(params: "Optional[NestParams]") -> "SelectionPolicy":
    from ..sim.fastengine import FastNestPolicy
    return FastNestPolicy(params or _nest_defaults())


def _make_smove(params: "Optional[NestParams]") -> "SelectionPolicy":
    from .smove import SmovePolicy
    return SmovePolicy()


def _make_fast_smove(params: "Optional[NestParams]") -> "SelectionPolicy":
    from ..sim.fastengine import FastSmovePolicy
    return FastSmovePolicy()


def _make_ftrt(params: "Optional[NestParams]") -> "SelectionPolicy":
    from .ftrt import FtrtPolicy
    return FtrtPolicy()


def _make_scxnest(params: "Optional[NestParams]") -> "SelectionPolicy":
    from .scxnest import ScxNestPolicy
    return ScxNestPolicy(params or _nest_defaults())


register_policy(
    "cfs", _make_cfs,
    description="stock CFS idle-sibling core selection (the baseline)",
    fast_factory=_make_fast_cfs)
register_policy(
    "nest", _make_nest,
    description="the paper's Nest policy: primary/reserve nests, "
                "attachment, impatience, warm-core spinning (§3)",
    fast_factory=_make_fast_nest,
    invariant_groups=("nest",),
    uses_nest_params=True, default_params=_nest_defaults,
    fuzz_weight=3)
register_policy(
    "smove", _make_smove,
    description="S_move (§2.2): frequency-gated child-on-waker-core "
                "placement with a migration timer",
    fast_factory=_make_fast_smove)
register_policy(
    "ftrt", _make_ftrt,
    description="fault-tolerant RT: disjoint primary/backup deadline "
                "placement (DESIGN.md §10); reference engine only",
    invariant_groups=("rt",))
register_policy(
    "scxnest", _make_scxnest,
    description="Meta's scx_nest variant: global vtime dispatch queue + "
                "Nest-style warm-core masks with timer-driven compaction; "
                "reference engine only",
    invariant_groups=("scxnest",),
    uses_nest_params=True, default_params=_nest_defaults)
