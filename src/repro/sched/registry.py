"""Name → selection-policy registry.

Extracted from the ad-hoc ``if name == ...`` chains so that every layer
(experiment runner, CLI, fuzzer, tests) resolves scheduler names through
one table, and new policies plug in with a one-line registration instead
of edits in three places.

Factories are lazy: each imports its policy module only when invoked, so
registering the built-ins does not pull ``core.nest`` (which itself
imports this package) at import time.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.params import NestParams
    from .base import SelectionPolicy

#: A factory takes the (possibly None) NestParams override and returns a
#: fresh policy instance.  Policies that take no parameters ignore it.
PolicyFactory = Callable[["Optional[NestParams]"], "SelectionPolicy"]

_FACTORIES: Dict[str, PolicyFactory] = {}


def register_policy(name: str, factory: PolicyFactory, *,
                    replace: bool = False) -> None:
    """Register ``factory`` under the (case-insensitive) short ``name``."""
    key = name.lower()
    if not replace and key in _FACTORIES:
        raise ValueError(f"policy {key!r} already registered")
    _FACTORIES[key] = factory


def available_policies() -> List[str]:
    """The registered short names, sorted."""
    return sorted(_FACTORIES)


def make_registered_policy(name: str,
                           nest_params: "Optional[NestParams]" = None
                           ) -> "SelectionPolicy":
    """Instantiate a registered policy by short name."""
    key = name.lower()
    try:
        factory = _FACTORIES[key]
    except KeyError:
        raise ValueError(f"unknown scheduler {name!r}; "
                         f"known: {available_policies()}") from None
    return factory(nest_params)


# ---------------------------------------------------------------------------
# Built-in policies.


def _make_cfs(params: "Optional[NestParams]") -> "SelectionPolicy":
    from .cfs import CfsPolicy
    return CfsPolicy()


def _make_nest(params: "Optional[NestParams]") -> "SelectionPolicy":
    from ..core.nest import NestPolicy
    from ..core.params import DEFAULT_PARAMS
    return NestPolicy(params or DEFAULT_PARAMS)


def _make_smove(params: "Optional[NestParams]") -> "SelectionPolicy":
    from .smove import SmovePolicy
    return SmovePolicy()


def _make_ftrt(params: "Optional[NestParams]") -> "SelectionPolicy":
    from .ftrt import FtrtPolicy
    return FtrtPolicy()


register_policy("cfs", _make_cfs)
register_policy("nest", _make_nest)
register_policy("smove", _make_smove)
register_policy("ftrt", _make_ftrt)
