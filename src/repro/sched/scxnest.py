"""Meta's ``scx_nest`` scheduler variant, as a comparator policy.

``scx_nest`` (SNIPPETS.md snippets 2–3) is a sched_ext eBPF scheduler
that combines a **global weighted virtual-time dispatch queue** (CFS-like
fairness across the whole machine) with Nest-style warm-core selection at
wakeup.  It keeps the paper's primary/reserve core masks but replaces the
paper's trip-over-a-stale-core hysteresis with **per-core compaction
timers**: a core arms a timer when it schedules to idle, and is demoted
to the reserve only if the timer fires with the core still untouched.

The simulator's kernel dispatches from per-cpu runqueues and requires a
policy to return a CPU synchronously, so the global queue is modelled at
the placement layer (see DESIGN.md §11 for the full mapping):

* every placement charges the task one virtual-time slice in a
  :class:`GlobalVtimeQueue`; a task placed on a *busy* core also enters
  the queue as a waiting entry;
* when a core schedules to idle after a task exit, it **pulls** the
  minimum-vtime waiting task from the global queue and migrates it over
  (``scxnest.vtime_pull``) — the shared-DSQ "idle core consumes the
  fairest waiting task" behaviour;
* entries are clamped on entry to at most ``max_lag_us`` behind the
  queue's virtual clock, bounding how far a task can fall behind
  (scx_nest's idle-vtime clamp, which prevents starvation).

Mask discipline mirrors scx_nest: primary hits reset a task's
impatience, failed primary searches increment it, and a task that failed
``r_impatient`` times in a row skips the masks entirely and its CFS pick
is promoted straight into the primary mask.  Unlike the paper's Nest
there is no task→core attachment and no warm-core spinning.
"""

from __future__ import annotations

import heapq
from typing import Any, Dict, List, Optional, Set, Tuple

from ..kernel.task import Task, TaskState
from ..obs import events as oev
from ..obs.log import EventLog
from ..obs.metrics import MetricsRegistry
from ..sim.clock import TICK_US
from ..sim.events import EventKind
from ..core.params import DEFAULT_PARAMS, NestParams
from .base import SelectionPolicy
from .cfs import CfsPolicy, _rotate

#: Default virtual-time slice charged per placement (scx_nest's
#: ``SCX_SLICE_DFL`` analogue), and the lag clamp applied on enqueue.
SLICE_US = 4_000
MAX_LAG_US = 2 * SLICE_US

#: Bucket edges shared with Nest's placement instrumentation so the two
#: policies' histograms are directly comparable in analysis reports.
SEARCH_LEN_EDGES = (0, 1, 2, 4, 8, 16, 32, 64, 128)
MASK_SIZE_EDGES = (0, 1, 2, 4, 8, 16, 32, 64, 128)


class GlobalVtimeQueue:
    """A global weighted virtual-time queue (scx_nest's shared DSQ).

    Entries are ordered by ``(vtime, seq)``: strictly by virtual time,
    FIFO among equals.  ``charge`` advances a key's virtual time (and the
    queue's clock, which only moves forward); ``push`` clamps the entry's
    vtime to at most ``max_lag_us`` behind the clock, so a long-sleeping
    task cannot hoard an unbounded fairness credit and a lagging task is
    never more than ``max_lag_us`` behind when it is dispatched.
    """

    def __init__(self, slice_us: int = SLICE_US,
                 max_lag_us: int = MAX_LAG_US) -> None:
        if slice_us <= 0 or max_lag_us < 0:
            raise ValueError("non-positive slice or negative lag bound")
        self.slice_us = slice_us
        self.max_lag_us = max_lag_us
        self.vtime_now = 0
        self._vtime: Dict[int, int] = {}
        self._heap: List[Tuple[int, int, int, Any]] = []
        self._seq = 0

    def __len__(self) -> int:
        return len(self._heap)

    def vtime_of(self, key: int) -> int:
        """The key's stored virtual time (clock value for new keys)."""
        return self._vtime.get(key, self.vtime_now)

    def lag(self, key: int) -> int:
        """How far the key trails the queue clock (0 for new keys)."""
        return self.vtime_now - self.vtime_of(key)

    def charge(self, key: int, amount_us: Optional[int] = None,
               weight: int = 1) -> int:
        """Advance the key's vtime by ``amount_us / weight`` (default one
        slice) and ratchet the queue clock forward.  Returns the key's
        new virtual time."""
        if weight <= 0:
            raise ValueError(f"non-positive weight {weight}")
        amount = self.slice_us if amount_us is None else amount_us
        if amount < 0:
            raise ValueError(f"negative charge {amount}")
        vtime = self.vtime_of(key) + amount // weight
        self._vtime[key] = vtime
        if vtime > self.vtime_now:
            self.vtime_now = vtime
        return vtime

    def push(self, key: int, payload: Any = None) -> int:
        """Queue ``key``, clamping its vtime to the lag bound.  Returns
        the effective vtime the entry was queued at."""
        vtime = max(self.vtime_of(key), self.vtime_now - self.max_lag_us)
        self._vtime[key] = vtime
        heapq.heappush(self._heap, (vtime, self._seq, key, payload))
        self._seq += 1
        return vtime

    def pop(self) -> Optional[Tuple[int, Any]]:
        """The minimum-``(vtime, seq)`` entry as ``(key, payload)``, or
        ``None`` when empty."""
        if not self._heap:
            return None
        _vtime, _seq, key, payload = heapq.heappop(self._heap)
        return key, payload

    def forget(self, key: int) -> None:
        """Drop a key's stored vtime (task exited)."""
        self._vtime.pop(key, None)


class NestMasks:
    """Primary/reserve core masks with legality-enforced transitions.

    The invariants (primary ∩ reserve = ∅, ``|reserve| ≤ r_max``) are the
    paper's §3.1 rules; every transition either preserves them or raises
    ``ValueError`` — the property suite drives random transition
    sequences through this class and asserts exactly that.
    """

    def __init__(self, r_max: int, reserve_enabled: bool = True) -> None:
        if r_max < 0:
            raise ValueError(f"negative r_max {r_max}")
        self.r_max = r_max
        self.reserve_enabled = reserve_enabled
        self.primary: Set[int] = set()
        self.reserve: Set[int] = set()

    def promote(self, cpu: int) -> None:
        """Reserve hit: the core moves reserve → primary."""
        if cpu not in self.reserve:
            raise ValueError(f"promote of cpu {cpu} not in reserve")
        self.reserve.discard(cpu)
        self.primary.add(cpu)

    def expand(self, cpu: int) -> None:
        """Impatient expansion: the core joins the primary directly."""
        if cpu in self.primary:
            raise ValueError(f"expand of cpu {cpu} already in primary")
        self.reserve.discard(cpu)
        self.primary.add(cpu)

    def demote(self, cpu: int) -> bool:
        """Compaction: primary → reserve (dropped entirely when the
        reserve is full or disabled).  Returns True if the core was
        parked in the reserve."""
        if cpu not in self.primary:
            raise ValueError(f"demote of cpu {cpu} not in primary")
        self.primary.discard(cpu)
        if self.reserve_enabled and len(self.reserve) < self.r_max:
            self.reserve.add(cpu)
            return True
        return False

    def admit_reserve(self, cpu: int) -> bool:
        """A CFS pick outside both masks enters the reserve if there is
        room (§3.1); no-op for members.  Returns True on admission."""
        if cpu in self.primary or cpu in self.reserve:
            return False
        if self.reserve_enabled and len(self.reserve) < self.r_max:
            self.reserve.add(cpu)
            return True
        return False

    def evict(self, cpu: int) -> bool:
        """Hotplug repair: the core leaves both masks unconditionally."""
        was_member = cpu in self.primary or cpu in self.reserve
        self.primary.discard(cpu)
        self.reserve.discard(cpu)
        return was_member

    def check(self) -> None:
        """Raise if the §3.1 invariants do not hold."""
        overlap = self.primary & self.reserve
        if overlap:
            raise AssertionError(
                f"masks overlap on {sorted(overlap)}")
        if self.reserve_enabled:
            if len(self.reserve) > self.r_max:
                raise AssertionError(
                    f"reserve {len(self.reserve)} exceeds r_max {self.r_max}")
        elif self.reserve:
            raise AssertionError(
                f"reserve disabled but holds {sorted(self.reserve)}")


class ScxNestPolicy(SelectionPolicy):
    """scx_nest placement: warm-core masks + global vtime queue + timers."""

    #: The mask walk plus the vtime bookkeeping sit in front of CFS —
    #: comparable to Nest's added selection code, a touch cheaper (no
    #: attachment history check).
    selection_cost_us = 2

    def __init__(self, params: NestParams = DEFAULT_PARAMS) -> None:
        super().__init__()
        self.params = params
        self._masks = NestMasks(params.r_max, params.reserve_enabled)
        self._cfs = CfsPolicy()
        self._queue = GlobalVtimeQueue()
        #: Per-cpu compaction-timer token: present iff a timer is armed;
        #: the value pairs a generation with the arm time so superseded
        #: or disarmed timers become no-ops when they fire.
        self._armed: Dict[int, Tuple[int, int]] = {}
        self._arm_gen = 0
        #: Cores with a pending 0-delay vtime-pull event.
        self._pull_pending: Set[int] = set()
        self.metrics = MetricsRegistry()
        m = self.metrics
        self._c_placements = m.counter("placements")
        self._c_primary = m.counter("primary_hits")
        self._c_reserve = m.counter("reserve_hits")
        self._c_cfs = m.counter("cfs_fallbacks")
        self._c_impatient = m.counter("impatient_placements")
        self._c_expand = m.counter("expansions")
        self._c_arm = m.counter("compact_arms")
        self._c_compact = m.counter("compactions")
        self._c_cancel = m.counter("compact_cancels")
        self._c_enq = m.counter("vtime_enqueues")
        self._c_pull = m.counter("vtime_pulls")
        self._h_search = m.histogram("search_len", SEARCH_LEN_EDGES)
        self._h_size = m.histogram("primary_size", MASK_SIZE_EDGES)
        # Replaced with the engine's log on bind; a detached placeholder
        # lets unbound policies (unit tests) run with events disabled.
        self._obs = EventLog()

    def on_bind(self) -> None:
        self._cfs.kernel = self.kernel
        self._cfs.check_pending_default = self.params.placement_flag
        self._obs = self.kernel.engine.obs

    @property
    def name(self) -> str:
        return "Scxnest"

    # Probe-compatible mask views (the verification oracle snapshots
    # final membership through these, exactly as it does for Nest).
    @property
    def primary(self) -> Set[int]:
        return self._masks.primary

    @property
    def reserve(self) -> Set[int]:
        return self._masks.reserve

    def check_invariants(self) -> None:
        """Tier accounting adds up and the masks obey §3.1."""
        c = self.metrics.counters()
        hits = c["primary_hits"] + c["reserve_hits"] + c["cfs_fallbacks"]
        if hits != c["placements"]:
            raise AssertionError(
                f"scxnest counter inconsistency: primary({c['primary_hits']})"
                f" + reserve({c['reserve_hits']})"
                f" + cfs({c['cfs_fallbacks']}) = {hits}"
                f" != placements({c['placements']})")
        if c["impatient_placements"] > c["cfs_fallbacks"]:
            raise AssertionError(
                f"scxnest counter inconsistency: impatient placements"
                f"({c['impatient_placements']}) exceed cfs fallbacks"
                f"({c['cfs_fallbacks']})")
        if c["expansions"] > c["impatient_placements"]:
            raise AssertionError(
                f"scxnest counter inconsistency: expansions"
                f"({c['expansions']}) exceed impatient placements"
                f"({c['impatient_placements']})")
        if c["compactions"] + c["compact_cancels"] > c["compact_arms"]:
            raise AssertionError(
                f"scxnest counter inconsistency: compactions"
                f"({c['compactions']}) + cancels({c['compact_cancels']}) "
                f"exceed arms({c['compact_arms']})")
        self._masks.check()

    # ------------------------------------------------------------------
    # Selection entry points
    # ------------------------------------------------------------------

    def select_cpu_fork(self, task: Task, parent_cpu: int) -> int:
        return self._select(task, start=parent_cpu, is_fork=True)

    def select_cpu_wakeup(self, task: Task, waker_cpu: int) -> int:
        start = task.prev_cpu if task.prev_cpu is not None else waker_cpu
        return self._select(task, start=start, is_fork=False,
                            waker_cpu=waker_cpu)

    def _select(self, task: Task, start: int, is_fork: bool,
                waker_cpu: Optional[int] = None) -> int:
        p = self.params
        self._c_placements.value += 1
        obs = self._obs
        examined = 0

        impatient = (p.impatience_enabled and not is_fork
                     and task.impatience >= p.r_impatient)

        if not impatient:
            cpu, examined = self._search_primary(start, task, is_fork)
            if cpu is not None:
                self._c_primary.value += 1
                task.impatience = 0
                self._finish_placement(task, cpu, examined)
                if obs.enabled:
                    obs.emit(self.kernel.engine.now, oev.PLACE_PRIMARY,
                             cpu=cpu, task=task.tid, value=examined)
                return cpu
            if p.reserve_enabled:
                cpu, n = self._search_reserve(start)
                examined += n
                if cpu is not None:
                    self._masks.promote(cpu)
                    self._c_reserve.value += 1
                    if not is_fork:
                        task.impatience += 1
                    self._finish_placement(task, cpu, examined)
                    if obs.enabled:
                        now = self.kernel.engine.now
                        obs.emit(now, oev.PLACE_RESERVE, cpu=cpu,
                                 task=task.tid, value=examined)
                        obs.emit(now, oev.SCXNEST_PROMOTE, cpu=cpu,
                                 task=task.tid,
                                 value=len(self._masks.primary))
                    return cpu

        # Global-queue fallback: stock CFS chooses, fairness is settled by
        # the vtime queue (the task enters it if the pick is busy).
        self._c_cfs.value += 1
        if is_fork:
            cpu = self._cfs.select_cpu_fork(task, start)
        else:
            cpu = self._cfs.select_cpu_wakeup(
                task, waker_cpu if waker_cpu is not None else start)

        if impatient:
            # scx_nest's r_impatient rule: the pick is promoted straight
            # into the primary mask and the impatience counter resets.
            self._c_impatient.value += 1
            task.impatience = 0
            if obs.enabled:
                obs.emit(self.kernel.engine.now, oev.PLACE_IMPATIENT,
                         cpu=cpu, task=task.tid, value=examined)
            if cpu not in self._masks.primary:
                self._masks.expand(cpu)
                self._c_expand.value += 1
                if obs.enabled:
                    obs.emit(self.kernel.engine.now, oev.SCXNEST_EXPAND,
                             cpu=cpu, task=task.tid,
                             value=len(self._masks.primary))
        else:
            if not is_fork:
                task.impatience += 1
            self._masks.admit_reserve(cpu)
            if obs.enabled:
                obs.emit(self.kernel.engine.now, oev.PLACE_CFS, cpu=cpu,
                         task=task.tid, value=examined)
        self._finish_placement(task, cpu, examined)
        return cpu

    def _finish_placement(self, task: Task, cpu: int, examined: int) -> None:
        """Per-placement instrumentation plus the vtime bookkeeping."""
        self._h_search.observe(examined)
        self._h_size.observe(len(self._masks.primary))
        self._queue.charge(task.tid)
        if not self.kernel.cpu_is_idle(cpu):
            # The pick is busy: the task waits its turn in the global
            # queue, from which idling cores pull in vtime order.
            self._queue.push(task.tid, (task, cpu))
            self._c_enq.value += 1

    def _search_primary(self, start: int, task: Task,
                        is_fork: bool) -> Tuple[Optional[int], int]:
        """Idle-core search over the primary mask, previous core first,
        then same-die rotation (no compaction along the way — demotions
        are the timers' job).  Returns (cpu or None, cores examined)."""
        masks = self._masks
        if not masks.primary:
            return None, 0
        topo = self.kernel.topology
        start_die = topo.die_of(start)
        same_die = [c for c in masks.primary if topo.die_of(c) == start_die]
        other = [c for c in masks.primary if topo.die_of(c) != start_die]
        prefer = []
        if not is_fork and task.prev_cpu is not None \
                and task.prev_cpu in masks.primary:
            prefer = [task.prev_cpu]
        examined = 0
        for cpu in prefer + list(_rotate(tuple(same_die), start)) \
                + sorted(other):
            examined += 1
            if self._idle(cpu):
                return cpu, examined
        return None, examined

    def _search_reserve(self, start: int) -> Tuple[Optional[int], int]:
        """Idle-core search over the reserve mask, same-die first."""
        masks = self._masks
        if not masks.reserve:
            return None, 0
        topo = self.kernel.topology
        start_die = topo.die_of(start)
        same_die = [c for c in masks.reserve if topo.die_of(c) == start_die]
        other = [c for c in masks.reserve if topo.die_of(c) != start_die]
        examined = 0
        for cpu in list(_rotate(tuple(same_die), start)) \
                + list(_rotate(tuple(other), start)):
            examined += 1
            if self._idle(cpu):
                return cpu, examined
        return None, examined

    # ------------------------------------------------------------------
    # Idle-path hooks: vtime pulls and compaction timers
    # ------------------------------------------------------------------

    def on_exit_idle(self, cpu: int) -> None:
        """A task exited and ``cpu`` scheduled to idle: pull the fairest
        waiting task from the global queue (deferred one engine step so
        the exit path finishes first), and arm the compaction timer."""
        kernel = self.kernel
        if not kernel.cpu_online[cpu]:
            return
        self._request_pull(cpu)
        if self.params.compaction_enabled and cpu in self._masks.primary \
                and cpu not in self._armed:
            self._arm_compaction(cpu)

    def on_tick(self, cpu: int, freq_mhz: int) -> None:
        """scx_nest drives dispatch from a periodic timer: a busy tick
        with global-queue entries prods one idle core to pull, covering
        the cross-die imbalances the kernel's same-die newidle balance
        never reaches."""
        if not len(self._queue):
            return
        kernel = self.kernel
        for idle_cpu in range(kernel.topology.n_cpus):
            if idle_cpu not in self._pull_pending \
                    and kernel.cpu_online[idle_cpu] \
                    and kernel.cpu_is_idle(idle_cpu):
                self._request_pull(idle_cpu)
                return

    def _request_pull(self, cpu: int) -> None:
        if len(self._queue) and cpu not in self._pull_pending:
            self._pull_pending.add(cpu)
            self.kernel.engine.after(0, EventKind.BALANCE,
                                     self._pull_fired, (cpu,))

    def _pull_fired(self, cpu: int) -> None:
        """Consume global-queue entries in (vtime, seq) order until one
        still describes a waiting task, then migrate it here."""
        self._pull_pending.discard(cpu)
        kernel = self.kernel
        if not kernel.cpu_online[cpu] or not kernel.cpu_is_idle(cpu):
            return
        if self.params.placement_flag \
                and kernel.rqs[cpu].placement_pending > 0:
            return
        while True:
            entry = self._queue.pop()
            if entry is None:
                return
            _tid, payload = entry
            task, src = payload
            if task.state is not TaskState.RUNNABLE or src == cpu:
                continue   # stale: the task ran, or is already ours
            if not kernel.rqs[src].remove(task):
                continue   # stale: no longer queued where we left it
            self._c_pull.value += 1
            if self._obs.enabled:
                self._obs.emit(kernel.engine.now, oev.SCXNEST_VTIME_PULL,
                               cpu=cpu, task=task.tid, value=src)
            kernel._migrate_queued(task, src, cpu)
            return

    def _arm_compaction(self, cpu: int) -> None:
        delay = self._compact_delay_us()
        self._arm_gen += 1
        now = self.kernel.engine.now
        self._armed[cpu] = (self._arm_gen, now)
        self._c_arm.value += 1
        if self._obs.enabled:
            self._obs.emit(now, oev.SCXNEST_COMPACT_ARM, cpu=cpu,
                           value=delay)
        self.kernel.engine.after(delay, EventKind.PREEMPT,
                                 self._compaction_fired,
                                 (cpu, self._arm_gen))

    def _compact_delay_us(self) -> int:
        return max(1, int(self.params.p_remove_ticks * TICK_US))

    def _compaction_fired(self, cpu: int, gen: int) -> None:
        """Demote the core if it sat untouched since arming; a reused
        core cancels (and re-arms while it is idle again)."""
        token = self._armed.get(cpu)
        if token is None or token[0] != gen:
            return    # disarmed (hotplug) or superseded by a newer timer
        arm_time = token[1]
        del self._armed[cpu]
        kernel = self.kernel
        if not kernel.cpu_online[cpu] or cpu not in self._masks.primary:
            return    # evicted while the timer was in flight
        if kernel.cpu_last_used(cpu) > arm_time:
            # The core did work since arming: compaction is off, and the
            # timer re-arms if the core is sitting idle again.
            self._c_cancel.value += 1
            if self._obs.enabled:
                self._obs.emit(kernel.engine.now,
                               oev.SCXNEST_COMPACT_CANCEL, cpu=cpu)
            if self.params.compaction_enabled and kernel.cpu_is_idle(cpu):
                self._arm_compaction(cpu)
            return
        self._masks.demote(cpu)
        self._c_compact.value += 1
        if self._obs.enabled:
            self._obs.emit(kernel.engine.now, oev.SCXNEST_COMPACT, cpu=cpu,
                           value=len(self._masks.primary))

    # ------------------------------------------------------------------
    # Fault hooks
    # ------------------------------------------------------------------

    def on_cpu_offline(self, cpu: int) -> None:
        """Mask repair for a hotplug fault, mirroring Nest's: the core
        leaves both masks immediately and its timer is disarmed.  The
        eviction touches no placement counters."""
        self._armed.pop(cpu, None)
        if self._masks.evict(cpu):
            # Lazily created so fault-free runs keep an identical
            # metrics dict (and identical cached results).
            self.metrics.counter("offline_evictions").value += 1
            if self._obs.enabled:
                self._obs.emit(self.kernel.engine.now,
                               oev.NEST_OFFLINE_EVICT, cpu=cpu,
                               value=len(self._masks.primary))

    def select_cpu_offline_migration(self, task: Task,
                                     offline_cpu: int) -> Optional[int]:
        """Re-place an orphan through the normal search so the move is
        counted like any other placement."""
        return self._select(task, start=offline_cpu, is_fork=False,
                            waker_cpu=offline_cpu)

    # ------------------------------------------------------------------

    def _idle(self, cpu: int) -> bool:
        """Idle and not targeted by an in-flight placement (§3.4 flag)."""
        if not self.kernel.cpu_is_idle(cpu):
            return False
        if self.params.placement_flag \
                and self.kernel.rqs[cpu].placement_pending > 0:
            return False
        return True

    def nest_sizes(self) -> Tuple[int, int]:
        return len(self._masks.primary), len(self._masks.reserve)
