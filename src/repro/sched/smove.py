"""The S_move scheduler of Gouicem et al. (paper §2.2), as a baseline.

S_move targets *frequency inversion*: a parent forks/wakes a child and
immediately blocks, so the child should inherit the parent's warm core
instead of starting cold.  S_move lets CFS choose a core, and only when that
core's frequency — *as observed at its last clock tick* — is low does it
place the child on the waker's core, arming a timer that migrates the child
to the CFS-chosen core if it has not started running within a brief delay.

The "last clock tick" detail is what the paper uses to explain S_move's weak
results on Speed Shift machines (§5.2): ticks only run on busy cpus, and a
busy cpu on a 6130/5218 is almost always already fast, so the observed
frequency is stale-high for idle cores and the mechanism rarely fires.
The model reproduces this by sampling frequencies only from the tick hook.
"""

from __future__ import annotations

from typing import List, Optional

from ..kernel.task import Task, TaskState
from ..sim.events import EventKind
from .base import SelectionPolicy
from .cfs import CfsPolicy


class SmovePolicy(SelectionPolicy):
    """S_move placement: CFS plus frequency-gated child-on-waker-core."""

    selection_cost_us = 1

    def __init__(self, move_delay_us: int = 50) -> None:
        super().__init__()
        self.move_delay_us = move_delay_us
        self._cfs = CfsPolicy()
        self._tick_freq: Optional[List[int]] = None
        self.stats = {"deferred_placements": 0, "timer_migrations": 0}

    def on_bind(self) -> None:
        self._cfs.kernel = self.kernel
        # Frequency of each cpu as last observed by a scheduler tick.  Ticks
        # only run on busy cpus, so the value is stale for idle cores — and
        # optimistically high, since a core's last tick usually saw it busy
        # and fast.  This staleness is the paper's explanation for S_move
        # barely firing on the 6130/5218 (§5.2).
        self._tick_freq = [self.kernel.machine.max_turbo_mhz] \
            * self.kernel.topology.n_cpus

    @property
    def name(self) -> str:
        return "Smove"

    def on_tick(self, cpu: int, freq_mhz: int) -> None:
        self._tick_freq[cpu] = freq_mhz

    # ------------------------------------------------------------------

    def select_cpu_fork(self, task: Task, parent_cpu: int) -> int:
        cfs_cpu = self._cfs.select_cpu_fork(task, parent_cpu)
        return self._maybe_move(task, cfs_cpu, parent_cpu)

    def select_cpu_wakeup(self, task: Task, waker_cpu: int) -> int:
        cfs_cpu = self._cfs.select_cpu_wakeup(task, waker_cpu)
        return self._maybe_move(task, cfs_cpu, waker_cpu)

    def _maybe_move(self, task: Task, cfs_cpu: int, waker_cpu: int) -> int:
        kernel = self.kernel
        nominal = kernel.machine.nominal_mhz
        observed = self._tick_freq[cfs_cpu]
        if cfs_cpu == waker_cpu or observed >= nominal:
            return cfs_cpu
        waker_freq = self._tick_freq[waker_cpu]
        if waker_freq < nominal:
            return cfs_cpu
        # Defer to the waker's core; arm the migration timer.
        self.stats["deferred_placements"] += 1
        kernel.engine.after(self.move_delay_us, EventKind.PREEMPT,
                            self._timer_fired, (task, waker_cpu, cfs_cpu))
        return waker_cpu

    def _timer_fired(self, task: Task, placed_cpu: int, cfs_cpu: int) -> None:
        """Move the task to the CFS-chosen core if it never got to run."""
        if task.state is not TaskState.RUNNABLE:
            return
        if not self.kernel.cpu_online[cfs_cpu]:
            return    # the CFS choice was hotplugged out while the timer ran
        rq = self.kernel.rqs[placed_cpu]
        if rq.remove(task):
            self.stats["timer_migrations"] += 1
            self.kernel._migrate_queued(task, placed_cpu, cfs_cpu)
