"""Model of CFS core selection (Linux v5.9 ``select_task_rq_fair``).

Implements the behaviour the paper describes in §2.1:

**Fork** walks the scheduling domains from the highest level down.  At each
level it picks the least-loaded group — most idle cpus first, then lowest
recent load — and then the least-loaded cpu inside that group, scanning in
numerical order modulo the group size, starting from the forking cpu.
Because *recent load* (PELT) is part of the choice, an idle core that ran a
task a moment ago loses to a long-idle core: this is the anti-reuse bias
that Nest removes.

**Wakeup** picks a target (the task's previous cpu or the waker's), then
searches the target's die only: first for a physical core whose hyperthreads
are both idle, then a bounded linear scan for any idle cpu, then the
target's hyperthread, and finally settles on the target itself.  The scan is
in numerical order, so recently-used idle cores can be overlooked; recent
load is *not* consulted.  Wakeup is not work conserving: other dies are
never examined (Nest's fallback extends this, §3.4).
"""

from __future__ import annotations

from functools import lru_cache
from typing import Optional, Sequence, Tuple

from ..kernel.task import Task
from .base import SelectionPolicy

#: Upper bound on the wakeup path's linear scan for an idle cpu ("it only
#: makes a limited effort to find an idle core on that die", §2.1).
WAKEUP_SCAN_LIMIT = 8

#: Load quantum for comparisons: loads within one bucket are considered
#: equal (PELT noise), letting the numerical-order tiebreak decide — this is
#: how "the recent load's influence times out" (§5.2) and CFS returns to the
#: cores near the forking one.
LOAD_EPSILON = 32.0


class CfsPolicy(SelectionPolicy):
    """Linux CFS placement (the paper's baseline)."""

    selection_cost_us = 1

    def __init__(self, check_pending_default: bool = False) -> None:
        super().__init__()
        #: When used as Nest's fallback, the §3.4 placement flag applies to
        #: the fork path too; stock CFS leaves this off.
        self.check_pending_default = check_pending_default

    # ------------------------------------------------------------------
    # Fork path
    # ------------------------------------------------------------------

    def select_cpu_fork(self, task: Task, parent_cpu: int) -> int:
        kernel = self.kernel
        cpu = parent_cpu
        stack = kernel.domains.domains_of(cpu)
        # Walk from the highest domain down to the lowest.
        for level in range(len(stack) - 1, -1, -1):
            dom = stack[level]
            group = self._find_idlest_group(dom.groups, cpu)
            cpu = self._find_idlest_cpu(group, from_cpu=parent_cpu)
            stack = kernel.domains.domains_of(cpu)
        return cpu

    def _find_idlest_group(self, groups: Sequence[Tuple[int, ...]],
                           current_cpu: int) -> Tuple[int, ...]:
        """Linux v5.9 semantics: the local group (the one containing the
        forking cpu) wins unless another group has strictly more idle cpus;
        among the others, more idle cpus then less quantized load."""
        kernel = self.kernel
        now = kernel.engine.now
        rqs = kernel.rqs
        cpus = kernel.cpus
        online = kernel.cpu_online
        local = None
        best = None
        best_key = None
        for group in groups:
            if current_cpu in group:
                local = group
                continue
            # One pass per group gathers the idle count, the queued+running
            # count and the summed load (three separate sweeps before).
            idle_cpus = 0
            running = 0
            load = 0.0
            n_online = 0
            for c in group:
                if not online[c]:
                    continue
                n_online += 1
                rq = rqs[c]
                q = rq.nr_queued
                if cpus[c].current is None:
                    if q == 0:
                        idle_cpus += 1
                    running += q
                else:
                    running += q + 1
                load += rq.load_avg(now)
            if n_online == 0:
                continue    # hotplugged-out group: not a placement target
            key = (-idle_cpus, running, _qload(load))
            if best_key is None or key < best_key:
                best, best_key = group, key
        if local is None:
            return best
        if best is None:
            return local
        local_idle = sum(1 for c in local
                         if online[c] and cpus[c].current is None
                         and rqs[c].nr_queued == 0)
        if local_idle >= -best_key[0]:
            return local
        return best

    def _find_idlest_cpu(self, group: Tuple[int, ...], from_cpu: int) -> int:
        """Least-loaded cpu of the group, scanned in numerical order modulo
        the group, starting from the forking cpu's position."""
        kernel = self.kernel
        now = kernel.engine.now
        rqs = kernel.rqs
        cpus = kernel.cpus
        online = kernel.cpu_online
        check_pending = self.check_pending_default
        best = None
        best_key = None
        for rank, c in enumerate(_rotate(group, from_cpu)):
            if not online[c]:
                continue
            rq = rqs[c]
            q = rq.nr_queued
            busy = cpus[c].current is not None
            if not busy and q == 0 \
                    and not (check_pending and rq.placement_pending > 0):
                # Idle cpus compete on recent load: CFS prefers the one
                # idle longest (smallest decayed load, quantized so that
                # fully-decayed cores tie and scan order decides).
                key = (0, 0, _qload(rq.load_avg(now)), rank)
            else:
                key = (1, q + (1 if busy else 0),
                       _qload(rq.load_avg(now)), rank)
            if best_key is None or key < best_key:
                best, best_key = c, key
        if best is None:
            # Every cpu of the group went offline mid-walk: fall back to
            # the machine-wide least loaded online cpu.
            return kernel.least_loaded_online(from_cpu)
        return best

    # ------------------------------------------------------------------
    # Wakeup path
    # ------------------------------------------------------------------

    def select_cpu_wakeup(self, task: Task, waker_cpu: int) -> int:
        prev = task.prev_cpu if task.prev_cpu is not None else waker_cpu
        target = self._wake_affine(task, prev, waker_cpu)
        return self.select_idle_sibling(target, all_dies=False,
                                        check_pending=False)

    def _wake_affine(self, task: Task, prev: int, waker: int) -> int:
        """Choose between the previous cpu and the waker's cpu.

        Mirrors v5.9 ``wake_affine``: if the waker's cpu is idle and shares
        a cache with prev, stay with whichever of the two is idle;
        otherwise compare effective loads (``wake_affine_weight``) with the
        kernel's ~117% imbalance margin.  Because the previous cpu carries
        the wakee's own decaying blocked footprint, a frequently-sleeping
        task can be pulled toward its (varying) wakers — the seed of the
        dispersal cascades that §3.3 describes.
        """
        kernel = self.kernel
        online = kernel.cpu_online
        if not online[prev]:
            # prev was hotplugged out; the waker's cpu (or, for timer
            # wakes from a dead cpu, an online fallback) takes its place.
            return waker if online[waker] else kernel.least_loaded_online(waker)
        if not online[waker]:
            return prev
        if prev == waker:
            return prev
        topo = kernel.topology
        now = kernel.engine.now
        if kernel.cpu_is_idle(waker) \
                and topo.die_of(prev) == topo.die_of(waker):
            return prev if kernel.cpu_is_idle(prev) else waker
        this_load = kernel.rqs[waker].load_avg(now) + task.util_est
        prev_load = kernel.rqs[prev].load_avg(now)
        if this_load * 1.17 < prev_load:
            return waker
        return prev

    def select_idle_sibling(self, target: int, all_dies: bool,
                            check_pending: bool) -> int:
        """The CFS idle search around ``target`` (``select_idle_sibling``).

        ``all_dies`` enables Nest's §3.4 wakeup work conservation: if the
        target die has no idle cpu, other dies are searched too.
        ``check_pending`` makes the search skip cpus with an in-flight
        placement (Nest's §3.4 placement flag).
        """
        kernel = self.kernel
        topo = kernel.topology

        if self._usable_idle(target, check_pending):
            return target

        die = kernel.domains.die_span(target)
        if not all_dies:
            cpu = self._search_die(die, target, check_pending)
            if cpu is not None:
                return cpu
        else:
            # Work-conserving variant (Nest §3.4): prefer a fully-idle
            # physical core on *any* die over a hyperthread sibling on the
            # local one — this is what lets a Nest burst scatter across the
            # machine instead of doubling up on hyperthreads (the paper's
            # rodinia observation).
            other_spans = [tuple(topo.cpus_in_socket(s))
                           for s in _rotate(tuple(range(topo.n_sockets)),
                                            topo.die_of(target) + 1)
                           if s != topo.die_of(target)]
            cpu = self._search_idle_core(die, target, check_pending)
            if cpu is not None:
                return cpu
            for span in other_spans:
                cpu = self._search_idle_core(span, span[0], check_pending)
                if cpu is not None:
                    return cpu
            cpu = self._search_any_idle(die, target, check_pending,
                                        unbounded=False)
            if cpu is not None:
                return cpu
            for span in other_spans:
                cpu = self._search_any_idle(span, span[0], check_pending,
                                            unbounded=True)
                if cpu is not None:
                    return cpu

        sib = topo.sibling_of(target)
        if sib != target and self._usable_idle(sib, check_pending):
            return sib
        if not kernel.cpu_online[target]:
            return kernel.least_loaded_online(target)
        return target

    def _search_die(self, die: Sequence[int], target: int,
                    check_pending: bool, unbounded: bool = False) -> Optional[int]:
        cpu = self._search_idle_core(die, target, check_pending)
        if cpu is not None:
            return cpu
        return self._search_any_idle(die, target, check_pending, unbounded)

    def _search_idle_core(self, die: Sequence[int], target: int,
                          check_pending: bool) -> Optional[int]:
        """Step 1: a physical core with every hyperthread idle."""
        kernel = self.kernel
        pc_of = kernel.pc_of
        siblings_of = kernel.smt_siblings_of
        seen_cores = set()
        for c in _rotate(tuple(die), target):
            pc = pc_of[c]
            if pc in seen_cores:
                continue
            seen_cores.add(pc)
            sibs = siblings_of[c]
            if all(self._usable_idle(s, check_pending) for s in sibs):
                return min(sibs)
        return None

    def _search_any_idle(self, die: Sequence[int], target: int,
                         check_pending: bool,
                         unbounded: bool = False) -> Optional[int]:
        """Step 2: bounded linear scan for any idle cpu."""
        ordered = _rotate(tuple(die), target)
        limit = len(ordered) if unbounded else min(len(ordered),
                                                   WAKEUP_SCAN_LIMIT)
        for c in ordered[:limit]:
            if self._usable_idle(c, check_pending):
                return c
        return None

    def _usable_idle(self, cpu: int, check_pending: bool) -> bool:
        kernel = self.kernel
        if not kernel.cpu_online[cpu]:
            return False
        if kernel.cpus[cpu].current is not None \
                or kernel.rqs[cpu].nr_queued != 0:
            return False
        if check_pending and kernel.rqs[cpu].placement_pending > 0:
            return False
        return True


def _qload(load: float) -> int:
    """Quantize a PELT load for comparisons (see LOAD_EPSILON)."""
    return int(load / LOAD_EPSILON)


@lru_cache(maxsize=4096)
def _rotate(seq: Tuple[int, ...], start: int) -> Tuple[int, ...]:
    """Return ``seq`` rotated so scanning starts at ``start`` (or just after
    its insertion point when ``start`` is not a member).

    Memoized: the wakeup path rotates the same die span for every placement,
    and there are only (spans x cpus) distinct rotations per machine.
    """
    ordered = sorted(seq)
    pivot = 0
    for i, v in enumerate(ordered):
        if v >= start:
            pivot = i
            break
    else:
        pivot = 0
    return tuple(ordered[pivot:] + ordered[:pivot])
