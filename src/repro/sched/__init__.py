"""Core-selection policies and their registry.

CFS (baseline), Smove (comparison baseline) and FT-RT (fault-tolerant
deadline placement) live here; Nest lives in ``core/``.  All are resolved
by short name through :mod:`repro.sched.registry`.
"""

from .base import SelectionPolicy
from .cfs import CfsPolicy, WAKEUP_SCAN_LIMIT
from .ftrt import FtrtPolicy
from .registry import (available_policies, make_registered_policy,
                       register_policy)
from .smove import SmovePolicy

__all__ = ["SelectionPolicy", "CfsPolicy", "SmovePolicy", "FtrtPolicy",
           "WAKEUP_SCAN_LIMIT", "available_policies",
           "make_registered_policy", "register_policy"]
