"""Core-selection policies: CFS (baseline), Smove (comparison baseline)."""

from .base import SelectionPolicy
from .cfs import CfsPolicy, WAKEUP_SCAN_LIMIT
from .smove import SmovePolicy

__all__ = ["SelectionPolicy", "CfsPolicy", "SmovePolicy", "WAKEUP_SCAN_LIMIT"]
