"""Core-selection policies and their registry.

CFS (baseline), Smove (comparison baseline), FT-RT (fault-tolerant
deadline placement) and scx_nest (Meta's sched_ext descendant of Nest)
live here; Nest lives in ``core/``.  All are resolved by short name
through :mod:`repro.sched.registry`, the single source of truth the
CLI, the fuzz pool and the conformance suite derive from (DESIGN.md
§11).
"""

from .base import SelectionPolicy
from .cfs import CfsPolicy, WAKEUP_SCAN_LIMIT
from .ftrt import FtrtPolicy
from .registry import (available_policies, iter_policy_infos,
                       make_registered_policy, policy_info,
                       register_policy, unregister_policy)
from .scxnest import ScxNestPolicy
from .smove import SmovePolicy

__all__ = ["SelectionPolicy", "CfsPolicy", "SmovePolicy", "FtrtPolicy",
           "ScxNestPolicy", "WAKEUP_SCAN_LIMIT", "available_policies",
           "iter_policy_infos", "make_registered_policy", "policy_info",
           "register_policy", "unregister_policy"]
