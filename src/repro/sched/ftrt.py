"""Fault-tolerant real-time placement: primary/backup re-execution.

FT-RT schedules deadline-carrying jobs as primary/backup pairs (see
DESIGN.md §10).  The primary forks like any CFS task; its *backup* copy
is admitted cold — it parks on an activation channel immediately — and
FT-RT's sole placement obligation is **failure disjointness**: the backup
must land on a different physical core than the primary, preferring a
different socket entirely, so that one correlated same-socket failure
burst cannot destroy both copies of a job.

Everything that is not a backup fork falls through to stock CFS: FT-RT
is a placement veneer, not a new runqueue discipline, exactly the way
Nest wraps CFS core selection.
"""

from __future__ import annotations

from typing import Optional

from ..kernel.task import Task
from ..obs import events as oev
from ..obs.log import EventLog
from ..obs.metrics import MetricsRegistry
from .base import SelectionPolicy
from .cfs import LOAD_EPSILON, CfsPolicy


class FtrtPolicy(SelectionPolicy):
    """Primary/backup deadline placement wrapping CFS."""

    #: FT-RT adds the disjointness scan in front of CFS selection —
    #: cheaper than Nest's nest walk, dearer than stock CFS.
    selection_cost_us = 2

    def __init__(self) -> None:
        super().__init__()
        self._cfs = CfsPolicy()
        self.metrics = MetricsRegistry()
        m = self.metrics
        self._c_placements = m.counter("placements")
        self._c_backup = m.counter("backup_placements")
        self._c_disjoint = m.counter("disjoint_ok")
        self._c_fallback = m.counter("disjoint_fallbacks")
        # Replaced with the engine's log on bind; a detached placeholder
        # lets unbound policies (unit tests) run with events disabled.
        self._obs = EventLog()

    def on_bind(self) -> None:
        self._cfs.kernel = self.kernel
        self._obs = self.kernel.engine.obs

    @property
    def name(self) -> str:
        return "Ftrt"

    def check_invariants(self) -> None:
        """Every backup placement is claimed by exactly one outcome."""
        c = self.metrics.counters()
        claimed = c["disjoint_ok"] + c["disjoint_fallbacks"]
        if claimed != c["backup_placements"]:
            raise AssertionError(
                f"ftrt counter inconsistency: disjoint({c['disjoint_ok']})"
                f" + fallback({c['disjoint_fallbacks']}) = {claimed}"
                f" != backups({c['backup_placements']})")
        if c["backup_placements"] > c["placements"]:
            raise AssertionError(
                f"ftrt counter inconsistency: backups"
                f"({c['backup_placements']}) exceed placements"
                f"({c['placements']})")

    # ------------------------------------------------------------------
    # Selection entry points
    # ------------------------------------------------------------------

    def select_cpu_fork(self, task: Task, parent_cpu: int) -> int:
        self._c_placements.value += 1
        primary = task.backup_of
        if primary is None:
            return self._cfs.select_cpu_fork(task, parent_cpu)
        return self._place_backup(task, primary, parent_cpu)

    def select_cpu_wakeup(self, task: Task, waker_cpu: int) -> int:
        self._c_placements.value += 1
        return self._cfs.select_cpu_wakeup(task, waker_cpu)

    # ------------------------------------------------------------------
    # Backup admission
    # ------------------------------------------------------------------

    def _place_backup(self, task: Task, primary: Task,
                      parent_cpu: int) -> int:
        kernel = self.kernel
        now = kernel.engine.now
        self._c_backup.value += 1
        pcpu = self._primary_cpu(primary)
        cpu = None if pcpu is None else self._disjoint_cpu(pcpu)
        if cpu is None:
            # No committed primary core yet, or every other physical core
            # is offline: take CFS's pick and record the fallback.
            cpu = self._cfs.select_cpu_fork(task, parent_cpu)
            self._c_fallback.value += 1
            value = -1
        else:
            self._c_disjoint.value += 1
            value = pcpu
        if self._obs.enabled:
            self._obs.emit(now, oev.RT_BACKUP_PLACE, cpu=cpu,
                           task=task.tid, value=value)
        return cpu

    def _disjoint_cpu(self, pcpu: int) -> Optional[int]:
        """The emptiest online cpu sharing no physical core with ``pcpu``,
        different socket first (a whole-socket burst must not be able to
        reach both copies)."""
        kernel = self.kernel
        topo = kernel.topology
        now = kernel.engine.now
        p_pc = kernel.pc_of[pcpu]
        p_socket = topo.die_of(pcpu)
        best = None
        best_key = None
        for c in range(topo.n_cpus):
            if not kernel.cpu_online[c] or kernel.pc_of[c] == p_pc:
                continue
            rq = kernel.rqs[c]
            occupancy = (rq.nr_queued + rq.placement_pending
                         + (0 if kernel.cpus[c].current is None else 1))
            key = (0 if topo.die_of(c) != p_socket else 1,
                   occupancy, int(rq.load_avg(now) / LOAD_EPSILON), c)
            if best_key is None or key < best_key:
                best, best_key = c, key
        return best

    @staticmethod
    def _primary_cpu(primary: Task) -> Optional[int]:
        """Where the primary runs or was last committed (None if nowhere)."""
        if primary.cpu is not None:
            return primary.cpu
        for c in primary.core_history:
            if c is not None:
                return c
        return None
