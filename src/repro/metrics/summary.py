"""Run summaries: the measurement record of one simulation."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..sim.clock import US_PER_SEC
from .freqdist import FreqDistribution
from .underload import UnderloadResult


@dataclass
class RunResult:
    """Everything the benchmark harness reports about one run."""

    scheduler: str
    governor: str
    machine: str
    workload: str
    seed: int
    makespan_us: int
    energy_joules: float
    underload: Optional[UnderloadResult] = None
    freq_dist: Optional[FreqDistribution] = None
    n_tasks: int = 0
    n_migrations: int = 0
    total_wakeups: int = 0
    wakeup_latency_us: int = 0
    policy_stats: Dict[str, int] = field(default_factory=dict)
    extra: Dict[str, float] = field(default_factory=dict)
    #: Serialized observability registry (obs/metrics.py): counters, gauges
    #: and histograms from the kernel (``kernel.*``) and the selection
    #: policy (``nest.*``).  Deterministic and cached with the result;
    #: rebuild instruments with ``MetricsRegistry.from_dict``.
    metrics: Dict[str, Any] = field(default_factory=dict)
    #: Host-side telemetry: wall-clock seconds the simulation took and how
    #: many engine events it processed.  Nondeterministic (timing), so it is
    #: excluded from determinism comparisons; a cache hit reports the wall
    #: time of the run that produced the entry.
    sim_wall_s: float = 0.0
    events_processed: int = 0
    #: Memory telemetry of the executing process, host-side like
    #: ``sim_wall_s``: peak RSS in KiB (process-lifetime high-water mark —
    #: in a pool worker that ran several specs it is "peak so far"), GC
    #: collection/collected-object deltas across the run, and — only when
    #: ``$REPRO_TRACEMALLOC=1`` — the tracemalloc peak in KiB.  All four
    #: serialize under the cache entry's ``"host"`` block, which every
    #: determinism comparison drops alongside ``sim_wall_s``.
    rss_peak_kb: int = 0
    gc_collections: int = 0
    gc_collected: int = 0
    alloc_peak_kb: int = 0

    @property
    def events_per_sec(self) -> float:
        """Engine throughput of the run (0 when wall time was not recorded)."""
        if self.sim_wall_s <= 0:
            return 0.0
        return self.events_processed / self.sim_wall_s

    @property
    def makespan_sec(self) -> float:
        return self.makespan_us / US_PER_SEC

    @property
    def label(self) -> str:
        return f"{self.scheduler}-{self.governor}"

    def brief(self) -> str:
        parts = [f"{self.workload} on {self.machine} [{self.label}]",
                 f"time={self.makespan_sec:.3f}s",
                 f"energy={self.energy_joules:.1f}J"]
        if self.underload is not None:
            parts.append(f"underload/s={self.underload.underload_per_second:.2f}")
        if self.freq_dist is not None:
            parts.append(f"top-freq={self.freq_dist.top_bins_fraction():.0%}")
        return "  ".join(parts)


def speedup(baseline_makespans: List[int], candidate_makespans: List[int]) -> float:
    """The paper's speedup: mean(baseline time) / mean(candidate time) - 1.

    Positive values are improvements (they plot above 0 in Figures 5-13).
    """
    if not baseline_makespans or not candidate_makespans:
        raise ValueError("empty sample")
    base = sum(baseline_makespans) / len(baseline_makespans)
    cand = sum(candidate_makespans) / len(candidate_makespans)
    if cand <= 0:
        raise ValueError("non-positive candidate time")
    return base / cand - 1.0


def energy_savings(baseline_j: List[float], candidate_j: List[float]) -> float:
    """Fractional CPU-energy reduction relative to the baseline."""
    if not baseline_j or not candidate_j:
        raise ValueError("empty sample")
    base = sum(baseline_j) / len(baseline_j)
    cand = sum(candidate_j) / len(candidate_j)
    if base <= 0:
        raise ValueError("non-positive baseline energy")
    return 1.0 - cand / base


def improvement_stddev(baseline_mean: float, candidate_values: List[float]) -> float:
    """The paper's error bars: stddev of per-run improvement vs the
    baseline *average* (§5.1)."""
    if not candidate_values:
        return 0.0
    imps = [baseline_mean / v - 1.0 for v in candidate_values]
    mean = sum(imps) / len(imps)
    var = sum((x - mean) ** 2 for x in imps) / len(imps)
    return var ** 0.5
