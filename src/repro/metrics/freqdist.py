"""Time-weighted frequency distributions (paper Figures 2, 6 and 11).

For every interval during which a task was running on a core, the duration
is accumulated into a frequency bin.  Bin edges follow the paper's figures:
they are machine specific (each machine has its own turbo structure), e.g.
for the 6130: (0,1.0], (1.0,1.6], (1.6,2.1], (2.1,2.8], (2.8,3.1],
(3.1,3.4], (3.4,3.7] GHz.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..hw.machines import Machine

#: Paper bin edges (GHz upper bounds) per cpu model.
PAPER_BINS_GHZ: Dict[str, Tuple[float, ...]] = {
    "Intel Xeon Gold 6130": (1.0, 1.6, 2.1, 2.8, 3.1, 3.4, 3.7),
    "Intel Xeon Gold 5218": (1.0, 1.6, 2.3, 2.8, 3.1, 3.6, 3.9),
    "Intel Xeon E7-8870 v4": (1.2, 1.7, 2.1, 2.6, 3.0),
    "Intel Xeon Gold 5220": (1.0, 1.6, 2.2, 2.8, 3.1, 3.6, 3.9),
    "AMD Ryzen 5 PRO 4650G": (1.4, 2.4, 3.7, 4.0, 4.2),
}


def bins_for(machine: Machine) -> Tuple[float, ...]:
    """Bin upper edges in GHz for a machine (paper bins where defined)."""
    edges = PAPER_BINS_GHZ.get(machine.cpu_model)
    if edges is not None:
        return edges
    lo = machine.min_mhz / 1000.0
    nom = machine.nominal_mhz / 1000.0
    hi = machine.max_turbo_mhz / 1000.0
    mid = (nom + hi) / 2
    return (lo, (lo + nom) / 2, nom, mid, hi)


class FreqDistribution:
    """Accumulates busy time per frequency bin."""

    def __init__(self, machine: Machine) -> None:
        self.machine = machine
        self.edges_ghz = bins_for(machine)
        self.bin_time_us: List[int] = [0] * len(self.edges_ghz)
        self.total_us = 0

    def segment_sink(self, core: int, start: int, end: int, freq_mhz: int,
                     task_id: int, spinning: bool) -> None:
        if task_id < 0 or spinning:
            return
        dur = end - start
        self.bin_time_us[self.bin_index(freq_mhz)] += dur
        self.total_us += dur

    def bin_index(self, freq_mhz: int) -> int:
        ghz = freq_mhz / 1000.0
        for i, edge in enumerate(self.edges_ghz):
            if ghz <= edge + 1e-9:
                return i
        return len(self.edges_ghz) - 1

    def fractions(self) -> List[float]:
        """Share of busy time in each bin (sums to 1 when non-empty)."""
        if self.total_us == 0:
            return [0.0] * len(self.edges_ghz)
        return [t / self.total_us for t in self.bin_time_us]

    def labels(self) -> List[str]:
        out = []
        prev = 0.0
        for edge in self.edges_ghz:
            out.append(f"({prev:.1f},{edge:.1f}] GHz")
            prev = edge
        return out

    def top_bins_fraction(self, n: int = 2) -> float:
        """Share of busy time in the ``n`` highest-frequency bins."""
        if self.total_us == 0:
            return 0.0
        return sum(self.bin_time_us[-n:]) / self.total_us

    def mean_ghz(self) -> float:
        """Busy-time-weighted mean of bin midpoints (summary statistic)."""
        if self.total_us == 0:
            return 0.0
        prev = 0.0
        acc = 0.0
        for t, edge in zip(self.bin_time_us, self.edges_ghz):
            mid = (prev + edge) / 2
            acc += t * mid
            prev = edge
        return acc / self.total_us

    def as_dict(self) -> Dict[str, float]:
        return dict(zip(self.labels(), self.fractions()))
