"""Wakeup/tail latency metrics (used by the schbench workload, §5.6)."""

from __future__ import annotations

import math
from typing import List, Sequence


def percentile(values: Sequence[float], p: float) -> float:
    """Nearest-rank percentile (p in [0, 100])."""
    if not values:
        raise ValueError("empty sample")
    if not 0 <= p <= 100:
        raise ValueError("percentile out of range")
    ordered = sorted(values)
    if p == 0:
        return ordered[0]
    rank = math.ceil(p / 100.0 * len(ordered))
    return ordered[min(len(ordered), rank) - 1]


class LatencyRecorder:
    """Accumulates request latencies and reports schbench-style stats."""

    def __init__(self) -> None:
        self.samples_us: List[int] = []

    def record(self, latency_us: int) -> None:
        if latency_us < 0:
            raise ValueError("negative latency")
        self.samples_us.append(latency_us)

    @property
    def count(self) -> int:
        return len(self.samples_us)

    def mean(self) -> float:
        if not self.samples_us:
            return 0.0
        return sum(self.samples_us) / len(self.samples_us)

    def p50(self) -> float:
        return percentile(self.samples_us, 50)

    def p99(self) -> float:
        return percentile(self.samples_us, 99)

    def p999(self) -> float:
        """The 99.9th percentile schbench reports."""
        return percentile(self.samples_us, 99.9)
