"""Wakeup/tail latency metrics (used by the schbench workload, §5.6)."""

from __future__ import annotations

from typing import List

# The shared nearest-rank implementation (metrics/quantiles.py) — the
# obs histogram quantiles use the same rank math, and a property test
# pins their agreement.
from .quantiles import percentile

__all__ = ["percentile", "LatencyRecorder"]


class LatencyRecorder:
    """Accumulates request latencies and reports schbench-style stats."""

    def __init__(self) -> None:
        self.samples_us: List[int] = []

    def record(self, latency_us: int) -> None:
        if latency_us < 0:
            raise ValueError("negative latency")
        self.samples_us.append(latency_us)

    @property
    def count(self) -> int:
        return len(self.samples_us)

    def mean(self) -> float:
        if not self.samples_us:
            return 0.0
        return sum(self.samples_us) / len(self.samples_us)

    def p50(self) -> float:
        return percentile(self.samples_us, 50)

    def p99(self) -> float:
        return percentile(self.samples_us, 99)

    def p999(self) -> float:
        """The 99.9th percentile schbench reports."""
        return percentile(self.samples_us, 99.9)
