"""The paper's *underload* metric (§5.2).

    "Underload in a given time interval is the difference between the number
    of cores used at any point in the interval and the maximum number of
    tasks that are simultaneously runnable in the interval."

A positive underload means a long-idle core was chosen instead of reusing a
core that was already active in the interval — the placement pathology Nest
removes.  The paper uses 4 ms (one-tick) intervals and also reports
*underload per second*: the average underload accumulated per second of
execution.  Overload (more runnable tasks than cores used, §5.2's "multiple
tasks trying to run on a single core") is tracked symmetrically.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ..sim.clock import TICK_US, US_PER_SEC


class UnderloadTracker:
    """Collects the inputs of the underload computation during a run.

    Wire it up with::

        tracker = UnderloadTracker()
        kernel.tracer.add_sink(tracker.segment_sink)
        kernel.runnable_observers.append(tracker.runnable_sink)

    and call :meth:`finalize` after the run.
    """

    def __init__(self, interval_us: int = TICK_US) -> None:
        if interval_us <= 0:
            raise ValueError("interval must be positive")
        self.interval_us = interval_us
        self._busy: List[Tuple[int, int, int]] = []    # (core, start, end)
        self._runnable: List[Tuple[int, int]] = [(0, 0)]  # (time, count)

    # ---- sinks -----------------------------------------------------------

    def segment_sink(self, core: int, start: int, end: int, freq_mhz: int,
                     task_id: int, spinning: bool) -> None:
        if task_id >= 0 and not spinning:
            self._busy.append((core, start, end))

    def runnable_sink(self, now: int, count: int) -> None:
        self._runnable.append((now, count))

    # ---- computation -------------------------------------------------------

    def finalize(self, end_us: int) -> "UnderloadResult":
        itv = self.interval_us
        n_intervals = max(1, (end_us + itv - 1) // itv)

        used: Dict[int, Set[int]] = {}
        for core, start, end in self._busy:
            for k in range(start // itv, min(n_intervals - 1, (end - 1) // itv) + 1):
                used.setdefault(k, set()).add(core)

        # Max simultaneous runnable per interval: sweep the change log.
        max_runnable = [0] * n_intervals
        prev_count = 0
        prev_time = 0
        for now, count in self._runnable:
            lo = prev_time // itv
            hi = min(n_intervals - 1, now // itv)
            for k in range(lo, hi + 1):
                if prev_count > max_runnable[k]:
                    max_runnable[k] = prev_count
            # The new count also holds at its own instant.
            k = min(n_intervals - 1, now // itv)
            if count > max_runnable[k]:
                max_runnable[k] = count
            prev_count, prev_time = count, now
        for k in range(prev_time // itv, n_intervals):
            if prev_count > max_runnable[k]:
                max_runnable[k] = prev_count

        series = []
        for k in range(n_intervals):
            series.append(len(used.get(k, ())) - max_runnable[k])
        return UnderloadResult(self.interval_us, series, end_us)


class UnderloadResult:
    """Per-interval underload series and its aggregates."""

    def __init__(self, interval_us: int, series: List[int], end_us: int) -> None:
        self.interval_us = interval_us
        self.series = series
        self.end_us = max(end_us, 1)

    @property
    def total_underload(self) -> int:
        """Sum of positive per-interval underload."""
        return sum(v for v in self.series if v > 0)

    @property
    def total_overload(self) -> int:
        """Sum of per-interval overload (runnable exceeding cores used)."""
        return sum(-v for v in self.series if v < 0)

    @property
    def underload_per_second(self) -> float:
        """The paper's headline aggregate (Figure 4): the time-averaged
        underload level, i.e. the average amount of underload present at any
        moment of the execution (Figure 4's values live in 0-5 while the
        per-interval series of Figure 3 also peaks around 6)."""
        return self.total_underload / len(self.series)

    @property
    def overload_per_second(self) -> float:
        """Time-averaged overload level (symmetric to underload)."""
        return self.total_overload / len(self.series)

    def timeline(self) -> List[Tuple[float, int]]:
        """(seconds, underload) points, for Figure 3-style traces."""
        return [(k * self.interval_us / US_PER_SEC, v)
                for k, v in enumerate(self.series)]
