"""Nearest-rank quantile math, shared by every percentile in the repo.

Two consumers used to carry their own copies: the schbench-style
:func:`~repro.metrics.latency.percentile` over raw samples, and the
trace-analysis quantiles over :class:`~repro.obs.metrics.Histogram`
buckets.  Both now route through :func:`nearest_rank`, so "p99" means
the same observation everywhere — and a property test pins that a raw
sample and its histogram agree whenever the histogram's edges can
represent the sample exactly.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence


def nearest_rank(n: int, p: float) -> int:
    """The 1-based nearest-rank index into a sorted sample of size ``n``.

    ``p`` is a percentile in [0, 100]; p=0 maps to the minimum (rank 1)
    and p=100 to the maximum (rank n), per the classic nearest-rank
    definition ``ceil(p/100 * n)``.
    """
    if n <= 0:
        raise ValueError("empty sample")
    if not 0 <= p <= 100:
        raise ValueError("percentile out of range")
    # max(1, ...) also covers p so small that p/100*n underflows to 0.
    return min(n, max(1, math.ceil(p / 100.0 * n)))


def percentile(values: Sequence[float], p: float) -> float:
    """Nearest-rank percentile of a raw sample (p in [0, 100])."""
    if not values:
        raise ValueError("empty sample")
    ordered = sorted(values)
    return ordered[nearest_rank(len(ordered), p) - 1]


def histogram_quantile(edges: Sequence[int], counts: Sequence[int],
                       p: float) -> Optional[int]:
    """Nearest-rank quantile of a fixed-bucket histogram.

    ``edges`` are inclusive upper bounds and ``counts`` has one extra
    trailing overflow bucket (the :class:`~repro.obs.metrics.Histogram`
    layout).  Returns the upper edge of the bucket holding the
    nearest-rank observation — the tightest bound the histogram can
    give — or ``None`` when the histogram is empty or the rank lands in
    the unbounded overflow bucket.
    """
    total = sum(counts)
    if total <= 0:
        return None
    rank = nearest_rank(total, p)
    acc = 0
    for edge, count in zip(edges, counts):
        acc += count
        if acc >= rank:
            return edge
    return None
