"""Measurement: underload, frequency distributions, latency, summaries."""

from .freqdist import FreqDistribution, PAPER_BINS_GHZ, bins_for
from .latency import LatencyRecorder, percentile
from .summary import RunResult, energy_savings, improvement_stddev, speedup
from .underload import UnderloadResult, UnderloadTracker

__all__ = [
    "FreqDistribution", "PAPER_BINS_GHZ", "bins_for",
    "LatencyRecorder", "percentile",
    "RunResult", "speedup", "energy_savings", "improvement_stddev",
    "UnderloadResult", "UnderloadTracker",
]
