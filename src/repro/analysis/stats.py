"""Statistics helpers used by the benchmark harness (paper §5.1)."""

from __future__ import annotations

import math
from typing import Sequence


def mean(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("empty sample")
    return sum(values) / len(values)


def stddev(values: Sequence[float]) -> float:
    """Population standard deviation."""
    if not values:
        raise ValueError("empty sample")
    m = mean(values)
    return math.sqrt(sum((v - m) ** 2 for v in values) / len(values))


def relative_stddev(values: Sequence[float]) -> float:
    """Stddev as a fraction of the mean (the paper's ±X% annotations)."""
    m = mean(values)
    if m == 0:
        raise ValueError("zero mean")
    return stddev(values) / abs(m)


def speedup_of_means(baseline: Sequence[float], candidate: Sequence[float]) -> float:
    """The paper's speedup: mean(baseline)/mean(candidate) - 1 (for
    time-like metrics, where smaller is better)."""
    b, c = mean(baseline), mean(candidate)
    if c <= 0:
        raise ValueError("non-positive candidate")
    return b / c - 1.0


def classify_speedup(speedup: float) -> str:
    """Table 4's banding of test outcomes."""
    if speedup < -0.20:
        return "slower by > 20%"
    if speedup < -0.05:
        return "slower by (5,20]%"
    if speedup <= 0.05:
        return "same"
    if speedup <= 0.20:
        return "faster by (5,20]%"
    return "faster by > 20%"


#: Table 4 band labels, in the paper's column order.
SPEEDUP_BANDS = (
    "slower by > 20%",
    "slower by (5,20]%",
    "same",
    "faster by (5,20]%",
    "faster by > 20%",
)


def band_counts(speedups: Sequence[float]) -> dict:
    """Count tests per Table 4 band."""
    out = {band: 0 for band in SPEEDUP_BANDS}
    for s in speedups:
        out[classify_speedup(s)] += 1
    return out
