"""Plain-text rendering of paper-style result tables."""

from __future__ import annotations

from typing import Dict, List, Sequence


def render_table(headers: Sequence[str], rows: Sequence[Sequence[str]],
                 title: str = "") -> str:
    """Fixed-width table with a header rule."""
    cols = len(headers)
    widths = [len(h) for h in headers]
    for row in rows:
        if len(row) != cols:
            raise ValueError("row width mismatch")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(str(cell)))
    lines: List[str] = []
    if title:
        lines.append(title)
    fmt = "  ".join(f"{{:<{w}}}" for w in widths)
    lines.append(fmt.format(*headers))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append(fmt.format(*[str(c) for c in row]))
    return "\n".join(lines)


def pct(value: float, signed: bool = True) -> str:
    """Render a fraction as a percentage cell."""
    return f"{value:+.1%}" if signed else f"{value:.1%}"


def render_speedup_table(title: str, row_names: Sequence[str],
                         columns: Dict[str, Sequence[float]]) -> str:
    """Figure 5/10/12/13-style table: rows = workloads, cols = schedulers,
    cells = speedup vs CFS-schedutil."""
    headers = ["workload"] + list(columns)
    rows = []
    for i, name in enumerate(row_names):
        rows.append([name] + [pct(columns[c][i]) for c in columns])
    return render_table(headers, rows, title=title)


def render_band_table(title: str, per_config: Dict[str, Dict[str, int]]) -> str:
    """Table 4-style overview: rows = scheduler configs, cols = bands."""
    from .stats import SPEEDUP_BANDS
    headers = ["scheduler"] + list(SPEEDUP_BANDS)
    rows = []
    for config, counts in per_config.items():
        total = sum(counts.values()) or 1
        rows.append([config] + [f"{counts.get(b, 0)} ({counts.get(b, 0) / total:.0%})"
                                for b in SPEEDUP_BANDS])
    return render_table(headers, rows, title=title)
