"""Analysis: statistics, table rendering, ASCII plots."""

from .export import (comparison_to_dict, comparison_to_json, result_to_dict,
                     results_to_csv, results_to_json)
from .plots import render_bars, render_core_trace, render_distribution
from .stats import (SPEEDUP_BANDS, band_counts, classify_speedup, mean,
                    relative_stddev, speedup_of_means, stddev)
from .tables import pct, render_band_table, render_speedup_table, render_table

__all__ = [
    "result_to_dict", "results_to_json", "results_to_csv",
    "comparison_to_dict", "comparison_to_json",
    "render_bars", "render_core_trace", "render_distribution",
    "SPEEDUP_BANDS", "band_counts", "classify_speedup", "mean",
    "relative_stddev", "speedup_of_means", "stddev",
    "pct", "render_band_table", "render_speedup_table", "render_table",
]
