"""ASCII plots for terminal output (traces and bar charts).

The benchmark harness prints Figure 2/3/8-style visualisations with these:
a per-core activity/frequency trace rendered as rows of characters, a
horizontal bar chart for speedups, and a stacked distribution bar for the
frequency histograms.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..sim.trace import Segment

#: Glyphs from coldest to hottest frequency bin.
_HEAT = " .:-=+*#%@"


def render_core_trace(segments: Sequence[Segment], t0: int, t1: int,
                      bin_edges_mhz: Sequence[int], width: int = 80,
                      min_busy_us: int = 0) -> str:
    """Figure 2/8-style trace: one row per core, one column per time slot,
    glyph intensity = frequency bin of the running task."""
    if t1 <= t0:
        raise ValueError("empty window")
    slot = (t1 - t0) / width
    rows: Dict[int, List[str]] = {}
    busy: Dict[int, int] = {}
    for seg in segments:
        if seg.task_id < 0 or seg.spinning:
            continue
        if seg.end <= t0 or seg.start >= t1:
            continue
        row = rows.setdefault(seg.core, [" "] * width)
        busy[seg.core] = busy.get(seg.core, 0) + seg.duration
        level = 1
        for i, edge in enumerate(bin_edges_mhz):
            if seg.freq_mhz <= edge:
                level = i + 1
                break
        else:
            level = len(bin_edges_mhz)
        glyph = _HEAT[min(len(_HEAT) - 1,
                          1 + level * (len(_HEAT) - 2) // max(1, len(bin_edges_mhz)))]
        lo = max(0, int((seg.start - t0) / slot))
        hi = min(width - 1, int((seg.end - t0) / slot))
        for x in range(lo, hi + 1):
            row[x] = glyph
    lines = []
    for core in sorted(rows, key=lambda c: -busy.get(c, 0)):
        if busy.get(core, 0) < min_busy_us:
            continue
        lines.append(f"core {core:3d} |{''.join(rows[core])}|")
    return "\n".join(lines) if lines else "(no activity in window)"


def render_bars(title: str, labels: Sequence[str], values: Sequence[float],
                width: int = 40, unit: str = "%") -> str:
    """Horizontal bar chart; values may be negative (drawn left of zero)."""
    if len(labels) != len(values):
        raise ValueError("label/value mismatch")
    vmax = max((abs(v) for v in values), default=1.0) or 1.0
    lines = [title]
    for label, v in zip(labels, values):
        n = int(round(abs(v) / vmax * width))
        bar = ("-" if v < 0 else "+") * n
        shown = v * 100 if unit == "%" else v
        lines.append(f"{label:>24s} {shown:+8.1f}{unit} |{bar}")
    return "\n".join(lines)


def render_distribution(title: str, labels: Sequence[str],
                        fractions: Sequence[float], width: int = 50) -> str:
    """One stacked bar for a frequency distribution."""
    cells: List[str] = []
    for i, frac in enumerate(fractions):
        glyph = _HEAT[min(len(_HEAT) - 1, 1 + i)]
        cells.append(glyph * int(round(frac * width)))
    legend = "  ".join(f"{lab}={frac:.0%}"
                       for lab, frac in zip(labels, fractions) if frac >= 0.005)
    return f"{title}\n[{''.join(cells):<{width}}]\n{legend}"
