"""Serialisation of results to JSON/CSV for external analysis.

The artifact's scripts emit ``.dat``/``.json`` files consumed by its
plotting pipeline; this module provides the equivalent: dump
:class:`RunResult` objects or a :class:`Comparison` to plain dictionaries,
JSON strings or CSV rows.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Any, Dict, Iterable, List

from ..experiments.runner import Comparison
from ..metrics.summary import RunResult


def result_to_dict(res: RunResult) -> Dict[str, Any]:
    """Flatten a RunResult into JSON-serialisable primitives."""
    out: Dict[str, Any] = {
        "scheduler": res.scheduler,
        "governor": res.governor,
        "machine": res.machine,
        "workload": res.workload,
        "seed": res.seed,
        "makespan_us": res.makespan_us,
        "makespan_sec": res.makespan_sec,
        "energy_joules": res.energy_joules,
        "n_tasks": res.n_tasks,
        "n_migrations": res.n_migrations,
        "total_wakeups": res.total_wakeups,
        "wakeup_latency_us": res.wakeup_latency_us,
        "policy_stats": dict(res.policy_stats),
        "extra": dict(res.extra),
        "metrics": dict(res.metrics),
    }
    if res.underload is not None:
        out["underload_per_second"] = res.underload.underload_per_second
        out["overload_per_second"] = res.underload.overload_per_second
        out["total_underload"] = res.underload.total_underload
    if res.freq_dist is not None:
        out["freq_distribution"] = res.freq_dist.as_dict()
        out["mean_busy_ghz"] = res.freq_dist.mean_ghz()
    return out


def results_to_json(results: Iterable[RunResult], indent: int = 2) -> str:
    """Serialise a collection of results to a JSON array."""
    return json.dumps([result_to_dict(r) for r in results], indent=indent)


#: Column order of the CSV export (scalar fields only).
CSV_FIELDS = (
    "workload", "machine", "scheduler", "governor", "seed",
    "makespan_us", "energy_joules", "underload_per_second",
    "n_tasks", "n_migrations", "total_wakeups",
)


def results_to_csv(results: Iterable[RunResult]) -> str:
    """Serialise results to CSV (one row per run)."""
    buf = io.StringIO()
    writer = csv.DictWriter(buf, fieldnames=CSV_FIELDS,
                            extrasaction="ignore")
    writer.writeheader()
    for res in results:
        writer.writerow(result_to_dict(res))
    return buf.getvalue()


def comparison_to_dict(cmp: Comparison) -> Dict[str, Any]:
    """Flatten a Comparison (the per-figure aggregate) for JSON output."""
    combos: List[Dict[str, Any]] = []
    for (sched, gov), stats in cmp.combos.items():
        combos.append({
            "scheduler": sched,
            "governor": gov,
            "mean_makespan_us": stats.mean_makespan_us,
            "mean_energy_joules": stats.mean_energy_j,
            "mean_underload_per_second": stats.mean_underload_per_s,
            "speedup_vs_baseline": cmp.speedup_of(sched, gov),
            "energy_savings_vs_baseline": cmp.energy_savings_of(sched, gov),
            "error_bar": cmp.error_bar_of(sched, gov),
            "n_runs": len(stats.makespans_us),
        })
    return {"workload": cmp.workload, "machine": cmp.machine,
            "baseline": "cfs-schedutil", "combos": combos}


def comparison_to_json(cmp: Comparison, indent: int = 2) -> str:
    return json.dumps(comparison_to_dict(cmp), indent=indent)
