"""Repro files: a failing scenario frozen as a small JSON document.

A repro carries everything needed to re-provoke a failure with no fuzz
state: the (shrunk) scenario, the invariant names it tripped, the
violations observed when it was saved, and where the fuzzer found it
(base seed + index), so the original unshrunk scenario can always be
regenerated.  ``verify replay repro.json`` re-runs exactly the checks
the repro names — a repro whose bug has been fixed replays clean, which
is what lets fixed repros live on under ``tests/repros/`` as permanent
regression tests.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional

from ..experiments.cache import atomic_write_json
from .execute import run_scenario
from .generate import Scenario
from .oracle import Violation, check_run

FORMAT = 1


def save_repro(
    path: Path,
    scenario: Scenario,
    violations: List[Violation],
    origin: Optional[Dict[str, Any]] = None,
    analysis: Optional[Dict[str, Any]] = None,
) -> Path:
    """Write a replayable repro document for a failing scenario.

    ``analysis`` is an optional trace-analysis digest of the failing
    run (see :func:`repro.obs.analysis.analysis_digest`): it records
    what the run *looked like* — latency percentiles, warm fraction,
    a sha256 of the full report — so a repro remains interpretable
    after the bug is fixed and the failure no longer reproduces.
    """
    payload = {
        "format": FORMAT,
        "scenario": scenario.to_dict(),
        "expect": sorted({v.invariant for v in violations}),
        "violations": [v.to_dict() for v in violations],
        "origin": origin or {},
    }
    if analysis is not None:
        payload["analysis"] = analysis
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    atomic_write_json(path, payload, indent=2, sort_keys=True)
    return path


def load_repro(path: Path) -> Dict[str, Any]:
    """Read and structurally validate a repro document."""
    data = json.loads(Path(path).read_text())
    if data.get("format") != FORMAT:
        raise ValueError(f"{path}: unsupported repro format "
                         f"{data.get('format')!r}")
    for field in ("scenario", "expect"):
        if field not in data:
            raise ValueError(f"{path}: repro missing {field!r}")
    return data


def replay_repro(path: Path) -> List[Violation]:
    """Re-run a repro's scenario through the checks it names.

    Oracle invariants are always evaluated; ``diff.*`` expectations
    re-run the corresponding differential checks.  Returns the current
    violations — empty means the bug the repro captured no longer
    reproduces.
    """
    data = load_repro(path)
    scenario = Scenario.from_dict(data["scenario"])
    violations = list(check_run(run_scenario(scenario)))
    diff_names = {name for name in data["expect"]
                  if name.startswith("diff.")}
    if diff_names:
        from .differential import DIFF_CHECKS
        for name, fn in DIFF_CHECKS:
            if name in diff_names:
                violations.extend(fn(scenario))
    return violations
