"""The policy conformance battery: certify any registered scheduler.

The SDK promise (sched/base.py, sched/registry.py) is that a new policy
is one class plus one registry entry — *automatically* fuzzed and
oracle-checked.  This module is the "automatically": a fixed scenario
battery that any registered policy is driven through, each run checked
for

* **completion** — the simulation runs to the end without crashing,
  including under an injected hotplug + thermal fault plan;
* **oracle cleanliness** — every invariant the oracle applies to this
  policy (generic families always; ``nest.*`` / ``scxnest.*`` / ``rt.*``
  per the registry's ``invariant_groups``) holds;
* **determinism** — an immediate re-run is bit-identical (result image,
  event stream, final mask snapshot), and the baseline scenario digests
  identically under two different ``PYTHONHASHSEED`` values in fresh
  interpreters;
* **cache round-trip** — the result survives the content-addressed
  cache and the JSON serializer losslessly;
* **fast-engine parity or declared refusal** — policies registered with
  a ``fast_factory`` must be bit-identical on the fast engine; policies
  without one must refuse with the registry's standard error instead of
  crashing.

``tests/test_policy_conformance.py`` parametrizes this battery over
``available_policies()``, and the CI conformance-matrix job runs it per
policy — plus :class:`BrokenEventPolicy`, a deliberately broken fixture
that must be *convicted* (the suite's own canary).
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Tuple

from ..faults.plan import FaultConfig
from ..sched.cfs import CfsPolicy
from ..sched.registry import make_registered_fast_policy, policy_info
from .differential import (canonical, check_cached_roundtrip,
                           check_engine_parity)
from .execute import run_scenario
from .generate import Scenario, freeze_faults
from .oracle import Violation, check_run

#: The fixed scenario battery, as (label, scenario-template) pairs; the
#: template's ``scheduler`` field is filled in per policy.  Chosen to be
#: cheap (sub-second each on the small box) while covering: a warm
#: steady-state mix, a fork-heavy burst, a multi-die machine, the RT
#: deadline machinery, and a hotplug + thermal fault storm.
_FAULT_STORM = FaultConfig(hotplug_rate_per_s=100.0,
                           hotplug_downtime_us=10_000,
                           thermal_rate_per_s=50.0,
                           thermal_duration_us=5_000,
                           thermal_cap_ratio=0.6,
                           horizon_us=40_000)

BATTERY: Tuple[Tuple[str, Scenario], ...] = (
    ("warm", Scenario(workload="dacapo-h2", machine="ryzen_4650g",
                      scheduler="", governor="schedutil", seed=3,
                      scale=0.1)),
    ("forky", Scenario(workload="configure-gcc", machine="ryzen_4650g",
                       scheduler="", governor="performance", seed=1,
                       scale=0.2)),
    ("multi_die", Scenario(workload="dacapo-h2", machine="5218_2s",
                           scheduler="", governor="schedutil", seed=2,
                           scale=0.1)),
    ("deadline", Scenario(workload="deadline-periodic",
                          machine="ryzen_4650g", scheduler="",
                          governor="schedutil", seed=4, scale=0.5)),
    ("faulted", Scenario(workload="configure-gcc", machine="ryzen_4650g",
                         scheduler="", governor="schedutil", seed=5,
                         scale=0.1, faults=freeze_faults(_FAULT_STORM))),
)

#: The battery scenario the expensive singleton checks (cache round-trip,
#: cross-interpreter hash-seed determinism) run on.
BASELINE_LABEL = "warm"

#: Hash seeds the cross-interpreter determinism check compares.  Two
#: values are enough: a policy that iterates an unordered container can
#: not digest identically under both unless it got lucky, and the fuzz
#: corpus catches the lucky ones.
HASHSEEDS = ("0", "1")


@dataclass(frozen=True)
class ConformanceCheck:
    """One named check against one battery scenario."""

    name: str
    scenario: str
    ok: bool
    detail: str = ""


@dataclass
class ConformanceReport:
    """Everything the battery found out about one policy."""

    policy: str
    checks: List[ConformanceCheck] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(c.ok for c in self.checks)

    def failures(self) -> List[ConformanceCheck]:
        return [c for c in self.checks if not c.ok]


def battery_scenarios(policy: str) -> List[Tuple[str, Scenario]]:
    """The battery with ``policy`` filled into every template."""
    import dataclasses
    return [(label, dataclasses.replace(sc, scheduler=policy))
            for label, sc in BATTERY]


def scenario_digest(scenario: Scenario) -> str:
    """A content digest of everything deterministic about one run."""
    art = run_scenario(scenario)
    if art.error is not None:
        return f"error:{art.error}"
    payload = {
        "result": canonical(art.result, scenario.machine),
        "events": [list(ev) for ev in art.events],
        "nest": (None if art.nest is None else
                 [sorted(art.nest.primary), sorted(art.nest.reserve),
                  art.nest.r_max, art.nest.reserve_enabled]),
    }
    blob = json.dumps(payload, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()


def _digest_under_hashseed(scenario: Scenario, hashseed: str) -> str:
    """``scenario_digest`` in a fresh interpreter with a pinned seed.

    ``PYTHONHASHSEED`` only takes effect at interpreter start, so the
    check must cross a process boundary."""
    src_root = str(Path(__file__).resolve().parents[2])
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hashseed
    env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
    code = ("import json, sys\n"
            "from repro.verify.generate import Scenario\n"
            "from repro.verify.conformance import scenario_digest\n"
            "sc = Scenario.from_dict(json.loads(sys.argv[1]))\n"
            "print(scenario_digest(sc))\n")
    proc = subprocess.run(
        [sys.executable, "-c", code, json.dumps(scenario.to_dict())],
        capture_output=True, text=True, env=env, timeout=600)
    if proc.returncode != 0:
        return f"subprocess-failed: {proc.stderr.strip()[-300:]}"
    return proc.stdout.strip()


def _format_violations(violations: List[Violation]) -> str:
    shown = "; ".join(str(v) for v in violations[:3])
    more = len(violations) - 3
    return shown + (f" (+{more} more)" if more > 0 else "")


def run_conformance(policy: str, *, hashseed_check: bool = True,
                    parity_check: bool = True) -> ConformanceReport:
    """Drive one registered policy through the full battery."""
    info = policy_info(policy)   # raises for unknown names
    report = ConformanceReport(policy=info.name)
    add = report.checks.append

    arts = {}
    for label, scenario in battery_scenarios(info.name):
        art = run_scenario(scenario)
        arts[label] = (scenario, art)
        add(ConformanceCheck(
            "completes", label, art.error is None,
            art.error or ""))
        if art.error is not None:
            continue
        violations = check_run(art)
        add(ConformanceCheck(
            "oracle", label, not violations,
            _format_violations(violations)))
        rerun = run_scenario(scenario)
        same = (rerun.error is None
                and canonical(art.result, scenario.machine)
                == canonical(rerun.result, scenario.machine)
                and art.events == rerun.events
                and art.nest == rerun.nest)
        add(ConformanceCheck(
            "determinism", label, same,
            "" if same else "re-run in the same process diverged"))

    base_scenario, base_art = arts[BASELINE_LABEL]
    if base_art.error is None:
        cache_v = list(check_cached_roundtrip(base_scenario))
        add(ConformanceCheck(
            "cache_roundtrip", BASELINE_LABEL, not cache_v,
            _format_violations(cache_v)))

        if info.fast and parity_check:
            for label in ("warm", "forky"):
                scenario, art = arts[label]
                parity_v = list(check_engine_parity(scenario, ref_art=art))
                add(ConformanceCheck(
                    "engine_parity", label, not parity_v,
                    _format_violations(parity_v)))
        elif not info.fast:
            try:
                make_registered_fast_policy(info.name)
            except ValueError as exc:
                ok = "no fast-engine variant" in str(exc)
                add(ConformanceCheck(
                    "declared_refusal", "-", ok,
                    "" if ok else f"unexpected refusal message: {exc}"))
            else:
                add(ConformanceCheck(
                    "declared_refusal", "-", False,
                    "registry has no fast_factory but "
                    "make_registered_fast_policy returned a policy"))

        if hashseed_check:
            digests = [_digest_under_hashseed(base_scenario, h)
                       for h in HASHSEEDS]
            ok = (len(set(digests)) == 1
                  and not digests[0].startswith("subprocess-failed")
                  and not digests[0].startswith("error:"))
            add(ConformanceCheck(
                "hashseed_determinism", BASELINE_LABEL, ok,
                "" if ok else f"digests {digests}"))

    return report


def render_report(report: ConformanceReport) -> str:
    """A human-readable pass/fail table for the CLI."""
    lines = [f"conformance: {report.policy} — "
             f"{'PASS' if report.passed else 'FAIL'}"]
    for c in report.checks:
        mark = "ok " if c.ok else "FAIL"
        detail = f"  {c.detail}" if c.detail and not c.ok else ""
        lines.append(f"  [{mark}] {c.name:<22} {c.scenario:<10}{detail}")
    return "\n".join(lines)


class BrokenEventPolicy(CfsPolicy):
    """A deliberately broken fixture policy: the conformance suite's
    own canary.  It emits an event kind outside ``EVENT_KINDS``, so the
    oracle's ``events.vocabulary`` invariant must convict it on every
    battery scenario that collects events.  Registered temporarily by
    the conviction test and the CI conformance-matrix job — never part
    of the shipped registry."""

    def select_cpu_wakeup(self, task, waker_cpu: int) -> int:
        cpu = super().select_cpu_wakeup(task, waker_cpu)
        obs = self.kernel.engine.obs
        if obs.enabled:
            obs.emit(self.kernel.engine.now, "broken.place", cpu=cpu,
                     task=task.tid)
        return cpu

    @property
    def name(self) -> str:
        return "Broken"


def register_broken_fixture():
    """Register the broken fixture under the name ``broken``; returns
    the info so callers can clean up with ``unregister_policy``."""
    from ..sched.registry import register_policy
    return register_policy(
        "broken", lambda params: BrokenEventPolicy(),
        description="deliberately broken conformance fixture "
                    "(emits an unknown event kind)",
        replace=True)
