"""Greedy scenario shrinking: from a failing scenario to a minimal repro.

When the fuzzer finds a scenario that violates an invariant, the raw
scenario is rarely the story — the fault config, the horizon cap, the
big machine may all be incidental.  The shrinker tries a fixed ladder of
simplifications (drop faults, drop the cap, halve the workload scale,
shrink the machine, drop parameter overrides, simplify governor and
workload, canonicalize the seed) and keeps a candidate only if it still
trips at least one of the *original* invariants — the failure must be
the same failure, not a new one uncovered along the way.

The ladder is applied to a fixpoint under a re-run budget, so shrinking
a typical failure costs tens of extra simulations, each usually cheaper
than the last.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, List, Optional, Sequence, Tuple

from .generate import Scenario
from .oracle import Violation

#: A check function re-runs a scenario and reports what failed.
CheckFn = Callable[[Scenario], List[Violation]]

#: The cheapest catalogued workload; the final simplification target.
SIMPLEST_WORKLOAD = ("configure-gcc", 0.1)
SIMPLEST_MACHINE = "ryzen_4650g"
MIN_SCALE = 0.1


def _replace(sc: Scenario, **kw) -> Scenario:
    return dataclasses.replace(sc, **kw)


def _candidates(sc: Scenario) -> Sequence[Tuple[str, Scenario]]:
    """The simplification ladder, most-impactful first."""
    out: List[Tuple[str, Scenario]] = []
    if sc.faults is not None:
        out.append(("drop faults", _replace(sc, faults=None)))
    if sc.max_us is not None:
        out.append(("drop max_us", _replace(sc, max_us=None)))
    if sc.scale > MIN_SCALE:
        halved = max(MIN_SCALE, round(sc.scale / 2, 2))
        out.append((f"scale {sc.scale} -> {halved}",
                    _replace(sc, scale=halved)))
    if sc.machine != SIMPLEST_MACHINE:
        out.append(("simplify machine", _replace(sc, machine=SIMPLEST_MACHINE)))
    if sc.nest_params is not None:
        out.append(("drop nest_params", _replace(sc, nest_params=None)))
    if sc.governor != "schedutil":
        out.append(("governor -> schedutil",
                    _replace(sc, governor="schedutil")))
    wl, scale = SIMPLEST_WORKLOAD
    if sc.workload != wl:
        out.append(("simplify workload",
                    _replace(sc, workload=wl, scale=scale)))
    if sc.seed != 1:
        out.append(("seed -> 1", _replace(sc, seed=1)))
    return out


def shrink(
    scenario: Scenario,
    check: CheckFn,
    violations: Optional[List[Violation]] = None,
    budget: int = 40,
) -> Tuple[Scenario, List[Violation]]:
    """Minimize ``scenario`` while it keeps failing the same invariants.

    ``check`` re-runs a candidate and returns its violations;
    ``violations`` are the original scenario's (re-computed when omitted,
    which costs one run from the budget).  Returns the smallest scenario
    found and the violations it produces.  With a zero budget, or if no
    simplification preserves the failure, the input comes back unchanged.
    """
    if violations is None:
        budget -= 1
        violations = check(scenario)
    target = {v.invariant for v in violations}
    if not target:
        return scenario, violations

    current, current_violations = scenario, violations
    progressed = True
    while progressed and budget > 0:
        progressed = False
        for _label, candidate in _candidates(current):
            if budget <= 0:
                break
            budget -= 1
            cand_violations = check(candidate)
            if target & {v.invariant for v in cand_violations}:
                current, current_violations = candidate, cand_violations
                progressed = True
                break   # restart the ladder from the simpler scenario
    return current, current_violations
