"""The fuzz loop: generate, run, check, shrink, save.

One fuzz campaign is a pure function of its :class:`FuzzConfig`: the
scenario stream is seeded, every simulation is seeded, the differential
sampling is index-based, and shrinking is greedy-deterministic — running
the same config twice yields the same :class:`FuzzReport` verdict for
verdict (wall-clock timings aside).  That is what lets CI pin a fixed
seed and a hard time budget and still reproduce any failure locally
with nothing but the report.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional

from .differential import DIFF_CHECKS, check_engine_parity
from .execute import run_scenario
from .generate import Scenario, ScenarioGenerator
from .oracle import Violation, check_run
from .repro import save_repro
from .shrink import shrink

LogFn = Callable[[str], None]


@dataclass(frozen=True)
class FuzzConfig:
    """Everything that determines a fuzz campaign's verdicts."""

    runs: int = 200
    base_seed: int = 1
    #: Run the cheap differential checks on every Nth clean scenario
    #: (0 disables them).
    diff_every: int = 10
    #: Run the process-spawning serial-vs-parallel check on every Nth
    #: scenario (0 disables it; it costs ~6 extra simulations plus pool
    #: startup, so it is sampled far more sparsely).
    par_every: int = 100
    #: Run every Nth scenario through the fast engine as well and require
    #: bit-identical artifacts (results, event streams, nest membership).
    #: 1 = every scenario (the default); 0 disables the dual-engine pass.
    dual_every: int = 1
    #: Stop after this many failing scenarios (0 = never stop early).
    max_failures: int = 5
    #: Where shrunk repro files land (None = don't write them).
    repro_dir: Optional[Path] = None
    #: Re-run budget for shrinking each failure (0 disables shrinking).
    shrink_budget: int = 40


@dataclass
class Failure:
    """One failing scenario, as found and as shrunk."""

    index: int
    scenario: Scenario
    violations: List[Violation]
    shrunk: Scenario
    shrunk_violations: List[Violation]
    repro_path: Optional[Path] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "scenario": self.scenario.to_dict(),
            "invariants": sorted({v.invariant for v in self.violations}),
            "violations": [v.to_dict() for v in self.violations],
            "shrunk_scenario": self.shrunk.to_dict(),
            "shrunk_violations": [v.to_dict()
                                  for v in self.shrunk_violations],
            "repro_path": (None if self.repro_path is None
                           else str(self.repro_path)),
        }


@dataclass
class FuzzReport:
    """The campaign's outcome; ``verdicts`` is the deterministic core."""

    config: FuzzConfig
    n_runs: int = 0
    n_diff_rounds: int = 0
    n_dual_rounds: int = 0
    failures: List[Failure] = field(default_factory=list)
    elapsed_s: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def verdicts(self) -> List[tuple]:
        """(index, sorted invariant names) per failure — everything about
        the campaign that must reproduce bit-for-bit under one seed."""
        return [(f.index, tuple(sorted({v.invariant for v in f.violations})))
                for f in self.failures]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "runs": self.n_runs,
            "base_seed": self.config.base_seed,
            "diff_rounds": self.n_diff_rounds,
            "dual_engine_rounds": self.n_dual_rounds,
            "ok": self.ok,
            "failures": [f.to_dict() for f in self.failures],
            "elapsed_s": round(self.elapsed_s, 3),
        }

    def summary(self) -> str:
        verdict = "OK" if self.ok else f"{len(self.failures)} FAILURE(S)"
        return (f"fuzz: {self.n_runs} scenario(s), {self.n_diff_rounds} "
                f"differential round(s), {self.n_dual_rounds} dual-engine "
                f"round(s), {verdict} "
                f"[{self.elapsed_s:.1f}s, seed {self.config.base_seed}]")


def _diff_violations(scenario: Scenario, index: int,
                     config: FuzzConfig) -> List[Violation]:
    """The differential checks due at this index, cheapest first."""
    out: List[Violation] = []
    for name, fn in DIFF_CHECKS:
        if name == "diff.serial_vs_parallel":
            if not config.par_every or index % config.par_every:
                continue
        if name == "diff.engine_parity":
            continue  # driven by dual_every in the main loop, not sampled
        out.extend(fn(scenario))
    return out


def _make_checker(diff_names: set) -> Callable[[Scenario], List[Violation]]:
    """A shrink-time re-checker covering the oracle plus the differential
    checks that originally failed (replaying only what can re-fail)."""
    def run_checks(scenario: Scenario) -> List[Violation]:
        violations = list(check_run(run_scenario(scenario)))
        for name, fn in DIFF_CHECKS:
            if name in diff_names:
                violations.extend(fn(scenario))
        return violations
    return run_checks


def _shrunk_analysis(scenario: Scenario) -> Optional[Dict[str, Any]]:
    """Trace-analysis digest of the shrunk failing run, for the repro.

    Costs one extra (small, already-shrunk) simulation per failure and
    never blocks the repro: a crashing scenario — which has no event
    log to analyze — simply yields no digest.
    """
    from ..obs.analysis import analysis_digest, analyze_run
    art = run_scenario(scenario, probe=False)
    if art.result is None:
        return None
    report = analyze_run(art.result, art.events,
                         n_cpus=art.machine.n_cpus)
    return analysis_digest(report)


def fuzz(config: FuzzConfig, log: Optional[LogFn] = None) -> FuzzReport:
    """Run one fuzz campaign; deterministic for a given config."""
    say = log or (lambda _msg: None)
    gen = ScenarioGenerator(config.base_seed)
    report = FuzzReport(config=config)
    t0 = time.perf_counter()

    for i in range(config.runs):
        scenario = gen.generate(i)
        art = run_scenario(scenario)
        violations = list(check_run(art))

        if config.dual_every and i % config.dual_every == 0:
            report.n_dual_rounds += 1
            violations.extend(check_engine_parity(scenario, ref_art=art))

        run_diffs = (config.diff_every and i % config.diff_every == 0
                     and not violations)
        if run_diffs:
            report.n_diff_rounds += 1
            violations.extend(_diff_violations(scenario, i, config))

        report.n_runs += 1
        if not violations:
            continue

        names = sorted({v.invariant for v in violations})
        say(f"[{i}] FAIL {scenario.label}: {', '.join(names)}")
        checker = _make_checker({n for n in names if n.startswith("diff.")})
        if config.shrink_budget > 0:
            small, small_violations = shrink(
                scenario, checker, violations=violations,
                budget=config.shrink_budget)
            if small != scenario:
                say(f"[{i}]   shrunk to {small.label}")
        else:
            small, small_violations = scenario, violations

        failure = Failure(index=i, scenario=scenario,
                          violations=violations, shrunk=small,
                          shrunk_violations=small_violations)
        if config.repro_dir is not None:
            path = Path(config.repro_dir) / f"repro-s{config.base_seed}-i{i}.json"
            failure.repro_path = save_repro(
                path, small, small_violations,
                origin={"base_seed": config.base_seed, "index": i,
                        "unshrunk_scenario": scenario.to_dict()},
                analysis=_shrunk_analysis(small))
            say(f"[{i}]   repro written to {path}")

        report.failures.append(failure)
        if config.max_failures and len(report.failures) >= config.max_failures:
            say(f"stopping: {len(report.failures)} failure(s) reached "
                f"the --max-failures limit")
            break

    report.elapsed_s = time.perf_counter() - t0
    return report
