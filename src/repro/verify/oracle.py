"""The invariant oracle: paper-derived properties checked after a run.

Each invariant is a pure function over the :class:`RunArtifacts` of one
simulation — the serialized :class:`RunResult`, the structured event log
and the final nest snapshot — returning the :class:`Violation`\\ s it
found.  The oracle never re-runs the simulator; it *replays* what the
observability layer recorded, so anything it can catch, it can catch on
every fuzzed scenario for the cost of one list walk.

The paper mapping:

* §3.1 — nest membership is replayed exactly from the ``nest.*``
  transition events (every primary-set mutation emits one), disjointness
  and the ``R_max`` reserve bound are checked on the final snapshot, and
  placement-tier counters must sum to the placement count;
* §3.2 — warm-core spins start/stop strictly alternately per cpu;
* §3.3 — attachment hits must target the core the replayed two-wakeup
  history says the task is attached to, and disabled features must leave
  no event footprint;
* §3.4 — every runnable task is placed exactly once: two placement
  commits of the same task must have a dispatch between them;
* §2.3 — hardware frequency steps stay within the machine's envelope;
* faults — the deterministic fault plan is re-derived from the seed and
  reconciled with the fault counters and events.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, Iterable, List, Optional, Tuple

from ..core.params import DEFAULT_PARAMS, NestParams
from ..faults.plan import (KIND_CORE_FAILURE, KIND_CPU_OFFLINE,
                           KIND_STRAGGLER, KIND_THERMAL_CAP, FaultPlan)
from ..obs import events as oev
from ..sim.rng import RngRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .execute import RunArtifacts

#: Cap on violations reported per invariant per run (a broken replay
#: otherwise floods the report with thousands of identical lines).
MAX_PER_INVARIANT = 5


@dataclass(frozen=True)
class Violation:
    """One invariant breach found by the oracle or a differential check."""

    invariant: str
    message: str
    t: Optional[int] = None

    def __str__(self) -> str:
        at = f" @t={self.t}" if self.t is not None else ""
        return f"{self.invariant}{at}: {self.message}"

    def to_dict(self) -> Dict[str, Any]:
        return {"invariant": self.invariant, "message": self.message,
                "t": self.t}


@dataclass(frozen=True)
class NestSnapshot:
    """Final nest membership, captured through the runner's policy probe."""

    primary: frozenset
    reserve: frozenset
    r_max: int
    reserve_enabled: bool = True


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------

def _counter(metrics: Dict[str, Any], name: str) -> int:
    entry = metrics.get(name)
    return entry["value"] if entry else 0


def _kind_counts(events) -> Dict[str, int]:
    out: Dict[str, int] = {}
    for ev in events:
        out[ev.kind] = out.get(ev.kind, 0) + 1
    return out


def _params_of(art: "RunArtifacts") -> NestParams:
    return art.scenario.nest_params_obj() or DEFAULT_PARAMS


def _is_nest(art: "RunArtifacts") -> bool:
    return _in_group(art, "nest")


def _is_scxnest(art: "RunArtifacts") -> bool:
    return _in_group(art, "scxnest")


def _in_group(art: "RunArtifacts", group: str) -> bool:
    """Policy-specific invariant families are gated by the registry's
    ``invariant_groups`` metadata, not by hard-coded scheduler names, so
    a newly registered policy opts into a family with one tuple entry."""
    from ..sched.registry import invariant_groups_of
    return group in invariant_groups_of(art.scenario.scheduler)


def _has_hotplug(art: "RunArtifacts") -> bool:
    """Hotplug scrubs attachment histories and redirects placements
    without emitting commit events, so history replay must stand down."""
    if any(ev.kind in (oev.FAULT_CPU_OFFLINE, oev.FAULT_CPU_ONLINE)
           for ev in art.events):
        return True
    return _counter(art.result.metrics, "kernel.fault_placement_redirects") > 0


# ---------------------------------------------------------------------------
# Invariants
# ---------------------------------------------------------------------------

def check_completed(art: "RunArtifacts") -> Iterable[Violation]:
    """The simulation ran to its end without crashing."""
    res = art.result
    if res.makespan_us < 0:
        yield Violation("run.completed", f"negative makespan {res.makespan_us}")
    if res.n_tasks <= 0:
        yield Violation("run.completed", "run created no tasks")
    if res.events_processed <= 0:
        yield Violation("run.completed", "engine processed no events")


def check_clock_monotonic(art: "RunArtifacts") -> Iterable[Violation]:
    """Event timestamps never run backwards and stay within the run."""
    last = 0
    end = art.result.makespan_us
    for i, ev in enumerate(art.events):
        if ev.t < last:
            yield Violation("clock.monotonic",
                            f"event #{i} ({ev.kind}) at t={ev.t} after "
                            f"t={last}", t=ev.t)
            return
        last = ev.t
    if art.events and last > end:
        yield Violation("clock.monotonic",
                        f"last event at t={last} beyond makespan {end}",
                        t=last)


def check_vocabulary(art: "RunArtifacts") -> Iterable[Violation]:
    """Every event uses a known kind and plausible cpu/task fields."""
    n_cpus = art.machine.n_cpus
    bad = 0
    for ev in art.events:
        problem = None
        if ev.kind not in oev.EVENT_KINDS:
            problem = f"unknown kind {ev.kind!r}"
        elif not -1 <= ev.cpu < n_cpus:
            problem = f"cpu {ev.cpu} outside [-1, {n_cpus})"
        elif ev.task < -1:
            problem = f"task id {ev.task}"
        if problem:
            yield Violation("events.vocabulary", f"{ev.kind}: {problem}",
                            t=ev.t)
            bad += 1
            if bad >= MAX_PER_INVARIANT:
                return


def check_placement_accounting(art: "RunArtifacts") -> Iterable[Violation]:
    """§3.1: every placement is claimed by exactly one search tier."""
    if not _is_nest(art):
        return
    m = art.result.metrics
    tiers = {k: _counter(m, f"nest.{k}") for k in
             ("attachment_hits", "primary_hits", "reserve_hits",
              "cfs_fallbacks")}
    placements = _counter(m, "nest.placements")
    if sum(tiers.values()) != placements:
        yield Violation("nest.placement_accounting",
                        f"{tiers} sums to {sum(tiers.values())} "
                        f"!= placements {placements}")


def check_event_counter_match(art: "RunArtifacts") -> Iterable[Violation]:
    """The event log and the metrics registry tell the same story."""
    if not _is_nest(art) or not art.events:
        return
    m = art.result.metrics
    counts = _kind_counts(art.events)
    expected = {
        oev.PLACE_ATTACH: _counter(m, "nest.attachment_hits"),
        oev.PLACE_PRIMARY: _counter(m, "nest.primary_hits"),
        oev.PLACE_IMPATIENT: _counter(m, "nest.impatient_placements"),
        oev.NEST_PROMOTE: _counter(m, "nest.reserve_hits"),
        oev.NEST_COMPACT: (_counter(m, "nest.compactions")
                           - _counter(m, "nest.exit_demotions")),
        oev.NEST_EXIT_DEMOTE: _counter(m, "nest.exit_demotions"),
        oev.NEST_OFFLINE_EVICT: _counter(m, "nest.offline_evictions"),
    }
    for kind, want in expected.items():
        got = counts.get(kind, 0)
        if got != want:
            yield Violation("nest.event_counter_match",
                            f"{got} {kind} event(s) but counters say {want}")
    total_place = sum(counts.get(k, 0) for k in oev.PLACEMENT_KINDS)
    placements = _counter(m, "nest.placements")
    if total_place != placements:
        yield Violation("nest.event_counter_match",
                        f"{total_place} place.* events != placements "
                        f"counter {placements}")


def check_primary_replay(art: "RunArtifacts") -> Iterable[Violation]:
    """§3.1: the primary nest replayed from events is always consistent —
    promotions add non-members, demotions remove members, the size each
    transition reports matches the replayed set, primary hits target
    members, and the final replayed set equals the live snapshot."""
    if not _is_nest(art) or not art.events:
        return
    primary: set = set()
    bad = 0
    for ev in art.events:
        kind = ev.kind
        if kind in oev.PRIMARY_ADD_KINDS:
            # nest.expand may be idempotent: an impatient task bypasses
            # the primary search, so CFS can pick a core that is already
            # a member (§3.1 expansion is then a no-op).  nest.promote
            # cannot — the reserve is disjoint from the primary.
            if ev.cpu in primary and kind == oev.NEST_PROMOTE:
                yield Violation("nest.primary_replay",
                                f"{kind} of cpu {ev.cpu} already in primary",
                                t=ev.t)
                bad += 1
            primary.add(ev.cpu)
        elif kind in oev.PRIMARY_REMOVE_KINDS:
            if ev.cpu not in primary:
                yield Violation("nest.primary_replay",
                                f"{kind} of cpu {ev.cpu} not in primary",
                                t=ev.t)
                bad += 1
            primary.discard(ev.cpu)
        elif kind == oev.NEST_OFFLINE_EVICT:
            primary.discard(ev.cpu)   # may have been reserve-only
        elif kind in (oev.PLACE_ATTACH, oev.PLACE_PRIMARY):
            if ev.cpu not in primary:
                yield Violation("nest.primary_replay",
                                f"{kind} chose cpu {ev.cpu} outside the "
                                f"replayed primary nest {sorted(primary)}",
                                t=ev.t)
                bad += 1
        else:
            continue
        if kind in oev.NEST_TRANSITION_KINDS and ev.value != len(primary):
            yield Violation("nest.primary_replay",
                            f"{kind} reports primary size {ev.value}, "
                            f"replay says {len(primary)}", t=ev.t)
            bad += 1
        if bad >= MAX_PER_INVARIANT:
            return
    if art.nest is not None and primary != set(art.nest.primary):
        yield Violation("nest.primary_replay",
                        f"final replayed primary {sorted(primary)} != live "
                        f"snapshot {sorted(art.nest.primary)}")


def check_final_state(art: "RunArtifacts") -> Iterable[Violation]:
    """§3.1: primary ∩ reserve = ∅, |reserve| ≤ R_max, members are cpus."""
    snap = art.nest
    if snap is None:
        return
    overlap = snap.primary & snap.reserve
    if overlap:
        yield Violation("nest.final_state",
                        f"primary and reserve overlap on {sorted(overlap)}")
    if snap.reserve_enabled:
        if len(snap.reserve) > snap.r_max:
            yield Violation("nest.final_state",
                            f"reserve has {len(snap.reserve)} cores, "
                            f"R_max is {snap.r_max}")
    elif snap.reserve:
        yield Violation("nest.final_state",
                        f"reserve disabled but holds {sorted(snap.reserve)}")
    n = art.machine.n_cpus
    stray = [c for c in (snap.primary | snap.reserve)
             if not 0 <= c < n]
    if stray:
        yield Violation("nest.final_state",
                        f"nest members outside cpu range: {stray}")


def check_attachment(art: "RunArtifacts") -> Iterable[Violation]:
    """§3.3: an attachment hit requires two consecutive same-core commits.

    Replays each task's two-slot core history from the placement-commit
    events; every ``place.attach`` must target exactly the replayed
    attached core.  Stands down under hotplug faults (the kernel scrubs
    histories and redirects placements without commit events).
    """
    if not _is_nest(art) or not art.events or _has_hotplug(art):
        return
    history: Dict[int, Tuple[Optional[int], Optional[int]]] = {}
    bad = 0
    for ev in art.events:
        if ev.kind == oev.PLACE_ATTACH:
            a, b = history.get(ev.task, (None, None))
            attached = a if a is not None and a == b else None
            if attached != ev.cpu:
                yield Violation(
                    "nest.attachment", f"task {ev.task} attach-placed on "
                    f"cpu {ev.cpu} but its history {(a, b)} attaches "
                    f"{attached}", t=ev.t)
                bad += 1
                if bad >= MAX_PER_INVARIANT:
                    return
        elif ev.kind in oev.COMMIT_KINDS:
            a, _ = history.get(ev.task, (None, None))
            history[ev.task] = (ev.cpu, a)


def check_feature_legality(art: "RunArtifacts") -> Iterable[Violation]:
    """Disabled §3 features must leave no event footprint."""
    if not _is_nest(art) or not art.events:
        return
    p = _params_of(art)
    counts = _kind_counts(art.events)
    rules = (
        (p.attachment_enabled, oev.PLACE_ATTACH, "attachment"),
        (p.reserve_enabled, oev.PLACE_RESERVE, "reserve"),
        (p.reserve_enabled, oev.NEST_PROMOTE, "reserve"),
        (p.impatience_enabled, oev.PLACE_IMPATIENT, "impatience"),
        (p.compaction_enabled, oev.NEST_COMPACT, "compaction"),
        (p.spin_enabled, oev.SPIN_START, "spin"),
    )
    for enabled, kind, feature in rules:
        if not enabled and counts.get(kind, 0):
            yield Violation("nest.feature_legality",
                            f"{feature} disabled but {counts[kind]} "
                            f"{kind} event(s) emitted")


def check_wakeup_dispatch(art: "RunArtifacts") -> Iterable[Violation]:
    """Every runnable task is placed exactly once: two placement commits
    of the same task must have a dispatch in between (a task cannot block
    and wake again without having run)."""
    pending: Dict[int, int] = {}   # task -> t of the undispatched commit
    bad = 0
    for ev in art.events:
        if ev.kind in oev.COMMIT_KINDS:
            if ev.task in pending:
                yield Violation(
                    "sched.wakeup_dispatch",
                    f"task {ev.task} committed twice (t={pending[ev.task]} "
                    f"then t={ev.t}) with no dispatch between", t=ev.t)
                bad += 1
                if bad >= MAX_PER_INVARIANT:
                    return
            pending[ev.task] = ev.t
        elif ev.kind == oev.SCHED_DISPATCH:
            pending.pop(ev.task, None)
    # Commits still pending at the end are fine: the engine stopped (task
    # exit cascade or max_us cutoff) inside their placement window.


def check_latency_accounting(art: "RunArtifacts") -> Iterable[Violation]:
    """Dispatch events, the latency histogram and the per-task sums agree."""
    if not art.events:
        return
    res = art.result
    m = res.metrics
    hist = m.get("kernel.wakeup_latency_us")
    dispatches = [ev for ev in art.events if ev.kind == oev.SCHED_DISPATCH]
    if hist is not None:
        if hist["count"] != len(dispatches):
            yield Violation("sched.latency_accounting",
                            f"{len(dispatches)} dispatch events but the "
                            f"latency histogram saw {hist['count']}")
        ev_sum = sum(ev.value for ev in dispatches)
        if hist["sum"] != ev_sum or hist["sum"] != res.wakeup_latency_us:
            yield Violation("sched.latency_accounting",
                            f"latency sums disagree: histogram "
                            f"{hist['sum']}, events {ev_sum}, result "
                            f"{res.wakeup_latency_us}")
    n_wakeups = sum(1 for ev in art.events if ev.kind == oev.SCHED_WAKEUP)
    if n_wakeups != res.total_wakeups:
        yield Violation("sched.latency_accounting",
                        f"{n_wakeups} wakeup commits != total_wakeups "
                        f"{res.total_wakeups}")
    n_migrations = sum(1 for ev in art.events
                       if ev.kind == oev.SCHED_MIGRATE)
    if n_migrations > res.n_migrations:
        yield Violation("sched.latency_accounting",
                        f"{n_migrations} migrate events exceed the result's "
                        f"n_migrations {res.n_migrations}")


def check_histograms(art: "RunArtifacts") -> Iterable[Violation]:
    """Serialized instruments are internally consistent."""
    m = art.result.metrics
    for name, entry in m.items():
        kind = entry.get("type")
        if kind == "counter":
            if not isinstance(entry["value"], int) or entry["value"] < 0:
                yield Violation("metrics.histograms",
                                f"counter {name} = {entry['value']!r}")
        elif kind == "histogram":
            if len(entry["counts"]) != len(entry["edges"]) + 1:
                yield Violation("metrics.histograms",
                                f"{name}: {len(entry['counts'])} buckets "
                                f"for {len(entry['edges'])} edges")
            if sum(entry["counts"]) != entry["count"]:
                yield Violation("metrics.histograms",
                                f"{name}: bucket sum "
                                f"{sum(entry['counts'])} != count "
                                f"{entry['count']}")
            if any(c < 0 for c in entry["counts"]):
                yield Violation("metrics.histograms",
                                f"{name}: negative bucket count")
    for prefix in ("nest", "scxnest"):
        if not _in_group(art, prefix):
            continue
        placements = _counter(m, f"{prefix}.placements")
        for hname in (f"{prefix}.search_len", f"{prefix}.primary_size"):
            entry = m.get(hname)
            if entry is not None and entry["count"] != placements:
                yield Violation("metrics.histograms",
                                f"{hname} observed {entry['count']} "
                                f"placements, counter says {placements}")


def check_freq_sanity(art: "RunArtifacts") -> Iterable[Violation]:
    """§2.3: hardware frequency steps stay inside the machine envelope,
    and the frequency-residency distribution accounts for busy time."""
    lo = art.machine.min_mhz
    hi = art.machine.max_turbo_mhz
    bad = 0
    for ev in art.events:
        if ev.kind == oev.FREQ_STEP and not lo <= ev.value <= hi:
            yield Violation("freq.sanity",
                            f"core {ev.cpu} stepped to {ev.value} MHz, "
                            f"envelope is [{lo}, {hi}]", t=ev.t)
            bad += 1
            if bad >= MAX_PER_INVARIANT:
                return
    fdist = art.result.freq_dist
    if fdist is not None:
        total = sum(fdist.bin_time_us)
        if total != fdist.total_us:
            yield Violation("freq.sanity",
                            f"freq distribution bins sum to {total}, "
                            f"total_us is {fdist.total_us}")
        budget = art.result.makespan_us * art.machine.n_cpus
        if fdist.total_us > budget:
            yield Violation("freq.sanity",
                            f"freq residency {fdist.total_us}µs exceeds "
                            f"makespan × cpus = {budget}µs")


def check_spin_pairing(art: "RunArtifacts") -> Iterable[Violation]:
    """§3.2: per cpu, spin starts and stops strictly alternate."""
    spinning: set = set()
    bad = 0
    for ev in art.events:
        if ev.kind == oev.SPIN_START:
            if ev.cpu in spinning:
                yield Violation("spin.pairing",
                                f"cpu {ev.cpu} started spinning twice",
                                t=ev.t)
                bad += 1
            spinning.add(ev.cpu)
        elif ev.kind == oev.SPIN_STOP:
            if ev.cpu not in spinning:
                yield Violation("spin.pairing",
                                f"cpu {ev.cpu} stopped a spin it never "
                                f"started", t=ev.t)
                bad += 1
            spinning.discard(ev.cpu)
        if bad >= MAX_PER_INVARIANT:
            return
    # Spins still open at the end are legal: the engine stopped mid-spin.


def check_fault_consistency(art: "RunArtifacts") -> Iterable[Violation]:
    """The deterministic fault plan re-derived from the seed reconciles
    with the injected-fault counters and the fault event stream."""
    config = art.scenario.faults_obj()
    if config is None or not config.enabled:
        return
    res = art.result
    m = res.metrics
    machine = art.machine
    plan = FaultPlan.generate(config, machine.n_cpus,
                              machine.topology.n_physical_cores,
                              machine.nominal_mhz, machine.min_mhz,
                              RngRegistry(art.scenario.seed),
                              n_sockets=machine.topology.n_sockets)
    injected = int(res.extra.get("faults_injected", -1))
    if injected != len(plan):
        yield Violation("faults.consistency",
                        f"result reports {injected} planned faults, the "
                        f"re-derived plan has {len(plan)}")
    planned = plan.counts()
    family_counters = {
        KIND_CPU_OFFLINE: (_counter(m, "kernel.fault_cpu_offline")
                           + _counter(m, "kernel.fault_offline_skipped")),
        KIND_THERMAL_CAP: _counter(m, "kernel.fault_thermal_caps"),
        KIND_STRAGGLER: (_counter(m, "kernel.fault_stragglers")
                         + _counter(m, "kernel.fault_straggler_skipped")),
        KIND_CORE_FAILURE: (
            _counter(m, "kernel.fault_core_failures")
            + _counter(m, "kernel.fault_core_failure_skipped")),
    }
    for kind, handled in family_counters.items():
        if handled > planned.get(kind, 0):
            yield Violation("faults.consistency",
                            f"{handled} {kind} faults handled but only "
                            f"{planned.get(kind, 0)} were planned")
    # Core failures offline the thread through the same hotplug machinery,
    # so an online event may repay either an offline fault or a failure.
    if _counter(m, "kernel.fault_cpu_online") \
            > (_counter(m, "kernel.fault_cpu_offline")
               + _counter(m, "kernel.fault_core_failures")):
        yield Violation("faults.consistency",
                        "more cpus brought online than taken offline")
    if art.events:
        counts = _kind_counts(art.events)
        offline_events = counts.get(oev.FAULT_CPU_OFFLINE, 0)
        offline_expected = (_counter(m, "kernel.fault_cpu_offline")
                            + _counter(m, "kernel.fault_core_failures"))
        if offline_events != offline_expected:
            yield Violation("faults.consistency",
                            f"{offline_events} {oev.FAULT_CPU_OFFLINE} "
                            f"events but offline + core-failure counters "
                            f"= {offline_expected}")
        event_mirrors = (
            (oev.FAULT_CPU_ONLINE, "kernel.fault_cpu_online"),
            (oev.FAULT_THERMAL_CAP, "kernel.fault_thermal_caps"),
            (oev.FAULT_STRAGGLER, "kernel.fault_stragglers"),
            (oev.FAULT_CORE_FAILURE, "kernel.fault_core_failures"),
        )
        for kind, counter in event_mirrors:
            if counts.get(kind, 0) != _counter(m, counter):
                yield Violation("faults.consistency",
                                f"{counts.get(kind, 0)} {kind} events but "
                                f"{counter} = {_counter(m, counter)}")
        jitter_events = counts.get(oev.FAULT_JITTER_ON, 0)
        if (config.tick_jitter_us > 0) != (jitter_events == 1):
            yield Violation("faults.consistency",
                            f"tick_jitter_us={config.tick_jitter_us} but "
                            f"{jitter_events} jitter_on event(s)")


def check_rt_miss_causality(art: "RunArtifacts") -> Iterable[Violation]:
    """Deadline streams carry generous slack, so a fault-free run meets
    every deadline: a miss without a single logged fault is a scheduler
    bug, not bad luck."""
    m = art.result.metrics
    misses = _counter(m, "kernel.rt_deadline_miss")
    if misses == 0:
        return
    fault_counters = ("kernel.fault_core_failures", "kernel.fault_cpu_offline",
                      "kernel.fault_thermal_caps", "kernel.fault_stragglers")
    if all(_counter(m, c) == 0 for c in fault_counters) \
            and not any(ev.kind in oev.FAULT_KINDS for ev in art.events):
        yield Violation("rt.miss_causality",
                        f"{misses} deadline miss(es) in a run that logged "
                        f"no fault")
        return
    if art.events:
        first_fault = min((ev.t for ev in art.events
                           if ev.kind in oev.FAULT_KINDS), default=None)
        bad = 0
        for ev in art.events:
            if ev.kind != oev.RT_DEADLINE_MISS:
                continue
            if first_fault is None or ev.t < first_fault:
                yield Violation("rt.miss_causality",
                                f"task {ev.task} missed its deadline before "
                                f"any fault was injected", t=ev.t)
                bad += 1
                if bad >= MAX_PER_INVARIANT:
                    return


def check_rt_backup_disjoint(art: "RunArtifacts") -> Iterable[Violation]:
    """A backup admitted against a known primary core must land on a
    different physical core — otherwise one failure takes both copies."""
    topo = art.machine.topology
    bad = 0
    for ev in art.events:
        if ev.kind != oev.RT_BACKUP_PLACE or ev.value < 0:
            continue
        if topo.physical_core_of(ev.cpu) == topo.physical_core_of(ev.value):
            yield Violation("rt.backup_disjoint",
                            f"backup {ev.task} placed on cpu {ev.cpu}, the "
                            f"same physical core as its primary's cpu "
                            f"{ev.value}", t=ev.t)
            bad += 1
            if bad >= MAX_PER_INVARIANT:
                return


def check_rt_activation_pairing(art: "RunArtifacts") -> Iterable[Violation]:
    """Backups are promoted only inside the application of a core-failure
    fault, so every activation (and every RT kill) shares its timestamp
    with a ``fault.core_failure`` event, and the counters mirror the
    event stream."""
    m = art.result.metrics
    activations = _counter(m, "kernel.rt_backup_activations")
    if art.events:
        counts = _kind_counts(art.events)
        if counts.get(oev.RT_BACKUP_ACTIVATE, 0) != activations:
            yield Violation("rt.activation_pairing",
                            f"{counts.get(oev.RT_BACKUP_ACTIVATE, 0)} "
                            f"activation events but the counter says "
                            f"{activations}")
        if counts.get(oev.RT_KILL, 0) != _counter(m, "kernel.rt_kills"):
            yield Violation("rt.activation_pairing",
                            f"{counts.get(oev.RT_KILL, 0)} rt.kill events "
                            f"but the counter says "
                            f"{_counter(m, 'kernel.rt_kills')}")
        failure_times = {ev.t for ev in art.events
                         if ev.kind == oev.FAULT_CORE_FAILURE}
        bad = 0
        for ev in art.events:
            if ev.kind not in (oev.RT_BACKUP_ACTIVATE, oev.RT_KILL):
                continue
            if ev.t not in failure_times:
                yield Violation("rt.activation_pairing",
                                f"{ev.kind} for task {ev.task} has no "
                                f"core-failure event at its timestamp",
                                t=ev.t)
                bad += 1
                if bad >= MAX_PER_INVARIANT:
                    return
    elif activations > _counter(m, "kernel.rt_kills"):
        yield Violation("rt.activation_pairing",
                        f"{activations} backup activations exceed "
                        f"{_counter(m, 'kernel.rt_kills')} RT kills")


def check_scxnest_accounting(art: "RunArtifacts") -> Iterable[Violation]:
    """scx_nest tier accounting: every placement is claimed by exactly
    one of primary / reserve / global-queue fallback, impatient
    placements are a subset of the fallbacks, and compaction-timer
    outcomes never exceed the timers armed."""
    if not _is_scxnest(art):
        return
    m = art.result.metrics
    tiers = {k: _counter(m, f"scxnest.{k}") for k in
             ("primary_hits", "reserve_hits", "cfs_fallbacks")}
    placements = _counter(m, "scxnest.placements")
    if sum(tiers.values()) != placements:
        yield Violation("scxnest.accounting",
                        f"{tiers} sums to {sum(tiers.values())} "
                        f"!= placements {placements}")
    if _counter(m, "scxnest.impatient_placements") > tiers["cfs_fallbacks"]:
        yield Violation("scxnest.accounting",
                        f"impatient placements "
                        f"{_counter(m, 'scxnest.impatient_placements')} "
                        f"exceed cfs fallbacks {tiers['cfs_fallbacks']}")
    fired = (_counter(m, "scxnest.compactions")
             + _counter(m, "scxnest.compact_cancels"))
    if fired > _counter(m, "scxnest.compact_arms"):
        yield Violation("scxnest.accounting",
                        f"{fired} compaction-timer outcomes but only "
                        f"{_counter(m, 'scxnest.compact_arms')} arms")
    if _counter(m, "scxnest.vtime_pulls") \
            > _counter(m, "scxnest.vtime_enqueues"):
        yield Violation("scxnest.accounting",
                        f"{_counter(m, 'scxnest.vtime_pulls')} vtime pulls "
                        f"exceed {_counter(m, 'scxnest.vtime_enqueues')} "
                        f"enqueues")


def check_scxnest_event_counter_match(art: "RunArtifacts"
                                      ) -> Iterable[Violation]:
    """scx_nest's event log and counters tell the same story."""
    if not _is_scxnest(art) or not art.events:
        return
    m = art.result.metrics
    counts = _kind_counts(art.events)
    expected = {
        oev.PLACE_PRIMARY: _counter(m, "scxnest.primary_hits"),
        oev.PLACE_RESERVE: _counter(m, "scxnest.reserve_hits"),
        oev.SCXNEST_PROMOTE: _counter(m, "scxnest.reserve_hits"),
        oev.PLACE_IMPATIENT: _counter(m, "scxnest.impatient_placements"),
        oev.PLACE_CFS: (_counter(m, "scxnest.cfs_fallbacks")
                        - _counter(m, "scxnest.impatient_placements")),
        oev.SCXNEST_EXPAND: _counter(m, "scxnest.expansions"),
        oev.SCXNEST_COMPACT: _counter(m, "scxnest.compactions"),
        oev.SCXNEST_COMPACT_ARM: _counter(m, "scxnest.compact_arms"),
        oev.SCXNEST_COMPACT_CANCEL: _counter(m, "scxnest.compact_cancels"),
        oev.SCXNEST_VTIME_PULL: _counter(m, "scxnest.vtime_pulls"),
        oev.NEST_OFFLINE_EVICT: _counter(m, "scxnest.offline_evictions"),
    }
    for kind, want in expected.items():
        got = counts.get(kind, 0)
        if got != want:
            yield Violation("scxnest.event_counter_match",
                            f"{got} {kind} event(s) but counters say {want}")
    total_place = sum(counts.get(k, 0) for k in oev.PLACEMENT_KINDS)
    placements = _counter(m, "scxnest.placements")
    if total_place != placements:
        yield Violation("scxnest.event_counter_match",
                        f"{total_place} place.* events != placements "
                        f"counter {placements}")


def check_scxnest_mask_replay(art: "RunArtifacts") -> Iterable[Violation]:
    """The primary mask replayed from ``scxnest.*`` transition events is
    always consistent: promotions and expansions add non-members,
    compactions remove members, each transition's reported size matches
    the replayed set, primary hits target members, and the final
    replayed set equals the live snapshot."""
    if not _is_scxnest(art) or not art.events:
        return
    primary: set = set()
    bad = 0
    for ev in art.events:
        kind = ev.kind
        if kind in oev.SCXNEST_PRIMARY_ADD_KINDS:
            # Both adds are strict: the policy guards membership before
            # emitting (unlike nest.expand, which may be idempotent).
            if ev.cpu in primary:
                yield Violation("scxnest.mask_replay",
                                f"{kind} of cpu {ev.cpu} already in primary",
                                t=ev.t)
                bad += 1
            primary.add(ev.cpu)
        elif kind in oev.SCXNEST_PRIMARY_REMOVE_KINDS:
            if ev.cpu not in primary:
                yield Violation("scxnest.mask_replay",
                                f"{kind} of cpu {ev.cpu} not in primary",
                                t=ev.t)
                bad += 1
            primary.discard(ev.cpu)
        elif kind == oev.NEST_OFFLINE_EVICT:
            primary.discard(ev.cpu)   # may have been reserve-only
        elif kind == oev.PLACE_PRIMARY:
            if ev.cpu not in primary:
                yield Violation("scxnest.mask_replay",
                                f"{kind} chose cpu {ev.cpu} outside the "
                                f"replayed primary mask {sorted(primary)}",
                                t=ev.t)
                bad += 1
        else:
            continue
        if kind in oev.SCXNEST_TRANSITION_KINDS and ev.value != len(primary):
            yield Violation("scxnest.mask_replay",
                            f"{kind} reports primary size {ev.value}, "
                            f"replay says {len(primary)}", t=ev.t)
            bad += 1
        if bad >= MAX_PER_INVARIANT:
            return
    if art.nest is not None and primary != set(art.nest.primary):
        yield Violation("scxnest.mask_replay",
                        f"final replayed primary {sorted(primary)} != live "
                        f"snapshot {sorted(art.nest.primary)}")


def check_result_sanity(art: "RunArtifacts") -> Iterable[Violation]:
    """Energy, latency and horizon bounds on the summary record."""
    res = art.result
    if not math.isfinite(res.energy_joules) or res.energy_joules < 0:
        yield Violation("result.sanity",
                        f"energy {res.energy_joules!r} out of range")
    if res.makespan_us > 0 and res.energy_joules == 0:
        yield Violation("result.sanity", "nonzero run consumed no energy")
    if res.wakeup_latency_us < 0:
        yield Violation("result.sanity",
                        f"negative wakeup latency {res.wakeup_latency_us}")
    if art.scenario.max_us is not None \
            and res.makespan_us > art.scenario.max_us:
        yield Violation("result.sanity",
                        f"makespan {res.makespan_us} exceeds the "
                        f"max_us cutoff {art.scenario.max_us}")
    under = res.underload
    if under is not None and under.underload_per_second < 0:
        yield Violation("result.sanity", "negative underload rate")


#: The oracle, in evaluation order.  Names are stable: repro files,
#: shrinking and the mutation canary key off them.
INVARIANTS: Tuple[Tuple[str, Any], ...] = (
    ("run.completed", check_completed),
    ("clock.monotonic", check_clock_monotonic),
    ("events.vocabulary", check_vocabulary),
    ("nest.placement_accounting", check_placement_accounting),
    ("nest.event_counter_match", check_event_counter_match),
    ("nest.primary_replay", check_primary_replay),
    ("nest.final_state", check_final_state),
    ("nest.attachment", check_attachment),
    ("nest.feature_legality", check_feature_legality),
    ("sched.wakeup_dispatch", check_wakeup_dispatch),
    ("sched.latency_accounting", check_latency_accounting),
    ("metrics.histograms", check_histograms),
    ("freq.sanity", check_freq_sanity),
    ("spin.pairing", check_spin_pairing),
    ("faults.consistency", check_fault_consistency),
    ("rt.miss_causality", check_rt_miss_causality),
    ("rt.backup_disjoint", check_rt_backup_disjoint),
    ("rt.activation_pairing", check_rt_activation_pairing),
    ("scxnest.accounting", check_scxnest_accounting),
    ("scxnest.event_counter_match", check_scxnest_event_counter_match),
    ("scxnest.mask_replay", check_scxnest_mask_replay),
)


def check_run(art: "RunArtifacts") -> List[Violation]:
    """Evaluate every invariant against one run's artifacts."""
    if art.error is not None:
        return [Violation("run.completed", f"simulation crashed: {art.error}")]
    if art.result is None:   # pragma: no cover - execute() guarantees one
        return [Violation("run.completed", "no result produced")]
    out: List[Violation] = []
    for _name, fn in INVARIANTS:
        out.extend(fn(art))
    return out
