"""Differential checks: pairs of configurations that must agree.

Where the oracle checks one run against the paper's invariants, the
differential layer checks runs against *each other*:

* **serial vs parallel** — a :class:`SweepExecutor` fan-out must produce
  bit-identical results to a plain ``execute_spec`` loop over the same
  specs (PR-1's core determinism promise);
* **cached vs uncached** — a result served from the content-addressed
  cache must be bit-identical to one computed fresh, and the JSON
  round-trip must be lossless;
* **clean vs empty fault plan** — enabling the fault subsystem with
  rates so low the plan expands to zero faults must not perturb the
  simulation at all (the injector may only act through planned faults);
* **nest vs CFS** — scheduling policy affects *when* work runs, never
  *how much*: both schedulers must create the same task population.

Each check takes a :class:`Scenario` and returns ``Violation``\\ s using
``diff.*`` invariant names, so fuzz reports, shrinking and repro files
treat differential failures exactly like oracle failures.
"""

from __future__ import annotations

import tempfile
from pathlib import Path
from typing import Any, Dict, Iterable, List, Tuple

from ..experiments.cache import (ResultCache, result_from_jsonable,
                                 result_to_jsonable)
from ..experiments.parallel import RunSpec, SweepExecutor, execute_spec
from ..faults.plan import FaultConfig
from .generate import Scenario
from .oracle import Violation

#: A rate this low rounds to zero planned faults over any sane horizon,
#: while still flipping ``FaultConfig.enabled`` on — the injector is
#: installed but must be a pure bystander.
EPSILON_RATE = 1e-9


def spec_of(scenario: Scenario, **overrides: Any) -> RunSpec:
    """Express a scenario as a picklable sweep spec."""
    fields: Dict[str, Any] = dict(
        workload=scenario.workload,
        machine=scenario.machine,
        scheduler=scenario.scheduler,
        governor=scenario.governor,
        seed=scenario.seed,
        scale=scenario.scale,
        nest_params=scenario.nest_params_obj(),
        max_us=scenario.max_us,
        faults=scenario.faults_obj(),
    )
    fields.update(overrides)
    return RunSpec(**fields)


def canonical(result, machine_key: str,
              drop_extra: Tuple[str, ...] = ()) -> Dict[str, Any]:
    """A comparable image of a RunResult: everything deterministic.

    ``sim_wall_s`` and the ``host`` memory block are host-side telemetry
    and never comparable; ``drop_extra`` removes ``extra`` keys one side
    legitimately lacks (e.g. ``faults_injected`` when comparing clean vs
    faulted-empty).
    """
    data = result_to_jsonable(result, machine_key)
    data.pop("sim_wall_s", None)
    data.pop("host", None)
    extra = data["extra"]
    for key in drop_extra:
        extra.pop(key, None)
    return data


def _diff_fields(a: Dict[str, Any], b: Dict[str, Any]) -> List[str]:
    return sorted(k for k in a.keys() | b.keys() if a.get(k) != b.get(k))


# ---------------------------------------------------------------------------
# Checks
# ---------------------------------------------------------------------------

def check_serial_vs_parallel(scenario: Scenario) -> Iterable[Violation]:
    """PR-1 determinism: pool workers must equal an in-process loop."""
    specs = [spec_of(scenario, seed=scenario.seed + i) for i in range(3)]
    serial = [execute_spec(s) for s in specs]
    parallel = SweepExecutor(jobs=2, cache=None).run(specs)
    for spec, s_res, p_res in zip(specs, serial, parallel):
        a = canonical(s_res, scenario.machine)
        b = canonical(p_res, scenario.machine)
        if a != b:
            yield Violation(
                "diff.serial_vs_parallel",
                f"seed {spec.seed}: worker-process result differs from "
                f"in-process result on {_diff_fields(a, b)}")


def check_cached_roundtrip(scenario: Scenario) -> Iterable[Violation]:
    """Fresh run == JSON round-trip == re-run served alongside the cache."""
    spec = spec_of(scenario)
    fresh = execute_spec(spec)
    image = canonical(fresh, scenario.machine)
    with tempfile.TemporaryDirectory(prefix="verify-cache-") as tmp:
        cache = ResultCache(root=Path(tmp))
        cache.put_spec(spec, fresh)
        cached = cache.get_spec(spec)
    if cached is None:
        yield Violation("diff.cached_roundtrip",
                        "stored result did not come back from the cache")
        return
    back = canonical(cached, scenario.machine)
    if back != image:
        yield Violation(
            "diff.cached_roundtrip",
            f"cache round-trip changed {_diff_fields(image, back)}")
    rerun = canonical(execute_spec(spec), scenario.machine)
    if rerun != image:
        yield Violation(
            "diff.cached_roundtrip",
            f"re-running the same spec changed {_diff_fields(image, rerun)} "
            f"— the simulation is not deterministic")
    # The serializer itself must also be lossless through a dict cycle.
    cycled = canonical(
        result_from_jsonable(result_to_jsonable(fresh, scenario.machine)),
        scenario.machine)
    if cycled != image:
        yield Violation(
            "diff.cached_roundtrip",
            f"jsonable cycle changed {_diff_fields(image, cycled)}")


def check_empty_fault_plan(scenario: Scenario) -> Iterable[Violation]:
    """An armed injector with nothing planned must change nothing."""
    if scenario.faults is not None:
        return  # only meaningful against a clean baseline
    clean = execute_spec(spec_of(scenario))
    empty = FaultConfig(hotplug_rate_per_s=EPSILON_RATE)
    faulted = execute_spec(spec_of(scenario, faults=empty))
    injected = faulted.extra.get("faults_injected", 0.0)
    if injected:
        yield Violation("diff.empty_fault_plan",
                        f"epsilon rate still planned {injected} fault(s)")
        return
    a = canonical(clean, scenario.machine)
    b = canonical(faulted, scenario.machine,
                  drop_extra=("faults_injected",))
    # The armed injector registers its (all-zero) fault counters; that
    # bookkeeping is expected — anything *counted* is not.
    hot = {k: v for k, v in b["metrics"].items()
           if k.startswith("kernel.fault_") and v["value"]}
    if hot:
        yield Violation("diff.empty_fault_plan",
                        f"zero-fault plan still counted faults: {hot}")
    for side in (a, b):
        side["metrics"] = {k: v for k, v in side["metrics"].items()
                           if not k.startswith("kernel.fault_")}
    if a != b:
        yield Violation(
            "diff.empty_fault_plan",
            f"a zero-fault plan perturbed {_diff_fields(a, b)}")


def check_engine_parity(scenario: Scenario,
                        ref_art=None) -> Iterable[Violation]:
    """The fast engine must be bit-identical to the reference engine.

    Compares the full :class:`RunArtifacts` of both backends: the
    ``RunResult`` image (measurements, metrics snapshot, extras), the
    structured event-log stream record by record, the final nest
    membership, and crash behaviour.  The fuzzer passes the reference
    artifacts it already computed (``ref_art``); shrink-time re-checks
    recompute both sides from the scenario alone.
    """
    from ..sim.fastengine import FAST_SCHEDULERS
    from .execute import run_scenario

    if scenario.scheduler not in FAST_SCHEDULERS:
        # FT-RT (and any future ref-only policy) has no fast variant;
        # make_fast_policy refuses it with a tested error, so parity is
        # vacuous rather than a crash mismatch.
        return

    if ref_art is None:
        ref_art = run_scenario(scenario)
    fast_art = run_scenario(scenario, engine="fast")

    if fast_art.error != ref_art.error:
        yield Violation(
            "diff.engine_parity",
            f"crash mismatch: ref={ref_art.error!r} "
            f"fast={fast_art.error!r}")
        return
    if ref_art.error is not None:
        return  # both crashed identically; nothing further to compare

    a = canonical(ref_art.result, scenario.machine)
    b = canonical(fast_art.result, scenario.machine)
    if a != b:
        yield Violation(
            "diff.engine_parity",
            f"RunResult differs between engines on {_diff_fields(a, b)}")
    if ref_art.events != fast_art.events:
        n = min(len(ref_art.events), len(fast_art.events))
        idx = next((j for j in range(n)
                    if ref_art.events[j] != fast_art.events[j]), n)
        yield Violation(
            "diff.engine_parity",
            f"event streams diverge at record {idx} "
            f"(ref {len(ref_art.events)} events, "
            f"fast {len(fast_art.events)})")
    if ref_art.nest != fast_art.nest:
        yield Violation(
            "diff.engine_parity",
            "final nest membership differs between engines")


def check_nest_vs_cfs(scenario: Scenario) -> Iterable[Violation]:
    """Policies place work; they must not create or destroy it."""
    if scenario.scheduler != "nest" or scenario.max_us is not None:
        return  # a horizon cap truncates forks differently per policy
    nest = execute_spec(spec_of(scenario))
    cfs = execute_spec(spec_of(scenario, scheduler="cfs",
                               nest_params=None))
    if nest.n_tasks != cfs.n_tasks:
        yield Violation(
            "diff.nest_vs_cfs",
            f"Nest ran {nest.n_tasks} tasks, CFS ran {cfs.n_tasks} — the "
            f"policy changed the amount of work")


#: All differential checks, in cost order (cheapest first).  The fuzzer
#: samples from these; ``check_serial_vs_parallel`` spawns processes and
#: is additionally rate-limited by ``FuzzConfig.par_every``, and
#: ``check_engine_parity`` is driven by ``FuzzConfig.dual_every`` (it
#: lives here so shrink-time re-checks replay it like any other diff).
DIFF_CHECKS: Tuple[Tuple[str, Any], ...] = (
    ("diff.cached_roundtrip", check_cached_roundtrip),
    ("diff.empty_fault_plan", check_empty_fault_plan),
    ("diff.nest_vs_cfs", check_nest_vs_cfs),
    ("diff.serial_vs_parallel", check_serial_vs_parallel),
    ("diff.engine_parity", check_engine_parity),
)
