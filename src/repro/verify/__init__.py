"""Property-based fuzzing and differential-oracle verification.

Three pillars, used by ``repro verify`` and by the test suite:

* :mod:`generate` — seeded, reproducible random scenarios (workload ×
  machine × scheduler × Nest parameters × faults), one independent RNG
  stream per scenario index;
* :mod:`oracle` — replays a run's structured event log and metrics
  registry against ~a dozen paper-derived invariants (§3.1–§3.4);
* :mod:`differential` — runs the same scenario through configurations
  that must agree (serial vs parallel, cached vs uncached, clean vs
  empty fault plan) or relate (Nest vs CFS) and compares canonical
  serializations.

:mod:`fuzz` orchestrates all three and, on failure, :mod:`shrink`
reduces the scenario to a minimal reproducer persisted by :mod:`repro`
as a JSON file that ``repro verify replay`` (and the permanent
regression test ``tests/test_repros.py``) can re-run.

:mod:`conformance` packages the pillars into the policy SDK's
auto-applied certification battery (``repro verify conformance``,
DESIGN.md §11.2).
"""

from .conformance import (ConformanceCheck, ConformanceReport,
                          render_report, run_conformance)
from .differential import (DIFF_CHECKS, check_cached_roundtrip,
                           check_empty_fault_plan, check_nest_vs_cfs,
                           check_serial_vs_parallel)
from .execute import RunArtifacts, run_scenario
from .fuzz import FuzzConfig, FuzzReport, fuzz
from .generate import Scenario, ScenarioGenerator, scenario_strategy
from .oracle import INVARIANTS, NestSnapshot, Violation, check_run
from .repro import load_repro, replay_repro, save_repro
from .shrink import shrink

__all__ = [
    "ConformanceCheck", "ConformanceReport", "DIFF_CHECKS", "FuzzConfig",
    "FuzzReport", "INVARIANTS", "NestSnapshot", "RunArtifacts", "Scenario",
    "ScenarioGenerator", "Violation", "check_cached_roundtrip",
    "check_empty_fault_plan", "check_nest_vs_cfs", "check_run",
    "check_serial_vs_parallel", "fuzz", "load_repro", "render_report",
    "replay_repro", "run_conformance", "run_scenario", "save_repro",
    "scenario_strategy", "shrink",
]
