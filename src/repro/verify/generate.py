"""Seeded scenario generation: random-but-reproducible simulation inputs.

A :class:`Scenario` is a pure-data description of one simulation
(workload, machine, scheduler, governor, seed, optional Nest parameter
overrides, optional fault config, optional horizon cap) that round-trips
through JSON — the currency of the fuzzer, the shrinker and the repro
files.

:class:`ScenarioGenerator` mirrors the fault planner's RNG discipline
(:mod:`repro.faults.plan`): scenario *i* under base seed *s* draws from
the single named stream ``scenario:i`` of ``RngRegistry(s)``, so it is a
pure function of ``(s, i)`` — generating scenarios out of order, or only
one of them, yields exactly the same objects.  That property is what
makes a shrunk repro replayable from just ``(seed, index)``.

The draw pools deliberately skew small: every workload/machine pair
simulates in single-digit-to-tens of milliseconds, so a 200-scenario
fuzz run fits a CI smoke budget.

``scenario_strategy`` exposes the same generator as a ``hypothesis``
strategy when the optional dependency is installed (the ``verify``
extra); the core fuzzer never imports hypothesis.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, Optional

from ..core.params import NestParams
from ..faults.plan import FaultConfig
from ..sim.rng import RngRegistry

#: (workload name, usable scales) — all catalogued, all cheap to simulate.
WORKLOAD_POOL = (
    ("configure-gcc", (0.1, 0.2, 0.3)),
    ("configure-llvm_ninja", (0.1, 0.2)),
    ("phoronix-libavif-avifenc-1", (0.2, 0.3)),
    ("nas-mg", (0.1, 0.2)),
    ("dacapo-h2", (0.1,)),
    ("leveldb", (1.0,)),
    ("redis", (1.0,)),
    ("deadline-periodic", (0.5, 1.0)),
    ("deadline-sporadic", (0.5, 1.0)),
)

#: Weighted machine pool (small boxes dominate to keep runs fast).
MACHINE_POOL = ("ryzen_4650g", "ryzen_4650g", "ryzen_4650g", "5218_2s")

#: Weighted scheduler pool, derived from the policy registry's
#: ``fuzz_weight`` metadata (Nest dominates: it carries most invariants;
#: FT-RT carries the rt.* family and scx_nest the scxnest.* family, both
#: on the reference engine only).  Any newly registered policy joins the
#: pool — and therefore the seeded scenario stream — automatically.
from ..sched.registry import fuzz_scheduler_pool

SCHEDULER_POOL = fuzz_scheduler_pool()

GOVERNOR_POOL = ("schedutil", "schedutil", "performance")

#: Features the generator may switch off, one at a time (§5.3 ablations).
ABLATABLE_FEATURES = (
    "reserve", "compaction", "impatience", "spin", "attachment",
    "prev_core_first", "wakeup_work_conservation", "placement_flag",
)

#: Fault horizon matched to the pool's 2–100 ms makespans, so generated
#: faults actually land mid-run.
FAULT_HORIZON_US = 40_000


@dataclass(frozen=True)
class Scenario:
    """One generated simulation input (JSON-serializable, hashable)."""

    workload: str
    machine: str
    scheduler: str
    governor: str
    seed: int
    scale: float = 1.0
    #: ``dataclasses.asdict`` of a NestParams override, or None for the
    #: paper defaults (kept as a plain dict so the scenario stays JSON).
    nest_params: Optional[tuple] = None
    faults: Optional[tuple] = None
    max_us: Optional[int] = None

    def nest_params_obj(self) -> Optional[NestParams]:
        if self.nest_params is None:
            return None
        return NestParams(**dict(self.nest_params))

    def faults_obj(self) -> Optional[FaultConfig]:
        if self.faults is None:
            return None
        return FaultConfig(**dict(self.faults))

    @property
    def label(self) -> str:
        tags = []
        if self.nest_params is not None:
            tags.append("params")
        if self.faults is not None:
            tags.append("faults")
        if self.max_us is not None:
            tags.append(f"cap{self.max_us}")
        suffix = f" [{','.join(tags)}]" if tags else ""
        return (f"{self.workload}@{self.scale}/{self.machine}/"
                f"{self.scheduler}-{self.governor}/s{self.seed}{suffix}")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "workload": self.workload,
            "machine": self.machine,
            "scheduler": self.scheduler,
            "governor": self.governor,
            "seed": self.seed,
            "scale": self.scale,
            "nest_params": (None if self.nest_params is None
                            else dict(self.nest_params)),
            "faults": None if self.faults is None else dict(self.faults),
            "max_us": self.max_us,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Scenario":
        return cls(
            workload=data["workload"],
            machine=data["machine"],
            scheduler=data["scheduler"],
            governor=data["governor"],
            seed=data["seed"],
            scale=data.get("scale", 1.0),
            nest_params=_freeze(data.get("nest_params")),
            faults=_freeze(data.get("faults")),
            max_us=data.get("max_us"),
        )


def _freeze(d: Optional[Dict[str, Any]]) -> Optional[tuple]:
    """Dicts are unhashable; scenarios carry sorted item tuples instead."""
    if d is None:
        return None
    return tuple(sorted(d.items()))


def freeze_params(params: NestParams) -> tuple:
    return _freeze(dataclasses.asdict(params))


def freeze_faults(config: FaultConfig) -> tuple:
    return _freeze(dataclasses.asdict(config))


class ScenarioGenerator:
    """Deterministic scenario factory: ``generate(i)`` is a pure function
    of ``(base_seed, i)``."""

    def __init__(self, base_seed: int = 1) -> None:
        self.base_seed = base_seed

    def generate(self, index: int) -> Scenario:
        # A fresh registry per call: stream state never leaks between
        # indices, so scenarios are order-independent.
        s = RngRegistry(self.base_seed).stream(f"scenario:{index}")

        workload, scales = s.choice(WORKLOAD_POOL)
        scale = s.choice(scales)
        machine = s.choice(MACHINE_POOL)
        scheduler = s.choice(SCHEDULER_POOL)
        governor = s.choice(GOVERNOR_POOL)
        seed = s.randrange(1, 1_000_000)

        from ..sched.registry import policy_info
        nest_params = None
        if policy_info(scheduler).uses_nest_params and s.random() < 0.5:
            params = NestParams(
                p_remove_ticks=s.choice((0.5, 1.0, 2.0, 4.0)),
                r_max=s.randrange(0, 9),
                r_impatient=s.randrange(0, 5),
                s_max_ticks=s.choice((0.0, 1.0, 2.0)),
            )
            if s.random() < 0.3:
                params = params.without(s.choice(ABLATABLE_FEATURES))
            nest_params = freeze_params(params)

        faults = None
        if s.random() < 0.3:
            config = FaultConfig(
                hotplug_rate_per_s=s.choice((0.0, 50.0, 100.0)),
                hotplug_downtime_us=s.choice((5_000, 10_000, 20_000)),
                thermal_rate_per_s=s.choice((0.0, 50.0, 100.0)),
                thermal_duration_us=s.choice((5_000, 15_000)),
                thermal_cap_ratio=s.choice((0.5, 0.6, 0.8)),
                tick_jitter_us=s.choice((0, 0, 100, 300)),
                straggler_rate_per_s=s.choice((0.0, 100.0, 200.0)),
                straggler_factor=s.choice((2.0, 4.0)),
                core_failure_rate_per_s=s.choice((0.0, 50.0, 100.0)),
                core_failure_burst=s.choice((2, 3, 4)),
                core_failure_budget=s.choice((0, 6, 12)),
                core_failure_downtime_us=s.choice((10_000, 30_000)),
                horizon_us=FAULT_HORIZON_US,
            )
            if config.enabled:
                faults = freeze_faults(config)

        max_us = None
        if s.random() < 0.15:
            max_us = s.randrange(5_000, 60_000)

        return Scenario(workload=workload, machine=machine,
                        scheduler=scheduler, governor=governor, seed=seed,
                        scale=scale, nest_params=nest_params, faults=faults,
                        max_us=max_us)


def scenario_strategy(base_seed: int = 1, max_index: int = 1 << 20):
    """A ``hypothesis`` strategy over generated scenarios.

    Requires the optional ``hypothesis`` dependency (the ``verify``
    extra); the fuzzer itself is pure stdlib and never calls this.
    """
    try:
        from hypothesis import strategies as st
    except ImportError as exc:  # pragma: no cover - depends on environment
        raise ImportError(
            "scenario_strategy requires hypothesis; install the "
            "'verify' extra (pip install repro[verify])") from exc
    gen = ScenarioGenerator(base_seed)
    return st.integers(min_value=0, max_value=max_index).map(gen.generate)
