"""Run one generated scenario and gather everything the oracle inspects.

The oracle deliberately sees *more* than a cached :class:`RunResult`:
the full structured event log (for replay checks) and a snapshot of the
final nest membership taken through ``run_experiment``'s policy probe
(primary/reserve sets never reach the serialized result).  A crash
inside the simulator is not propagated — it comes back as
``RunArtifacts.error`` so the fuzzer can shrink crashing scenarios
exactly like invariant-violating ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..experiments.runner import run_experiment
from ..hw.machines import Machine, get_machine
from ..metrics.summary import RunResult
from ..obs.events import SchedEvent
from ..workloads.catalog import make_workload
from .generate import Scenario
from .oracle import NestSnapshot


@dataclass
class RunArtifacts:
    """Everything one scenario run produced, for the oracle."""

    scenario: Scenario
    machine: Machine
    result: Optional[RunResult] = None
    events: List[SchedEvent] = field(default_factory=list)
    nest: Optional[NestSnapshot] = None
    #: ``repr`` of the exception if the run crashed (oracle violation).
    error: Optional[str] = None


def run_scenario(scenario: Scenario, collect_events: bool = True,
                 probe: bool = True, engine: str = "ref") -> RunArtifacts:
    """Execute ``scenario``; never raises on simulator failure."""
    machine = get_machine(scenario.machine)
    art = RunArtifacts(scenario=scenario, machine=machine)

    snapshot: List[NestSnapshot] = []

    def policy_probe(policy) -> None:
        if hasattr(policy, "primary") and hasattr(policy, "reserve"):
            snapshot.append(NestSnapshot(
                primary=frozenset(policy.primary),
                reserve=frozenset(policy.reserve),
                r_max=policy.params.r_max,
                reserve_enabled=policy.params.reserve_enabled,
            ))

    try:
        result = run_experiment(
            make_workload(scenario.workload, scale=scenario.scale),
            machine,
            scenario.scheduler,
            scenario.governor,
            seed=scenario.seed,
            nest_params=scenario.nest_params_obj(),
            max_us=scenario.max_us,
            collect_events=collect_events,
            faults=scenario.faults_obj(),
            policy_probe=policy_probe if probe else None,
            engine=engine,
        )
    except Exception as exc:
        art.error = f"{type(exc).__name__}: {exc}"
        return art
    art.result = result
    art.events = list(getattr(result, "events", None) or ())
    art.nest = snapshot[0] if snapshot else None
    return art
