"""The performance governor (paper §2.3).

Requests that the hardware use at least the *nominal* frequency; the
hardware remains free to pick any turbo frequency above it.  High
performance, but no energy savings from running light tasks slowly.
"""

from __future__ import annotations

from .base import Governor


class PerformanceGovernor(Governor):
    """Floor at the nominal frequency, request the full turbo range."""

    def floor_mhz(self, cpu: int) -> int:
        return self.kernel.machine.nominal_mhz

    def request_mhz(self, cpu: int) -> int:
        return self.kernel.machine.max_turbo_mhz

    @property
    def name(self) -> str:
        return "performance"
