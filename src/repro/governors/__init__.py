"""Linux power governors: performance and schedutil (paper SS2.3)."""

from .base import Governor
from .performance import PerformanceGovernor
from .schedutil import HEADROOM, SchedutilGovernor

__all__ = ["Governor", "PerformanceGovernor", "SchedutilGovernor", "HEADROOM"]
