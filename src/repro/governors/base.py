"""Power-governor interface (paper §2.3).

The governor does not set frequencies: it supplies a *floor* and a *request*
per cpu, and the hardware (``hw.freqmodel``) picks a frequency within those
bounds given the socket's turbo budget and its own ramping behaviour.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover
    from ..kernel.scheduler_core import Kernel


class Governor:
    """Base class for power governors."""

    def __init__(self) -> None:
        self.kernel: Optional["Kernel"] = None

    def bind(self, kernel: "Kernel") -> None:
        if self.kernel is not None:
            raise RuntimeError("governor already bound to a kernel")
        self.kernel = kernel
        self.on_bind()

    def on_bind(self) -> None:
        """Hook called once the kernel reference is available."""

    # ---- bounds queried by the hardware ------------------------------------

    def floor_mhz(self, cpu: int) -> int:
        """Minimum frequency the governor wants for ``cpu``."""
        raise NotImplementedError

    def request_mhz(self, cpu: int) -> int:
        """Frequency the governor suggests for ``cpu``."""
        raise NotImplementedError

    # ---- notifications from the kernel ------------------------------------

    def on_tick(self, cpu: int) -> None:
        """Scheduler tick on a busy cpu."""

    def on_activity_change(self, cpu: int) -> None:
        """A task started or stopped running on ``cpu``."""

    @property
    def name(self) -> str:
        return type(self).__name__.replace("Governor", "").lower()
