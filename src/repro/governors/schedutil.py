"""The schedutil governor (paper §2.3).

Schedutil couples the frequency request to the scheduler's utilisation
signal: ``f = C * f_max * util / util_max`` with C = 1.25 headroom, exactly
the kernel's ``get_next_freq``.  A cpu whose runqueue has been busy recently
requests a high frequency; a cpu that has been idle for a while — or that
just received its first short-lived task — requests a low one.  This is the
governor under which CFS's task-scattering hurts: every placement on a
long-idle core restarts from a low request (and a low actual frequency).
"""

from __future__ import annotations

from ..kernel.pelt import PELT_MAX
from ..obs import events as oev
from ..obs.log import EventLog
from .base import Governor

#: Headroom multiplier used by the kernel ("1.25 * max * util / max_cap").
HEADROOM = 1.25


class SchedutilGovernor(Governor):
    """Utilisation-driven frequency requests with the full range allowed."""

    def __init__(self) -> None:
        super().__init__()
        self._obs = EventLog()   # replaced with the engine's log on bind

    def on_bind(self) -> None:
        self._obs = self.kernel.engine.obs

    def floor_mhz(self, cpu: int) -> int:
        return self.kernel.machine.min_mhz

    def request_mhz(self, cpu: int) -> int:
        kernel = self.kernel
        now = kernel.engine.now
        rq = kernel.rqs[cpu]
        # Running average of cpu activity...
        util = rq.util(now)
        # ...bumped immediately by the utilisation estimates of the tasks
        # now attached to the cpu (the kernel's util_est): a wakeup of a
        # known-busy task raises the request without waiting for PELT.
        est = 0.0
        current = kernel.cpus[cpu].current
        if current is not None:
            est += max(current.util_est, current.pelt.peek(now, True))
        for t in rq.queued_tasks():
            est += t.util_est
        util = max(util, min(PELT_MAX, est))
        f = HEADROOM * kernel.machine.max_turbo_mhz * util / PELT_MAX
        mhz = max(kernel.machine.min_mhz,
                  min(kernel.machine.max_turbo_mhz, int(f)))
        if self._obs.enabled:
            self._obs.emit(now, oev.FREQ_REQUEST, cpu=cpu, value=mhz)
        return mhz

    @property
    def name(self) -> str:
        return "schedutil"
