"""Turbo-frequency tables (paper Table 3).

The achievable turbo frequency of a core depends on how many physical cores
on its socket are active, to respect thermal constraints.  Frequencies are in
MHz.  ``limits[k]`` gives the maximum frequency when ``k+1`` physical cores on
the socket are active; the last entry extends to a full socket.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple


def _expand(buckets: Sequence[Tuple[int, int]], n_cores: int) -> Tuple[int, ...]:
    """Expand (up_to_active_count, mhz) buckets into a dense per-count table."""
    table = []
    for up_to, mhz in buckets:
        while len(table) < min(up_to, n_cores):
            table.append(mhz)
    while len(table) < n_cores:
        table.append(buckets[-1][1])
    return tuple(table)


@dataclass(frozen=True)
class TurboTable:
    """Per-socket turbo ceiling as a function of active physical cores."""

    min_mhz: int
    nominal_mhz: int
    limits: Tuple[int, ...]   # limits[k] = ceiling with k+1 active cores

    def __post_init__(self) -> None:
        if not self.limits:
            raise ValueError("empty turbo table")
        if any(a < b for a, b in zip(self.limits, self.limits[1:])):
            # Turbo ceilings are non-increasing in the active-core count.
            raise ValueError("turbo limits must be non-increasing")
        if self.limits[-1] < self.nominal_mhz:
            raise ValueError("all-core turbo below nominal frequency")

    @property
    def max_turbo_mhz(self) -> int:
        return self.limits[0]

    def ceiling(self, active_physical_cores: int) -> int:
        """Turbo ceiling (MHz) with ``active_physical_cores`` active.

        Zero active cores returns the single-core ceiling (the next core to
        wake will be the only active one).
        """
        if active_physical_cores <= 0:
            return self.limits[0]
        idx = min(active_physical_cores, len(self.limits)) - 1
        return self.limits[idx]


# ---- Paper Table 3 --------------------------------------------------------
# Buckets are (active cores up to, MHz); the paper lists columns
# 1, 2, 3, 4, 5-8, 9-12, 13-16, 17-20.

#: Intel Xeon E7-8870 v4 (Broadwell): min 1.2, nominal 2.1, max turbo 3.0 GHz.
E7_8870_V4 = TurboTable(
    min_mhz=1200,
    nominal_mhz=2100,
    limits=_expand([(1, 3000), (2, 3000), (3, 2800), (4, 2700), (20, 2600)], 20),
)

#: Intel Xeon Gold 6130 (Skylake): min 1.0, nominal 2.1, max turbo 3.7 GHz.
XEON_6130 = TurboTable(
    min_mhz=1000,
    nominal_mhz=2100,
    limits=_expand([(1, 3700), (2, 3700), (3, 3500), (4, 3500),
                    (8, 3400), (12, 3100), (16, 2800)], 16),
)

#: Intel Xeon Gold 5218 (Cascade Lake): min 1.0, nominal 2.3, max turbo 3.9 GHz.
XEON_5218 = TurboTable(
    min_mhz=1000,
    nominal_mhz=2300,
    limits=_expand([(1, 3900), (2, 3900), (3, 3700), (4, 3700),
                    (8, 3600), (12, 3100), (16, 2800)], 16),
)

#: Intel Xeon Gold 5220 (§5.6 mono-socket, Cascade Lake, 18 physical cores).
XEON_5220 = TurboTable(
    min_mhz=1000,
    nominal_mhz=2200,
    limits=_expand([(1, 3900), (2, 3900), (3, 3700), (4, 3700),
                    (8, 3500), (12, 3100), (18, 2700)], 18),
)

#: AMD Ryzen 5 PRO 4650G (§5.6 mono-socket, 6 physical cores).
RYZEN_4650G = TurboTable(
    min_mhz=1400,
    nominal_mhz=3700,
    limits=_expand([(1, 4200), (2, 4200), (4, 4000), (6, 3900)], 6),
)
