"""Machine topology: sockets, physical cores, SMT hardware threads.

Follows the paper's terminology (§1, Terminology): a "core" is a hardware
thread; two hardware threads sharing a physical core are "hyperthreads" of
each other; all cores sharing a last-level cache are "on the same die".  On
every machine in the paper a die coincides with a socket.

CPU numbering mirrors Linux on the Intel testbed: hardware threads
``0 .. S*C-1`` are the first thread of each physical core, socket-major, and
threads ``S*C .. 2*S*C-1`` are their SMT siblings in the same order.  E.g. on
the 2-socket 6130 (2x16x2): cpus 0-15 are socket 0, 16-31 socket 1, 32-47 the
socket-0 siblings, 48-63 the socket-1 siblings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple


@dataclass(frozen=True)
class Topology:
    """Immutable description of the processor layout."""

    n_sockets: int
    cores_per_socket: int       # physical cores per socket
    smt: int = 2                # hardware threads per physical core

    #: Derived counts, computed once in ``__post_init__``: these are read in
    #: the simulator's innermost loops, where a property call per read is
    #: measurable.
    n_physical_cores: int = field(init=False, repr=False, compare=False)
    n_cpus: int = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.n_sockets < 1 or self.cores_per_socket < 1:
            raise ValueError("topology must have at least one core")
        if self.smt not in (1, 2):
            raise ValueError("only SMT1 and SMT2 are modelled")
        object.__setattr__(self, "n_physical_cores",
                           self.n_sockets * self.cores_per_socket)
        object.__setattr__(self, "n_cpus", self.n_physical_cores * self.smt)

    # ---- per-cpu lookups --------------------------------------------------

    def socket_of(self, cpu: int) -> int:
        self._check(cpu)
        return (cpu % self.n_physical_cores) // self.cores_per_socket

    def physical_core_of(self, cpu: int) -> int:
        """Physical-core index in [0, n_physical_cores)."""
        self._check(cpu)
        return cpu % self.n_physical_cores

    def thread_of(self, cpu: int) -> int:
        """SMT thread index (0 or 1) of this hardware thread."""
        self._check(cpu)
        return cpu // self.n_physical_cores

    def sibling_of(self, cpu: int) -> int:
        """The other hardware thread on the same physical core.

        On SMT1 machines a cpu is its own sibling (matching the kernel's
        cpu_smt_mask semantics of a singleton mask).
        """
        self._check(cpu)
        if self.smt == 1:
            return cpu
        npc = self.n_physical_cores
        return cpu - npc if cpu >= npc else cpu + npc

    def die_of(self, cpu: int) -> int:
        """Die index (== socket on all modelled machines)."""
        return self.socket_of(cpu)

    # ---- group enumerations ----------------------------------------------

    def cpus_in_socket(self, socket: int) -> List[int]:
        if not 0 <= socket < self.n_sockets:
            raise ValueError(f"bad socket {socket}")
        base = socket * self.cores_per_socket
        first = list(range(base, base + self.cores_per_socket))
        if self.smt == 1:
            return first
        npc = self.n_physical_cores
        return first + [c + npc for c in first]

    def smt_siblings(self, cpu: int) -> Tuple[int, ...]:
        """All hardware threads of the physical core containing ``cpu``."""
        self._check(cpu)
        if self.smt == 1:
            return (cpu,)
        a = self.physical_core_of(cpu)
        return (a, a + self.n_physical_cores)

    def all_cpus(self) -> List[int]:
        return list(range(self.n_cpus))

    def sockets(self) -> List[int]:
        return list(range(self.n_sockets))

    def _check(self, cpu: int) -> None:
        if not 0 <= cpu < self.n_cpus:
            raise ValueError(f"bad cpu {cpu} (n_cpus={self.n_cpus})")

    def describe(self) -> str:
        return (f"{self.n_sockets}x{self.cores_per_socket}x{self.smt} = "
                f"{self.n_cpus} hardware threads")
