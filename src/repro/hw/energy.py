"""CPU energy model (turbostat substitute).

The paper's observations that the model must reproduce (§5.2):

* socket power is dominated by the *highest-frequency active core* on the
  socket, because the voltage rail is shared — so concentrating tasks on one
  already-fast socket adds little power;
* as long as any core on the machine is active, every socket remains in a
  high state of availability (uncore/memory power), so the big CPU-energy
  saving comes from finishing the application sooner, not from parking
  sockets.

Power model per socket::

    P = P_uncore                                    (always, machine awake)
      + sum over active physical cores of
            P_core_static + c_dyn * f * v(socket)^2

with the socket voltage ``v`` proportional to the highest active-core
frequency on the socket.  Idle-but-powered cores draw a small static power.
Units: MHz in, Watts out, energy in Joules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..sim.clock import US_PER_SEC
from .topology import Topology


@dataclass(frozen=True)
class PowerParams:
    """Coefficients of the socket power model."""

    uncore_watts: float = 18.0       # per-socket baseline while machine is up
    core_idle_watts: float = 0.4     # powered but idle physical core
    core_static_watts: float = 1.2   # active core, frequency independent
    # Dynamic coefficient: P_dyn = c_dyn * (f_ghz) * (v)^2, v = v0 + v_slope*f_ghz
    c_dyn: float = 2.6
    v0: float = 0.55
    v_slope: float = 0.16            # per GHz


class EnergyMeter:
    """Integrates machine CPU power over simulated time.

    The meter is advanced lazily: callers invoke :meth:`advance` with the
    current time before changing any state that affects power (the kernel
    does this on every activity/frequency transition).
    """

    def __init__(self, topology: Topology, params: PowerParams | None = None) -> None:
        self.topology = topology
        self.params = params or PowerParams()
        self.energy_joules = 0.0
        self._last_us = 0
        # Mirror of the state needed to compute power.
        n_pc = topology.n_physical_cores
        self._core_mhz: List[int] = [0] * n_pc
        self._core_active: List[bool] = [False] * n_pc
        self._samples: List[tuple[int, float]] = []
        # Power is piecewise constant between state changes, so it is
        # computed once per change and cached (None = dirty) rather than
        # re-summed over every core on each advance.
        self._power: float | None = None

    # ---- state mirroring -------------------------------------------------

    def set_core_freq(self, physical_core: int, mhz: int, now: int) -> None:
        self.advance(now)
        if self._core_mhz[physical_core] != mhz:
            self._core_mhz[physical_core] = mhz
            self._power = None

    def set_core_active(self, physical_core: int, active: bool, now: int) -> None:
        self.advance(now)
        if self._core_active[physical_core] != active:
            self._core_active[physical_core] = active
            self._power = None

    # ---- integration -------------------------------------------------------

    def current_power_watts(self) -> float:
        """Whole-machine CPU power with the present state."""
        power = self._power
        if power is None:
            power = self._power = self._compute_power()
        return power

    def _compute_power(self) -> float:
        p = self.params
        topo = self.topology
        total = 0.0
        cps = topo.cores_per_socket
        for socket in range(topo.n_sockets):
            total += p.uncore_watts
            base = socket * cps
            vmax_mhz = 0
            for pc in range(base, base + cps):
                if self._core_active[pc]:
                    vmax_mhz = max(vmax_mhz, self._core_mhz[pc])
            v = p.v0 + p.v_slope * (vmax_mhz / 1000.0)
            for pc in range(base, base + cps):
                if self._core_active[pc]:
                    f_ghz = self._core_mhz[pc] / 1000.0
                    total += p.core_static_watts + p.c_dyn * f_ghz * v * v
                else:
                    total += p.core_idle_watts
        return total

    def advance(self, now: int) -> None:
        """Integrate energy up to time ``now`` (µs)."""
        if now <= self._last_us:
            return
        dt = (now - self._last_us) / US_PER_SEC
        self.energy_joules += self.current_power_watts() * dt
        self._last_us = now

    def sample(self, now: int) -> None:
        """Record a (time, cumulative-energy) sample, turbostat style."""
        self.advance(now)
        self._samples.append((now, self.energy_joules))

    @property
    def samples(self) -> List[tuple[int, float]]:
        return list(self._samples)

    def energy_between(self, t0: int, t1: int) -> float:
        """Energy accumulated between two sampled instants (interpolated)."""
        if t1 < t0:
            raise ValueError("t1 < t0")

        def at(t: int) -> float:
            pts = self._samples
            if not pts:
                return 0.0
            if t <= pts[0][0]:
                return pts[0][1]
            for (ta, ea), (tb, eb) in zip(pts, pts[1:]):
                if ta <= t <= tb:
                    if tb == ta:
                        return ea
                    return ea + (eb - ea) * (t - ta) / (tb - ta)
            return pts[-1][1]

        return at(t1) - at(t0)
