"""Hardware substrate: topology, turbo tables, DVFS, energy, machines."""

from .energy import EnergyMeter, PowerParams
from .freqmodel import AMD_BOOST, FreqModel, PMParams, SPEED_SHIFT, SPEED_STEP
from .machines import (ALL_MACHINES, E7_8870_V4_4S, Machine, PAPER_MACHINES,
                       RYZEN_4650G_1S, XEON_5218_2S, XEON_5220_1S,
                       XEON_6130_2S, XEON_6130_4S, get_machine)
from .topology import Topology
from .turbo import TurboTable

__all__ = [
    "EnergyMeter", "PowerParams",
    "FreqModel", "PMParams", "SPEED_SHIFT", "SPEED_STEP", "AMD_BOOST",
    "Machine", "get_machine", "ALL_MACHINES", "PAPER_MACHINES",
    "E7_8870_V4_4S", "XEON_6130_2S", "XEON_6130_4S", "XEON_5218_2S",
    "XEON_5220_1S", "RYZEN_4650G_1S",
    "Topology", "TurboTable",
]
