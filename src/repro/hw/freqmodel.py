"""Per-core DVFS model.

Frequency is a property of the *physical core* (both hyperthreads run at the
same frequency, as on Intel).  The frequency of a core is decided by the
hardware within governor-supplied bounds (§2.3 of the paper):

* the ceiling is the socket's turbo limit given the number of active physical
  cores on the socket (Table 3), further capped by the governor's request
  (schedutil requests track utilisation; performance requests the full range
  with a floor at the nominal frequency);
* the hardware *ramps* toward the target rather than jumping: Speed Shift
  hardware (Skylake/Cascade Lake) ramps quickly, Enhanced SpeedStep
  (Broadwell E7-8870 v4) ramps slowly and drops out of turbo quickly when it
  observes gaps in the computation — the behaviour §5.2 calls the machine
  being "prone to using subturbo frequencies";
* an idle core holds its frequency for a short grace period and then decays
  stepwise to the minimum.  A core whose idle loop is *spinning* (Nest's
  ``S_max`` warm-core mechanism) counts as active and keeps its frequency.

This model is what makes task placement matter: a task placed on a long-idle
core starts at the minimum frequency and pays the ramp latency, while a task
placed on a just-vacated warm core starts fast.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from ..sim.engine import Engine
from ..sim.events import Event, EventKind
from .topology import Topology
from .turbo import TurboTable


@dataclass(frozen=True)
class PMParams:
    """Power-management personality of a microarchitecture.

    The pivotal behaviour is the *sustained-activity boost*: hardware grants
    the full per-count turbo ceiling only to cores that have been active for
    ``turbo_latency_us`` without a gap longer than ``gap_forgiveness_us``.
    Before that, an active core is capped at ``presustain_cap`` (the all-core
    turbo on Speed Shift parts, the nominal frequency on Broadwell) and runs
    at whatever the governor requests below the cap.  This is why short
    tasks scattered onto long-idle cores never reach the high turbo range,
    while a compact, continuously-warm nest does — the causal core of the
    paper.
    """

    name: str
    ramp_up_step_mhz: int       # frequency gained per ramp interval
    ramp_interval_us: int       # time between upward ramp steps
    decay_step_mhz: int         # frequency lost per decay interval when idle
    decay_interval_us: int      # time between downward steps
    idle_hold_us: int           # grace period before an idle core decays
    turbo_latency_us: int       # sustained activity needed for full turbo
    gap_forgiveness_us: int     # idle gaps shorter than this keep "sustained"
    presustain_cap: str         # "allcore" or "nominal"
    #: Speed Shift hardware programs the computed P-state on the wakeup path
    #: (transitions take tens of µs); SpeedStep only honours the governor's
    #: floor immediately and ramps toward anything above it.
    instant_pstate: bool = True
    #: HWP parts autonomously drive a sustained-active core to the full
    #: turbo budget regardless of the governor's hint.  Pre-HWP SpeedStep
    #: always follows the OS request — sustained activity merely unlocks the
    #: turbo *range* — which is why utilisation-gated schedutil leaves the
    #: E7-8870 v4 at low frequencies whenever tasks pause (§5.3).
    autonomous_boost: bool = True

    def __post_init__(self) -> None:
        if self.presustain_cap not in ("allcore", "nominal"):
            raise ValueError("presustain_cap must be 'allcore' or 'nominal'")


#: Intel Speed Shift (HWP): fast ramp, quick autonomous boost of busy cores
#: (Skylake 6130, Cascade Lake 5218/5220).
SPEED_SHIFT = PMParams(
    name="Intel Speed Shift",
    ramp_up_step_mhz=700,
    ramp_interval_us=500,
    decay_step_mhz=700,
    decay_interval_us=1_000,
    idle_hold_us=3_000,
    turbo_latency_us=8_000,
    gap_forgiveness_us=500,
    presustain_cap="allcore",
)

#: Enhanced Intel SpeedStep (Broadwell E7-8870 v4): slow ramp, quick decay,
#: long sustained activity required, and gaps in the computation drop the
#: core back to sub-turbo (§5.2: the machine is "prone to using subturbo
#: frequencies" whenever there are gaps).
SPEED_STEP = PMParams(
    name="Enhanced Intel SpeedStep",
    ramp_up_step_mhz=250,
    ramp_interval_us=1_000,
    decay_step_mhz=500,
    decay_interval_us=500,
    idle_hold_us=400,
    turbo_latency_us=15_000,
    gap_forgiveness_us=500,
    presustain_cap="nominal",
    instant_pstate=False,
    autonomous_boost=False,
)

#: AMD Precision Boost (Ryzen 4650G): fast, HWP-like.
AMD_BOOST = PMParams(
    name="AMD Precision Boost",
    ramp_up_step_mhz=800,
    ramp_interval_us=400,
    decay_step_mhz=800,
    decay_interval_us=1_000,
    idle_hold_us=3_000,
    turbo_latency_us=6_000,
    gap_forgiveness_us=2_000,
    presustain_cap="allcore",
)


#: Callback signature for frequency transitions: (physical_core, new_mhz).
FreqListener = Callable[[int, int], None]


class GovernorProtocol:
    """What the frequency model needs from a power governor (see governors/)."""

    def floor_mhz(self, cpu: int) -> int:  # pragma: no cover - interface
        raise NotImplementedError

    def request_mhz(self, cpu: int) -> int:  # pragma: no cover - interface
        raise NotImplementedError


class _CoreState:
    """Mutable DVFS state of one physical core."""

    __slots__ = ("mhz", "active_threads", "spinning_threads", "active_since",
                 "idle_since", "step_event", "prev_active_since")

    def __init__(self, mhz: int) -> None:
        self.mhz = mhz
        self.active_threads = 0        # hw threads running a task
        self.spinning_threads = 0      # hw threads in the spinning idle loop
        self.active_since: Optional[int] = None
        self.idle_since: Optional[int] = 0
        self.step_event: Optional[Event] = None
        self.prev_active_since: Optional[int] = None  # for gap forgiveness

    @property
    def is_active(self) -> bool:
        return self.active_threads > 0 or self.spinning_threads > 0


class FreqModel:
    """Tracks and evolves per-physical-core frequencies."""

    def __init__(
        self,
        engine: Engine,
        topology: Topology,
        turbo: TurboTable,
        pm: PMParams,
        governor: GovernorProtocol,
    ) -> None:
        self.engine = engine
        self.topology = topology
        self.turbo = turbo
        self.pm = pm
        self.governor = governor
        self._listeners: List[FreqListener] = []
        self._cores = [_CoreState(turbo.min_mhz)
                       for _ in range(topology.n_physical_cores)]
        self._socket_active = [0] * topology.n_sockets
        self._thread_state: List[tuple[bool, bool]] = \
            [(False, False)] * topology.n_cpus
        # Memoized lookups for the hot re-pricing paths: topology maps are
        # immutable per machine and the turbo table is a pure function of
        # the active-core count, so flatten them once.
        self._min_mhz = turbo.min_mhz
        self._pc_of = tuple(topology.physical_core_of(c)
                            for c in range(topology.n_cpus))
        self._socket_of_pc = tuple(pc // topology.cores_per_socket
                                   for pc in range(topology.n_physical_cores))
        self._siblings_of_pc = tuple(topology.smt_siblings(pc)
                                     for pc in range(topology.n_physical_cores))
        self._ceiling_by_active = tuple(
            turbo.ceiling(k) for k in range(topology.cores_per_socket + 1))
        if pm.presustain_cap == "allcore":
            cap = turbo.limits[-1]
        else:
            cap = turbo.nominal_mhz
        self._presustain_cap_mhz = max(cap, turbo.nominal_mhz)
        #: Thermal caps injected by faults/ (None = uncapped).  A cap
        #: clamps the target below everything else the model computes,
        #: like a firmware thermal limit.
        self._thermal_cap: List[Optional[int]] = \
            [None] * topology.n_physical_cores

    # ---- public queries -----------------------------------------------

    def add_listener(self, fn: FreqListener) -> None:
        self._listeners.append(fn)

    def freq_mhz(self, cpu: int) -> int:
        """Current frequency of the physical core containing hw thread cpu."""
        return self._cores[self._pc_of[cpu]].mhz

    def core_freq_mhz(self, physical_core: int) -> int:
        return self._cores[physical_core].mhz

    def active_physical_cores(self, socket: int) -> int:
        return self._socket_active[socket]

    def core_is_active(self, physical_core: int) -> bool:
        return self._cores[physical_core].is_active

    def idle_duration(self, cpu: int, now: int) -> Optional[int]:
        """How long the physical core of ``cpu`` has been fully idle."""
        st = self._cores[self._pc_of[cpu]]
        if st.idle_since is None:
            return None
        return now - st.idle_since

    # ---- state transitions ----------------------------------------------

    def set_thread_state(self, cpu: int, busy: bool, spinning: bool) -> None:
        """Report the activity of one hardware thread.

        ``busy`` means a task is running; ``spinning`` means the idle loop is
        spinning to keep the core warm.  At most one of them may be True.
        """
        if busy and spinning:
            raise ValueError("a thread cannot be busy and spinning")
        pc = self._pc_of[cpu]
        st = self._cores[pc]
        was_active = st.is_active

        # The caller gives absolute state, so subtract the previous
        # contribution of this thread before adding the new one.
        prev = self._thread_state
        old_busy, old_spin = prev[cpu]
        if old_busy:
            st.active_threads -= 1
        if old_spin:
            st.spinning_threads -= 1
        if busy:
            st.active_threads += 1
        if spinning:
            st.spinning_threads += 1
        prev[cpu] = (busy, spinning)

        now = self.engine.now
        if st.is_active and not was_active:
            # Gap forgiveness: a brief idle interruption does not reset the
            # hardware's sustained-activity observation.
            if (st.idle_since is not None
                    and st.prev_active_since is not None
                    and now - st.idle_since <= self.pm.gap_forgiveness_us):
                st.active_since = st.prev_active_since
            else:
                st.active_since = now
            st.idle_since = None
            socket = self._socket_of_pc[pc]
            self._socket_active[socket] += 1
            # A waking core exits its idle state directly at the governor's
            # floor P-state (the performance governor's guarantee).  Speed
            # Shift hardware programs the full computed P-state on the
            # wakeup path, so there is no slow climb out of idle at all.
            if self.pm.instant_pstate:
                jump = self._target_mhz(pc, now)
            else:
                jump = max(self.governor.floor_mhz(t)
                           for t in self._siblings_of_pc[pc])
                cap = self._thermal_cap[pc]
                if cap is not None and jump > cap:
                    jump = cap
            if st.mhz < jump:
                st.mhz = jump
                for fn in self._listeners:
                    fn(pc, jump)
            self._reevaluate_socket(socket)
        elif was_active and not st.is_active:
            st.prev_active_since = st.active_since
            st.active_since = None
            st.idle_since = now
            socket = self._socket_of_pc[pc]
            self._socket_active[socket] -= 1
            self._reevaluate_socket(socket)
        else:
            self._reevaluate(pc)

    def thread_state(self, cpu: int) -> tuple[bool, bool]:
        """(busy, spinning) state last reported for hardware thread ``cpu``."""
        return self._thread_state[cpu]

    def notify_request_change(self, cpu: int) -> None:
        """Governor request for ``cpu`` may have changed; re-evaluate."""
        self._reevaluate(self._pc_of[cpu])

    def set_thermal_cap(self, physical_core: int,
                        mhz: Optional[int]) -> None:
        """Clamp (or, with ``None``, unclamp) a core below ``mhz``.

        Installed by the fault injector.  Like a firmware thermal limit the
        clamp-down is immediate — running tasks are re-priced through the
        listener — while recovery after the cap lifts follows the normal
        ramp intervals.
        """
        if mhz is not None:
            mhz = max(int(mhz), self._min_mhz)
        self._thermal_cap[physical_core] = mhz
        st = self._cores[physical_core]
        if mhz is not None and st.mhz > mhz:
            st.mhz = mhz
            for fn in self._listeners:
                fn(physical_core, mhz)
        self._reevaluate(physical_core)

    def thermal_cap(self, physical_core: int) -> Optional[int]:
        return self._thermal_cap[physical_core]

    # ---- target computation and ramping -----------------------------------

    def _target_mhz(self, pc: int, now: int) -> int:
        st = self._cores[pc]
        if st.active_threads == 0 and st.spinning_threads == 0:
            return self._min_mhz
        ceiling = self._ceiling_by_active[
            self._socket_active[self._socket_of_pc[pc]]]
        sustained = (st.active_since is not None
                     and now - st.active_since >= self.pm.turbo_latency_us)
        if sustained and self.pm.autonomous_boost:
            # HWP autonomous boost: the hardware drives a continuously-
            # active core to its full turbo budget, whatever the governor
            # hints.
            target = ceiling
        else:
            if not sustained:
                if self._presustain_cap_mhz < ceiling:
                    ceiling = self._presustain_cap_mhz
            # Governor bounds, evaluated over the core's hw threads: the
            # hardware honours the strongest request on the core.
            request = 0
            floor = self._min_mhz
            governor = self.governor
            for t in self._siblings_of_pc[pc]:
                r = governor.request_mhz(t)
                if r > request:
                    request = r
                f = governor.floor_mhz(t)
                if f > floor:
                    floor = f
            target = min(ceiling, max(request, floor))
        # A spinning idle loop looks 100%-active to the hardware, which
        # therefore holds the frequency even if the governor's request sinks
        # (Nest's warm-core mechanism, §3.2).
        if st.spinning_threads > 0 and st.active_threads == 0:
            target = min(ceiling, max(target, st.mhz))
        target = max(target, self._min_mhz)
        cap = self._thermal_cap[pc]
        if cap is not None and target > cap:
            target = cap
        return target

    def _reevaluate_socket(self, socket: int) -> None:
        """Re-price every core of a socket after its active count changed.

        Settled idle cores — inactive, already at the minimum frequency,
        with no ramp step pending — are skipped: their target is the
        minimum regardless of the socket's active-core count, so
        re-evaluating them is always a no-op.  This turns the per-socket
        sweep from O(cores) target computations into O(non-settled cores),
        the "batched re-pricing" fast path.
        """
        cps = self.topology.cores_per_socket
        base = socket * cps
        cores = self._cores
        min_mhz = self._min_mhz
        for pc in range(base, base + cps):
            st = cores[pc]
            if (st.active_threads == 0 and st.spinning_threads == 0
                    and st.step_event is None and st.mhz == min_mhz):
                continue
            self._reevaluate(pc)

    def _reevaluate(self, pc: int) -> None:
        """Recompute the target and (re)schedule the next ramp step."""
        st = self._cores[pc]
        if (st.active_threads == 0 and st.spinning_threads == 0
                and st.step_event is None and st.mhz == self._min_mhz):
            return    # settled idle core: target == mhz == min
        now = self.engine.now
        target = self._target_mhz(pc, now)
        if st.step_event is not None:
            self.engine.cancel(st.step_event)
            st.step_event = None
        if target == st.mhz:
            # If turbo reluctance is still capping us, wake up when it lifts.
            if st.is_active and self.pm.turbo_latency_us > 0 \
                    and st.active_since is not None:
                remaining = self.pm.turbo_latency_us - (now - st.active_since)
                if remaining > 0:
                    st.step_event = self.engine.after(
                        remaining, EventKind.FREQ, self._step, (pc,))
            return
        if target > st.mhz:
            delay = self.pm.ramp_interval_us
        else:
            delay = self.pm.decay_interval_us
            if st.idle_since is not None:
                held = now - st.idle_since
                if held < self.pm.idle_hold_us:
                    delay = self.pm.idle_hold_us - held
        st.step_event = self.engine.after(
            delay, EventKind.FREQ, self._step, (pc,))

    def _step(self, pc: int) -> None:
        """One ramp step: move the frequency toward the current target."""
        st = self._cores[pc]
        st.step_event = None
        now = self.engine.now
        target = self._target_mhz(pc, now)
        if target > st.mhz:
            new = min(st.mhz + self.pm.ramp_up_step_mhz, target)
        elif target < st.mhz:
            new = max(st.mhz - self.pm.decay_step_mhz, target)
        else:
            new = st.mhz
        if new != st.mhz:
            st.mhz = new
            for fn in self._listeners:
                fn(pc, new)
        self._reevaluate(pc)

    # ---- warm start -----------------------------------------------------

    def force_freq(self, physical_core: int, mhz: int) -> None:
        """Set a core's frequency directly (tests and warm-start)."""
        st = self._cores[physical_core]
        if st.mhz != mhz:
            st.mhz = mhz
            for fn in self._listeners:
                fn(physical_core, mhz)
        self._reevaluate(physical_core)
