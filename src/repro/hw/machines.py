"""Machine catalogue (paper Table 2 plus the §5.6 mono-socket machines)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from . import turbo as turbo_tables
from .energy import PowerParams
from .freqmodel import AMD_BOOST, PMParams, SPEED_SHIFT, SPEED_STEP
from .topology import Topology
from .turbo import TurboTable


@dataclass(frozen=True)
class Machine:
    """A complete hardware description usable by the simulator."""

    name: str
    cpu_model: str
    microarchitecture: str
    topology: Topology
    turbo: TurboTable
    pm: PMParams
    power: PowerParams = field(default_factory=PowerParams)

    @property
    def n_cpus(self) -> int:
        return self.topology.n_cpus

    @property
    def min_mhz(self) -> int:
        return self.turbo.min_mhz

    @property
    def nominal_mhz(self) -> int:
        return self.turbo.nominal_mhz

    @property
    def max_turbo_mhz(self) -> int:
        return self.turbo.max_turbo_mhz

    def describe(self) -> str:
        t = self.turbo
        return (f"{self.name}: {self.cpu_model} ({self.microarchitecture}), "
                f"{self.topology.describe()}, "
                f"{t.min_mhz / 1000:.1f}-{t.nominal_mhz / 1000:.1f} GHz "
                f"(turbo {t.max_turbo_mhz / 1000:.1f} GHz), {self.pm.name}")


# ---- Table 2 machines -------------------------------------------------------

#: 4-socket Intel Xeon E7-8870 v4 (Broadwell), 4x20x2 = 160 hw threads.
E7_8870_V4_4S = Machine(
    name="160-core Intel E7-8870 v4",
    cpu_model="Intel Xeon E7-8870 v4",
    microarchitecture="Broadwell",
    topology=Topology(n_sockets=4, cores_per_socket=20, smt=2),
    turbo=turbo_tables.E7_8870_V4,
    pm=SPEED_STEP,
    power=PowerParams(uncore_watts=24.0),
)

#: 2-socket Intel Xeon Gold 6130 (Skylake), 2x16x2 = 64 hw threads.
XEON_6130_2S = Machine(
    name="64-core Intel 6130",
    cpu_model="Intel Xeon Gold 6130",
    microarchitecture="Skylake",
    topology=Topology(n_sockets=2, cores_per_socket=16, smt=2),
    turbo=turbo_tables.XEON_6130,
    pm=SPEED_SHIFT,
)

#: 4-socket Intel Xeon Gold 6130 (Skylake), 4x16x2 = 128 hw threads.
XEON_6130_4S = Machine(
    name="128-core Intel 6130",
    cpu_model="Intel Xeon Gold 6130",
    microarchitecture="Skylake",
    topology=Topology(n_sockets=4, cores_per_socket=16, smt=2),
    turbo=turbo_tables.XEON_6130,
    pm=SPEED_SHIFT,
)

#: 2-socket Intel Xeon Gold 5218 (Cascade Lake), 2x16x2 = 64 hw threads.
XEON_5218_2S = Machine(
    name="64-core Intel 5218",
    cpu_model="Intel Xeon Gold 5218",
    microarchitecture="Cascade Lake",
    topology=Topology(n_sockets=2, cores_per_socket=16, smt=2),
    turbo=turbo_tables.XEON_5218,
    pm=SPEED_SHIFT,
)

# ---- §5.6 mono-socket machines ----------------------------------------------

#: 1-socket Intel Xeon Gold 5220 (Cascade Lake), 36 hw threads.
XEON_5220_1S = Machine(
    name="36-core Intel 5220",
    cpu_model="Intel Xeon Gold 5220",
    microarchitecture="Cascade Lake",
    topology=Topology(n_sockets=1, cores_per_socket=18, smt=2),
    turbo=turbo_tables.XEON_5220,
    pm=SPEED_SHIFT,
)

#: 1-socket AMD Ryzen 5 PRO 4650G, 12 hw threads.
RYZEN_4650G_1S = Machine(
    name="12-core AMD Ryzen 5 PRO 4650G",
    cpu_model="AMD Ryzen 5 PRO 4650G",
    microarchitecture="Zen 2",
    topology=Topology(n_sockets=1, cores_per_socket=6, smt=2),
    turbo=turbo_tables.RYZEN_4650G,
    pm=AMD_BOOST,
    power=PowerParams(uncore_watts=10.0),
)

#: The four Table 2 evaluation machines, in the paper's figure order.
PAPER_MACHINES: Dict[str, Machine] = {
    "6130_2s": XEON_6130_2S,
    "6130_4s": XEON_6130_4S,
    "5218_2s": XEON_5218_2S,
    "e78870_4s": E7_8870_V4_4S,
}

#: Every modelled machine, including the §5.6 mono-socket boxes.
ALL_MACHINES: Dict[str, Machine] = {
    **PAPER_MACHINES,
    "5220_1s": XEON_5220_1S,
    "ryzen_4650g": RYZEN_4650G_1S,
}


def get_machine(name: str) -> Machine:
    """Look up a machine by its short key (e.g. ``"6130_2s"``)."""
    try:
        return ALL_MACHINES[name]
    except KeyError:
        raise KeyError(
            f"unknown machine {name!r}; known: {sorted(ALL_MACHINES)}") from None


def machine_key(machine: Machine) -> Optional[str]:
    """Short key of a catalogued machine, or None for an ad-hoc one.

    The inverse of :func:`get_machine`; sweep specs and cache keys carry
    the short key so a worker process can rebuild the machine by name.
    """
    for key, m in ALL_MACHINES.items():
        if m is machine or m == machine:
            return key
    return None
