"""Concurrent-application composition (paper §5.6, "Multiple concurrent
applications").

Runs several workloads in the same kernel simultaneously and records each
application's own completion time, so per-application speedups can be
compared between the single- and multi-application scenarios (the paper
pairs zstd compression with libgav1).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..kernel.scheduler_core import Kernel
from ..kernel.task import Task
from .base import Workload


class MultiAppWorkload(Workload):
    """Compose workloads; their roots start together on different cpus."""

    def __init__(self, parts: Sequence[Workload]) -> None:
        if not parts:
            raise ValueError("need at least one workload")
        self.parts = list(parts)
        self.name = "multi:" + "+".join(p.name for p in self.parts)
        self.roots: Dict[str, Task] = {}

    def start(self, kernel: Kernel) -> Task:
        first = None
        for part in self.parts:
            root = part.start(kernel)
            self.roots[part.name] = root
            if first is None:
                first = root
        return first

    def completion_times_us(self) -> Dict[str, int]:
        """Per-application completion time (root exit), after the run."""
        if not self.roots:
            raise RuntimeError("workload has not been started")
        out: Dict[str, int] = {}
        for name, root in self.roots.items():
            if root.exited_us is None:
                raise RuntimeError(f"application {name} did not finish")
            out[name] = root.exited_us
        return out
